file(REMOVE_RECURSE
  "../bench/bench_e9_keygen"
  "../bench/bench_e9_keygen.pdb"
  "CMakeFiles/bench_e9_keygen.dir/bench_e9_keygen.cpp.o"
  "CMakeFiles/bench_e9_keygen.dir/bench_e9_keygen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
