# Empty dependencies file for bench_e9_keygen.
# This may be replaced when dependencies are built.
