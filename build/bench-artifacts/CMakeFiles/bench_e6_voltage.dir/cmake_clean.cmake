file(REMOVE_RECURSE
  "../bench/bench_e6_voltage"
  "../bench/bench_e6_voltage.pdb"
  "CMakeFiles/bench_e6_voltage.dir/bench_e6_voltage.cpp.o"
  "CMakeFiles/bench_e6_voltage.dir/bench_e6_voltage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
