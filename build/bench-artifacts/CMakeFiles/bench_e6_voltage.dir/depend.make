# Empty dependencies file for bench_e6_voltage.
# This may be replaced when dependencies are built.
