file(REMOVE_RECURSE
  "../bench/bench_e3_uniqueness"
  "../bench/bench_e3_uniqueness.pdb"
  "CMakeFiles/bench_e3_uniqueness.dir/bench_e3_uniqueness.cpp.o"
  "CMakeFiles/bench_e3_uniqueness.dir/bench_e3_uniqueness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
