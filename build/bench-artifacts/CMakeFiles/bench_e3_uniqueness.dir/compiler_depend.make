# Empty compiler generated dependencies file for bench_e3_uniqueness.
# This may be replaced when dependencies are built.
