# Empty dependencies file for bench_e2_aging_flips.
# This may be replaced when dependencies are built.
