file(REMOVE_RECURSE
  "../bench/bench_e2_aging_flips"
  "../bench/bench_e2_aging_flips.pdb"
  "CMakeFiles/bench_e2_aging_flips.dir/bench_e2_aging_flips.cpp.o"
  "CMakeFiles/bench_e2_aging_flips.dir/bench_e2_aging_flips.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_aging_flips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
