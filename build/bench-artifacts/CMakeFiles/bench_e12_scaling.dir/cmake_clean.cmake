file(REMOVE_RECURSE
  "../bench/bench_e12_scaling"
  "../bench/bench_e12_scaling.pdb"
  "CMakeFiles/bench_e12_scaling.dir/bench_e12_scaling.cpp.o"
  "CMakeFiles/bench_e12_scaling.dir/bench_e12_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
