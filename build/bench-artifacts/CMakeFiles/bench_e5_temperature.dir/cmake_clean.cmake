file(REMOVE_RECURSE
  "../bench/bench_e5_temperature"
  "../bench/bench_e5_temperature.pdb"
  "CMakeFiles/bench_e5_temperature.dir/bench_e5_temperature.cpp.o"
  "CMakeFiles/bench_e5_temperature.dir/bench_e5_temperature.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
