file(REMOVE_RECURSE
  "../bench/bench_e11_modeling_attack"
  "../bench/bench_e11_modeling_attack.pdb"
  "CMakeFiles/bench_e11_modeling_attack.dir/bench_e11_modeling_attack.cpp.o"
  "CMakeFiles/bench_e11_modeling_attack.dir/bench_e11_modeling_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_modeling_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
