# Empty dependencies file for bench_e11_modeling_attack.
# This may be replaced when dependencies are built.
