file(REMOVE_RECURSE
  "../bench/bench_e4_randomness"
  "../bench/bench_e4_randomness.pdb"
  "CMakeFiles/bench_e4_randomness.dir/bench_e4_randomness.cpp.o"
  "CMakeFiles/bench_e4_randomness.dir/bench_e4_randomness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
