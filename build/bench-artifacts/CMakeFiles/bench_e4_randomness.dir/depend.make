# Empty dependencies file for bench_e4_randomness.
# This may be replaced when dependencies are built.
