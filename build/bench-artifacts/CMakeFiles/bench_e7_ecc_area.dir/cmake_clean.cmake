file(REMOVE_RECURSE
  "../bench/bench_e7_ecc_area"
  "../bench/bench_e7_ecc_area.pdb"
  "CMakeFiles/bench_e7_ecc_area.dir/bench_e7_ecc_area.cpp.o"
  "CMakeFiles/bench_e7_ecc_area.dir/bench_e7_ecc_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_ecc_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
