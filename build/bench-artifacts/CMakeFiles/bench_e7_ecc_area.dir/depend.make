# Empty dependencies file for bench_e7_ecc_area.
# This may be replaced when dependencies are built.
