# Empty compiler generated dependencies file for bench_e1_freq_degradation.
# This may be replaced when dependencies are built.
