file(REMOVE_RECURSE
  "../bench/bench_e1_freq_degradation"
  "../bench/bench_e1_freq_degradation.pdb"
  "CMakeFiles/bench_e1_freq_degradation.dir/bench_e1_freq_degradation.cpp.o"
  "CMakeFiles/bench_e1_freq_degradation.dir/bench_e1_freq_degradation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_freq_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
