# Empty compiler generated dependencies file for bench_e13_enhancements.
# This may be replaced when dependencies are built.
