file(REMOVE_RECURSE
  "../bench/bench_e13_enhancements"
  "../bench/bench_e13_enhancements.pdb"
  "CMakeFiles/bench_e13_enhancements.dir/bench_e13_enhancements.cpp.o"
  "CMakeFiles/bench_e13_enhancements.dir/bench_e13_enhancements.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
