file(REMOVE_RECURSE
  "../bench/bench_e10_masking"
  "../bench/bench_e10_masking.pdb"
  "CMakeFiles/bench_e10_masking.dir/bench_e10_masking.cpp.o"
  "CMakeFiles/bench_e10_masking.dir/bench_e10_masking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
