# Empty dependencies file for bench_e10_masking.
# This may be replaced when dependencies are built.
