# Empty compiler generated dependencies file for uniqueness_study.
# This may be replaced when dependencies are built.
