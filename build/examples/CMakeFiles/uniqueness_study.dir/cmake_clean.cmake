file(REMOVE_RECURSE
  "CMakeFiles/uniqueness_study.dir/uniqueness_study.cpp.o"
  "CMakeFiles/uniqueness_study.dir/uniqueness_study.cpp.o.d"
  "uniqueness_study"
  "uniqueness_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqueness_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
