# Empty dependencies file for auth_demo.
# This may be replaced when dependencies are built.
