file(REMOVE_RECURSE
  "CMakeFiles/auth_demo.dir/auth_demo.cpp.o"
  "CMakeFiles/auth_demo.dir/auth_demo.cpp.o.d"
  "auth_demo"
  "auth_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
