# Empty compiler generated dependencies file for key_enrollment.
# This may be replaced when dependencies are built.
