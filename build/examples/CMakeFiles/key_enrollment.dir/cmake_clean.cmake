file(REMOVE_RECURSE
  "CMakeFiles/key_enrollment.dir/key_enrollment.cpp.o"
  "CMakeFiles/key_enrollment.dir/key_enrollment.cpp.o.d"
  "key_enrollment"
  "key_enrollment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
