file(REMOVE_RECURSE
  "CMakeFiles/aging_explorer.dir/aging_explorer.cpp.o"
  "CMakeFiles/aging_explorer.dir/aging_explorer.cpp.o.d"
  "aging_explorer"
  "aging_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
