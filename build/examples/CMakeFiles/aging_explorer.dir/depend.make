# Empty dependencies file for aging_explorer.
# This may be replaced when dependencies are built.
