file(REMOVE_RECURSE
  "CMakeFiles/aropuf_common.dir/bitvector.cpp.o"
  "CMakeFiles/aropuf_common.dir/bitvector.cpp.o.d"
  "CMakeFiles/aropuf_common.dir/json.cpp.o"
  "CMakeFiles/aropuf_common.dir/json.cpp.o.d"
  "CMakeFiles/aropuf_common.dir/rng.cpp.o"
  "CMakeFiles/aropuf_common.dir/rng.cpp.o.d"
  "CMakeFiles/aropuf_common.dir/special_functions.cpp.o"
  "CMakeFiles/aropuf_common.dir/special_functions.cpp.o.d"
  "CMakeFiles/aropuf_common.dir/statistics.cpp.o"
  "CMakeFiles/aropuf_common.dir/statistics.cpp.o.d"
  "CMakeFiles/aropuf_common.dir/table.cpp.o"
  "CMakeFiles/aropuf_common.dir/table.cpp.o.d"
  "libaropuf_common.a"
  "libaropuf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
