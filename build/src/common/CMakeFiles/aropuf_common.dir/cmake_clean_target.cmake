file(REMOVE_RECURSE
  "libaropuf_common.a"
)
