# Empty compiler generated dependencies file for aropuf_common.
# This may be replaced when dependencies are built.
