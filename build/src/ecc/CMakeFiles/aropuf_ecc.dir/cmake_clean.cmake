file(REMOVE_RECURSE
  "CMakeFiles/aropuf_ecc.dir/area_model.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/area_model.cpp.o.d"
  "CMakeFiles/aropuf_ecc.dir/bch.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/bch.cpp.o.d"
  "CMakeFiles/aropuf_ecc.dir/code_search.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/code_search.cpp.o.d"
  "CMakeFiles/aropuf_ecc.dir/concatenated.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/concatenated.cpp.o.d"
  "CMakeFiles/aropuf_ecc.dir/gf2m.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/gf2m.cpp.o.d"
  "CMakeFiles/aropuf_ecc.dir/golay.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/golay.cpp.o.d"
  "CMakeFiles/aropuf_ecc.dir/repetition.cpp.o"
  "CMakeFiles/aropuf_ecc.dir/repetition.cpp.o.d"
  "libaropuf_ecc.a"
  "libaropuf_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
