
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/area_model.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/area_model.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/area_model.cpp.o.d"
  "/root/repo/src/ecc/bch.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/bch.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/bch.cpp.o.d"
  "/root/repo/src/ecc/code_search.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/code_search.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/code_search.cpp.o.d"
  "/root/repo/src/ecc/concatenated.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/concatenated.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/concatenated.cpp.o.d"
  "/root/repo/src/ecc/gf2m.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/gf2m.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/gf2m.cpp.o.d"
  "/root/repo/src/ecc/golay.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/golay.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/golay.cpp.o.d"
  "/root/repo/src/ecc/repetition.cpp" "src/ecc/CMakeFiles/aropuf_ecc.dir/repetition.cpp.o" "gcc" "src/ecc/CMakeFiles/aropuf_ecc.dir/repetition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
