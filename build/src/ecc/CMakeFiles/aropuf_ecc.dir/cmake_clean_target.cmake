file(REMOVE_RECURSE
  "libaropuf_ecc.a"
)
