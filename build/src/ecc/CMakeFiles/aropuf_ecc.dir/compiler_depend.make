# Empty compiler generated dependencies file for aropuf_ecc.
# This may be replaced when dependencies are built.
