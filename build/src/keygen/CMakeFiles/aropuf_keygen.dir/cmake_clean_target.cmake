file(REMOVE_RECURSE
  "libaropuf_keygen.a"
)
