
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keygen/debias.cpp" "src/keygen/CMakeFiles/aropuf_keygen.dir/debias.cpp.o" "gcc" "src/keygen/CMakeFiles/aropuf_keygen.dir/debias.cpp.o.d"
  "/root/repo/src/keygen/fuzzy_extractor.cpp" "src/keygen/CMakeFiles/aropuf_keygen.dir/fuzzy_extractor.cpp.o" "gcc" "src/keygen/CMakeFiles/aropuf_keygen.dir/fuzzy_extractor.cpp.o.d"
  "/root/repo/src/keygen/hmac.cpp" "src/keygen/CMakeFiles/aropuf_keygen.dir/hmac.cpp.o" "gcc" "src/keygen/CMakeFiles/aropuf_keygen.dir/hmac.cpp.o.d"
  "/root/repo/src/keygen/sha256.cpp" "src/keygen/CMakeFiles/aropuf_keygen.dir/sha256.cpp.o" "gcc" "src/keygen/CMakeFiles/aropuf_keygen.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aropuf_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
