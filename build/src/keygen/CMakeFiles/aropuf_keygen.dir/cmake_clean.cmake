file(REMOVE_RECURSE
  "CMakeFiles/aropuf_keygen.dir/debias.cpp.o"
  "CMakeFiles/aropuf_keygen.dir/debias.cpp.o.d"
  "CMakeFiles/aropuf_keygen.dir/fuzzy_extractor.cpp.o"
  "CMakeFiles/aropuf_keygen.dir/fuzzy_extractor.cpp.o.d"
  "CMakeFiles/aropuf_keygen.dir/hmac.cpp.o"
  "CMakeFiles/aropuf_keygen.dir/hmac.cpp.o.d"
  "CMakeFiles/aropuf_keygen.dir/sha256.cpp.o"
  "CMakeFiles/aropuf_keygen.dir/sha256.cpp.o.d"
  "libaropuf_keygen.a"
  "libaropuf_keygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
