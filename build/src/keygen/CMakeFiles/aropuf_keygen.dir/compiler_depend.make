# Empty compiler generated dependencies file for aropuf_keygen.
# This may be replaced when dependencies are built.
