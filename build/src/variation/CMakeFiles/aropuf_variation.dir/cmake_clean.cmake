file(REMOVE_RECURSE
  "CMakeFiles/aropuf_variation.dir/pelgrom.cpp.o"
  "CMakeFiles/aropuf_variation.dir/pelgrom.cpp.o.d"
  "CMakeFiles/aropuf_variation.dir/process_variation.cpp.o"
  "CMakeFiles/aropuf_variation.dir/process_variation.cpp.o.d"
  "CMakeFiles/aropuf_variation.dir/spatial_field.cpp.o"
  "CMakeFiles/aropuf_variation.dir/spatial_field.cpp.o.d"
  "libaropuf_variation.a"
  "libaropuf_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
