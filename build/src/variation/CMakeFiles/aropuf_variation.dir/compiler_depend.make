# Empty compiler generated dependencies file for aropuf_variation.
# This may be replaced when dependencies are built.
