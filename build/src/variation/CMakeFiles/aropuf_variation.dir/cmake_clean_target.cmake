file(REMOVE_RECURSE
  "libaropuf_variation.a"
)
