
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variation/pelgrom.cpp" "src/variation/CMakeFiles/aropuf_variation.dir/pelgrom.cpp.o" "gcc" "src/variation/CMakeFiles/aropuf_variation.dir/pelgrom.cpp.o.d"
  "/root/repo/src/variation/process_variation.cpp" "src/variation/CMakeFiles/aropuf_variation.dir/process_variation.cpp.o" "gcc" "src/variation/CMakeFiles/aropuf_variation.dir/process_variation.cpp.o.d"
  "/root/repo/src/variation/spatial_field.cpp" "src/variation/CMakeFiles/aropuf_variation.dir/spatial_field.cpp.o" "gcc" "src/variation/CMakeFiles/aropuf_variation.dir/spatial_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
