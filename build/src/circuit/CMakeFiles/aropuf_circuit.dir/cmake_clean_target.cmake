file(REMOVE_RECURSE
  "libaropuf_circuit.a"
)
