file(REMOVE_RECURSE
  "CMakeFiles/aropuf_circuit.dir/delay_model.cpp.o"
  "CMakeFiles/aropuf_circuit.dir/delay_model.cpp.o.d"
  "CMakeFiles/aropuf_circuit.dir/measurement.cpp.o"
  "CMakeFiles/aropuf_circuit.dir/measurement.cpp.o.d"
  "CMakeFiles/aropuf_circuit.dir/ring_oscillator.cpp.o"
  "CMakeFiles/aropuf_circuit.dir/ring_oscillator.cpp.o.d"
  "libaropuf_circuit.a"
  "libaropuf_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
