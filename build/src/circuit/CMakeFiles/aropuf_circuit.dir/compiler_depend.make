# Empty compiler generated dependencies file for aropuf_circuit.
# This may be replaced when dependencies are built.
