
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/delay_model.cpp" "src/circuit/CMakeFiles/aropuf_circuit.dir/delay_model.cpp.o" "gcc" "src/circuit/CMakeFiles/aropuf_circuit.dir/delay_model.cpp.o.d"
  "/root/repo/src/circuit/measurement.cpp" "src/circuit/CMakeFiles/aropuf_circuit.dir/measurement.cpp.o" "gcc" "src/circuit/CMakeFiles/aropuf_circuit.dir/measurement.cpp.o.d"
  "/root/repo/src/circuit/ring_oscillator.cpp" "src/circuit/CMakeFiles/aropuf_circuit.dir/ring_oscillator.cpp.o" "gcc" "src/circuit/CMakeFiles/aropuf_circuit.dir/ring_oscillator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
