
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytic.cpp" "src/sim/CMakeFiles/aropuf_sim.dir/analytic.cpp.o" "gcc" "src/sim/CMakeFiles/aropuf_sim.dir/analytic.cpp.o.d"
  "/root/repo/src/sim/csv.cpp" "src/sim/CMakeFiles/aropuf_sim.dir/csv.cpp.o" "gcc" "src/sim/CMakeFiles/aropuf_sim.dir/csv.cpp.o.d"
  "/root/repo/src/sim/experiment_config.cpp" "src/sim/CMakeFiles/aropuf_sim.dir/experiment_config.cpp.o" "gcc" "src/sim/CMakeFiles/aropuf_sim.dir/experiment_config.cpp.o.d"
  "/root/repo/src/sim/scenarios.cpp" "src/sim/CMakeFiles/aropuf_sim.dir/scenarios.cpp.o" "gcc" "src/sim/CMakeFiles/aropuf_sim.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aropuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/aropuf_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aropuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aropuf_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/keygen/CMakeFiles/aropuf_keygen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
