file(REMOVE_RECURSE
  "CMakeFiles/aropuf_sim.dir/analytic.cpp.o"
  "CMakeFiles/aropuf_sim.dir/analytic.cpp.o.d"
  "CMakeFiles/aropuf_sim.dir/csv.cpp.o"
  "CMakeFiles/aropuf_sim.dir/csv.cpp.o.d"
  "CMakeFiles/aropuf_sim.dir/experiment_config.cpp.o"
  "CMakeFiles/aropuf_sim.dir/experiment_config.cpp.o.d"
  "CMakeFiles/aropuf_sim.dir/scenarios.cpp.o"
  "CMakeFiles/aropuf_sim.dir/scenarios.cpp.o.d"
  "libaropuf_sim.a"
  "libaropuf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
