file(REMOVE_RECURSE
  "libaropuf_sim.a"
)
