# Empty dependencies file for aropuf_sim.
# This may be replaced when dependencies are built.
