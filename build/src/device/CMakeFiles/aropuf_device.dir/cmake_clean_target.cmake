file(REMOVE_RECURSE
  "libaropuf_device.a"
)
