# Empty compiler generated dependencies file for aropuf_device.
# This may be replaced when dependencies are built.
