file(REMOVE_RECURSE
  "CMakeFiles/aropuf_device.dir/aging.cpp.o"
  "CMakeFiles/aropuf_device.dir/aging.cpp.o.d"
  "CMakeFiles/aropuf_device.dir/hci.cpp.o"
  "CMakeFiles/aropuf_device.dir/hci.cpp.o.d"
  "CMakeFiles/aropuf_device.dir/nbti.cpp.o"
  "CMakeFiles/aropuf_device.dir/nbti.cpp.o.d"
  "CMakeFiles/aropuf_device.dir/stress.cpp.o"
  "CMakeFiles/aropuf_device.dir/stress.cpp.o.d"
  "CMakeFiles/aropuf_device.dir/technology.cpp.o"
  "CMakeFiles/aropuf_device.dir/technology.cpp.o.d"
  "libaropuf_device.a"
  "libaropuf_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
