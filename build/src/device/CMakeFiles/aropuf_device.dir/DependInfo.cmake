
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/aging.cpp" "src/device/CMakeFiles/aropuf_device.dir/aging.cpp.o" "gcc" "src/device/CMakeFiles/aropuf_device.dir/aging.cpp.o.d"
  "/root/repo/src/device/hci.cpp" "src/device/CMakeFiles/aropuf_device.dir/hci.cpp.o" "gcc" "src/device/CMakeFiles/aropuf_device.dir/hci.cpp.o.d"
  "/root/repo/src/device/nbti.cpp" "src/device/CMakeFiles/aropuf_device.dir/nbti.cpp.o" "gcc" "src/device/CMakeFiles/aropuf_device.dir/nbti.cpp.o.d"
  "/root/repo/src/device/stress.cpp" "src/device/CMakeFiles/aropuf_device.dir/stress.cpp.o" "gcc" "src/device/CMakeFiles/aropuf_device.dir/stress.cpp.o.d"
  "/root/repo/src/device/technology.cpp" "src/device/CMakeFiles/aropuf_device.dir/technology.cpp.o" "gcc" "src/device/CMakeFiles/aropuf_device.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
