# Empty dependencies file for aropuf_metrics.
# This may be replaced when dependencies are built.
