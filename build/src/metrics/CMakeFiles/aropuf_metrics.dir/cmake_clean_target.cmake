file(REMOVE_RECURSE
  "libaropuf_metrics.a"
)
