
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/entropy.cpp" "src/metrics/CMakeFiles/aropuf_metrics.dir/entropy.cpp.o" "gcc" "src/metrics/CMakeFiles/aropuf_metrics.dir/entropy.cpp.o.d"
  "/root/repo/src/metrics/nist.cpp" "src/metrics/CMakeFiles/aropuf_metrics.dir/nist.cpp.o" "gcc" "src/metrics/CMakeFiles/aropuf_metrics.dir/nist.cpp.o.d"
  "/root/repo/src/metrics/reliability.cpp" "src/metrics/CMakeFiles/aropuf_metrics.dir/reliability.cpp.o" "gcc" "src/metrics/CMakeFiles/aropuf_metrics.dir/reliability.cpp.o.d"
  "/root/repo/src/metrics/uniformity.cpp" "src/metrics/CMakeFiles/aropuf_metrics.dir/uniformity.cpp.o" "gcc" "src/metrics/CMakeFiles/aropuf_metrics.dir/uniformity.cpp.o.d"
  "/root/repo/src/metrics/uniqueness.cpp" "src/metrics/CMakeFiles/aropuf_metrics.dir/uniqueness.cpp.o" "gcc" "src/metrics/CMakeFiles/aropuf_metrics.dir/uniqueness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
