file(REMOVE_RECURSE
  "CMakeFiles/aropuf_metrics.dir/entropy.cpp.o"
  "CMakeFiles/aropuf_metrics.dir/entropy.cpp.o.d"
  "CMakeFiles/aropuf_metrics.dir/nist.cpp.o"
  "CMakeFiles/aropuf_metrics.dir/nist.cpp.o.d"
  "CMakeFiles/aropuf_metrics.dir/reliability.cpp.o"
  "CMakeFiles/aropuf_metrics.dir/reliability.cpp.o.d"
  "CMakeFiles/aropuf_metrics.dir/uniformity.cpp.o"
  "CMakeFiles/aropuf_metrics.dir/uniformity.cpp.o.d"
  "CMakeFiles/aropuf_metrics.dir/uniqueness.cpp.o"
  "CMakeFiles/aropuf_metrics.dir/uniqueness.cpp.o.d"
  "libaropuf_metrics.a"
  "libaropuf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
