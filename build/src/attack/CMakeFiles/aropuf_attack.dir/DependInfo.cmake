
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/order_attack.cpp" "src/attack/CMakeFiles/aropuf_attack.dir/order_attack.cpp.o" "gcc" "src/attack/CMakeFiles/aropuf_attack.dir/order_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/aropuf_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aropuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
