file(REMOVE_RECURSE
  "libaropuf_attack.a"
)
