# Empty dependencies file for aropuf_attack.
# This may be replaced when dependencies are built.
