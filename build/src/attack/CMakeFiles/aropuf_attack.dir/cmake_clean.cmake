file(REMOVE_RECURSE
  "CMakeFiles/aropuf_attack.dir/order_attack.cpp.o"
  "CMakeFiles/aropuf_attack.dir/order_attack.cpp.o.d"
  "libaropuf_attack.a"
  "libaropuf_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
