
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puf/masking.cpp" "src/puf/CMakeFiles/aropuf_puf.dir/masking.cpp.o" "gcc" "src/puf/CMakeFiles/aropuf_puf.dir/masking.cpp.o.d"
  "/root/repo/src/puf/pair_selection.cpp" "src/puf/CMakeFiles/aropuf_puf.dir/pair_selection.cpp.o" "gcc" "src/puf/CMakeFiles/aropuf_puf.dir/pair_selection.cpp.o.d"
  "/root/repo/src/puf/pairing.cpp" "src/puf/CMakeFiles/aropuf_puf.dir/pairing.cpp.o" "gcc" "src/puf/CMakeFiles/aropuf_puf.dir/pairing.cpp.o.d"
  "/root/repo/src/puf/puf_config.cpp" "src/puf/CMakeFiles/aropuf_puf.dir/puf_config.cpp.o" "gcc" "src/puf/CMakeFiles/aropuf_puf.dir/puf_config.cpp.o.d"
  "/root/repo/src/puf/ro_puf.cpp" "src/puf/CMakeFiles/aropuf_puf.dir/ro_puf.cpp.o" "gcc" "src/puf/CMakeFiles/aropuf_puf.dir/ro_puf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aropuf_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
