# Empty compiler generated dependencies file for aropuf_puf.
# This may be replaced when dependencies are built.
