file(REMOVE_RECURSE
  "libaropuf_puf.a"
)
