file(REMOVE_RECURSE
  "CMakeFiles/aropuf_puf.dir/masking.cpp.o"
  "CMakeFiles/aropuf_puf.dir/masking.cpp.o.d"
  "CMakeFiles/aropuf_puf.dir/pair_selection.cpp.o"
  "CMakeFiles/aropuf_puf.dir/pair_selection.cpp.o.d"
  "CMakeFiles/aropuf_puf.dir/pairing.cpp.o"
  "CMakeFiles/aropuf_puf.dir/pairing.cpp.o.d"
  "CMakeFiles/aropuf_puf.dir/puf_config.cpp.o"
  "CMakeFiles/aropuf_puf.dir/puf_config.cpp.o.d"
  "CMakeFiles/aropuf_puf.dir/ro_puf.cpp.o"
  "CMakeFiles/aropuf_puf.dir/ro_puf.cpp.o.d"
  "libaropuf_puf.a"
  "libaropuf_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
