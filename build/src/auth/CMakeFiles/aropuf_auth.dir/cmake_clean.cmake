file(REMOVE_RECURSE
  "CMakeFiles/aropuf_auth.dir/authenticator.cpp.o"
  "CMakeFiles/aropuf_auth.dir/authenticator.cpp.o.d"
  "libaropuf_auth.a"
  "libaropuf_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
