file(REMOVE_RECURSE
  "libaropuf_auth.a"
)
