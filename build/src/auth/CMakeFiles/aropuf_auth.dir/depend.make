# Empty dependencies file for aropuf_auth.
# This may be replaced when dependencies are built.
