# Empty dependencies file for aropuf_common_tests.
# This may be replaced when dependencies are built.
