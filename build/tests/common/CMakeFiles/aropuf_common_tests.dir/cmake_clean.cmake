file(REMOVE_RECURSE
  "CMakeFiles/aropuf_common_tests.dir/bitvector_test.cpp.o"
  "CMakeFiles/aropuf_common_tests.dir/bitvector_test.cpp.o.d"
  "CMakeFiles/aropuf_common_tests.dir/json_test.cpp.o"
  "CMakeFiles/aropuf_common_tests.dir/json_test.cpp.o.d"
  "CMakeFiles/aropuf_common_tests.dir/rng_test.cpp.o"
  "CMakeFiles/aropuf_common_tests.dir/rng_test.cpp.o.d"
  "CMakeFiles/aropuf_common_tests.dir/special_functions_test.cpp.o"
  "CMakeFiles/aropuf_common_tests.dir/special_functions_test.cpp.o.d"
  "CMakeFiles/aropuf_common_tests.dir/statistics_test.cpp.o"
  "CMakeFiles/aropuf_common_tests.dir/statistics_test.cpp.o.d"
  "CMakeFiles/aropuf_common_tests.dir/table_test.cpp.o"
  "CMakeFiles/aropuf_common_tests.dir/table_test.cpp.o.d"
  "aropuf_common_tests"
  "aropuf_common_tests.pdb"
  "aropuf_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
