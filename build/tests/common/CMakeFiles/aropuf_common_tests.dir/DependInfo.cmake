
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bitvector_test.cpp" "tests/common/CMakeFiles/aropuf_common_tests.dir/bitvector_test.cpp.o" "gcc" "tests/common/CMakeFiles/aropuf_common_tests.dir/bitvector_test.cpp.o.d"
  "/root/repo/tests/common/json_test.cpp" "tests/common/CMakeFiles/aropuf_common_tests.dir/json_test.cpp.o" "gcc" "tests/common/CMakeFiles/aropuf_common_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/common/CMakeFiles/aropuf_common_tests.dir/rng_test.cpp.o" "gcc" "tests/common/CMakeFiles/aropuf_common_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/common/special_functions_test.cpp" "tests/common/CMakeFiles/aropuf_common_tests.dir/special_functions_test.cpp.o" "gcc" "tests/common/CMakeFiles/aropuf_common_tests.dir/special_functions_test.cpp.o.d"
  "/root/repo/tests/common/statistics_test.cpp" "tests/common/CMakeFiles/aropuf_common_tests.dir/statistics_test.cpp.o" "gcc" "tests/common/CMakeFiles/aropuf_common_tests.dir/statistics_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/common/CMakeFiles/aropuf_common_tests.dir/table_test.cpp.o" "gcc" "tests/common/CMakeFiles/aropuf_common_tests.dir/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/aropuf_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/aropuf_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aropuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/aropuf_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aropuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aropuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/keygen/CMakeFiles/aropuf_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aropuf_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
