# Empty compiler generated dependencies file for aropuf_metrics_tests.
# This may be replaced when dependencies are built.
