file(REMOVE_RECURSE
  "CMakeFiles/aropuf_metrics_tests.dir/entropy_test.cpp.o"
  "CMakeFiles/aropuf_metrics_tests.dir/entropy_test.cpp.o.d"
  "CMakeFiles/aropuf_metrics_tests.dir/nist_test.cpp.o"
  "CMakeFiles/aropuf_metrics_tests.dir/nist_test.cpp.o.d"
  "CMakeFiles/aropuf_metrics_tests.dir/reliability_test.cpp.o"
  "CMakeFiles/aropuf_metrics_tests.dir/reliability_test.cpp.o.d"
  "CMakeFiles/aropuf_metrics_tests.dir/uniformity_test.cpp.o"
  "CMakeFiles/aropuf_metrics_tests.dir/uniformity_test.cpp.o.d"
  "CMakeFiles/aropuf_metrics_tests.dir/uniqueness_test.cpp.o"
  "CMakeFiles/aropuf_metrics_tests.dir/uniqueness_test.cpp.o.d"
  "aropuf_metrics_tests"
  "aropuf_metrics_tests.pdb"
  "aropuf_metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
