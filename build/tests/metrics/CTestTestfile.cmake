# CMake generated Testfile for 
# Source directory: /root/repo/tests/metrics
# Build directory: /root/repo/build/tests/metrics
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/metrics/aropuf_metrics_tests[1]_include.cmake")
