# Empty compiler generated dependencies file for aropuf_device_tests.
# This may be replaced when dependencies are built.
