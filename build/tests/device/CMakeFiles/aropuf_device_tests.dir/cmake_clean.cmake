file(REMOVE_RECURSE
  "CMakeFiles/aropuf_device_tests.dir/aging_test.cpp.o"
  "CMakeFiles/aropuf_device_tests.dir/aging_test.cpp.o.d"
  "CMakeFiles/aropuf_device_tests.dir/hci_test.cpp.o"
  "CMakeFiles/aropuf_device_tests.dir/hci_test.cpp.o.d"
  "CMakeFiles/aropuf_device_tests.dir/nbti_test.cpp.o"
  "CMakeFiles/aropuf_device_tests.dir/nbti_test.cpp.o.d"
  "CMakeFiles/aropuf_device_tests.dir/stress_test.cpp.o"
  "CMakeFiles/aropuf_device_tests.dir/stress_test.cpp.o.d"
  "CMakeFiles/aropuf_device_tests.dir/technology_test.cpp.o"
  "CMakeFiles/aropuf_device_tests.dir/technology_test.cpp.o.d"
  "CMakeFiles/aropuf_device_tests.dir/transistor_test.cpp.o"
  "CMakeFiles/aropuf_device_tests.dir/transistor_test.cpp.o.d"
  "aropuf_device_tests"
  "aropuf_device_tests.pdb"
  "aropuf_device_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_device_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
