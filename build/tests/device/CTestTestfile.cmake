# CMake generated Testfile for 
# Source directory: /root/repo/tests/device
# Build directory: /root/repo/build/tests/device
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/device/aropuf_device_tests[1]_include.cmake")
