# Empty dependencies file for aropuf_attack_tests.
# This may be replaced when dependencies are built.
