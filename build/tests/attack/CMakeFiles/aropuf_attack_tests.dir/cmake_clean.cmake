file(REMOVE_RECURSE
  "CMakeFiles/aropuf_attack_tests.dir/order_attack_test.cpp.o"
  "CMakeFiles/aropuf_attack_tests.dir/order_attack_test.cpp.o.d"
  "aropuf_attack_tests"
  "aropuf_attack_tests.pdb"
  "aropuf_attack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_attack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
