# CMake generated Testfile for 
# Source directory: /root/repo/tests/attack
# Build directory: /root/repo/build/tests/attack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/attack/aropuf_attack_tests[1]_include.cmake")
