
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/auth/authenticator_test.cpp" "tests/auth/CMakeFiles/aropuf_auth_tests.dir/authenticator_test.cpp.o" "gcc" "tests/auth/CMakeFiles/aropuf_auth_tests.dir/authenticator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/aropuf_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/aropuf_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aropuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/aropuf_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aropuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aropuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/keygen/CMakeFiles/aropuf_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aropuf_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
