# Empty dependencies file for aropuf_auth_tests.
# This may be replaced when dependencies are built.
