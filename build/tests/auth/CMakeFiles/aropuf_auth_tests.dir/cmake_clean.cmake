file(REMOVE_RECURSE
  "CMakeFiles/aropuf_auth_tests.dir/authenticator_test.cpp.o"
  "CMakeFiles/aropuf_auth_tests.dir/authenticator_test.cpp.o.d"
  "aropuf_auth_tests"
  "aropuf_auth_tests.pdb"
  "aropuf_auth_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_auth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
