file(REMOVE_RECURSE
  "CMakeFiles/aropuf_integration_tests.dir/determinism_test.cpp.o"
  "CMakeFiles/aropuf_integration_tests.dir/determinism_test.cpp.o.d"
  "CMakeFiles/aropuf_integration_tests.dir/end_to_end_test.cpp.o"
  "CMakeFiles/aropuf_integration_tests.dir/end_to_end_test.cpp.o.d"
  "CMakeFiles/aropuf_integration_tests.dir/failure_injection_test.cpp.o"
  "CMakeFiles/aropuf_integration_tests.dir/failure_injection_test.cpp.o.d"
  "aropuf_integration_tests"
  "aropuf_integration_tests.pdb"
  "aropuf_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
