# Empty dependencies file for aropuf_integration_tests.
# This may be replaced when dependencies are built.
