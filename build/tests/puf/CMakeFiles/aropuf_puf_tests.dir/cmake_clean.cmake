file(REMOVE_RECURSE
  "CMakeFiles/aropuf_puf_tests.dir/masking_test.cpp.o"
  "CMakeFiles/aropuf_puf_tests.dir/masking_test.cpp.o.d"
  "CMakeFiles/aropuf_puf_tests.dir/pair_selection_test.cpp.o"
  "CMakeFiles/aropuf_puf_tests.dir/pair_selection_test.cpp.o.d"
  "CMakeFiles/aropuf_puf_tests.dir/pairing_test.cpp.o"
  "CMakeFiles/aropuf_puf_tests.dir/pairing_test.cpp.o.d"
  "CMakeFiles/aropuf_puf_tests.dir/puf_config_test.cpp.o"
  "CMakeFiles/aropuf_puf_tests.dir/puf_config_test.cpp.o.d"
  "CMakeFiles/aropuf_puf_tests.dir/response_properties_test.cpp.o"
  "CMakeFiles/aropuf_puf_tests.dir/response_properties_test.cpp.o.d"
  "CMakeFiles/aropuf_puf_tests.dir/ro_puf_test.cpp.o"
  "CMakeFiles/aropuf_puf_tests.dir/ro_puf_test.cpp.o.d"
  "aropuf_puf_tests"
  "aropuf_puf_tests.pdb"
  "aropuf_puf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_puf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
