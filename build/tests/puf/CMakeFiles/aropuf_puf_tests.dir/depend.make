# Empty dependencies file for aropuf_puf_tests.
# This may be replaced when dependencies are built.
