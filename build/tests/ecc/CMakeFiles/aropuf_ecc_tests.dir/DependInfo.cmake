
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ecc/area_model_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/area_model_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/area_model_test.cpp.o.d"
  "/root/repo/tests/ecc/bch_property_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/bch_property_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/bch_property_test.cpp.o.d"
  "/root/repo/tests/ecc/bch_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/bch_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/bch_test.cpp.o.d"
  "/root/repo/tests/ecc/code_search_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/code_search_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/code_search_test.cpp.o.d"
  "/root/repo/tests/ecc/concatenated_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/concatenated_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/concatenated_test.cpp.o.d"
  "/root/repo/tests/ecc/gf2m_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/gf2m_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/gf2m_test.cpp.o.d"
  "/root/repo/tests/ecc/golay_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/golay_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/golay_test.cpp.o.d"
  "/root/repo/tests/ecc/repetition_test.cpp" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/repetition_test.cpp.o" "gcc" "tests/ecc/CMakeFiles/aropuf_ecc_tests.dir/repetition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/aropuf_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/aropuf_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aropuf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/aropuf_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aropuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/aropuf_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aropuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/keygen/CMakeFiles/aropuf_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aropuf_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aropuf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aropuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
