file(REMOVE_RECURSE
  "CMakeFiles/aropuf_ecc_tests.dir/area_model_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/area_model_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/bch_property_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/bch_property_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/bch_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/bch_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/code_search_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/code_search_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/concatenated_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/concatenated_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/gf2m_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/gf2m_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/golay_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/golay_test.cpp.o.d"
  "CMakeFiles/aropuf_ecc_tests.dir/repetition_test.cpp.o"
  "CMakeFiles/aropuf_ecc_tests.dir/repetition_test.cpp.o.d"
  "aropuf_ecc_tests"
  "aropuf_ecc_tests.pdb"
  "aropuf_ecc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_ecc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
