# Empty compiler generated dependencies file for aropuf_ecc_tests.
# This may be replaced when dependencies are built.
