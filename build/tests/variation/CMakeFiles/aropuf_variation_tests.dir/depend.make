# Empty dependencies file for aropuf_variation_tests.
# This may be replaced when dependencies are built.
