file(REMOVE_RECURSE
  "CMakeFiles/aropuf_variation_tests.dir/pelgrom_test.cpp.o"
  "CMakeFiles/aropuf_variation_tests.dir/pelgrom_test.cpp.o.d"
  "CMakeFiles/aropuf_variation_tests.dir/process_variation_test.cpp.o"
  "CMakeFiles/aropuf_variation_tests.dir/process_variation_test.cpp.o.d"
  "CMakeFiles/aropuf_variation_tests.dir/spatial_field_test.cpp.o"
  "CMakeFiles/aropuf_variation_tests.dir/spatial_field_test.cpp.o.d"
  "aropuf_variation_tests"
  "aropuf_variation_tests.pdb"
  "aropuf_variation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_variation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
