# CMake generated Testfile for 
# Source directory: /root/repo/tests/variation
# Build directory: /root/repo/build/tests/variation
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/variation/aropuf_variation_tests[1]_include.cmake")
