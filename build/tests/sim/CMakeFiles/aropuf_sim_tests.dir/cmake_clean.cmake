file(REMOVE_RECURSE
  "CMakeFiles/aropuf_sim_tests.dir/analytic_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/analytic_test.cpp.o.d"
  "CMakeFiles/aropuf_sim_tests.dir/calibration_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/calibration_test.cpp.o.d"
  "CMakeFiles/aropuf_sim_tests.dir/csv_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/csv_test.cpp.o.d"
  "CMakeFiles/aropuf_sim_tests.dir/experiment_config_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/experiment_config_test.cpp.o.d"
  "CMakeFiles/aropuf_sim_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/aropuf_sim_tests.dir/mission_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/mission_test.cpp.o.d"
  "CMakeFiles/aropuf_sim_tests.dir/scenarios_test.cpp.o"
  "CMakeFiles/aropuf_sim_tests.dir/scenarios_test.cpp.o.d"
  "aropuf_sim_tests"
  "aropuf_sim_tests.pdb"
  "aropuf_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
