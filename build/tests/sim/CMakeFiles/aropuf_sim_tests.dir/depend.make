# Empty dependencies file for aropuf_sim_tests.
# This may be replaced when dependencies are built.
