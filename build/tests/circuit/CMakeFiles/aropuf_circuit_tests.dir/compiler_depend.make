# Empty compiler generated dependencies file for aropuf_circuit_tests.
# This may be replaced when dependencies are built.
