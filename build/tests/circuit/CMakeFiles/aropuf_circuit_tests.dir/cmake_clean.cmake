file(REMOVE_RECURSE
  "CMakeFiles/aropuf_circuit_tests.dir/delay_model_test.cpp.o"
  "CMakeFiles/aropuf_circuit_tests.dir/delay_model_test.cpp.o.d"
  "CMakeFiles/aropuf_circuit_tests.dir/measurement_test.cpp.o"
  "CMakeFiles/aropuf_circuit_tests.dir/measurement_test.cpp.o.d"
  "CMakeFiles/aropuf_circuit_tests.dir/ring_oscillator_test.cpp.o"
  "CMakeFiles/aropuf_circuit_tests.dir/ring_oscillator_test.cpp.o.d"
  "aropuf_circuit_tests"
  "aropuf_circuit_tests.pdb"
  "aropuf_circuit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_circuit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
