# Empty compiler generated dependencies file for aropuf_keygen_tests.
# This may be replaced when dependencies are built.
