file(REMOVE_RECURSE
  "CMakeFiles/aropuf_keygen_tests.dir/debias_test.cpp.o"
  "CMakeFiles/aropuf_keygen_tests.dir/debias_test.cpp.o.d"
  "CMakeFiles/aropuf_keygen_tests.dir/fuzzy_extractor_test.cpp.o"
  "CMakeFiles/aropuf_keygen_tests.dir/fuzzy_extractor_test.cpp.o.d"
  "CMakeFiles/aropuf_keygen_tests.dir/hmac_test.cpp.o"
  "CMakeFiles/aropuf_keygen_tests.dir/hmac_test.cpp.o.d"
  "CMakeFiles/aropuf_keygen_tests.dir/refresh_test.cpp.o"
  "CMakeFiles/aropuf_keygen_tests.dir/refresh_test.cpp.o.d"
  "CMakeFiles/aropuf_keygen_tests.dir/sha256_test.cpp.o"
  "CMakeFiles/aropuf_keygen_tests.dir/sha256_test.cpp.o.d"
  "aropuf_keygen_tests"
  "aropuf_keygen_tests.pdb"
  "aropuf_keygen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aropuf_keygen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
