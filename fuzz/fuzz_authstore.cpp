// Fuzz entry point for the ARPS enrollment-store decoder.
//
// Contract under test: BinaryEnrollmentStore::parse on arbitrary bytes
// either succeeds or throws AuthStoreError — never any other exception,
// never a crash, never a sanitizer finding.  On success the store is fully
// validated by invariant, so walking every index entry and record view (and
// probing find() with ids from both sides of the index) must not fault.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "auth/store_binary.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using aropuf::BinaryEnrollmentStore;
  try {
    const auto store =
        BinaryEnrollmentStore::parse(std::string(reinterpret_cast<const char*>(data), size));
    // Accepted input: exercise the zero-copy read side.  A validator gap
    // that leaves an out-of-bounds record view would fault here under ASan.
    const std::size_t response_bytes = (store->response_bits() + 7) / 8;
    const std::size_t helper_bytes = (store->helper_bits() + 7) / 8;
    unsigned sink = 0;
    for (std::size_t i = 0; i < store->device_count(); ++i) {
      const aropuf::DeviceId id = store->device_id_at(i);
      const aropuf::RecordView view = store->record_at(i);
      for (std::size_t b = 0; b < response_bytes; ++b) sink += view.response[b];
      for (std::size_t b = 0; b < helper_bytes; ++b) sink += view.helper[b];
      for (std::size_t b = 0; b < aropuf::kRecordTagBytes; ++b) sink += view.tag[b];
      sink += store->find(id).has_value() ? 1 : 0;
      sink += store->find(id + 1).has_value() ? 1 : 0;
      sink += store->find(id - 1).has_value() ? 1 : 0;
    }
    (void)sink;
  } catch (const aropuf::AuthStoreError&) {
    // The one sanctioned outcome for rejected input.
  }
  // Any other exception type escapes on purpose: libFuzzer (and the
  // standalone replay driver) report it as a finding.
  return 0;
}

#include "standalone_main.inc"
