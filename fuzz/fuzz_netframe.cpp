// Fuzz entry point for the ARPF frame decoder (net/frame.hpp) — the fleet
// coordinator's first line of defense against hostile or corrupted TCP
// streams.
//
// Contract under test: feeding arbitrary bytes to FrameDecoder (in arbitrary
// chunkings) either yields frames or throws FrameError — never any other
// exception, never a crash, never a sanitizer finding, and never an
// allocation driven past the per-type payload caps by a declared length.
// Decoded control frames are pushed through frame_payload_json and the typed
// message parsers, whose schema rejections must also surface as FrameError.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "net/frame.hpp"

namespace {

/// Walks every decoded frame the way the coordinator/worker would.
void consume(const aropuf::net::Frame& frame) {
  using namespace aropuf::net;
  if (frame.type == FrameType::kResult || frame.type == FrameType::kBye) {
    return;  // opaque container bytes / empty payload: nothing to parse
  }
  const aropuf::JsonValue doc = frame_payload_json(frame);
  switch (frame.type) {
    case FrameType::kHello:
      (void)hello_from_json(doc);
      break;
    case FrameType::kJob:
      (void)job_from_json(doc);
      break;
    case FrameType::kError:
      (void)error_from_json(doc);
      break;
    case FrameType::kMetrics:
      (void)metrics_from_json(doc);
      break;
    default:
      break;  // HEARTBEAT schemas belong to telemetry/progress
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace aropuf::net;
  // Split the input at a data-derived point and feed it in two chunks: the
  // same bytes must decode identically under any packetization, and the
  // header-prefix fast path gets exercised with partial headers.
  const std::size_t split = size == 0 ? 0 : data[0] % (size + 1);
  const auto* bytes = reinterpret_cast<const char*>(data);
  try {
    FrameDecoder decoder;
    Frame frame;
    decoder.feed(bytes, split);
    while (decoder.next(&frame)) consume(frame);
    decoder.feed(bytes + split, size - split);
    while (decoder.next(&frame)) consume(frame);
  } catch (const FrameError&) {
    // The one sanctioned outcome for rejected input.
  }
  // Any other exception type escapes on purpose: libFuzzer (and the
  // standalone replay driver) report it as a finding.
  return 0;
}

#include "standalone_main.inc"
