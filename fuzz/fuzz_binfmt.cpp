// Fuzz entry point for the binary shard-manifest decoder.
//
// Contract under test: BinaryManifestReader::parse on arbitrary bytes either
// succeeds or throws BinfmtError — never any other exception, never a crash,
// never a sanitizer finding.  On success the decoded container must be
// internally consistent enough to walk every series value and re-serialize
// to JSON without faulting (parse() promises a fully validated reader).
#include <cstdint>
#include <cstdlib>
#include <string>

#include "telemetry/binfmt.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using aropuf::telemetry::BinaryManifestReader;
  try {
    const BinaryManifestReader reader =
        BinaryManifestReader::parse(std::string(reinterpret_cast<const char*>(data), size));
    // Accepted input: exercise the read side.  A parse that validates but
    // leaves an out-of-bounds view would fault here under ASan.
    double sink = 0.0;
    for (std::size_t i = 0; i < reader.series_count(); ++i) {
      const aropuf::telemetry::SeriesView& s = reader.series(i);
      for (std::size_t k = 0; k < s.count; ++k) sink += s.value(k);
    }
    (void)sink;
    (void)reader.to_json();
  } catch (const aropuf::telemetry::BinfmtError&) {
    // The one sanctioned outcome for rejected input.
  }
  // Any other exception type escapes on purpose: libFuzzer (and the
  // standalone replay driver) report it as a finding.
  return 0;
}

#include "standalone_main.inc"
