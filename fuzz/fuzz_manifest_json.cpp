// Fuzz entry point for the JSON shard-manifest ingestion path: the exact
// pipeline aropuf_shard runs on every worker manifest it merges.
//
// Contract under test: arbitrary bytes through JsonValue::parse →
// wrap_shard_manifest (structural validation) → AggregateBuilder fold either
// succeed or throw std::invalid_argument / std::runtime_error — never crash,
// never trip a sanitizer.  The JSON parser itself is the largest attack
// surface (recursion depth, number parsing, string escapes); the fold layers
// on top because corrupt-but-parseable manifests must also die cleanly.
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "telemetry/aggregate.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using aropuf::JsonValue;
  namespace telemetry = aropuf::telemetry;
  try {
    JsonValue doc = JsonValue::parse(std::string(reinterpret_cast<const char*>(data), size));
    telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kKeep);
    builder.add(telemetry::wrap_shard_manifest(std::move(doc), "<fuzz>"));
    (void)builder.finalize();
  } catch (const std::invalid_argument&) {
    // JSON syntax or type errors: sanctioned rejection.
  } catch (const std::runtime_error&) {
    // Manifest validation or fold consistency errors: sanctioned rejection.
  }
  // Anything else (logic_error, bad_alloc from a length-driven allocation,
  // a segfault) escapes and counts as a finding.
  return 0;
}

#include "standalone_main.inc"
