// End-to-end integration: silicon -> response -> fuzzy extractor -> key,
// across the full simulated lifetime.  This is the deployment story the
// paper's ECC analysis assumes, exercised concretely.
#include <gtest/gtest.h>

#include "ecc/code_search.hpp"
#include "keygen/fuzzy_extractor.hpp"
#include "puf/ro_puf.hpp"
#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

/// Builds an ARO chip with enough ROs for the extractor's raw bits.
RoPuf make_chip_for(const FuzzyExtractor& fx, const TechnologyParams& tech,
                    std::uint64_t chip_index) {
  const int ros = static_cast<int>(2 * fx.response_bits());
  PufConfig cfg = PufConfig::aro(ros);
  return RoPuf(tech, cfg, RngFabric(99).child("chip", chip_index));
}

class EndToEndTest : public ::testing::Test {
 protected:
  static ConcatenatedScheme scheme() {
    // Found by the code search for the ARO provisioning BER; hard-coded so
    // the test is stable: rep-3 inner, BCH(127, 64, 10) outer, 2 blocks.
    ConcatenatedScheme s;
    s.repetition = 3;
    s.bch_m = 7;
    s.bch_t = 10;
    s.key_bits = 128;
    return s;
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
  FuzzyExtractor fx_{scheme()};
};

TEST_F(EndToEndTest, KeySurvivesTenYearsOnAroChip) {
  RoPuf chip = make_chip_for(fx_, tech_, 0);
  const auto op = chip.nominal_op();
  Xoshiro256 trng(42);

  const BitVector golden = chip.evaluate(op, 0);
  const Enrollment enrollment = fx_.enroll(golden, trng);

  chip.age_years(10.0);
  const BitVector aged = chip.evaluate(op, 1);
  const auto key = fx_.reconstruct(aged, enrollment.helper_data);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, enrollment.key);
}

TEST_F(EndToEndTest, KeyStableAtEveryYearlyCheckpoint) {
  RoPuf chip = make_chip_for(fx_, tech_, 1);
  const auto op = chip.nominal_op();
  Xoshiro256 trng(43);
  const Enrollment enrollment = fx_.enroll(chip.evaluate(op, 0), trng);
  for (int year = 1; year <= 10; ++year) {
    chip.age_years(1.0);
    const auto key =
        fx_.reconstruct(chip.evaluate(op, static_cast<std::uint64_t>(year)),
                        enrollment.helper_data);
    ASSERT_TRUE(key.has_value()) << "year " << year;
    EXPECT_EQ(*key, enrollment.key) << "year " << year;
  }
}

TEST_F(EndToEndTest, KeySurvivesModerateTemperatureExcursion) {
  RoPuf chip = make_chip_for(fx_, tech_, 2);
  Xoshiro256 trng(44);
  const Enrollment enrollment = fx_.enroll(chip.evaluate(chip.nominal_op(), 0), trng);
  chip.age_years(5.0);
  OperatingPoint hot = chip.nominal_op();
  hot.temp = celsius(55.0);
  const auto key = fx_.reconstruct(chip.evaluate(hot, 1), enrollment.helper_data);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, enrollment.key);
}

TEST_F(EndToEndTest, DifferentChipsGetDifferentKeys) {
  RoPuf a = make_chip_for(fx_, tech_, 3);
  RoPuf b = make_chip_for(fx_, tech_, 4);
  Xoshiro256 trng(45);
  const Enrollment ea = fx_.enroll(a.evaluate(a.nominal_op(), 0), trng);
  const Enrollment eb = fx_.enroll(b.evaluate(b.nominal_op(), 0), trng);
  EXPECT_NE(ea.key, eb.key);
  // Chip B cannot impersonate chip A even with A's public helper data.
  const auto stolen = fx_.reconstruct(b.evaluate(b.nominal_op(), 1), ea.helper_data);
  EXPECT_TRUE(!stolen.has_value() || *stolen != ea.key);
}

TEST_F(EndToEndTest, ConventionalChipKeyOftenDiesWithLightEcc) {
  // The paper's motivation: at 32 % BER the ARO-sized ECC is hopeless for a
  // conventional chip aged 10 years.
  const int ros = static_cast<int>(2 * fx_.response_bits());
  PufConfig cfg = PufConfig::conventional(ros);
  int failures = 0;
  for (std::uint64_t c = 0; c < 5; ++c) {
    RoPuf chip(tech_, cfg, RngFabric(7).child("chip", c));
    Xoshiro256 trng(50 + c);
    const auto op = chip.nominal_op();
    const Enrollment enrollment = fx_.enroll(chip.evaluate(op, 0), trng);
    chip.age_years(10.0);
    const auto key = fx_.reconstruct(chip.evaluate(op, 1), enrollment.helper_data);
    if (!key.has_value() || *key != enrollment.key) ++failures;
  }
  EXPECT_GE(failures, 4);
}

TEST_F(EndToEndTest, SearchedSchemeMatchesHardcodedScheme) {
  // Keep the hard-coded scheme in sync with what the search would pick for
  // the ARO design's provisioning BER band.
  const auto found = find_min_area_scheme(tech_, 0.12, CodeSearchConstraints{});
  ASSERT_TRUE(found.has_value());
  EXPECT_LE(found->scheme.raw_bits(), scheme().raw_bits() * 2);
}

}  // namespace
}  // namespace aropuf
