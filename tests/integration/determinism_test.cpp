// Reproducibility invariants: every result in EXPERIMENTS.md must regenerate
// bit-exactly from (master seed, config).  These tests pin the properties
// that make that true.
#include <gtest/gtest.h>

#include "puf/ro_puf.hpp"
#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

TEST(DeterminismTest, ChipConstructionIsPure) {
  const TechnologyParams tech = TechnologyParams::cmos90();
  const RngFabric fabric(123);
  const RoPuf a(tech, PufConfig::aro(64), fabric.child("chip", 0));
  const RoPuf b(tech, PufConfig::aro(64), fabric.child("chip", 0));
  for (std::size_t i = 0; i < a.oscillators().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.oscillators()[i].frequency(a.nominal_op()),
                     b.oscillators()[i].frequency(b.nominal_op()));
  }
}

TEST(DeterminismTest, EvaluationOrderDoesNotMatter) {
  const TechnologyParams tech = TechnologyParams::cmos90();
  const RoPuf chip(tech, PufConfig::aro(64), RngFabric(5).child("chip", 0));
  const auto op = chip.nominal_op();
  // Evaluating index 7 first, then 3, equals evaluating 3 then 7: streams
  // are derived from (eval index, bit), not from call order.
  const BitVector r7_first = chip.evaluate(op, 7);
  const BitVector r3_second = chip.evaluate(op, 3);
  const BitVector r3_first = chip.evaluate(op, 3);
  const BitVector r7_second = chip.evaluate(op, 7);
  EXPECT_EQ(r7_first, r7_second);
  EXPECT_EQ(r3_first, r3_second);
}

TEST(DeterminismTest, AgingDoesNotPerturbRngStreams) {
  const TechnologyParams tech = TechnologyParams::cmos90();
  RoPuf chip(tech, PufConfig::aro(64), RngFabric(6).child("chip", 0));
  const auto op = chip.nominal_op();
  const BitVector before = chip.evaluate(op, 9);
  chip.age_years(10.0);
  chip.reset_aging();
  EXPECT_EQ(chip.evaluate(op, 9), before);
}

TEST(DeterminismTest, PopulationsAreIndexStable) {
  // Chip i of an N-chip population equals chip i of an M-chip population:
  // growing a study never silently reshuffles existing dies.
  const TechnologyParams tech = TechnologyParams::cmos90();
  const RngFabric fabric(77);
  const auto small = make_population(tech, PufConfig::aro(64), 3, fabric);
  const auto large = make_population(tech, PufConfig::aro(64), 6, fabric);
  const auto op = small[0].nominal_op();
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].evaluate(op, 0), large[i].evaluate(op, 0));
  }
}

TEST(DeterminismTest, ScenarioResultsAreBitExactAcrossRuns) {
  PopulationConfig pop;
  pop.chips = 6;
  pop.seed = 99;
  const auto u1 = run_uniqueness(pop, PufConfig::conventional(128));
  const auto u2 = run_uniqueness(pop, PufConfig::conventional(128));
  EXPECT_DOUBLE_EQ(u1.uniqueness.stats.mean(), u2.uniqueness.stats.mean());
  EXPECT_DOUBLE_EQ(u1.uniformity.mean(), u2.uniformity.mean());
  EXPECT_DOUBLE_EQ(u1.aliasing.stddev(), u2.aliasing.stddev());
}

TEST(DeterminismTest, DesignsShareSiliconUnderSameFabric) {
  // The conventional vs ARO comparison is paired: built from the same chip
  // fabric, the two designs' RO arrays carry identical process variation
  // (only pairing and stress differ), so fresh noiseless frequencies match.
  const TechnologyParams tech = TechnologyParams::cmos90();
  const RngFabric fabric(31);
  const RoPuf conv(tech, PufConfig::conventional(64), fabric.child("chip", 2));
  const RoPuf aro(tech, PufConfig::aro(64), fabric.child("chip", 2));
  const auto op = conv.nominal_op();
  for (std::size_t i = 0; i < conv.oscillators().size(); ++i) {
    EXPECT_DOUBLE_EQ(conv.oscillators()[i].fresh_frequency(op),
                     aro.oscillators()[i].fresh_frequency(op));
  }
}

}  // namespace
}  // namespace aropuf
