// Failure-injection tests: mis-sized measurement windows, degenerate
// technologies, and hostile operating points must fail loudly or degrade
// the way real hardware does — never crash or silently produce plausible
// nonsense.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/uniqueness.hpp"
#include "puf/ro_puf.hpp"
#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

TEST(FailureInjectionTest, SaturatedCountersDestroyUniqueness) {
  // A window far too long for the counter width saturates every count:
  // all comparisons tie, every response collapses to all-zeros.  The
  // *measurable* symptom is uniqueness ~0 — exactly how the bug presents in
  // the lab.
  TechnologyParams tech = TechnologyParams::cmos90();
  tech.counter_bits = 10;  // max 1023 counts
  PufConfig cfg = PufConfig::aro(64);
  cfg.measurement_window = 1e-3;  // ~1e6 cycles >> 1023
  const RngFabric fabric(3);
  std::vector<BitVector> responses;
  for (int c = 0; c < 6; ++c) {
    const RoPuf chip(tech, cfg, fabric.child("chip", static_cast<std::uint64_t>(c)));
    responses.push_back(chip.evaluate(chip.nominal_op(), 0));
    EXPECT_EQ(responses.back().popcount(), 0U);  // ties resolve to 0
  }
  EXPECT_DOUBLE_EQ(compute_uniqueness(responses).stats.mean(), 0.0);
}

TEST(FailureInjectionTest, TooShortWindowCollapsesBitsIntoTies) {
  // A 20 ns window counts only ~25 cycles, so the percent-level frequency
  // margins are fractions of one count: most pairs quantize to *equal*
  // counts, ties resolve to 0, and the response collapses toward all-zeros
  // (the lab symptom of an undersized gate time: dead uniformity, not
  // noise).
  const TechnologyParams tech = TechnologyParams::cmos90();
  auto ones_fraction = [&tech](Seconds window) {
    PufConfig cfg = PufConfig::aro(256);
    cfg.measurement_window = window;
    const RoPuf chip(tech, cfg, RngFabric(5).child("chip", 0));
    return chip.evaluate(chip.nominal_op(), 0).ones_fraction();
  };
  const double healthy = ones_fraction(20e-6);
  const double starved = ones_fraction(20e-9);
  EXPECT_GT(healthy, 0.35);
  EXPECT_LT(healthy, 0.65);
  EXPECT_LT(starved, 0.25);
}

TEST(FailureInjectionTest, ZeroNoiseTechnologyIsPerfectlyStable) {
  TechnologyParams tech = TechnologyParams::cmos90();
  tech.jitter_cycle_rel = 0.0;
  tech.noise_lowfreq_rel = 0.0;
  const RoPuf chip(tech, PufConfig::aro(128), RngFabric(7).child("chip", 0));
  const auto op = chip.nominal_op();
  const BitVector golden = chip.evaluate(op, 0);
  for (std::uint64_t e = 1; e <= 5; ++e) {
    EXPECT_EQ(chip.evaluate(op, e), golden);
  }
}

TEST(FailureInjectionTest, ZeroMismatchTechnologyHasNoEntropy) {
  // All variation sources off: every chip is identical, uniqueness ~0.
  TechnologyParams tech = TechnologyParams::cmos90();
  tech.sigma_vth_local = 0.0;
  tech.sigma_vth_global = 0.0;
  tech.sigma_vth_spatial = 0.0;
  tech.layout_systematic_amplitude = 0.0;
  tech.jitter_cycle_rel = 0.0;
  tech.noise_lowfreq_rel = 0.0;
  tech.vth_tempco_mismatch_rel = 0.0;
  const RngFabric fabric(9);
  std::vector<BitVector> responses;
  for (int c = 0; c < 4; ++c) {
    const RoPuf chip(tech, PufConfig::aro(64), fabric.child("chip", static_cast<std::uint64_t>(c)));
    responses.push_back(chip.evaluate(chip.nominal_op(), 0));
  }
  EXPECT_DOUBLE_EQ(compute_uniqueness(responses).stats.mean(), 0.0);
}

TEST(FailureInjectionTest, DeepSubthresholdSupplyStaysFiniteAndMonotone) {
  // VDD below Vth: the overdrive clamp keeps frequencies finite (slow) and
  // ordering-based evaluation still functions.
  const TechnologyParams tech = TechnologyParams::cmos90();
  const RoPuf chip(tech, PufConfig::aro(64), RngFabric(11).child("chip", 0));
  OperatingPoint starved{0.3, tech.temp_nominal};
  for (const auto& ro : chip.oscillators()) {
    const double f = ro.frequency(starved);
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, ro.frequency(chip.nominal_op()));
  }
  EXPECT_EQ(chip.noiseless_response(starved).size(), chip.response_bits());
}

TEST(FailureInjectionTest, CryogenicToOvenSweepNeverThrows) {
  PopulationConfig pop;
  pop.chips = 3;
  pop.seed = 13;
  const double temps[] = {-150.0, -40.0, 25.0, 200.0};
  EXPECT_NO_THROW({
    const auto sweep = run_temperature_sweep(pop, PufConfig::aro(64), temps);
    EXPECT_EQ(sweep.size(), 4U);
  });
}

TEST(FailureInjectionTest, CenturyOfAgingSaturatesGracefully) {
  RoPuf chip(TechnologyParams::cmos90(), PufConfig::conventional(64),
             RngFabric(17).child("chip", 0));
  const auto op = chip.nominal_op();
  chip.age_years(100.0);
  const double f = chip.oscillators()[0].frequency(op);
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(f, 0.0);
  // Flips approach (but cannot meaningfully exceed) the random-guess bound.
  RoPuf fresh(TechnologyParams::cmos90(), PufConfig::conventional(64),
              RngFabric(17).child("chip", 0));
  const double hd = fractional_hamming_distance(fresh.evaluate(op, 0), chip.evaluate(op, 1));
  EXPECT_LT(hd, 0.65);
}

}  // namespace
}  // namespace aropuf
