#include "metrics/reliability.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace aropuf {
namespace {

TEST(ReliabilityTest, PerfectMeasurementsGiveFullReliability) {
  const BitVector golden = BitVector::from_string("10110100");
  const std::vector<BitVector> meas(5, golden);
  const auto result = compute_reliability(golden, meas);
  EXPECT_DOUBLE_EQ(result.stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.reliability_percent(), 100.0);
  EXPECT_DOUBLE_EQ(result.flip_percent(), 0.0);
}

TEST(ReliabilityTest, KnownFlipFraction) {
  const BitVector golden = BitVector::from_string("00000000");
  std::vector<BitVector> meas{BitVector::from_string("00000011"),   // 2/8
                              BitVector::from_string("00001111")};  // 4/8
  const auto result = compute_reliability(golden, meas);
  EXPECT_NEAR(result.stats.mean(), 0.375, 1e-12);
  EXPECT_NEAR(result.flip_percent(), 37.5, 1e-9);
  EXPECT_NEAR(result.reliability_percent(), 62.5, 1e-9);
}

TEST(ReliabilityTest, TracksWorstMeasurement) {
  const BitVector golden = BitVector::from_string("0000");
  std::vector<BitVector> meas{BitVector::from_string("0000"),
                              BitVector::from_string("1111")};
  const auto result = compute_reliability(golden, meas);
  EXPECT_DOUBLE_EQ(result.stats.max(), 1.0);
  EXPECT_DOUBLE_EQ(result.stats.min(), 0.0);
}

TEST(ReliabilityTest, RejectsEmptyMeasurementSet) {
  const BitVector golden(8);
  const std::vector<BitVector> none;
  EXPECT_THROW((void)compute_reliability(golden, none), std::invalid_argument);
}

TEST(PerBitFlipRateTest, IdentifiesUnstableBits) {
  const BitVector golden = BitVector::from_string("0000");
  std::vector<BitVector> meas{BitVector::from_string("1000"),
                              BitVector::from_string("1000"),
                              BitVector::from_string("1100"),
                              BitVector::from_string("0000")};
  const auto rate = per_bit_flip_rate(golden, meas);
  ASSERT_EQ(rate.size(), 4U);
  EXPECT_DOUBLE_EQ(rate[0], 0.75);
  EXPECT_DOUBLE_EQ(rate[1], 0.25);
  EXPECT_DOUBLE_EQ(rate[2], 0.0);
  EXPECT_DOUBLE_EQ(rate[3], 0.0);
}

TEST(PerBitFlipRateTest, RejectsLengthMismatch) {
  const BitVector golden(4);
  std::vector<BitVector> meas{BitVector(5)};
  EXPECT_THROW(per_bit_flip_rate(golden, meas), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
