#include "metrics/entropy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel.hpp"

namespace aropuf {
namespace {

std::vector<BitVector> population(int chips, std::size_t bits, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<BitVector> out;
  for (int c = 0; c < chips; ++c) {
    BitVector r(bits);
    for (std::size_t i = 0; i < bits; ++i) r.set(i, rng.bernoulli(p));
    out.push_back(std::move(r));
  }
  return out;
}

TEST(McvEntropyTest, NearOneForUnbiasedBits) {
  const auto pop = population(400, 128, 0.5, 1);
  const double h = mcv_min_entropy(pop);
  // The 99% confidence adjustment on p_max costs ~0.2 bit at 400 chips.
  EXPECT_GT(h, 0.72);
  EXPECT_LE(h, 1.0);
}

TEST(McvEntropyTest, DropsWithBias) {
  const auto fair = population(400, 128, 0.5, 2);
  const auto biased = population(400, 128, 0.8, 3);
  EXPECT_LT(mcv_min_entropy(biased), mcv_min_entropy(fair));
  // p = 0.8: ideal -log2(0.8) = 0.32, minus the confidence haircut.
  EXPECT_GT(mcv_min_entropy(biased), 0.15);
  EXPECT_LT(mcv_min_entropy(biased), 0.35);
}

TEST(McvEntropyTest, ZeroForConstantBits) {
  std::vector<BitVector> constant(50, BitVector::from_string("1111111111111111"));
  EXPECT_NEAR(mcv_min_entropy(constant), 0.0, 1e-9);
}

TEST(CollisionEntropyTest, SqrtBoundCeilingForRandom) {
  // The p_max <= sqrt(q) bound saturates at half a bit per bit for an ideal
  // source (documented conservatism); the estimator's job is the other end.
  const auto pop = population(300, 128, 0.5, 4);
  const double h = collision_min_entropy(pop);
  EXPECT_GT(h, 0.44);
  EXPECT_LE(h, 0.51);
}

TEST(CollisionEntropyTest, CollapsesForClonedChips) {
  // Every chip identical: collisions are certain; entropy ~ 0.
  std::vector<BitVector> clones(100, population(1, 128, 0.5, 5)[0]);
  EXPECT_LT(collision_min_entropy(clones), 0.05);
}

TEST(CollisionEntropyTest, WordSizeValidation) {
  const auto pop = population(10, 64, 0.5, 6);
  EXPECT_THROW((void)collision_min_entropy(pop, 0), std::invalid_argument);
  EXPECT_THROW((void)collision_min_entropy(pop, 25), std::invalid_argument);
  EXPECT_THROW((void)collision_min_entropy(pop, 65), std::invalid_argument);
}

TEST(MarkovEntropyTest, NearOneForIid) {
  const auto pop = population(100, 256, 0.5, 7);
  const double h = markov_min_entropy(pop);
  EXPECT_GT(h, 0.85);
  EXPECT_LE(h, 1.0);
}

TEST(MarkovEntropyTest, DetectsSerialDependence) {
  // Strongly sticky source: P(next == current) = 0.9 but globally balanced,
  // so MCV sees nothing while Markov collapses.
  Xoshiro256 rng(8);
  std::vector<BitVector> pop;
  for (int c = 0; c < 100; ++c) {
    BitVector r(256);
    bool bit = rng.bernoulli(0.5);
    for (std::size_t i = 0; i < r.size(); ++i) {
      r.set(i, bit);
      if (rng.bernoulli(0.1)) bit = !bit;
    }
    pop.push_back(std::move(r));
  }
  const double markov = markov_min_entropy(pop);
  const double mcv = mcv_min_entropy(pop);
  EXPECT_LT(markov, 0.35);  // ~ -log2(0.9) = 0.152 plus confidence slack
  EXPECT_GT(mcv, 0.5);
}

TEST(MinEntropyEstimateTest, TakesTheMinimum) {
  const auto pop = population(200, 128, 0.5, 9);
  const double combined = min_entropy_estimate(pop);
  EXPECT_LE(combined, mcv_min_entropy(pop) + 1e-12);
  EXPECT_LE(combined, collision_min_entropy(pop) + 1e-12);
  EXPECT_LE(combined, markov_min_entropy(pop) + 1e-12);
}

TEST(MinEntropyEstimateTest, RejectsDegenerateInput) {
  std::vector<BitVector> one{BitVector(16)};
  EXPECT_THROW((void)mcv_min_entropy(one), std::invalid_argument);
  std::vector<BitVector> empty;
  EXPECT_THROW((void)markov_min_entropy(empty), std::invalid_argument);
}

// The estimators parallelize over bit positions / words / chips; their
// partial tallies are exact integers, so every estimate must be bit-identical
// at any thread count.
TEST(MinEntropyEstimateTest, EstimatesAreThreadCountInvariant) {
  const auto pop = population(120, 192, 0.55, 11);
  struct Guard {
    ~Guard() { ParallelExecutor::set_global_thread_count(0); }
  } guard;

  ParallelExecutor::set_global_thread_count(1);
  const double mcv = mcv_min_entropy(pop);
  const double coll = collision_min_entropy(pop);
  const double markov = markov_min_entropy(pop);
  for (const int threads : {2, 8}) {
    ParallelExecutor::set_global_thread_count(threads);
    EXPECT_EQ(mcv_min_entropy(pop), mcv) << "threads=" << threads;
    EXPECT_EQ(collision_min_entropy(pop), coll) << "threads=" << threads;
    EXPECT_EQ(markov_min_entropy(pop), markov) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace aropuf
