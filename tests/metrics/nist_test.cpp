#include "metrics/nist.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel.hpp"

namespace aropuf {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

BitVector biased_bits(std::size_t n, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(p));
  return v;
}

// --- Reference vector from NIST SP 800-22 §2.1.8 (monobit example):
// the first 100 binary digits of e have p-value 0.699... for frequency.
TEST(NistMonobitTest, Sp80022ExampleEpsilon) {
  const std::string e_bits =
      "1100100100001111110110101010001000100001011010001100001000110100"
      "110001001100011001100010100010111000";
  const auto r = nist_monobit(BitVector::from_string(e_bits));
  ASSERT_TRUE(r.applicable);
  EXPECT_NEAR(r.p_value, 0.109599, 1e-4);
}

TEST(NistMonobitTest, PassesRandomFailsBiased) {
  EXPECT_TRUE(nist_monobit(random_bits(4096, 1)).pass());
  EXPECT_FALSE(nist_monobit(biased_bits(4096, 0.7, 2)).pass());
}

TEST(NistMonobitTest, ShortSequenceNotApplicable) {
  const auto r = nist_monobit(BitVector(50));
  EXPECT_FALSE(r.applicable);
  EXPECT_TRUE(r.pass());
}

TEST(NistBlockFrequencyTest, PassesRandomFailsStructured) {
  EXPECT_TRUE(nist_block_frequency(random_bits(4096, 3)).pass());
  // Alternating blocks of ones and zeros: each block is all-0 or all-1.
  BitVector structured(4096);
  for (std::size_t i = 0; i < structured.size(); ++i) structured.set(i, (i / 16) % 2 == 0);
  EXPECT_FALSE(nist_block_frequency(structured, 16).pass());
}

TEST(NistRunsTest, Sp80022StyleBehaviour) {
  EXPECT_TRUE(nist_runs(random_bits(4096, 5)).pass());
  // Perfect alternation has twice the expected number of runs.
  BitVector alternating(4096);
  for (std::size_t i = 0; i < alternating.size(); i += 2) alternating.set(i, true);
  EXPECT_FALSE(nist_runs(alternating).pass());
}

TEST(NistRunsTest, FailsWhenMonobitPrerequisiteBroken) {
  const auto r = nist_runs(biased_bits(4096, 0.8, 6));
  ASSERT_TRUE(r.applicable);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(NistLongestRunTest, PassesRandomFailsClumped) {
  EXPECT_TRUE(nist_longest_run(random_bits(4096, 7)).pass());
  // Long solid runs of ones in every block.
  BitVector clumped(4096);
  for (std::size_t i = 0; i < clumped.size(); ++i) clumped.set(i, (i % 8) < 6);
  EXPECT_FALSE(nist_longest_run(clumped).pass());
}

TEST(NistSerialTest, PassesRandomFailsPeriodic) {
  EXPECT_TRUE(nist_serial(random_bits(4096, 9)).pass());
  BitVector periodic(4096);
  for (std::size_t i = 0; i < periodic.size(); ++i) periodic.set(i, i % 3 == 0);
  EXPECT_FALSE(nist_serial(periodic).pass());
}

TEST(NistCusumTest, PassesRandomFailsDrifting) {
  EXPECT_TRUE(nist_cumulative_sums(random_bits(4096, 11)).pass());
  // First half mostly ones, second half mostly zeros: large excursion.
  BitVector drift(4096);
  for (std::size_t i = 0; i < 2048; ++i) drift.set(i, true);
  EXPECT_FALSE(nist_cumulative_sums(drift).pass());
}

TEST(NistCusumTest, Sp80022ShortExample) {
  // SP 800-22 §2.13.8: epsilon = 1011010111, z = 4, p-value = 0.4116588.
  // Our implementation requires n >= 100, so replicate the structure check
  // with the documented formula on a longer random sequence instead; here we
  // verify the short input is flagged not-applicable.
  const auto r = nist_cumulative_sums(BitVector::from_string("1011010111"));
  EXPECT_FALSE(r.applicable);
}

TEST(NistApproximateEntropyTest, PassesRandomFailsRepetitive) {
  EXPECT_TRUE(nist_approximate_entropy(random_bits(4096, 13)).pass());
  BitVector repetitive(4096);
  for (std::size_t i = 0; i < repetitive.size(); ++i) repetitive.set(i, (i % 4) < 2);
  EXPECT_FALSE(nist_approximate_entropy(repetitive).pass());
}

TEST(NistAutocorrelationTest, PassesRandomFailsPeriodic) {
  EXPECT_TRUE(nist_autocorrelation(random_bits(4096, 19)).pass());
  // Period-7 structure: lag 7 disagrees on zero positions.
  BitVector periodic(4096);
  for (std::size_t i = 0; i < periodic.size(); ++i) periodic.set(i, i % 7 == 0);
  EXPECT_FALSE(nist_autocorrelation(periodic).pass());
}

TEST(NistAutocorrelationTest, ShortSequenceNotApplicable) {
  EXPECT_FALSE(nist_autocorrelation(BitVector(50)).applicable);
}

TEST(NistAutocorrelationTest, LagCountDefaultsToHalfLength) {
  const auto r = nist_autocorrelation(random_bits(1000, 21));
  EXPECT_EQ(r.name, "autocorrelation (lags=500)");
}

// The lag battery runs on the Monte Carlo engine; the p-value must be
// bit-identical at any thread count.
TEST(NistAutocorrelationTest, BitIdenticalAcrossThreadCounts) {
  const BitVector bits = random_bits(4096, 23);
  ParallelExecutor::set_global_thread_count(1);
  const auto serial = nist_autocorrelation(bits);
  for (const int threads : {2, 8}) {
    ParallelExecutor::set_global_thread_count(threads);
    const auto parallel = nist_autocorrelation(bits);
    EXPECT_DOUBLE_EQ(parallel.p_value, serial.p_value) << threads;
    EXPECT_EQ(parallel.name, serial.name) << threads;
  }
  ParallelExecutor::set_global_thread_count(0);
}

TEST(NistBatteryTest, RunsAllEightTests) {
  const auto results = nist_battery(random_bits(4096, 15));
  EXPECT_EQ(results.size(), 8U);
  int passed = 0;
  for (const auto& r : results) {
    if (r.pass()) ++passed;
  }
  EXPECT_GE(passed, 7);  // a true random sequence passes essentially all
}

TEST(NistBatteryTest, PValuesAreProbabilities) {
  for (const auto& r : nist_battery(random_bits(2048, 17))) {
    EXPECT_GE(r.p_value, 0.0) << r.name;
    EXPECT_LE(r.p_value, 1.0) << r.name;
  }
}

// p-value uniformity property: over many random sequences, each test should
// reject at close to its alpha level.  One battery per trial, checked for
// every test at once (the autocorrelation member scans n/2 lags, so battery
// runs are no longer cheap enough to repeat per test index).
TEST(NistFalsePositiveRateTest, RejectionRateNearAlpha) {
  constexpr int kTrials = 200;
  std::vector<int> rejects(8, 0);
  std::vector<std::string> names(8);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto results =
        nist_battery(random_bits(2048, 1000 + static_cast<std::uint64_t>(trial)));
    ASSERT_EQ(results.size(), rejects.size());
    for (std::size_t t = 0; t < results.size(); ++t) {
      names[t] = results[t].name;
      if (!results[t].pass(0.01)) ++rejects[t];
    }
  }
  // alpha = 1 %: expect <= ~5 % rejections allowing Monte Carlo slack.
  for (std::size_t t = 0; t < rejects.size(); ++t) {
    EXPECT_LE(rejects[t], 10) << names[t];
  }
}

}  // namespace
}  // namespace aropuf
