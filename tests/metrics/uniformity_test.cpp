#include "metrics/uniformity.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace aropuf {
namespace {

TEST(UniformityTest, CountsOnesFraction) {
  EXPECT_DOUBLE_EQ(uniformity(BitVector::from_string("1100")), 0.5);
  EXPECT_DOUBLE_EQ(uniformity(BitVector::from_string("1111")), 1.0);
  EXPECT_DOUBLE_EQ(uniformity(BitVector::from_string("0000")), 0.0);
}

TEST(UniformityTest, RejectsEmptyResponse) {
  EXPECT_THROW((void)uniformity(BitVector()), std::invalid_argument);
}

TEST(UniformityStatsTest, AveragesOverPopulation) {
  const std::vector<BitVector> responses{BitVector::from_string("1100"),
                                         BitVector::from_string("1110"),
                                         BitVector::from_string("1000")};
  const auto stats = uniformity_stats(responses);
  EXPECT_EQ(stats.count(), 3U);
  EXPECT_NEAR(stats.mean(), 0.5, 1e-12);
}

TEST(BitAliasingTest, PerPositionFractions) {
  const std::vector<BitVector> responses{BitVector::from_string("10"),
                                         BitVector::from_string("11"),
                                         BitVector::from_string("10"),
                                         BitVector::from_string("00")};
  const auto aliasing = bit_aliasing(responses);
  ASSERT_EQ(aliasing.size(), 2U);
  EXPECT_DOUBLE_EQ(aliasing[0], 0.75);
  EXPECT_DOUBLE_EQ(aliasing[1], 0.25);
}

TEST(BitAliasingTest, StatsSummarizeDeviation) {
  const std::vector<BitVector> responses{BitVector::from_string("10"),
                                         BitVector::from_string("10")};
  const auto stats = bit_aliasing_stats(responses);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.5);
}

TEST(BitAliasingTest, RejectsMismatchedLengths) {
  const std::vector<BitVector> responses{BitVector(4), BitVector(5)};
  EXPECT_THROW(bit_aliasing(responses), std::invalid_argument);
}

TEST(AutocorrelationTest, PerfectAlternationIsAnticorrelated) {
  const BitVector v = BitVector::from_string("10101010");
  EXPECT_DOUBLE_EQ(autocorrelation(v, 1), -1.0);
  EXPECT_DOUBLE_EQ(autocorrelation(v, 2), 1.0);
}

TEST(AutocorrelationTest, ConstantSequenceFullyCorrelated) {
  const BitVector v = BitVector::from_string("11111111");
  EXPECT_DOUBLE_EQ(autocorrelation(v, 3), 1.0);
}

TEST(AutocorrelationTest, LagBoundsEnforced) {
  const BitVector v(8);
  EXPECT_THROW((void)autocorrelation(v, 0), std::invalid_argument);
  EXPECT_THROW((void)autocorrelation(v, 8), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
