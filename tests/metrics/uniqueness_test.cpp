#include "metrics/uniqueness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel.hpp"

namespace aropuf {
namespace {

TEST(UniquenessTest, TwoIdenticalChipsHaveZeroHd) {
  const std::vector<BitVector> responses{BitVector::from_string("1010"),
                                         BitVector::from_string("1010")};
  const auto result = compute_uniqueness(responses);
  EXPECT_EQ(result.stats.count(), 1U);
  EXPECT_DOUBLE_EQ(result.stats.mean(), 0.0);
}

TEST(UniquenessTest, ComplementaryChipsHaveFullHd) {
  const std::vector<BitVector> responses{BitVector::from_string("0000"),
                                         BitVector::from_string("1111")};
  EXPECT_DOUBLE_EQ(compute_uniqueness(responses).stats.mean(), 1.0);
}

TEST(UniquenessTest, PairCountIsChooseTwo) {
  std::vector<BitVector> responses(10, BitVector(8));
  EXPECT_EQ(compute_uniqueness(responses).stats.count(), 45U);
}

TEST(UniquenessTest, KnownMixedExample) {
  // HD(a,b)=1/4, HD(a,c)=3/4, HD(b,c)=4/4: mean = 2/3.
  const std::vector<BitVector> responses{BitVector::from_string("0000"),
                                         BitVector::from_string("0001"),
                                         BitVector::from_string("1110")};
  EXPECT_NEAR(compute_uniqueness(responses).stats.mean(), 2.0 / 3.0, 1e-12);
}

TEST(UniquenessTest, RandomResponsesNearHalf) {
  Xoshiro256 rng(4);
  std::vector<BitVector> responses;
  for (int c = 0; c < 30; ++c) {
    BitVector r(512);
    for (std::size_t i = 0; i < r.size(); ++i) r.set(i, rng.bernoulli(0.5));
    responses.push_back(std::move(r));
  }
  const auto result = compute_uniqueness(responses);
  EXPECT_NEAR(result.stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(result.mean_percent(), 50.0, 2.0);
}

TEST(UniquenessTest, HistogramAccumulatesAllPairs) {
  std::vector<BitVector> responses(5, BitVector(16));
  const auto result = compute_uniqueness(responses);
  EXPECT_EQ(result.histogram.total(), 10U);
}

// The flattened pair loop runs on the Monte Carlo engine; mean/variance/
// min/max must be bit-identical at any thread count (same accumulation
// order as the serial (i, j) loop).
TEST(UniquenessTest, BitIdenticalAcrossThreadCounts) {
  Xoshiro256 rng(99);
  std::vector<BitVector> responses;
  for (int c = 0; c < 23; ++c) {  // odd count: uneven final chunk
    BitVector r(256);
    for (std::size_t i = 0; i < r.size(); ++i) r.set(i, rng.bernoulli(0.5));
    responses.push_back(std::move(r));
  }
  ParallelExecutor::set_global_thread_count(1);
  const auto serial = compute_uniqueness(responses);
  for (const int threads : {2, 8}) {
    ParallelExecutor::set_global_thread_count(threads);
    const auto parallel = compute_uniqueness(responses);
    EXPECT_EQ(parallel.stats.count(), serial.stats.count()) << threads;
    EXPECT_DOUBLE_EQ(parallel.stats.mean(), serial.stats.mean()) << threads;
    EXPECT_DOUBLE_EQ(parallel.stats.variance(), serial.stats.variance()) << threads;
    EXPECT_DOUBLE_EQ(parallel.stats.min(), serial.stats.min()) << threads;
    EXPECT_DOUBLE_EQ(parallel.stats.max(), serial.stats.max()) << threads;
  }
  ParallelExecutor::set_global_thread_count(0);
}

TEST(UniquenessTest, RejectsDegenerateInputs) {
  std::vector<BitVector> one{BitVector(8)};
  EXPECT_THROW(compute_uniqueness(one), std::invalid_argument);
  std::vector<BitVector> mismatched{BitVector(8), BitVector(9)};
  EXPECT_THROW(compute_uniqueness(mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
