#include "telemetry/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/statistics.hpp"
#include "telemetry/manifest.hpp"

namespace aropuf::telemetry {
namespace {

/// Minimal well-formed shard manifest: the structural fields validate_shard
/// requires plus empty metric/result sections tests fill in as needed.
JsonValue make_shard_doc(int index, int count, std::int64_t chip_lo, std::int64_t chip_hi) {
  JsonValue::Object doc;
  doc["schema"] = JsonValue(kManifestSchema);
  doc["schema_version"] = JsonValue(kManifestSchemaVersion);
  doc["run"] = JsonValue("test_run");
  doc["git_sha"] = JsonValue("abc123");
  doc["kernel_backend"] = JsonValue("batched");
  doc["threads"] = JsonValue(1);
  JsonValue::Object config;
  config["chips"] = JsonValue(static_cast<std::uint64_t>(chip_hi > chip_lo ? 8 : 0));
  config["seed"] = JsonValue(2014);
  doc["config"] = JsonValue(std::move(config));
  JsonValue::Object build;
  build["type"] = JsonValue("Release");
  doc["build"] = JsonValue(std::move(build));
  JsonValue::Object shard;
  shard["index"] = JsonValue(index);
  shard["count"] = JsonValue(count);
  shard["chip_lo"] = JsonValue(static_cast<std::uint64_t>(chip_lo));
  shard["chip_hi"] = JsonValue(static_cast<std::uint64_t>(chip_hi));
  doc["shard"] = JsonValue(std::move(shard));
  JsonValue::Object metrics;
  metrics["counters"] = JsonValue(JsonValue::Object{});
  metrics["gauges"] = JsonValue(JsonValue::Object{});
  metrics["histograms"] = JsonValue(JsonValue::Object{});
  metrics["shard"] = JsonValue(index);
  doc["metrics"] = JsonValue(std::move(metrics));
  doc["stages"] = JsonValue(JsonValue::Array{});
  JsonValue::Object results;
  results["samples"] = JsonValue(JsonValue::Object{});
  results["tallies"] = JsonValue(JsonValue::Object{});
  doc["results"] = JsonValue(std::move(results));
  return JsonValue(std::move(doc));
}

void add_sample_series(JsonValue& doc, const std::string& name, std::int64_t offset,
                       std::int64_t total, const std::vector<double>& values) {
  JsonValue::Object series;
  series["offset"] = JsonValue(static_cast<std::uint64_t>(offset));
  series["total"] = JsonValue(static_cast<std::uint64_t>(total));
  series["hist_lo"] = JsonValue(0.0);
  series["hist_hi"] = JsonValue(1.0);
  series["hist_bins"] = JsonValue(10);
  JsonValue::Array arr;
  for (const double v : values) arr.emplace_back(v);
  series["values"] = JsonValue(std::move(arr));
  doc.as_object()["results"].as_object()["samples"].as_object()[name] =
      JsonValue(std::move(series));
}

void add_tally(JsonValue& doc, const std::string& name, std::int64_t offset, std::int64_t total,
               const std::vector<std::uint64_t>& raw_values, std::uint64_t denom) {
  JsonValue::Object tally;
  tally["offset"] = JsonValue(static_cast<std::uint64_t>(offset));
  tally["total"] = JsonValue(static_cast<std::uint64_t>(total));
  tally["denom"] = JsonValue(denom);
  std::uint64_t sum = 0;
  std::uint64_t sum_sq = 0;
  std::uint64_t min = raw_values.empty() ? 0 : raw_values.front();
  std::uint64_t max = min;
  for (const std::uint64_t v : raw_values) {
    sum += v;
    sum_sq += v * v;
    min = std::min(min, v);
    max = std::max(max, v);
  }
  tally["count"] = JsonValue(static_cast<std::uint64_t>(raw_values.size()));
  tally["sum"] = JsonValue(sum);
  tally["sum_sq"] = JsonValue(sum_sq);
  tally["min"] = JsonValue(min);
  tally["max"] = JsonValue(max);
  tally["hist_lo"] = JsonValue(0.0);
  tally["hist_hi"] = JsonValue(1.0);
  JsonValue::Array bins;
  for (int b = 0; b < 4; ++b) bins.emplace_back(0);
  tally["bins"] = JsonValue(std::move(bins));
  doc.as_object()["results"].as_object()["tallies"].as_object()[name] =
      JsonValue(std::move(tally));
}

void set_metric(JsonValue& doc, const char* kind, const std::string& name, JsonValue value) {
  doc.as_object()["metrics"].as_object()[kind].as_object()[name] = std::move(value);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "aropuf_aggregate_" + name;
}

TEST(AggregateTest, MergeIsIndependentOfManifestOrder) {
  std::vector<ShardManifest> forward;
  std::vector<ShardManifest> shuffled;
  const std::vector<std::vector<double>> chunks = {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
  for (int k = 0; k < 3; ++k) {
    JsonValue doc = make_shard_doc(k, 3, 2 * k, 2 * k + 2);
    add_sample_series(doc, "series", 2 * k, 6, chunks[static_cast<std::size_t>(k)]);
    forward.push_back(wrap_shard_manifest(doc));
    shuffled.push_back(wrap_shard_manifest(std::move(doc)));
  }
  std::swap(shuffled[0], shuffled[2]);
  std::swap(shuffled[1], shuffled[2]);

  const AggregateResult a = aggregate_shards(std::move(forward));
  const AggregateResult b = aggregate_shards(std::move(shuffled));
  // created_unix_ms differs between the two calls; everything else must not.
  for (const char* key : {"results", "shards", "metrics", "config", "conflicts"}) {
    EXPECT_EQ(a.manifest.at(key).dump(), b.manifest.at(key).dump()) << key;
  }
}

TEST(AggregateTest, SampleMergeEqualsSerialReduction) {
  const std::vector<double> all = {0.11, 0.92, 0.37, 0.58, 0.21, 0.76, 0.49};
  std::vector<ShardManifest> shards;
  // Uneven split: [0,3), [3,4), [4,7).
  const std::vector<std::pair<int, int>> ranges = {{0, 3}, {3, 4}, {4, 7}};
  for (int k = 0; k < 3; ++k) {
    const auto [lo, hi] = ranges[static_cast<std::size_t>(k)];
    JsonValue doc = make_shard_doc(k, 3, lo, hi);
    add_sample_series(doc, "s", lo, static_cast<std::int64_t>(all.size()),
                      {all.begin() + lo, all.begin() + hi});
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  const AggregateResult merged = aggregate_shards(std::move(shards));

  RunningStats serial;
  for (const double v : all) serial.add(v);
  const JsonValue& s = merged.manifest.at("results").at("samples").at("s");
  // Bit-identical, not approximately equal: the merge re-runs the exact
  // serial accumulation a single process would perform.
  EXPECT_EQ(s.at("mean").as_number(), serial.mean());
  EXPECT_EQ(s.at("m2").as_number(), serial.m2());
  EXPECT_EQ(s.at("min").as_number(), serial.min());
  EXPECT_EQ(s.at("max").as_number(), serial.max());
  EXPECT_EQ(static_cast<std::size_t>(s.at("count").as_number()), all.size());
}

TEST(AggregateTest, SampleSeriesWithGapThrows) {
  std::vector<ShardManifest> shards;
  JsonValue a = make_shard_doc(0, 2, 0, 2);
  add_sample_series(a, "s", 0, 5, {0.1, 0.2});
  JsonValue b = make_shard_doc(1, 2, 2, 5);
  add_sample_series(b, "s", 3, 5, {0.3, 0.4});  // gap: sample 2 missing
  shards.push_back(wrap_shard_manifest(std::move(a)));
  shards.push_back(wrap_shard_manifest(std::move(b)));
  EXPECT_THROW(aggregate_shards(std::move(shards)), std::runtime_error);
}

TEST(AggregateTest, TallyMergeIsExact) {
  const std::vector<std::uint64_t> lo_half = {3, 7, 5};
  const std::vector<std::uint64_t> hi_half = {2, 9};
  std::vector<ShardManifest> shards;
  JsonValue a = make_shard_doc(0, 2, 0, 4);
  add_tally(a, "t", 0, 5, lo_half, /*denom=*/16);
  JsonValue b = make_shard_doc(1, 2, 4, 8);
  add_tally(b, "t", 3, 5, hi_half, /*denom=*/16);
  shards.push_back(wrap_shard_manifest(std::move(a)));
  shards.push_back(wrap_shard_manifest(std::move(b)));
  const AggregateResult merged = aggregate_shards(std::move(shards));

  const JsonValue& t = merged.manifest.at("results").at("tallies").at("t");
  EXPECT_EQ(t.at("count").as_number(), 5.0);
  EXPECT_EQ(t.at("sum").as_number(), 26.0);
  EXPECT_EQ(t.at("sum_sq").as_number(), 168.0);
  EXPECT_EQ(t.at("min").as_number(), 2.0 / 16.0);
  EXPECT_EQ(t.at("max").as_number(), 9.0 / 16.0);
  EXPECT_EQ(t.at("mean").as_number(), (26.0 / 5.0) / 16.0);
}

TEST(AggregateTest, EmptyTallyPieceDoesNotPolluteMinMax) {
  std::vector<ShardManifest> shards;
  JsonValue a = make_shard_doc(0, 2, 0, 4);
  add_tally(a, "t", 0, 3, {5, 6, 7}, /*denom=*/8);
  JsonValue b = make_shard_doc(1, 2, 4, 8);
  add_tally(b, "t", 3, 3, {}, /*denom=*/8);  // empty pair range
  shards.push_back(wrap_shard_manifest(std::move(a)));
  shards.push_back(wrap_shard_manifest(std::move(b)));
  const AggregateResult merged = aggregate_shards(std::move(shards));
  const JsonValue& t = merged.manifest.at("results").at("tallies").at("t");
  EXPECT_EQ(t.at("min").as_number(), 5.0 / 8.0);  // not dragged to 0 by the empty piece
  EXPECT_EQ(t.at("max").as_number(), 7.0 / 8.0);
}

TEST(AggregateTest, CountersSumAcrossShards) {
  std::vector<ShardManifest> shards;
  for (int k = 0; k < 2; ++k) {
    JsonValue doc = make_shard_doc(k, 2, 4 * k, 4 * k + 4);
    set_metric(doc, "counters", "study.pair_hds", JsonValue(100 + k));
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  const AggregateResult merged = aggregate_shards(std::move(shards));
  EXPECT_EQ(merged.manifest.at("metrics").at("counters").at("study.pair_hds").as_number(), 201.0);
}

TEST(AggregateTest, GaugesResolveByPolicyAndRetainPerShardValues) {
  std::vector<ShardManifest> shards;
  const double values[3] = {5.0, 11.0, 7.0};
  for (int k = 0; k < 3; ++k) {
    JsonValue doc = make_shard_doc(k, 3, 2 * k, 2 * k + 2);
    set_metric(doc, "gauges", "queue.depth", JsonValue(values[k]));
    set_metric(doc, "gauges", "phase.last", JsonValue(static_cast<double>(k * 10)));
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  const AggregateResult merged = aggregate_shards(std::move(shards));
  const JsonValue& gauges = merged.manifest.at("metrics").at("gauges");

  const JsonValue& depth = gauges.at("queue.depth");
  EXPECT_EQ(depth.at("policy").as_string(), "max");
  EXPECT_EQ(depth.at("value").as_number(), 11.0);  // max, never the average (7.67)
  EXPECT_EQ(depth.at("per_shard").at("0").as_number(), 5.0);
  EXPECT_EQ(depth.at("per_shard").at("1").as_number(), 11.0);
  EXPECT_EQ(depth.at("per_shard").at("2").as_number(), 7.0);

  const JsonValue& phase = gauges.at("phase.last");
  EXPECT_EQ(phase.at("policy").as_string(), "last");
  EXPECT_EQ(phase.at("value").as_number(), 20.0);  // highest shard index wins
}

JsonValue make_profile(const std::string& mode, double peak_rss_kib,
                       const std::string& reason, double cycles = 0.0,
                       double instructions = 0.0) {
  JsonValue::Object profile;
  profile["mode"] = JsonValue(mode);
  profile["fallback_reason"] = JsonValue(reason);
  profile["peak_rss_kib"] = JsonValue(peak_rss_kib);
  if (cycles > 0.0) {
    JsonValue::Object counters;
    counters["cycles"] = JsonValue(cycles);
    counters["instructions"] = JsonValue(instructions);
    counters["task_clock_ms"] = JsonValue(1.0);
    counters["ipc"] = JsonValue(instructions / cycles);
    profile["counters"] = JsonValue(std::move(counters));
  }
  return JsonValue(std::move(profile));
}

TEST(AggregateTest, ProfilesMergeAcrossShards) {
  std::vector<ShardManifest> shards;
  for (int k = 0; k < 2; ++k) {
    JsonValue doc = make_shard_doc(k, 2, 4 * k, 4 * k + 4);
    doc.as_object()["profile"] =
        make_profile("counters", k == 0 ? 5000.0 : 7000.0, "",
                     /*cycles=*/1000.0 * (k + 1), /*instructions=*/2000.0 * (k + 1));
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  const AggregateResult merged = aggregate_shards(std::move(shards));
  const auto& profile = merged.manifest.as_object().at("profile").as_object();
  EXPECT_EQ(profile.at("mode").as_string(), "counters");
  // Peak RSS takes the max shard, not a sum: shards are concurrent processes.
  EXPECT_DOUBLE_EQ(profile.at("peak_rss_kib").as_number(), 7000.0);
  EXPECT_TRUE(profile.at("fallback_reasons").as_array().empty());
  const auto& counters = profile.at("counters").as_object();
  EXPECT_DOUBLE_EQ(counters.at("cycles").as_number(), 3000.0);
  EXPECT_DOUBLE_EQ(counters.at("instructions").as_number(), 6000.0);
  // The merged IPC must come from the summed tallies, not from averaging
  // per-shard ratios (those weigh shards equally regardless of work done).
  EXPECT_DOUBLE_EQ(counters.at("ipc").as_number(), 2.0);
  EXPECT_EQ(profile.at("per_shard").as_object().size(), 2U);
}

TEST(AggregateTest, MixedProfileModesAreReportedAsMixed) {
  std::vector<ShardManifest> shards;
  JsonValue a = make_shard_doc(0, 2, 0, 4);
  a.as_object()["profile"] = make_profile("counters", 1000.0, "");
  JsonValue b = make_shard_doc(1, 2, 4, 8);
  b.as_object()["profile"] =
      make_profile("fallback", 2000.0, "perf_event unavailable on this platform");
  shards.push_back(wrap_shard_manifest(std::move(a)));
  shards.push_back(wrap_shard_manifest(std::move(b)));
  const AggregateResult merged = aggregate_shards(std::move(shards));
  const auto& profile = merged.manifest.as_object().at("profile").as_object();
  EXPECT_EQ(profile.at("mode").as_string(), "mixed");
  const auto& reasons = profile.at("fallback_reasons").as_array();
  ASSERT_EQ(reasons.size(), 1U);
  EXPECT_EQ(reasons[0].as_string(), "perf_event unavailable on this platform");
}

TEST(AggregateTest, ShardsWithoutProfilesMergeToOff) {
  std::vector<ShardManifest> shards;
  for (int k = 0; k < 2; ++k) {
    JsonValue doc = make_shard_doc(k, 2, 4 * k, 4 * k + 4);
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  const AggregateResult merged = aggregate_shards(std::move(shards));
  const auto& profile = merged.manifest.as_object().at("profile").as_object();
  EXPECT_EQ(profile.at("mode").as_string(), "off");
  EXPECT_FALSE(profile.contains("counters"));
}

TEST(AggregateTest, ProvenanceMismatchBecomesConflictNotException) {
  std::vector<ShardManifest> shards;
  for (int k = 0; k < 2; ++k) {
    JsonValue doc = make_shard_doc(k, 2, 4 * k, 4 * k + 4);
    if (k == 1) {
      doc.as_object()["git_sha"] = JsonValue("fff999");
      doc.as_object()["config"].as_object()["seed"] = JsonValue(9999);
    }
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  const AggregateResult merged = aggregate_shards(std::move(shards));
  std::vector<std::string> fields;
  for (const AggregateConflict& c : merged.conflicts) fields.push_back(c.field);
  EXPECT_NE(std::find(fields.begin(), fields.end(), "git_sha"), fields.end());
  EXPECT_NE(std::find(fields.begin(), fields.end(), "config"), fields.end());
  // Every shard's value is recorded so the operator can see who diverged.
  for (const AggregateConflict& c : merged.conflicts) {
    EXPECT_EQ(c.values.size(), 2u) << c.field;
  }
  // Conflicts are also embedded in the document itself.
  EXPECT_FALSE(merged.manifest.at("conflicts").as_array().empty());
}

TEST(AggregateTest, StructuralErrorsThrow) {
  {  // duplicate shard index
    std::vector<ShardManifest> shards;
    shards.push_back(wrap_shard_manifest(make_shard_doc(0, 2, 0, 4)));
    shards.push_back(wrap_shard_manifest(make_shard_doc(0, 2, 4, 8)));
    EXPECT_THROW(aggregate_shards(std::move(shards)), std::runtime_error);
  }
  {  // disagreeing shard counts
    std::vector<ShardManifest> shards;
    shards.push_back(wrap_shard_manifest(make_shard_doc(0, 2, 0, 4)));
    shards.push_back(wrap_shard_manifest(make_shard_doc(1, 3, 4, 8)));
    EXPECT_THROW(aggregate_shards(std::move(shards)), std::runtime_error);
  }
  {  // missing shard (count says 3, only 2 present)
    std::vector<ShardManifest> shards;
    shards.push_back(wrap_shard_manifest(make_shard_doc(0, 3, 0, 4)));
    shards.push_back(wrap_shard_manifest(make_shard_doc(1, 3, 4, 8)));
    EXPECT_THROW(aggregate_shards(std::move(shards)), std::runtime_error);
  }
  {  // chip ranges with a gap
    std::vector<ShardManifest> shards;
    shards.push_back(wrap_shard_manifest(make_shard_doc(0, 2, 0, 3)));
    shards.push_back(wrap_shard_manifest(make_shard_doc(1, 2, 4, 8)));
    EXPECT_THROW(aggregate_shards(std::move(shards)), std::runtime_error);
  }
  EXPECT_THROW(aggregate_shards({}), std::runtime_error);
}

TEST(AggregateTest, MalformedManifestFilesAreRejectedWithPathContext) {
  const std::string missing = temp_path("missing.json");
  EXPECT_THROW(load_shard_manifest(missing), std::runtime_error);

  const std::string truncated = temp_path("truncated.json");
  {
    std::ofstream out(truncated, std::ios::trunc);
    out << R"({"schema": "aropuf-run-manifest", "schema_version": 1, "run": "x", "shard")";
  }
  try {
    (void)load_shard_manifest(truncated);
    FAIL() << "truncated manifest should not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(truncated), std::string::npos)
        << "error should name the offending file: " << e.what();
  }

  const std::string wrong_schema = temp_path("wrong_schema.json");
  {
    std::ofstream out(wrong_schema, std::ios::trunc);
    out << R"({"schema": "something-else", "schema_version": 1, "run": "x"})";
  }
  EXPECT_THROW(load_shard_manifest(wrong_schema), std::runtime_error);

  // Wrapping an in-memory doc without the shard descriptor fails the same way.
  JsonValue no_shard = make_shard_doc(0, 1, 0, 4);
  no_shard.as_object().erase("shard");
  EXPECT_THROW(wrap_shard_manifest(std::move(no_shard)), std::runtime_error);
}

TEST(AggregateTest, ResumeValidityProbe) {
  const std::string good = temp_path("resume_good.json");
  {
    std::ofstream out(good, std::ios::trunc);
    out << make_shard_doc(1, 3, 2, 4).dump(2);
  }
  std::string why;
  EXPECT_TRUE(shard_manifest_is_valid(good, "test_run", 1, 3, &why)) << why;
  EXPECT_FALSE(shard_manifest_is_valid(good, "test_run", 0, 3, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(shard_manifest_is_valid(good, "test_run", 1, 4, nullptr));
  EXPECT_FALSE(shard_manifest_is_valid(good, "other_run", 1, 3, nullptr));
  EXPECT_FALSE(shard_manifest_is_valid(temp_path("resume_missing.json"), "test_run", 1, 3,
                                       &why));
}

TEST(AggregateTest, GaugePolicySelection) {
  EXPECT_EQ(gauge_merge_policy("threads"), GaugePolicy::kMax);
  EXPECT_EQ(gauge_merge_policy("phase.last"), GaugePolicy::kLast);
  EXPECT_EQ(gauge_merge_policy("last"), GaugePolicy::kMax);  // suffix, not substring
  EXPECT_EQ(gauge_merge_policy(""), GaugePolicy::kMax);
}

/// Four uneven shards with a sample series, a tally, and metrics — enough
/// surface to catch any fold-order dependence in the incremental path.
std::vector<ShardManifest> builder_fixture() {
  const std::vector<double> all = {0.11, 0.92, 0.37, 0.58, 0.21, 0.76, 0.49, 0.63};
  const std::vector<std::pair<int, int>> ranges = {{0, 3}, {3, 4}, {4, 6}, {6, 8}};
  std::vector<ShardManifest> shards;
  for (int k = 0; k < 4; ++k) {
    const auto [lo, hi] = ranges[static_cast<std::size_t>(k)];
    JsonValue doc = make_shard_doc(k, 4, lo, hi);
    add_sample_series(doc, "s", lo, static_cast<std::int64_t>(all.size()),
                      {all.begin() + lo, all.begin() + hi});
    add_tally(doc, "t", 2 * k, 8,
              {static_cast<std::uint64_t>(k + 1), static_cast<std::uint64_t>(k + 5)},
              /*denom=*/16);
    set_metric(doc, "counters", "study.pair_hds", JsonValue(10 * (k + 1)));
    set_metric(doc, "gauges", "queue.depth", JsonValue(static_cast<double>(k)));
    shards.push_back(wrap_shard_manifest(std::move(doc)));
  }
  return shards;
}

TEST(AggregateBuilderTest, ShuffledFoldOrderIsBitIdenticalToBatch) {
  for (const RawSeriesPolicy policy :
       {RawSeriesPolicy::kKeep, RawSeriesPolicy::kDropAfterCheck}) {
    const AggregateResult batch = aggregate_shards(builder_fixture(), policy);

    std::vector<ShardManifest> shuffled = builder_fixture();
    // Worst-case arrival: strictly reversed, so every piece but the last
    // waits in the out-of-order window.
    std::reverse(shuffled.begin(), shuffled.end());
    AggregateBuilder builder(policy);
    for (ShardManifest& shard : shuffled) builder.add(std::move(shard));
    const AggregateResult streamed = builder.finalize();

    // created_unix_ms differs between the two finalizations; every derived
    // section must not — same doubles, same serialization, byte for byte.
    for (const char* key : {"results", "shards", "metrics", "config", "conflicts",
                            "raw_series"}) {
      EXPECT_EQ(batch.manifest.at(key).dump(), streamed.manifest.at(key).dump())
          << key << " under policy "
          << (policy == RawSeriesPolicy::kKeep ? "keep" : "drop_after_check");
    }
  }
}

TEST(AggregateBuilderTest, RawSeriesPolicyControlsEmbeddedValuesAndMarker) {
  const AggregateResult kept = aggregate_shards(builder_fixture(), RawSeriesPolicy::kKeep);
  EXPECT_EQ(kept.manifest.at("raw_series").as_string(), "kept");
  EXPECT_EQ(kept.manifest.at("schema_version").as_number(), kAggregateSchemaVersion);
  const JsonValue& kept_s = kept.manifest.at("results").at("samples").at("s");
  ASSERT_TRUE(kept_s.contains("values"));
  EXPECT_EQ(kept_s.at("values").as_array().size(),
            static_cast<std::size_t>(kept_s.at("count").as_number()));
  // Values are concatenated in global chip order, not arrival order.
  EXPECT_EQ(kept_s.at("values").as_array().front().as_number(), 0.11);
  EXPECT_EQ(kept_s.at("values").as_array().back().as_number(), 0.63);

  const AggregateResult dropped =
      aggregate_shards(builder_fixture(), RawSeriesPolicy::kDropAfterCheck);
  EXPECT_EQ(dropped.manifest.at("raw_series").as_string(), "dropped");
  EXPECT_FALSE(dropped.manifest.at("results").at("samples").at("s").contains("values"));
  // Dropping raw values must not change a single statistic.
  JsonValue stripped = kept.manifest.at("results");
  stripped.as_object()["samples"].as_object()["s"].as_object().erase("values");
  EXPECT_EQ(stripped.dump(), dropped.manifest.at("results").dump());
}

TEST(AggregateBuilderTest, WindowPeakIsBoundedByOutOfOrderExtent) {
  {  // In-order arrival: each piece drains immediately, so the window's
     // high-water mark is the largest single piece — the bounded-memory claim.
    AggregateBuilder builder(RawSeriesPolicy::kDropAfterCheck);
    for (ShardManifest& shard : builder_fixture()) builder.add(std::move(shard));
    EXPECT_EQ(builder.peak_buffered_values(), 3u);  // largest piece is 3 values
    EXPECT_EQ(builder.buffered_values(), 0u);       // everything drained
    EXPECT_EQ(builder.reduced_values(), 8u);
    EXPECT_EQ(builder.shards_added(), 4);
    EXPECT_EQ(builder.expected_shards(), 4);
    (void)builder.finalize();
  }
  {  // Fully reversed arrival is the worst case: nothing drains until the
     // offset-0 piece lands, so the peak is the whole series.
    std::vector<ShardManifest> reversed = builder_fixture();
    std::reverse(reversed.begin(), reversed.end());
    AggregateBuilder builder(RawSeriesPolicy::kDropAfterCheck);
    for (ShardManifest& shard : reversed) builder.add(std::move(shard));
    EXPECT_EQ(builder.peak_buffered_values(), 8u);
    EXPECT_EQ(builder.buffered_values(), 0u);
    (void)builder.finalize();
  }
}

TEST(AggregateBuilderTest, FailedAddReportsPathAndLeavesPriorFoldsIntact) {
  AggregateBuilder builder(RawSeriesPolicy::kKeep);
  std::vector<ShardManifest> shards = builder_fixture();
  builder.add(std::move(shards[0]));
  builder.add(std::move(shards[1]));

  // A structurally broken shard 2: its series values are not numbers.
  JsonValue bad = make_shard_doc(2, 4, 4, 6);
  add_sample_series(bad, "s", 4, 8, {});
  bad.as_object()["results"].as_object()["samples"].as_object()["s"]
      .as_object()["values"].as_array().emplace_back("not-a-number");
  try {
    builder.add(wrap_shard_manifest(std::move(bad), "/runs/shard2.manifest.json"));
    FAIL() << "malformed mid-stream shard should not fold";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/runs/shard2.manifest.json"), std::string::npos)
        << "error should name the offending manifest: " << e.what();
  }

  // add() is transactional: the failed fold left no residue, so the real
  // shard 2 still folds and the set completes.
  EXPECT_EQ(builder.shards_added(), 2);
  builder.add(std::move(shards[2]));
  builder.add(std::move(shards[3]));
  const AggregateResult merged = builder.finalize();
  EXPECT_EQ(merged.manifest.at("results").dump(),
            aggregate_shards(builder_fixture()).manifest.at("results").dump());
}

TEST(AggregateBuilderTest, DuplicateIndexAndCountDisagreementRejectedAtAdd) {
  AggregateBuilder builder;
  std::vector<ShardManifest> shards = builder_fixture();
  builder.add(std::move(shards[0]));
  EXPECT_THROW(builder.add(wrap_shard_manifest(make_shard_doc(0, 4, 0, 3))),
               std::runtime_error);  // duplicate index
  EXPECT_THROW(builder.add(wrap_shard_manifest(make_shard_doc(1, 5, 3, 4))),
               std::runtime_error);  // disagreeing shard count
  EXPECT_EQ(builder.shards_added(), 1);
}

TEST(AggregateBuilderTest, LifecycleMisuseThrowsLogicError) {
  {
    AggregateBuilder builder;
    EXPECT_THROW((void)builder.finalize(), std::runtime_error);  // empty set
  }
  AggregateBuilder builder;
  for (ShardManifest& shard : builder_fixture()) builder.add(std::move(shard));
  (void)builder.finalize();
  EXPECT_THROW((void)builder.finalize(), std::logic_error);
  std::vector<ShardManifest> more = builder_fixture();
  EXPECT_THROW(builder.add(std::move(more[0])), std::logic_error);
}

TEST(AggregateBuilderTest, IncompleteSetFailsFinalizeNotAdd) {
  AggregateBuilder builder;
  std::vector<ShardManifest> shards = builder_fixture();
  builder.add(std::move(shards[0]));
  builder.add(std::move(shards[2]));  // shard 1's chips never arrive
  EXPECT_THROW((void)builder.finalize(), std::runtime_error);
}

TEST(AggregateTest, WriteAggregateManifestRoundTrips) {
  std::vector<ShardManifest> shards;
  JsonValue doc = make_shard_doc(0, 1, 0, 8);
  add_sample_series(doc, "s", 0, 2, {0.25, 0.75});
  shards.push_back(wrap_shard_manifest(std::move(doc)));
  const AggregateResult merged = aggregate_shards(std::move(shards));

  const std::string path = temp_path("roundtrip.json");
  ASSERT_TRUE(write_aggregate_manifest(path, merged.manifest));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue parsed = JsonValue::parse(buffer.str());
  EXPECT_EQ(parsed.string_or("schema", ""), kAggregateSchema);
  EXPECT_EQ(parsed.at("results").dump(), merged.manifest.at("results").dump());
}

}  // namespace
}  // namespace aropuf::telemetry
