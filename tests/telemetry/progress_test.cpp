#include "telemetry/progress.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace aropuf::telemetry {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "aropuf_progress_" + name;
}

void truncate_file(const std::string& path) { std::ofstream(path, std::ios::trunc); }

TEST(HeartbeatTest, JsonRoundTrip) {
  Heartbeat beat;
  beat.ts_unix_ms = 1722945600123;
  beat.shard = 3;
  beat.stage = "e2.aro.y10";
  beat.done = 7;
  beat.total = 22;
  beat.elapsed_ms = 451.25;
  const Heartbeat back = heartbeat_from_json(heartbeat_to_json(beat));
  EXPECT_EQ(back.ts_unix_ms, beat.ts_unix_ms);
  EXPECT_EQ(back.shard, beat.shard);
  EXPECT_EQ(back.stage, beat.stage);
  EXPECT_EQ(back.done, beat.done);
  EXPECT_EQ(back.total, beat.total);
  EXPECT_EQ(back.elapsed_ms, beat.elapsed_ms);
}

TEST(HeartbeatTest, RejectsOutOfRangeFields) {
  Heartbeat beat;
  beat.stage = "x";
  beat.done = 5;
  beat.total = 3;  // done > total
  EXPECT_THROW((void)heartbeat_from_json(heartbeat_to_json(beat)), std::exception);
  beat.done = 1;
  beat.total = 3;
  beat.shard = -2;
  EXPECT_THROW((void)heartbeat_from_json(heartbeat_to_json(beat)), std::exception);
}

TEST(ProgressTest, WriterAppendsReaderPolls) {
  const std::string path = temp_path("basic.jsonl");
  truncate_file(path);
  ProgressWriter w0(path, 0);
  ProgressWriter w1(path, 1);
  ProgressReader reader(path);

  EXPECT_TRUE(w0.beat("start", 0, 4));
  EXPECT_TRUE(w1.beat("start", 0, 4));
  auto beats = reader.poll();
  ASSERT_EQ(beats.size(), 2u);
  EXPECT_EQ(beats[0].shard, 0);
  EXPECT_EQ(beats[1].shard, 1);

  // Incremental: a second poll only sees what was appended in between.
  EXPECT_TRUE(w0.beat("e2", 2, 4));
  beats = reader.poll();
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].stage, "e2");
  EXPECT_EQ(beats[0].done, 2);
  EXPECT_TRUE(reader.poll().empty());
}

TEST(ProgressTest, PartialTrailingLineIsBufferedUntilComplete) {
  const std::string path = temp_path("partial.jsonl");
  truncate_file(path);
  ProgressWriter writer(path, 0);
  ASSERT_TRUE(writer.beat("one", 1, 2));

  // Simulate a writer caught mid-append: a complete line plus a torn one.
  const std::string torn = R"({"ts_unix_ms": 1, "shard": 0, "stage": "tw)";
  {
    std::ofstream out(path, std::ios::app);
    out << torn;
  }
  ProgressReader reader(path);
  auto beats = reader.poll();
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].stage, "one");
  EXPECT_EQ(reader.malformed_lines(), 0u);

  // The rest of the line arrives; the buffered prefix completes cleanly.
  {
    std::ofstream out(path, std::ios::app);
    out << R"(o", "done": 2, "total": 2, "elapsed_ms": 5})" << "\n";
  }
  beats = reader.poll();
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].stage, "two");
  EXPECT_EQ(reader.malformed_lines(), 0u);
}

TEST(ProgressTest, MalformedCompleteLinesAreCountedAndSkipped) {
  const std::string path = temp_path("malformed.jsonl");
  truncate_file(path);
  ProgressWriter writer(path, 2);
  ASSERT_TRUE(writer.beat("good", 0, 1));
  {
    std::ofstream out(path, std::ios::app);
    out << "this is not json\n";
    out << R"({"valid_json": "but not a heartbeat"})" << "\n";
  }
  ASSERT_TRUE(writer.beat("good2", 1, 1));

  ProgressReader reader(path);
  const auto beats = reader.poll();
  ASSERT_EQ(beats.size(), 2u);
  EXPECT_EQ(beats[0].stage, "good");
  EXPECT_EQ(beats[1].stage, "good2");
  EXPECT_EQ(reader.malformed_lines(), 2u);
}

TEST(ProgressTest, ByteTruncatedFileNeverThrowsAndRecoversOnCompletion) {
  // Regression: a progress file byte-truncated at ANY position (worker died
  // mid-write, filesystem cut the tail) must read cleanly — the partial tail
  // is buffered, never surfaced as an error — and once the missing bytes
  // arrive the buffered prefix completes into real beats.
  ProgressWriter probe(temp_path("trunc_probe.jsonl"), 0);
  truncate_file(temp_path("trunc_probe.jsonl"));
  ASSERT_TRUE(probe.beat("alpha", 1, 2));
  ASSERT_TRUE(probe.beat("beta", 2, 2));
  std::string whole;
  {
    std::ifstream in(temp_path("trunc_probe.jsonl"), std::ios::binary);
    whole.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(whole.size(), 2u);

  const std::string path = temp_path("trunc_cut.jsonl");
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    truncate_file(path);
    {
      std::ofstream out(path, std::ios::binary);
      out << whole.substr(0, cut);
    }
    ProgressReader reader(path);
    std::vector<Heartbeat> beats;
    ASSERT_NO_THROW(beats = reader.poll()) << "cut at " << cut;
    EXPECT_LE(beats.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(reader.malformed_lines(), 0u) << "cut at " << cut;
    // Appending the remainder completes the torn tail losslessly.
    {
      std::ofstream out(path, std::ios::binary | std::ios::app);
      out << whole.substr(cut);
    }
    const auto rest = reader.poll();
    EXPECT_EQ(beats.size() + rest.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(reader.malformed_lines(), 0u) << "cut at " << cut;
  }
}

TEST(ProgressTest, TornFragmentFusedWithNextLineRecoversTheGoodSuffix) {
  // A writer that died mid-append leaves a newline-less fragment; the next
  // healthy writer's O_APPEND line lands right behind it, producing one
  // merged "line" of <fragment>{good beat}.  The reader must salvage the
  // good beat and charge exactly one malformed line for the fragment.
  const std::string path = temp_path("torn_fused.jsonl");
  truncate_file(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << R"({"ts_unix_ms": 9, "shard": 1, "stage": "die)";  // no newline
  }
  ProgressWriter writer(path, 3);
  ASSERT_TRUE(writer.beat("alive", 1, 4));

  ProgressReader reader(path);
  const auto beats = reader.poll();
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].shard, 3);
  EXPECT_EQ(beats[0].stage, "alive");
  EXPECT_EQ(reader.malformed_lines(), 1u);
}

TEST(ProgressTest, FragmentWithBracesInStringsStillFindsTheRealSuffix) {
  // The salvage scan retries from every '{': decoy braces inside the torn
  // fragment's string data must not defeat it.
  const std::string path = temp_path("torn_decoy.jsonl");
  truncate_file(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << R"({"ts_unix_ms": 9, "stage": "curly { decoy {{", "sh)";  // no newline
  }
  ProgressWriter writer(path, 5);
  ASSERT_TRUE(writer.beat("rescued", 2, 2));

  ProgressReader reader(path);
  const auto beats = reader.poll();
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].shard, 5);
  EXPECT_EQ(beats[0].stage, "rescued");
  EXPECT_EQ(reader.malformed_lines(), 1u);
}

TEST(ProgressTest, DisabledWriterIsANoOp) {
  ProgressWriter writer("", 0);
  EXPECT_FALSE(writer.enabled());
  EXPECT_TRUE(writer.beat("anything", 0, 0));  // no-op beats never fail the run
}

TEST(ProgressTest, ReaderOnMissingFileReturnsNothing) {
  ProgressReader reader(temp_path("never_written.jsonl"));
  EXPECT_TRUE(reader.poll().empty());
  EXPECT_EQ(reader.malformed_lines(), 0u);
}

TEST(EtaEstimatorTest, FreshRunMatchesLinearExtrapolation) {
  EtaEstimator eta;
  // Half the work done in 10s → 10s remain.
  EXPECT_DOUBLE_EQ(eta.eta_seconds(50.0, 100.0, 10.0), 10.0);
  // A quarter done in 30s → 90s remain.
  EXPECT_DOUBLE_EQ(eta.eta_seconds(25.0, 100.0, 30.0), 90.0);
}

TEST(EtaEstimatorTest, BaselineExcludesResumedWorkFromTheRate) {
  // Regression for the stale --resume ETA: 50 of 100 units were already
  // complete when tracking began (resumed shards).  After 10s this run has
  // performed 25 fresh units with 25 left → the honest ETA is 10s.
  EtaEstimator eta;
  eta.add_baseline(50.0);
  EXPECT_DOUBLE_EQ(eta.eta_seconds(75.0, 100.0, 10.0), 10.0);

  // The pre-fix formula credited all 75 units to the 10s elapsed and printed
  // 10 * (1 - 0.75) / 0.75 ≈ 3.3s — a rate inflated 3x by work this run
  // never performed.  Make sure that stale value can never come back.
  EXPECT_GT(eta.eta_seconds(75.0, 100.0, 10.0), 9.9);
}

TEST(EtaEstimatorTest, NoEstimateWithoutFreshProgress) {
  EtaEstimator eta;
  eta.add_baseline(50.0);
  // Only resumed work so far: no rate information, no estimate.
  EXPECT_LT(eta.eta_seconds(50.0, 100.0, 10.0), 0.0);
  // Under 1% fresh progress: too little signal.
  EXPECT_LT(eta.eta_seconds(50.1, 100.0, 10.0), 0.0);
  // Degenerate inputs never divide by zero.
  EXPECT_LT(eta.eta_seconds(0.0, 0.0, 0.0), 0.0);
  EXPECT_LT(eta.eta_seconds(10.0, 100.0, 0.0), 0.0);
}

TEST(EtaEstimatorTest, CompleteWorkReportsZero) {
  EtaEstimator eta;
  eta.add_baseline(10.0);
  EXPECT_DOUBLE_EQ(eta.eta_seconds(100.0, 100.0, 5.0), 0.0);
}

}  // namespace
}  // namespace aropuf::telemetry
