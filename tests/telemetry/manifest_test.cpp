#include "telemetry/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics.hpp"

namespace aropuf::telemetry {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_run_record();
    unsetenv("AROPUF_MANIFEST");
  }
  void TearDown() override {
    reset_run_record();
    unsetenv("AROPUF_MANIFEST");
  }
};

TEST_F(ManifestTest, BuildManifestHasTheSchemaFields) {
  JsonValue::Object config;
  config["chips"] = JsonValue(40);
  const JsonValue m = build_manifest("test-run", JsonValue(std::move(config)));
  ASSERT_TRUE(m.is_object());
  const auto& root = m.as_object();
  EXPECT_EQ(root.at("schema").as_string(), kManifestSchema);
  EXPECT_EQ(root.at("schema_version").as_number(),
            static_cast<double>(kManifestSchemaVersion));
  EXPECT_EQ(root.at("run").as_string(), "test-run");
  EXPECT_TRUE(root.at("created_unix_ms").is_number());
  EXPECT_TRUE(root.at("git_sha").is_string());
  EXPECT_TRUE(root.at("build").as_object().at("simd_compiled").is_bool());
  EXPECT_EQ(root.at("config").as_object().at("chips").as_number(), 40.0);
  // Defaults keep the schema total before any subsystem reports in.
  EXPECT_TRUE(root.at("threads").is_number());
  EXPECT_TRUE(root.at("kernel_backend").is_string());
  EXPECT_TRUE(root.at("stages").is_array());
  EXPECT_TRUE(root.at("metrics").is_object());
}

TEST_F(ManifestTest, RuntimeFieldsOverrideDefaults) {
  set_runtime_field("threads", JsonValue(8));
  set_runtime_field("kernel_backend", JsonValue("batched"));
  const JsonValue m = build_manifest("run", JsonValue(JsonValue::Object{}));
  EXPECT_EQ(m.as_object().at("threads").as_number(), 8.0);
  EXPECT_EQ(m.as_object().at("kernel_backend").as_string(), "batched");
}

TEST_F(ManifestTest, StageTimerRecordsWallAndCpuTime) {
  {
    const StageTimer stage("unit-test-stage");
  }
  const JsonValue m = build_manifest("run", JsonValue(JsonValue::Object{}));
  const auto& stages = m.as_object().at("stages").as_array();
  ASSERT_EQ(stages.size(), 1U);
  const auto& s = stages[0].as_object();
  EXPECT_EQ(s.at("name").as_string(), "unit-test-stage");
  EXPECT_GE(s.at("wall_ms").as_number(), 0.0);
  EXPECT_GE(s.at("cpu_ms").as_number(), 0.0);
}

TEST_F(ManifestTest, ManifestCarriesTheProfileSection) {
  const JsonValue m = build_manifest("run", JsonValue(JsonValue::Object{}));
  const auto& root = m.as_object();
  // The profile section is unconditional: an unprofiled run says so
  // explicitly ("off"), it does not just omit the key.
  ASSERT_TRUE(root.contains("profile"));
  const auto& profile = root.at("profile").as_object();
  EXPECT_TRUE(profile.contains("mode"));
  EXPECT_TRUE(profile.contains("fallback_reason"));
  EXPECT_GT(profile.at("peak_rss_kib").as_number(), 0.0);
}

TEST_F(ManifestTest, ExplicitStageCountersLandInTheManifest) {
  JsonValue::Object counters;
  counters["cycles"] = JsonValue(12345.0);
  counters["ipc"] = JsonValue(1.25);
  record_stage("counted-stage", 10.0, 9.0, std::move(counters));
  record_stage("plain-stage", 5.0, 4.0);
  const JsonValue m = build_manifest("run", JsonValue(JsonValue::Object{}));
  const auto& stages = m.as_object().at("stages").as_array();
  ASSERT_EQ(stages.size(), 2U);
  const auto& counted = stages[0].as_object();
  ASSERT_TRUE(counted.contains("counters"));
  EXPECT_DOUBLE_EQ(counted.at("counters").as_object().at("ipc").as_number(), 1.25);
  // Stages without counter data stay lean: no empty "counters" stub.
  EXPECT_FALSE(stages[1].as_object().contains("counters"));
}

TEST_F(ManifestTest, WriteManifestRoundTripsThroughTheParser) {
  const std::string path = ::testing::TempDir() + "aropuf_manifest_test.json";
  MetricsRegistry::global().counter("test.manifest.counter").add(5);
  ASSERT_TRUE(write_manifest(path, "round-trip", JsonValue(JsonValue::Object{})));
  const JsonValue parsed = JsonValue::parse(read_file(path));
  EXPECT_EQ(parsed.as_object().at("run").as_string(), "round-trip");
  EXPECT_EQ(parsed.as_object()
                .at("metrics")
                .as_object()
                .at("counters")
                .as_object()
                .at("test.manifest.counter")
                .as_number(),
            5.0);
  std::remove(path.c_str());
}

TEST_F(ManifestTest, WriteManifestFailsCleanlyOnBadPath) {
  EXPECT_FALSE(write_manifest("/nonexistent-dir/m.json", "run", JsonValue(JsonValue::Object{})));
}

TEST_F(ManifestTest, EnvironmentPathWinsOverFallback) {
  const std::string env_path = ::testing::TempDir() + "aropuf_manifest_env.json";
  const std::string fallback_path = ::testing::TempDir() + "aropuf_manifest_fallback.json";
  std::remove(env_path.c_str());
  std::remove(fallback_path.c_str());

  setenv("AROPUF_MANIFEST", env_path.c_str(), 1);
  EXPECT_TRUE(finalize_run("env-run", JsonValue(JsonValue::Object{}), fallback_path));
  EXPECT_FALSE(read_file(env_path).empty());
  EXPECT_TRUE(read_file(fallback_path).empty());
  std::remove(env_path.c_str());

  // Without the env var the fallback receives the manifest.
  unsetenv("AROPUF_MANIFEST");
  EXPECT_TRUE(finalize_run("fallback-run", JsonValue(JsonValue::Object{}), fallback_path));
  const JsonValue parsed = JsonValue::parse(read_file(fallback_path));
  EXPECT_EQ(parsed.as_object().at("run").as_string(), "fallback-run");
  std::remove(fallback_path.c_str());

  // With neither, finalize_run is a successful no-op.
  EXPECT_TRUE(finalize_run("no-run", JsonValue(JsonValue::Object{})));
}

}  // namespace
}  // namespace aropuf::telemetry
