#include "telemetry/binfmt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace aropuf::telemetry {
namespace {

/// Metadata document agreeing with `series`: results.samples carries one
/// header-only entry per series (the shape the encoder's cross-check
/// demands), plus the unrelated top-level keys a real manifest would have.
JsonValue make_metadata(const std::vector<BinarySeries>& series) {
  JsonValue::Object samples;
  for (const BinarySeries& s : series) {
    JsonValue::Object entry;
    entry["offset"] = JsonValue(s.offset);
    entry["total"] = JsonValue(s.total);
    entry["hist_lo"] = JsonValue(s.hist_lo);
    entry["hist_hi"] = JsonValue(s.hist_hi);
    entry["hist_bins"] = JsonValue(static_cast<std::uint64_t>(s.hist_bins));
    samples[s.name] = JsonValue(std::move(entry));
  }
  JsonValue::Object results;
  results["samples"] = JsonValue(std::move(samples));
  results["tallies"] = JsonValue(JsonValue::Object{});
  JsonValue::Object doc;
  doc["schema"] = JsonValue("aropuf-run-manifest");
  doc["run"] = JsonValue("binfmt_test");
  doc["results"] = JsonValue(std::move(results));
  return JsonValue(std::move(doc));
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

void expect_round_trip(const std::vector<BinarySeries>& series) {
  const std::string wire = encode_shard_manifest(make_metadata(series), series);
  const BinaryManifestReader reader = BinaryManifestReader::parse(wire);
  ASSERT_EQ(reader.series_count(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SeriesView& v = reader.series(i);
    const BinarySeries& s = series[i];
    EXPECT_EQ(std::string(v.name), s.name);
    EXPECT_EQ(v.offset, s.offset);
    EXPECT_EQ(v.total, s.total);
    EXPECT_EQ(bits_of(v.hist_lo), bits_of(s.hist_lo));
    EXPECT_EQ(bits_of(v.hist_hi), bits_of(s.hist_hi));
    EXPECT_EQ(v.hist_bins, s.hist_bins);
    ASSERT_EQ(v.count, s.values.size());
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      EXPECT_EQ(bits_of(v.value(k)), bits_of(s.values[k]))
          << "series " << s.name << " value " << k;
    }
  }
}

TEST(Binfmt, RoundTripsRandomizedSeries) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  std::uniform_int_distribution<std::size_t> length(0, 200);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<BinarySeries> series;
    const std::size_t n = 1 + rng() % 5;
    for (std::size_t i = 0; i < n; ++i) {
      BinarySeries s;
      s.name = "series_" + std::to_string(trial) + "_" + std::to_string(i);
      s.values.resize(length(rng));
      for (double& v : s.values) v = value(rng);
      s.offset = rng() % 1000;
      s.total = s.offset + s.values.size() + rng() % 1000;
      s.hist_lo = value(rng);
      s.hist_hi = s.hist_lo + 1.0;
      s.hist_bins = 1 + static_cast<std::uint32_t>(rng() % 100);
      series.push_back(std::move(s));
    }
    expect_round_trip(series);
  }
}

TEST(Binfmt, RoundTripsEmptyContainerAndEmptySeries) {
  expect_round_trip({});  // no series at all
  BinarySeries empty;
  empty.name = "empty";
  empty.total = 10;  // a slice that exists but carries no values
  expect_round_trip({empty});
}

TEST(Binfmt, RoundTripsSingleSample) {
  BinarySeries s;
  s.name = "one";
  s.values = {0.123456789012345678};
  s.total = 1;
  expect_round_trip({s});
}

TEST(Binfmt, PreservesNanAndInfinityBitExactly) {
  // The binary transport's one representational advantage over JSON: these
  // must survive with their exact bit patterns, including NaN payloads.
  double payload_nan;
  std::uint64_t payload_bits = 0x7ff8dead'beef0001ULL;
  std::memcpy(&payload_nan, &payload_bits, sizeof payload_nan);
  BinarySeries s;
  s.name = "specials";
  s.values = {std::numeric_limits<double>::quiet_NaN(),
              payload_nan,
              std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity(),
              -0.0,
              std::numeric_limits<double>::denorm_min()};
  s.total = s.values.size();
  expect_round_trip({s});
}

TEST(Binfmt, AcceptsMaxLengthNameRejectsLonger) {
  BinarySeries ok;
  ok.name = std::string(kBinfmtMaxSeriesName, 'x');
  ok.values = {1.0};
  ok.total = 1;
  expect_round_trip({ok});

  BinarySeries bad = ok;
  bad.name += 'x';
  EXPECT_THROW((void)encode_shard_manifest(make_metadata({bad}), {bad}), std::invalid_argument);
}

TEST(Binfmt, ToJsonMatchesJsonTransportDocument) {
  BinarySeries s;
  s.name = "e2.test";
  s.values = {0.25, 0.5, 1.0 / 3.0};
  s.total = 3;
  const JsonValue metadata = make_metadata({s});
  const BinaryManifestReader reader =
      BinaryManifestReader::parse(encode_shard_manifest(metadata, {s}));

  // What the JSON transport would have written: same doc, values embedded.
  JsonValue expected = metadata;
  JsonValue::Array values;
  for (const double v : s.values) values.emplace_back(v);
  expected.as_object()
      .at("results")
      .as_object()
      .at("samples")
      .as_object()
      .at(s.name)
      .as_object()["values"] = JsonValue(std::move(values));
  EXPECT_EQ(reader.to_json().dump(), expected.dump());
}

// --- rejection: every defect is a typed BinfmtError, never UB ---------------

std::string valid_container() {
  BinarySeries a;
  a.name = "alpha";
  a.values = {1.0, 2.0, 3.0};
  a.total = 8;
  a.offset = 2;
  BinarySeries b;
  b.name = "beta";
  b.values = {4.0};
  b.total = 4;
  return encode_shard_manifest(make_metadata({a, b}), {a, b});
}

TEST(Binfmt, RejectsTruncationAtEveryByteBoundary) {
  const std::string wire = valid_container();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)BinaryManifestReader::parse(wire.substr(0, len)), BinfmtError)
        << "prefix of " << len << " bytes parsed without error";
  }
  EXPECT_NO_THROW((void)BinaryManifestReader::parse(wire));
}

void expect_code(const std::string& wire, BinfmtErrc code) {
  try {
    (void)BinaryManifestReader::parse(wire);
    FAIL() << "expected " << binfmt_errc_name(code);
  } catch (const BinfmtError& e) {
    EXPECT_EQ(static_cast<int>(e.code()), static_cast<int>(code)) << e.what();
  }
}

TEST(Binfmt, RejectsFutureVersion) {
  std::string wire = valid_container();
  wire[4] = 2;  // version u16 little-endian low byte
  expect_code(wire, BinfmtErrc::kUnsupportedVersion);
}

TEST(Binfmt, RejectsBadMagic) {
  std::string wire = valid_container();
  wire[0] = 'X';
  expect_code(wire, BinfmtErrc::kBadMagic);
}

TEST(Binfmt, RejectsNonzeroReservedBytes) {
  std::string wire = valid_container();
  wire[6] = 1;
  expect_code(wire, BinfmtErrc::kReservedNonzero);
}

TEST(Binfmt, RejectsTrailingGarbage) {
  std::string wire = valid_container();
  wire.push_back('\0');
  expect_code(wire, BinfmtErrc::kTrailingGarbage);
}

TEST(Binfmt, RejectsCorruptMetadataJson) {
  std::string wire = valid_container();
  // Byte 16 is the first metadata byte ('{' of the JSON document).
  wire[16] = '!';
  expect_code(wire, BinfmtErrc::kMetadataParse);
}

TEST(Binfmt, RejectsHugeDeclaredValueCountWithoutAllocating) {
  // Patch series alpha's value-count field to 2^64-1: the decoder must see
  // the count cannot fit in the remaining bytes and throw, never allocate.
  std::string wire = valid_container();
  std::uint64_t meta_len = 0;
  std::memcpy(&meta_len, wire.data() + 8, sizeof meta_len);
  // magic+ver+res+len (16) + metadata + series count (4) + name len (2) +
  // "alpha" (5) + offset/total/hist_lo/hist_hi (32) + hist_bins (4).
  const std::size_t count_at = 16 + static_cast<std::size_t>(meta_len) + 4 + 2 + 5 + 36;
  for (std::size_t i = 0; i < 8; ++i) wire[count_at + i] = static_cast<char>(0xff);
  expect_code(wire, BinfmtErrc::kTruncated);
}

TEST(Binfmt, RejectsMetadataSeriesMismatch) {
  BinarySeries s;
  s.name = "present";
  s.values = {1.0};
  s.total = 1;

  // Metadata declares a series the container does not carry.
  BinarySeries ghost;
  ghost.name = "ghost";
  ghost.total = 5;
  EXPECT_THROW((void)encode_shard_manifest(make_metadata({s, ghost}), {s}), BinfmtError);

  // Metadata embeds a values array (payload would be duplicated).
  JsonValue meta = make_metadata({s});
  meta.as_object()
      .at("results")
      .as_object()
      .at("samples")
      .as_object()
      .at("present")
      .as_object()["values"] = JsonValue(JsonValue::Array{JsonValue(1.0)});
  EXPECT_THROW((void)encode_shard_manifest(meta, {s}), BinfmtError);

  // Metadata header disagrees with the series block.
  JsonValue skewed = make_metadata({s});
  skewed.as_object()
      .at("results")
      .as_object()
      .at("samples")
      .as_object()
      .at("present")
      .as_object()["total"] = JsonValue(static_cast<std::uint64_t>(999));
  EXPECT_THROW((void)encode_shard_manifest(skewed, {s}), BinfmtError);
}

TEST(Binfmt, RejectsSliceExceedingDeclaredTotal) {
  BinarySeries s;
  s.name = "overrun";
  s.values = {1.0, 2.0};
  s.offset = 3;
  s.total = 4;  // slice [3, 5) of a 4-element series
  EXPECT_THROW((void)encode_shard_manifest(make_metadata({s}), {s}), BinfmtError);
}

TEST(Binfmt, RejectsNonzeroAlignmentPadding) {
  // Find a name length whose series block actually needs padding bytes, then
  // corrupt the first one.  Padding precedes the values block, which starts
  // at the next multiple of 8 after the value-count field.
  for (std::size_t name_len = 1; name_len <= 8; ++name_len) {
    BinarySeries s;
    s.name = std::string(name_len, 'p');
    s.values = {7.0};
    s.total = 1;
    std::string wire = encode_shard_manifest(make_metadata({s}), {s});
    std::uint64_t meta_len = 0;
    std::memcpy(&meta_len, wire.data() + 8, sizeof meta_len);
    const std::size_t count_end =
        16 + static_cast<std::size_t>(meta_len) + 4 + 2 + name_len + 36 + 8;
    if (count_end % 8 == 0) continue;  // this length needs no padding
    wire[count_end] = 'Z';
    expect_code(wire, BinfmtErrc::kBadSeriesHeader);
    return;
  }
  FAIL() << "no name length in 1..8 produced alignment padding";
}

TEST(Binfmt, LooksBinarySniffsOnlyTheMagic) {
  EXPECT_TRUE(looks_binary(valid_container()));
  EXPECT_TRUE(looks_binary("ARPBxxxx"));
  EXPECT_FALSE(looks_binary("ARP"));  // too short
  EXPECT_FALSE(looks_binary("{\"schema\": \"aropuf-run-manifest\"}"));
  EXPECT_FALSE(looks_binary(""));
}

}  // namespace
}  // namespace aropuf::telemetry
