#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace aropuf::telemetry {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(ShardedHistogramTest, SnapshotMatchesSerialStats) {
  ShardedHistogram h(0.0, 10.0, 10);
  RunningStats expected;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    h.record(x);
    expected.add(x);
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.stats.count(), expected.count());
  EXPECT_DOUBLE_EQ(snap.stats.mean(), expected.mean());
  EXPECT_DOUBLE_EQ(snap.stats.min(), expected.min());
  EXPECT_DOUBLE_EQ(snap.stats.max(), expected.max());
  ASSERT_EQ(snap.bins.size(), 10U);
  std::uint64_t total = 0;
  for (const std::uint64_t b : snap.bins) total += b;
  EXPECT_EQ(total, 100U);
}

TEST(ShardedHistogramTest, OutOfRangeSamplesClampToEdgeBins) {
  ShardedHistogram h(0.0, 1.0, 4);
  h.record(-100.0);
  h.record(100.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.bins.front(), 1U);
  EXPECT_EQ(snap.bins.back(), 1U);
  EXPECT_EQ(snap.stats.count(), 2U);
}

// Per-thread shards: concurrent recording must lose nothing, and the merged
// moments must equal the single-threaded reference (RunningStats::merge is
// exact for count/sum-style moments given the same sample multiset).
TEST(ShardedHistogramTest, ConcurrentRecordingMergesDeterministically) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ShardedHistogram h(0.0, 1.0, 20);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>((t * kPerThread + i) % 1000) / 1000.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.stats.count(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every thread records the same multiset {0, 1/1000, ..., 999/1000} x10,
  // so the mean is the mean of 0..999 over 1000.
  EXPECT_NEAR(snap.stats.mean(), 0.4995, 1e-9);
  EXPECT_DOUBLE_EQ(snap.stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.stats.max(), 0.999);
  std::uint64_t total = 0;
  for (const std::uint64_t b : snap.bins) total += b;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.registry.counter");
  Counter& b = reg.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  ShardedHistogram& h1 = reg.histogram("test.registry.hist", 0.0, 1.0, 4);
  // Later callers get the same instrument regardless of shape.
  ShardedHistogram& h2 = reg.histogram("test.registry.hist", -5.0, 5.0, 99);
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceKeepingReferencesValid) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.reset.counter");
  ShardedHistogram& h = reg.histogram("test.reset.hist", 0.0, 1.0, 4);
  c.add(7);
  h.record(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(h.snapshot().stats.count(), 0U);
  // The references still work after reset.
  c.add(1);
  EXPECT_EQ(c.value(), 1U);
}

TEST(MetricsRegistryTest, SnapshotJsonHasCanonicalShape) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.snapshot.counter").add(3);
  reg.gauge("test.snapshot.gauge").set(2.5);
  reg.histogram("test.snapshot.hist", 0.0, 1.0, 2).record(0.25);
  const JsonValue snap = reg.snapshot_json();
  ASSERT_TRUE(snap.is_object());
  const auto& root = snap.as_object();
  EXPECT_EQ(root.at("counters").as_object().at("test.snapshot.counter").as_number(), 3.0);
  EXPECT_EQ(root.at("gauges").as_object().at("test.snapshot.gauge").as_number(), 2.5);
  const auto& hist = root.at("histograms").as_object().at("test.snapshot.hist").as_object();
  EXPECT_EQ(hist.at("count").as_number(), 1.0);
  EXPECT_EQ(hist.at("lo").as_number(), 0.0);
  EXPECT_EQ(hist.at("hi").as_number(), 1.0);
  EXPECT_EQ(hist.at("bins").as_array().size(), 2U);
  // Round-trips through the in-repo parser (manifests embed this document).
  EXPECT_EQ(JsonValue::parse(snap.dump()).dump(), snap.dump());
}

}  // namespace
}  // namespace aropuf::telemetry
