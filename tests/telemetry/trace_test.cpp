#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace aropuf::telemetry {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceTest, DisabledSessionIsFreeAndFlushIsNoop) {
  ASSERT_TRUE(flush_trace());  // end any leftover session first
  EXPECT_FALSE(trace_enabled());
  {
    const TraceScope span("ignored", "test");
  }
  EXPECT_EQ(trace_event_count(), 0U);
  EXPECT_TRUE(flush_trace());
}

TEST(TraceTest, SpansSerializeToValidChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "aropuf_trace_test.json";
  start_trace(path);
  ASSERT_TRUE(trace_enabled());
  {
    const TraceScope outer("outer", "test", {{"chips", JsonValue(40)}});
    const TraceScope inner("inner", "test");
  }
  EXPECT_EQ(trace_event_count(), 2U);
  ASSERT_TRUE(flush_trace());
  EXPECT_FALSE(trace_enabled());

  const JsonValue doc = JsonValue::parse(read_file(path));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.as_object().at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.as_object().at("traceEvents").as_array();
  // process_name + thread_name metadata (both spans share one thread) + the
  // two spans.
  ASSERT_EQ(events.size(), 4U);
  bool saw_outer = false;
  for (const JsonValue& event : events) {
    const auto& e = event.as_object();
    // The validator (scripts/validate_manifest.py --trace) requires these on
    // every event, metadata included.
    EXPECT_TRUE(e.contains("ph"));
    EXPECT_TRUE(e.contains("ts"));
    EXPECT_TRUE(e.contains("tid"));
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("name"));
    if (e.at("name").as_string() == "outer") {
      saw_outer = true;
      EXPECT_EQ(e.at("ph").as_string(), "X");
      EXPECT_EQ(e.at("cat").as_string(), "test");
      EXPECT_TRUE(e.contains("dur"));
      EXPECT_EQ(e.at("args").as_object().at("chips").as_number(), 40.0);
    }
  }
  EXPECT_TRUE(saw_outer);
  std::remove(path.c_str());
}

TEST(TraceTest, SpansRecordTheirThreadIds) {
  const std::string path = ::testing::TempDir() + "aropuf_trace_threads.json";
  start_trace(path);
  {
    const TraceScope main_span("on-main", "test");
  }
  std::thread worker([] { const TraceScope span("on-worker", "test"); });
  worker.join();
  ASSERT_TRUE(flush_trace());

  const JsonValue doc = JsonValue::parse(read_file(path));
  double main_tid = -1.0;
  double worker_tid = -1.0;
  for (const JsonValue& event : doc.as_object().at("traceEvents").as_array()) {
    const auto& e = event.as_object();
    if (e.at("name").as_string() == "on-main") main_tid = e.at("tid").as_number();
    if (e.at("name").as_string() == "on-worker") worker_tid = e.at("tid").as_number();
  }
  EXPECT_GE(main_tid, 0.0);
  EXPECT_GE(worker_tid, 0.0);
  EXPECT_NE(main_tid, worker_tid);
  std::remove(path.c_str());
}

TEST(TraceTest, ProcessAndThreadLabelsFlowIntoMetadataEvents) {
  const std::string path = ::testing::TempDir() + "aropuf_trace_labels.json";
  start_trace(path);
  set_trace_process_label("worker host:7");
  set_trace_thread_label("worker main");
  {
    const TraceScope span("labeled", "test");
  }
  ASSERT_TRUE(flush_trace());

  const JsonValue doc = JsonValue::parse(read_file(path));
  bool saw_process = false;
  bool saw_thread = false;
  for (const JsonValue& event : doc.as_object().at("traceEvents").as_array()) {
    const auto& e = event.as_object();
    if (e.at("ph").as_string() != "M") continue;
    const std::string label = e.at("args").as_object().at("name").as_string();
    if (e.at("name").as_string() == "process_name") {
      saw_process = true;
      EXPECT_EQ(label, "worker host:7");
    }
    if (e.at("name").as_string() == "thread_name") {
      saw_thread = true;
      EXPECT_EQ(label, "worker main");
    }
  }
  EXPECT_TRUE(saw_process);
  EXPECT_TRUE(saw_thread);
  std::remove(path.c_str());
}

TEST(TraceTest, BufferedSessionDrainsEventsForTheWire) {
  // The fleet worker path: no file, spans accumulate in memory and ship
  // inside METRICS frames via drain_trace_events().
  start_trace_buffered();
  ASSERT_TRUE(trace_enabled());
  set_trace_thread_label("worker main");
  {
    const TraceScope span("shippable", "fleet");
  }
  EXPECT_EQ(trace_event_count(), 1U);

  JsonValue::Array drained = drain_trace_events();
  ASSERT_EQ(drained.size(), 1U);
  const auto& e = drained[0].as_object();
  EXPECT_EQ(e.at("name").as_string(), "shippable");
  EXPECT_EQ(e.at("ph").as_string(), "X");
  // Wire form: steady-clock ts + transport-only thread label, NO pid — the
  // coordinator's merge assigns the synthetic one.
  EXPECT_FALSE(e.contains("pid"));
  EXPECT_EQ(e.at("tname").as_string(), "worker main");

  // Draining empties the buffer without ending the session.
  EXPECT_EQ(trace_event_count(), 0U);
  EXPECT_TRUE(trace_enabled());
  EXPECT_TRUE(drain_trace_events().empty());
  // A buffer-only session flushes as a no-op success (nothing to write).
  EXPECT_TRUE(flush_trace());
  EXPECT_FALSE(trace_enabled());
}

TEST(TraceTest, TraceEpochAnchorsSteadyTimestampsToWallClock) {
  // epoch + steady_now_us()/1000 must reconstruct "now" to within a coarse
  // tolerance — this is the invariant the fleet timeline merge relies on.
  const double epoch_ms = trace_epoch_unix_ms();
  const double reconstructed_ms =
      epoch_ms + static_cast<double>(steady_now_us()) / 1000.0;
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  EXPECT_NEAR(reconstructed_ms, static_cast<double>(wall_ms), 250.0);
}

TEST(TraceTest, FlushToUnwritablePathFails) {
  start_trace("/nonexistent-dir/trace.json");
  {
    const TraceScope span("span", "test");
  }
  EXPECT_FALSE(flush_trace());
  EXPECT_FALSE(trace_enabled());  // the session still ends
}

TEST(TraceTest, CounterEventsSerializeWithoutDuration) {
  const std::string path = ::testing::TempDir() + "aropuf_trace_counters.json";
  start_trace(path);
  trace_counter("resource.rss_mib", {{"rss_mib", 128.5}});
  trace_counter("resource.cpu_ms", {{"user", 10.0}, {"sys", 2.0}});
  {
    const TraceScope span("work", "test");  // the validator still wants one X
  }
  ASSERT_TRUE(flush_trace());

  const JsonValue doc = JsonValue::parse(read_file(path));
  const auto& events = doc.as_object().at("traceEvents").as_array();
  int counter_events = 0;
  for (const JsonValue& event : events) {
    const auto& e = event.as_object();
    if (e.at("ph").as_string() != "C") continue;
    ++counter_events;
    // Counter events are instantaneous: a 'dur' would make Perfetto render
    // them as broken slices instead of a counter track.
    EXPECT_FALSE(e.contains("dur"));
    EXPECT_EQ(e.at("cat").as_string(), "resource");
    ASSERT_TRUE(e.contains("args"));
    for (const auto& [series, value] : e.at("args").as_object()) {
      (void)series;
      EXPECT_TRUE(value.is_number());
    }
    if (e.at("name").as_string() == "resource.cpu_ms") {
      EXPECT_EQ(e.at("args").as_object().size(), 2U);
      EXPECT_DOUBLE_EQ(e.at("args").as_object().at("user").as_number(), 10.0);
    }
  }
  EXPECT_EQ(counter_events, 2);
  std::remove(path.c_str());
}

TEST(TraceTest, CounterEventsAreNoopsWhenDisabled) {
  ASSERT_TRUE(flush_trace());
  EXPECT_FALSE(trace_enabled());
  trace_counter("resource.rss_mib", {{"rss_mib", 1.0}});
  EXPECT_EQ(trace_event_count(), 0U);
}

TEST(TraceTest, CompleteEventsCoverTheGivenStart) {
  const std::string path = ::testing::TempDir() + "aropuf_trace_complete.json";
  start_trace(path);
  const std::uint64_t start = steady_now_us();
  JsonValue::Object args;
  args["ipc"] = JsonValue(1.5);
  trace_complete("profiled", "prof", start, std::move(args));
  ASSERT_TRUE(flush_trace());

  const JsonValue doc = JsonValue::parse(read_file(path));
  bool saw = false;
  for (const JsonValue& event : doc.as_object().at("traceEvents").as_array()) {
    const auto& e = event.as_object();
    if (e.at("name").as_string() != "profiled") continue;
    saw = true;
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_TRUE(e.contains("dur"));
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_DOUBLE_EQ(e.at("args").as_object().at("ipc").as_number(), 1.5);
  }
  EXPECT_TRUE(saw);
  std::remove(path.c_str());
}

TEST(TraceTest, RestartDiscardsBufferedSpans) {
  const std::string path = ::testing::TempDir() + "aropuf_trace_restart.json";
  start_trace(path);
  {
    const TraceScope span("first", "test");
  }
  EXPECT_EQ(trace_event_count(), 1U);
  start_trace(path);
  EXPECT_EQ(trace_event_count(), 0U);
  ASSERT_TRUE(flush_trace());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aropuf::telemetry
