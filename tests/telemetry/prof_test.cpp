#include "telemetry/prof.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aropuf::telemetry {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Every test starts from a clean slate: no profiling env, no cached mode,
// empty metrics.  The suite must pass identically on machines with and
// without perf_event access — counter-dependent assertions are gated on
// counters_active(), never assumed.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("AROPUF_PROF");
    unsetenv("AROPUF_PROF_RESOURCE");
    unsetenv("AROPUF_PROF_INTERVAL_MS");
    unsetenv("AROPUF_PROF_FORCE_FALLBACK");
    prof_reset_for_test();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    unsetenv("AROPUF_PROF");
    unsetenv("AROPUF_PROF_RESOURCE");
    unsetenv("AROPUF_PROF_INTERVAL_MS");
    unsetenv("AROPUF_PROF_FORCE_FALLBACK");
    prof_reset_for_test();
    MetricsRegistry::global().reset();
  }
};

TEST_F(ProfTest, ModeOffByDefault) {
  EXPECT_EQ(prof_status().mode, ProfMode::kOff);
  EXPECT_TRUE(prof_status().fallback_reason.empty());
}

TEST_F(ProfTest, ForcedFallbackRecordsReason) {
  setenv("AROPUF_PROF", "on", 1);
  setenv("AROPUF_PROF_FORCE_FALLBACK", "1", 1);
  prof_reset_for_test();
  EXPECT_EQ(prof_status().mode, ProfMode::kFallback);
  EXPECT_FALSE(prof_status().fallback_reason.empty());
}

TEST_F(ProfTest, ProfOnResolvesToCountersOrFallbackWithReason) {
  setenv("AROPUF_PROF", "on", 1);
  prof_reset_for_test();
  const ProfStatus& status = prof_status();
  // Which branch we land on depends on the machine (PMU, paranoid level),
  // but the downgrade must never be silent.
  if (status.mode == ProfMode::kFallback) {
    EXPECT_FALSE(status.fallback_reason.empty());
  } else {
    EXPECT_EQ(status.mode, ProfMode::kCounters);
    EXPECT_TRUE(status.fallback_reason.empty());
  }
}

// The degraded path is the one CI actually exercises on PMU-less runners:
// even with profiling off a CounterScope still measures wall time and
// records the wall-only prof.* series — what it must never do is fabricate
// hardware numbers.
TEST_F(ProfTest, ScopeInOffModeStillMeasuresWallTime) {
  {
    CounterScope scope("off-scope");
    const CounterDelta mid = scope.sample();
    EXPECT_FALSE(mid.counters_valid);
    EXPECT_GE(mid.wall_ms, 0.0);
  }
  const JsonValue snap = MetricsRegistry::global().snapshot_json();
  const auto& obj = snap.as_object();
  EXPECT_EQ(obj.at("counters").as_object().at("prof.scopes").as_number(), 1.0);
  EXPECT_FALSE(obj.at("counters").as_object().contains("prof.cycles"));
  EXPECT_FALSE(obj.at("gauges").as_object().contains("prof.ipc"));
}

TEST_F(ProfTest, ScopeInFallbackModeStillRecordsWallMetrics) {
  setenv("AROPUF_PROF", "on", 1);
  setenv("AROPUF_PROF_FORCE_FALLBACK", "1", 1);
  prof_reset_for_test();
  { CounterScope scope("fallback-scope"); }
  const JsonValue snap = MetricsRegistry::global().snapshot_json();
  const auto& obj = snap.as_object();
  EXPECT_EQ(obj.at("counters").as_object().at("prof.scopes").as_number(), 1.0);
  EXPECT_TRUE(obj.at("histograms").as_object().contains("prof.scope_wall_ms"));
  // Hardware series must be absent — a fallback run that fabricates IPC
  // numbers is worse than one that reports none.
  EXPECT_FALSE(obj.at("counters").as_object().contains("prof.cycles"));
  EXPECT_FALSE(obj.at("gauges").as_object().contains("prof.ipc"));
}

TEST_F(ProfTest, DeltaDerivedRatiosGuardAgainstZeroDenominators) {
  CounterDelta d;
  EXPECT_EQ(d.ipc(), 0.0);
  EXPECT_EQ(d.cache_miss_rate(), 0.0);
  EXPECT_EQ(d.ghz(), 0.0);
  d.counters_valid = true;
  d.cache_valid = true;
  d.cycles = 1000;
  d.instructions = 2500;
  d.cache_references = 100;
  d.cache_misses = 25;
  d.task_clock_ms = 0.001;
  EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(d.cache_miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(d.ghz(), 1.0);
  const JsonValue::Object obj = d.to_json();
  EXPECT_TRUE(obj.contains("cycles"));
  EXPECT_TRUE(obj.contains("ipc"));
  EXPECT_TRUE(obj.contains("cache_miss_rate"));
}

TEST_F(ProfTest, FallbackDeltaSerializesOnlyWallAndCpu) {
  CounterDelta d;
  d.wall_ms = 5.0;
  d.cpu_ms = 4.0;
  const JsonValue::Object obj = d.to_json();
  EXPECT_TRUE(obj.contains("wall_ms"));
  EXPECT_TRUE(obj.contains("cpu_ms"));
  EXPECT_FALSE(obj.contains("cycles"));
  EXPECT_FALSE(obj.contains("ipc"));
}

TEST_F(ProfTest, PeakRssIsPositiveAndCoversCurrent) {
  const long peak = peak_rss_kib();
  const long current = current_rss_kib();
  EXPECT_GT(peak, 0);
  EXPECT_GT(current, 0);
  // A process's peak can never be below what it holds right now.
  EXPECT_LE(current, peak + 1024);  // slack: statm and rusage sample at
                                    // different instants
}

TEST_F(ProfTest, ResourceSamplerWritesMonotonicTimeline) {
  const std::string path = ::testing::TempDir() + "aropuf_prof_resource.jsonl";
  std::remove(path.c_str());
  ResourceSampler::Options opts;
  opts.jsonl_path = path;
  opts.interval_ms = 1.0;  // clamps to the 10 ms floor
  opts.chrome_counters = false;
  {
    ResourceSampler sampler(opts);
    EXPECT_DOUBLE_EQ(sampler.interval_ms(), 10.0);
    // First sample is immediate; stop() takes a final one, so >= 2 without
    // ever sleeping a full interval in the test.
    sampler.stop();
    EXPECT_GE(sampler.samples(), 2U);
    EXPECT_TRUE(sampler.ok());
    EXPECT_EQ(sampler.path(), path);
  }
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  double prev_ts = 0.0;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const JsonValue sample = JsonValue::parse(line);
    const auto& obj = sample.as_object();
    const double ts = obj.at("ts_unix_ms").as_number();
    EXPECT_GT(ts, 0.0);
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    EXPECT_GE(obj.at("rss_kib").as_number(), 0.0);
    EXPECT_GE(obj.at("peak_rss_kib").as_number(), obj.at("rss_kib").as_number());
    EXPECT_GE(obj.at("cpu_user_ms").as_number(), 0.0);
    EXPECT_GE(obj.at("cpu_sys_ms").as_number(), 0.0);
    EXPECT_GE(obj.at("threads").as_number(), 1.0);
    ++count;
  }
  EXPECT_GE(count, 2);
  std::remove(path.c_str());
}

TEST_F(ProfTest, ResourceSamplerLatchesStreamFailure) {
  // A missing parent directory is created on demand, so an unopenable path
  // needs a parent that exists as a plain file — that fails everywhere,
  // including when the suite runs as root.
  const std::string blocker = ::testing::TempDir() + "aropuf_prof_notadir";
  { std::ofstream make(blocker, std::ios::trunc); }
  ResourceSampler::Options opts;
  opts.jsonl_path = blocker + "/resource.jsonl";
  opts.chrome_counters = false;
  ResourceSampler sampler(opts);
  sampler.stop();
  EXPECT_FALSE(sampler.ok());
  std::remove(blocker.c_str());
}

TEST_F(ProfTest, ManifestProfileSectionAlwaysWellFormed) {
  const JsonValue section = profile_manifest_section();
  const auto& obj = section.as_object();
  EXPECT_EQ(obj.at("mode").as_string(), "off");
  EXPECT_TRUE(obj.contains("fallback_reason"));
  EXPECT_GT(obj.at("peak_rss_kib").as_number(), 0.0);
}

TEST_F(ProfTest, ForcedFallbackManifestSectionCarriesReason) {
  setenv("AROPUF_PROF", "on", 1);
  setenv("AROPUF_PROF_FORCE_FALLBACK", "1", 1);
  prof_reset_for_test();
  start_process_profile();
  EXPECT_TRUE(stop_process_profile());
  const JsonValue section = profile_manifest_section();
  const auto& obj = section.as_object();
  EXPECT_EQ(obj.at("mode").as_string(), "fallback");
  EXPECT_FALSE(obj.at("fallback_reason").as_string().empty());
}

TEST_F(ProfTest, ProcessProfileStartsSamplerFromResourceEnv) {
  const std::string path = ::testing::TempDir() + "aropuf_prof_env.jsonl";
  std::remove(path.c_str());
  setenv("AROPUF_PROF_RESOURCE", path.c_str(), 1);
  setenv("AROPUF_PROF_INTERVAL_MS", "10", 1);
  prof_reset_for_test();
  start_process_profile();
  start_process_profile();  // idempotent
  EXPECT_TRUE(stop_process_profile());
  const JsonValue section = profile_manifest_section();
  const auto& obj = section.as_object();
  ASSERT_TRUE(obj.contains("sampler"));
  const auto& sampler = obj.at("sampler").as_object();
  EXPECT_DOUBLE_EQ(sampler.at("interval_ms").as_number(), 10.0);
  EXPECT_GE(sampler.at("samples").as_number(), 1.0);
  EXPECT_TRUE(sampler.at("ok").as_bool());
  EXPECT_FALSE(read_file(path).empty());
  std::remove(path.c_str());
}

TEST_F(ProfTest, StopWithoutStartIsSafe) {
  EXPECT_TRUE(stop_process_profile());
}

}  // namespace
}  // namespace aropuf::telemetry
