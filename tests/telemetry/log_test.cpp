#include "telemetry/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace aropuf::telemetry {
namespace {

// Captured lines for the test sink (LogSink is a plain function pointer, so
// the buffer has to be static).
std::vector<std::string>& captured() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_sink(std::string_view line) { captured().emplace_back(line); }

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured().clear();
    set_log_sink(&capture_sink);
    set_log_format(LogFormat::kText);
    set_log_level(LogLevel::kTrace);
  }

  void TearDown() override {
    set_log_sink(nullptr);
    unsetenv("AROPUF_LOG");
    unsetenv("AROPUF_LOG_FORMAT");
    reset_log_from_environment();
  }
};

TEST_F(LogTest, LevelFilteringDropsRecordsBelowThreshold) {
  set_log_level(LogLevel::kInfo);
  ARO_LOG_DEBUG("test", "dropped");
  ARO_LOG_TRACE("test", "dropped too");
  EXPECT_TRUE(captured().empty());
  ARO_LOG_INFO("test", "kept");
  ARO_LOG_ERROR("test", "kept too");
  ASSERT_EQ(captured().size(), 2U);
  EXPECT_NE(captured()[0].find("kept"), std::string::npos);
}

TEST_F(LogTest, OffDisablesEverything) {
  set_log_level(LogLevel::kOff);
  ARO_LOG_ERROR("test", "dropped");
  EXPECT_TRUE(captured().empty());
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, TextFormatCarriesComponentMessageAndFields) {
  ARO_LOG_WARN("engine", "queue is deep", {"depth", JsonValue(42)},
               {"name", JsonValue("worker")});
  ASSERT_EQ(captured().size(), 1U);
  const std::string& line = captured()[0];
  EXPECT_NE(line.find("warn"), std::string::npos);
  EXPECT_NE(line.find("[engine]"), std::string::npos);
  EXPECT_NE(line.find("queue is deep"), std::string::npos);
  EXPECT_NE(line.find("depth=42"), std::string::npos);
  EXPECT_NE(line.find("name=\"worker\""), std::string::npos);
}

TEST_F(LogTest, JsonFormatIsParsableAndEscaped) {
  set_log_format(LogFormat::kJson);
  ARO_LOG_ERROR("csv", "write \"failed\"\nhard",
                {"path", JsonValue("/tmp/has \"quotes\".csv")});
  ASSERT_EQ(captured().size(), 1U);
  // Embedded quotes and the newline must be escaped: the record is one line
  // that parses back to the original strings.
  EXPECT_EQ(captured()[0].find('\n'), std::string::npos);
  const JsonValue record = JsonValue::parse(captured()[0]);
  ASSERT_TRUE(record.is_object());
  EXPECT_EQ(record.as_object().at("level").as_string(), "error");
  EXPECT_EQ(record.as_object().at("component").as_string(), "csv");
  EXPECT_EQ(record.as_object().at("message").as_string(), "write \"failed\"\nhard");
  const auto& fields = record.as_object().at("fields").as_object();
  EXPECT_EQ(fields.at("path").as_string(), "/tmp/has \"quotes\".csv");
}

TEST_F(LogTest, FormatLogLinePinsTheWireFormat) {
  const std::string line =
      format_log_line(LogFormat::kJson, LogLevel::kInfo, "c", "m", {{"k", JsonValue(true)}});
  const JsonValue record = JsonValue::parse(line);
  EXPECT_TRUE(record.as_object().at("fields").as_object().at("k").as_bool());
  EXPECT_TRUE(record.as_object().contains("elapsed_ms"));
}

TEST_F(LogTest, ParseLogLevelAcceptsAllNamesAndFallsBack) {
  EXPECT_EQ(parse_log_level("trace", LogLevel::kOff), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kTrace), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

TEST_F(LogTest, EnvironmentConfiguresLevelAndFormat) {
  setenv("AROPUF_LOG", "debug", 1);
  setenv("AROPUF_LOG_FORMAT", "json", 1);
  reset_log_from_environment();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  EXPECT_EQ(log_format(), LogFormat::kJson);

  // Programmatic overrides win until the environment is re-read.
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  reset_log_from_environment();
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  // Unset (or garbage) falls back to warn / text.
  unsetenv("AROPUF_LOG");
  setenv("AROPUF_LOG_FORMAT", "xml", 1);
  reset_log_from_environment();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  EXPECT_EQ(log_format(), LogFormat::kText);
}

}  // namespace
}  // namespace aropuf::telemetry
