#include "puf/masking.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

class MaskingTest : public ::testing::Test {
 protected:
  RoPuf make_chip(std::uint64_t index = 0) const {
    return RoPuf(tech_, PufConfig::aro(256), RngFabric(21).child("chip", index));
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
};

TEST_F(MaskingTest, ConfigFactories) {
  const auto nominal = ScreeningConfig::nominal_only(7);
  EXPECT_EQ(nominal.repeats, 7);
  EXPECT_TRUE(nominal.corners.empty());
  const auto full = ScreeningConfig::full_corners(tech_, 3);
  EXPECT_EQ(full.repeats, 3);
  EXPECT_EQ(full.corners.size(), 4U);
  EXPECT_NO_THROW(full.validate());
}

TEST_F(MaskingTest, ConfigValidation) {
  ScreeningConfig bad = ScreeningConfig::nominal_only(0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ScreeningConfig::nominal_only(1);
  bad.corners.push_back(OperatingPoint{0.0, 300.0});
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST_F(MaskingTest, ScreeningIsDeterministic) {
  const RoPuf chip = make_chip();
  const auto cfg = ScreeningConfig::nominal_only(5);
  const StabilityMask a = screen_stability(chip, cfg);
  const StabilityMask b = screen_stability(chip, cfg);
  EXPECT_EQ(a.keep, b.keep);
}

TEST_F(MaskingTest, MostBitsSurviveNominalScreening) {
  const RoPuf chip = make_chip();
  const StabilityMask mask = screen_stability(chip, ScreeningConfig::nominal_only(5));
  EXPECT_EQ(mask.keep.size(), chip.response_bits());
  // Noise floor is ~1-2 %: the large majority of bits is stable.
  EXPECT_GT(mask.stable_fraction(), 0.80);
  EXPECT_LT(mask.stable_fraction(), 1.0 + 1e-12);
}

TEST_F(MaskingTest, CornerScreeningRemovesMoreBits) {
  const RoPuf chip = make_chip();
  const StabilityMask nominal = screen_stability(chip, ScreeningConfig::nominal_only(3));
  const StabilityMask corners =
      screen_stability(chip, ScreeningConfig::full_corners(tech_, 3));
  EXPECT_LE(corners.stable_count(), nominal.stable_count());
  EXPECT_GT(corners.stable_count(), 0U);
}

TEST_F(MaskingTest, MoreRepeatsNeverAddBitsBack) {
  const RoPuf chip = make_chip();
  const StabilityMask few = screen_stability(chip, ScreeningConfig::nominal_only(2));
  ScreeningConfig more_cfg = ScreeningConfig::nominal_only(6);
  const StabilityMask more = screen_stability(chip, more_cfg);
  // The extra reads of `more` are a superset of `few`'s reads (same base
  // index), so its mask can only lose bits.
  for (std::size_t i = 0; i < few.keep.size(); ++i) {
    if (more.keep.get(i)) {
      EXPECT_TRUE(few.keep.get(i)) << "bit " << i;
    }
  }
}

TEST_F(MaskingTest, ApplyMaskCompacts) {
  StabilityMask mask;
  mask.keep = BitVector::from_string("10110");
  const BitVector response = BitVector::from_string("11010");
  const BitVector masked = apply_mask(response, mask);
  EXPECT_EQ(masked.to_string(), "101");
}

TEST_F(MaskingTest, ApplyMaskRejectsLengthMismatch) {
  StabilityMask mask;
  mask.keep = BitVector(4);
  EXPECT_THROW(apply_mask(BitVector(5), mask), std::invalid_argument);
}

TEST_F(MaskingTest, MaskedBitsAreMoreReliableUnderNoise) {
  const RoPuf chip = make_chip();
  const StabilityMask mask = screen_stability(chip, ScreeningConfig::nominal_only(8));
  const auto op = chip.nominal_op();
  const BitVector golden = chip.evaluate(op, 0);
  double raw_errors = 0.0;
  double masked_errors = 0.0;
  constexpr int kReads = 20;
  for (std::uint64_t e = 1; e <= kReads; ++e) {
    const BitVector reading = chip.evaluate(op, e);
    raw_errors += fractional_hamming_distance(golden, reading);
    masked_errors +=
        fractional_hamming_distance(apply_mask(golden, mask), apply_mask(reading, mask));
  }
  EXPECT_LT(masked_errors, raw_errors);
}

TEST_F(MaskingTest, MaskIsChipSpecific) {
  const RoPuf a = make_chip(0);
  const RoPuf b = make_chip(1);
  const auto cfg = ScreeningConfig::nominal_only(5);
  const StabilityMask ma = screen_stability(a, cfg);
  const StabilityMask mb = screen_stability(b, cfg);
  EXPECT_FALSE(ma.keep == mb.keep);
}

}  // namespace
}  // namespace aropuf
