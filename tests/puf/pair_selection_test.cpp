#include "puf/pair_selection.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

class PairSelectionTest : public ::testing::Test {
 protected:
  RoPuf make_chip(std::uint64_t index = 0) const {
    return RoPuf(tech_, PufConfig::aro(256), RngFabric(33).child("chip", index));
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
};

TEST_F(PairSelectionTest, SelectionShapeMatchesGroups) {
  const RoPuf chip = make_chip();
  Xoshiro256 rng(1);
  const auto sel = select_max_margin_pairs(chip, 4, chip.nominal_op(), rng);
  EXPECT_EQ(sel.group_size, 4);
  EXPECT_EQ(sel.pairs.size(), 64U);
  EXPECT_EQ(sel.response_bits(), 64U);
  for (std::size_t g = 0; g < sel.pairs.size(); ++g) {
    const auto [a, b] = sel.pairs[g];
    const int base = static_cast<int>(g) * 4;
    EXPECT_GE(a, base);
    EXPECT_LT(a, base + 4);
    EXPECT_GT(b, a);
    EXPECT_LT(b, base + 4);
  }
}

TEST_F(PairSelectionTest, PicksTheWidestTrueMargin) {
  // With enough repeats the measured choice must match the noiseless
  // widest-margin pair in nearly every group.
  const RoPuf chip = make_chip();
  const auto op = chip.nominal_op();
  Xoshiro256 rng(2);
  const auto sel = select_max_margin_pairs(chip, 4, op, rng, /*repeats=*/9);
  int matches = 0;
  for (std::size_t g = 0; g < sel.pairs.size(); ++g) {
    const int base = static_cast<int>(g) * 4;
    std::pair<int, int> best{base, base + 1};
    double best_margin = -1.0;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        const double margin =
            std::abs(chip.oscillators()[static_cast<std::size_t>(base + i)].frequency(op) -
                     chip.oscillators()[static_cast<std::size_t>(base + j)].frequency(op));
        if (margin > best_margin) {
          best_margin = margin;
          best = {base + i, base + j};
        }
      }
    }
    if (sel.pairs[g] == best) ++matches;
  }
  EXPECT_GT(matches, 58);  // allow a couple of near-tie groups
}

TEST_F(PairSelectionTest, EvaluateIsStableAcrossReads) {
  const RoPuf chip = make_chip();
  const auto op = chip.nominal_op();
  Xoshiro256 rng(3);
  const auto sel = select_max_margin_pairs(chip, 4, op, rng);
  const BitVector a = evaluate_with_pairs(chip, sel, op, rng);
  const BitVector b = evaluate_with_pairs(chip, sel, op, rng);
  // Max-margin bits are far more stable than the noise floor: expect zero
  // or near-zero disagreement across reads.
  EXPECT_LE(hamming_distance(a, b), 1U);
}

TEST_F(PairSelectionTest, WiderGroupsSurviveAgingBetter) {
  RoPuf fixed_chip = make_chip(1);
  RoPuf selected_chip = make_chip(1);
  const auto op = fixed_chip.nominal_op();
  Xoshiro256 rng(4);

  // Baseline: fixed adjacent pairs = group size 2 (no freedom).
  const auto fixed_sel = select_max_margin_pairs(fixed_chip, 2, op, rng);
  const auto wide_sel = select_max_margin_pairs(selected_chip, 8, op, rng);

  const BitVector fixed_golden = evaluate_with_pairs(fixed_chip, fixed_sel, op, rng);
  const BitVector wide_golden = evaluate_with_pairs(selected_chip, wide_sel, op, rng);

  fixed_chip.age_years(10.0);
  selected_chip.age_years(10.0);

  const BitVector fixed_aged = evaluate_with_pairs(fixed_chip, fixed_sel, op, rng);
  const BitVector wide_aged = evaluate_with_pairs(selected_chip, wide_sel, op, rng);

  const double fixed_ber = fractional_hamming_distance(fixed_golden, fixed_aged);
  const double wide_ber = fractional_hamming_distance(wide_golden, wide_aged);
  EXPECT_LT(wide_ber, fixed_ber);
}

TEST_F(PairSelectionTest, GroupSizeTwoEqualsAdjacentPairing) {
  const RoPuf chip = make_chip();
  Xoshiro256 rng(5);
  const auto sel = select_max_margin_pairs(chip, 2, chip.nominal_op(), rng);
  for (std::size_t g = 0; g < sel.pairs.size(); ++g) {
    EXPECT_EQ(sel.pairs[g].first, static_cast<int>(2 * g));
    EXPECT_EQ(sel.pairs[g].second, static_cast<int>(2 * g + 1));
  }
}

TEST_F(PairSelectionTest, RejectsBadArguments) {
  const RoPuf chip = make_chip();
  Xoshiro256 rng(6);
  EXPECT_THROW(select_max_margin_pairs(chip, 1, chip.nominal_op(), rng),
               std::invalid_argument);
  EXPECT_THROW(select_max_margin_pairs(chip, 5, chip.nominal_op(), rng),
               std::invalid_argument);  // 256 % 5 != 0
  EXPECT_THROW(select_max_margin_pairs(chip, 4, chip.nominal_op(), rng, 0),
               std::invalid_argument);
  SelectedPairs empty;
  EXPECT_THROW(evaluate_with_pairs(chip, empty, chip.nominal_op(), rng),
               std::invalid_argument);
  SelectedPairs bad;
  bad.pairs = {{0, 999}};
  EXPECT_THROW(evaluate_with_pairs(chip, bad, chip.nominal_op(), rng), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
