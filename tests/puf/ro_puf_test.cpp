#include "puf/ro_puf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/statistics.hpp"

namespace aropuf {
namespace {

class RoPufTest : public ::testing::Test {
 protected:
  RoPuf make_chip(std::uint64_t chip_index = 0, PufConfig cfg = PufConfig::aro(64)) const {
    return RoPuf(tech_, std::move(cfg), fabric_.child("chip", chip_index));
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
  RngFabric fabric_{2014};
};

TEST_F(RoPufTest, ConstructionMatchesConfig) {
  const RoPuf chip = make_chip();
  EXPECT_EQ(chip.oscillators().size(), 64U);
  EXPECT_EQ(chip.pairs().size(), 32U);
  EXPECT_EQ(chip.response_bits(), 32U);
}

TEST_F(RoPufTest, PositionsFollowRowMajorGrid) {
  const RoPuf chip = make_chip();
  const int width = chip.config().array_width;
  for (std::size_t i = 0; i < chip.oscillators().size(); ++i) {
    const Position p = chip.oscillators()[i].position();
    EXPECT_DOUBLE_EQ(p.x, static_cast<double>(static_cast<int>(i) % width));
    EXPECT_DOUBLE_EQ(p.y, static_cast<double>(static_cast<int>(i) / width));
  }
}

TEST_F(RoPufTest, SameSeedSameChip) {
  const RoPuf a = make_chip(5);
  const RoPuf b = make_chip(5);
  const auto op = a.nominal_op();
  EXPECT_EQ(a.evaluate(op, 0), b.evaluate(op, 0));
  EXPECT_EQ(a.noiseless_response(op), b.noiseless_response(op));
}

TEST_F(RoPufTest, DifferentSeedsDifferentChips) {
  const RoPuf a = make_chip(1);
  const RoPuf b = make_chip(2);
  const auto op = a.nominal_op();
  EXPECT_GT(hamming_distance(a.evaluate(op, 0), b.evaluate(op, 0)), 5U);
}

TEST_F(RoPufTest, SameEvalIndexReplaysNoise) {
  const RoPuf chip = make_chip();
  const auto op = chip.nominal_op();
  EXPECT_EQ(chip.evaluate(op, 3), chip.evaluate(op, 3));
}

TEST_F(RoPufTest, RepeatedEvaluationsMostlyStable) {
  const RoPuf chip = make_chip(0, PufConfig::aro(256));
  const auto op = chip.nominal_op();
  const BitVector golden = chip.evaluate(op, 0);
  RunningStats intra;
  for (std::uint64_t e = 1; e <= 20; ++e) {
    intra.add(fractional_hamming_distance(golden, chip.evaluate(op, e)));
  }
  EXPECT_LT(intra.mean(), 0.05);  // noise floor: a few percent at most
}

TEST_F(RoPufTest, NoiselessResponseIsNoiseFree) {
  const RoPuf chip = make_chip();
  const auto op = chip.nominal_op();
  EXPECT_EQ(chip.noiseless_response(op), chip.noiseless_response(op));
}

TEST_F(RoPufTest, MeasuredResponseTracksNoiseless) {
  const RoPuf chip = make_chip(0, PufConfig::aro(256));
  const auto op = chip.nominal_op();
  const double hd =
      fractional_hamming_distance(chip.noiseless_response(op), chip.evaluate(op, 0));
  EXPECT_LT(hd, 0.05);
}

TEST_F(RoPufTest, PairFrequencyDifferencesMatchNoiselessBits) {
  const RoPuf chip = make_chip();
  const auto op = chip.nominal_op();
  const auto diffs = chip.pair_frequency_differences(op);
  const BitVector bits = chip.noiseless_response(op);
  ASSERT_EQ(diffs.size(), bits.size());
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    EXPECT_EQ(bits.get(i), diffs[i] > 0.0);
  }
}

TEST_F(RoPufTest, AgingChangesSomeBitsConventional) {
  RoPuf chip(tech_, PufConfig::conventional(256), fabric_.child("chip", 9));
  const auto op = chip.nominal_op();
  const BitVector golden = chip.evaluate(op, 0);
  chip.age_years(10.0);
  const BitVector aged = chip.evaluate(op, 1);
  const double hd = fractional_hamming_distance(golden, aged);
  EXPECT_GT(hd, 0.10);  // conventional design degrades heavily
  EXPECT_LT(hd, 0.55);
}

TEST_F(RoPufTest, AroAgesFarLessThanConventional) {
  RoPuf aro(tech_, PufConfig::aro(256), fabric_.child("chip", 3));
  RoPuf conv(tech_, PufConfig::conventional(256), fabric_.child("chip", 3));
  const auto op = aro.nominal_op();
  const BitVector aro_golden = aro.evaluate(op, 0);
  const BitVector conv_golden = conv.evaluate(op, 0);
  aro.age_years(10.0);
  conv.age_years(10.0);
  const double aro_hd = fractional_hamming_distance(aro_golden, aro.evaluate(op, 1));
  const double conv_hd = fractional_hamming_distance(conv_golden, conv.evaluate(op, 1));
  EXPECT_LT(aro_hd, conv_hd * 0.6);
}

TEST_F(RoPufTest, ResetAgingRestoresGolden) {
  RoPuf chip(tech_, PufConfig::conventional(128), fabric_.child("chip", 4));
  const auto op = chip.nominal_op();
  const BitVector golden = chip.evaluate(op, 0);
  chip.age_years(10.0);
  chip.reset_aging();
  EXPECT_EQ(chip.evaluate(op, 0), golden);
}

TEST_F(RoPufTest, AgeInStepsNearlyEqualsAgeAtOnce) {
  // HCI cycles accrue at the RO's *current* frequency, which itself decays
  // with age, so yearly steps integrate slightly fewer cycles than one
  // 4-year step (which uses the fresh frequency throughout).  The first-
  // order discretization difference must stay well below mismatch scale.
  RoPuf once(tech_, PufConfig::conventional(64), fabric_.child("chip", 6));
  RoPuf steps(tech_, PufConfig::conventional(64), fabric_.child("chip", 6));
  once.age_years(4.0);
  for (int i = 0; i < 4; ++i) steps.age_years(1.0);
  const auto op = once.nominal_op();
  const auto& ro_once = once.oscillators()[0];
  const auto& ro_steps = steps.oscillators()[0];
  EXPECT_NEAR(ro_once.frequency(op), ro_steps.frequency(op),
              ro_once.frequency(op) * 1e-3);
  // Finer steps age (very slightly) less through the HCI term.
  EXPECT_GE(ro_steps.frequency(op), ro_once.frequency(op));
}

TEST_F(RoPufTest, NegativeYearsRejected) {
  RoPuf chip = make_chip();
  EXPECT_THROW(chip.age_years(-1.0), std::invalid_argument);
}

TEST_F(RoPufTest, MakePopulationProducesDistinctChips) {
  const auto chips = make_population(tech_, PufConfig::aro(64), 5, fabric_);
  ASSERT_EQ(chips.size(), 5U);
  const auto op = chips[0].nominal_op();
  for (std::size_t i = 0; i < chips.size(); ++i) {
    for (std::size_t j = i + 1; j < chips.size(); ++j) {
      EXPECT_GT(hamming_distance(chips[i].evaluate(op, 0), chips[j].evaluate(op, 0)), 3U);
    }
  }
}

TEST_F(RoPufTest, MakePopulationRejectsEmpty) {
  EXPECT_THROW(make_population(tech_, PufConfig::aro(64), 0, fabric_), std::invalid_argument);
}

TEST_F(RoPufTest, CopiedChipSharesTechnologySafely) {
  // RoPuf owns its TechnologyParams via shared_ptr: copies must stay valid
  // even after the source is destroyed.
  std::unique_ptr<RoPuf> original = std::make_unique<RoPuf>(
      tech_, PufConfig::aro(64), fabric_.child("chip", 8));
  const auto op = original->nominal_op();
  const BitVector expected = original->evaluate(op, 0);
  const RoPuf copy = *original;
  original.reset();
  EXPECT_EQ(copy.evaluate(op, 0), expected);
}

}  // namespace
}  // namespace aropuf
