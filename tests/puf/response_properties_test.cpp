// Parameterized property sweep over PUF configurations: invariants that
// must hold for every (pairing, stage count, array size) combination.
#include <gtest/gtest.h>

#include "metrics/uniqueness.hpp"
#include "puf/ro_puf.hpp"

namespace aropuf {
namespace {

struct ConfigCase {
  PairingStrategy pairing;
  int num_ros;
  int stages;
};

class ResponsePropertyTest : public ::testing::TestWithParam<ConfigCase> {
 protected:
  static PufConfig config_for(const ConfigCase& c) {
    PufConfig cfg;
    cfg.design = PufDesign::kCustom;
    cfg.label = "sweep";
    cfg.pairing = c.pairing;
    cfg.num_ros = c.num_ros;
    cfg.stages = c.stages;
    cfg.challenge_seed = 5;
    cfg.validate();
    return cfg;
  }
};

TEST_P(ResponsePropertyTest, ResponseLengthMatchesPairing) {
  const PufConfig cfg = config_for(GetParam());
  const RoPuf chip(TechnologyParams::cmos90(), cfg, RngFabric(1).child("chip", 0));
  EXPECT_EQ(chip.response_bits(), pairing_bits(cfg.pairing, cfg.num_ros));
  EXPECT_EQ(chip.evaluate(chip.nominal_op(), 0).size(), chip.response_bits());
  EXPECT_EQ(chip.oscillators().size(), static_cast<std::size_t>(cfg.num_ros));
}

TEST_P(ResponsePropertyTest, SameSiliconSameNoiselessResponse) {
  const PufConfig cfg = config_for(GetParam());
  const RoPuf a(TechnologyParams::cmos90(), cfg, RngFabric(2).child("chip", 7));
  const RoPuf b(TechnologyParams::cmos90(), cfg, RngFabric(2).child("chip", 7));
  EXPECT_EQ(a.noiseless_response(a.nominal_op()), b.noiseless_response(b.nominal_op()));
}

TEST_P(ResponsePropertyTest, ResponsesAreInformative) {
  // Any healthy configuration yields inter-chip HD within a sane band — it
  // must never collapse toward all-equal or all-complement.
  const PufConfig cfg = config_for(GetParam());
  const RngFabric fabric(3);
  std::vector<BitVector> responses;
  for (int c = 0; c < 8; ++c) {
    const RoPuf chip(TechnologyParams::cmos90(), cfg, fabric.child("chip", static_cast<std::uint64_t>(c)));
    responses.push_back(chip.evaluate(chip.nominal_op(), 0));
  }
  const double hd = compute_uniqueness(responses).stats.mean();
  EXPECT_GT(hd, 0.30);
  EXPECT_LT(hd, 0.70);
}

TEST_P(ResponsePropertyTest, AgingOnlyEverMovesBitsNotLength) {
  const PufConfig cfg = config_for(GetParam());
  RoPuf chip(TechnologyParams::cmos90(), cfg, RngFabric(4).child("chip", 0));
  const auto op = chip.nominal_op();
  const std::size_t bits = chip.evaluate(op, 0).size();
  chip.age_years(10.0);
  EXPECT_EQ(chip.evaluate(op, 1).size(), bits);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, ResponsePropertyTest,
    ::testing::Values(ConfigCase{PairingStrategy::kAdjacentDedicated, 64, 13},
                      ConfigCase{PairingStrategy::kAdjacentDedicated, 256, 5},
                      ConfigCase{PairingStrategy::kDistantDedicated, 64, 13},
                      ConfigCase{PairingStrategy::kDistantDedicated, 128, 21},
                      ConfigCase{PairingStrategy::kChainNeighbor, 64, 13},
                      ConfigCase{PairingStrategy::kRandomChallenge, 64, 13},
                      ConfigCase{PairingStrategy::kRandomChallenge, 128, 7}),
    [](const auto& info) {
      return std::string(1, "adcr"[static_cast<int>(info.param.pairing)]) +
             std::to_string(info.param.num_ros) + "x" + std::to_string(info.param.stages);
    });

}  // namespace
}  // namespace aropuf
