#include "puf/puf_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(PufConfigTest, ConventionalFactoryShape) {
  const auto c = PufConfig::conventional();
  EXPECT_EQ(c.design, PufDesign::kConventional);
  EXPECT_EQ(c.pairing, PairingStrategy::kDistantDedicated);
  EXPECT_DOUBLE_EQ(c.lifetime_profile.oscillation_fraction, 1.0);
  EXPECT_EQ(c.response_bits(), 128U);
}

TEST(PufConfigTest, AroFactoryShape) {
  const auto c = PufConfig::aro();
  EXPECT_EQ(c.design, PufDesign::kAro);
  EXPECT_EQ(c.pairing, PairingStrategy::kAdjacentDedicated);
  // Gated: active a tiny fraction of the lifetime.
  EXPECT_LT(c.lifetime_profile.oscillation_fraction, 1e-4);
  EXPECT_GT(c.lifetime_profile.oscillation_fraction, 0.0);
  EXPECT_TRUE(c.lifetime_profile.recovery_enabled);
  EXPECT_EQ(c.response_bits(), 128U);
}

TEST(PufConfigTest, FactoriesScaleWithRoCount) {
  EXPECT_EQ(PufConfig::aro(512).response_bits(), 256U);
  EXPECT_EQ(PufConfig::conventional(64).response_bits(), 32U);
}

TEST(PufConfigTest, ValidationCatchesBadGeometry) {
  PufConfig c = PufConfig::aro();
  c.num_ros = 7;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = PufConfig::aro();
  c.stages = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = PufConfig::aro();
  c.array_width = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = PufConfig::aro();
  c.measurement_window = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(PufConfigTest, DesignNames) {
  EXPECT_STREQ(to_string(PufDesign::kConventional), "conventional RO-PUF");
  EXPECT_STREQ(to_string(PufDesign::kAro), "ARO-PUF");
  EXPECT_STREQ(to_string(PufDesign::kCustom), "custom");
}

}  // namespace
}  // namespace aropuf
