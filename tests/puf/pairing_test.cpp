#include "puf/pairing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace aropuf {
namespace {

TEST(PairingTest, AdjacentDedicatedPairsNeighbours) {
  const auto pairs = make_pairs(PairingStrategy::kAdjacentDedicated, 8);
  ASSERT_EQ(pairs.size(), 4U);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, static_cast<int>(2 * i));
    EXPECT_EQ(pairs[i].second, static_cast<int>(2 * i + 1));
  }
}

TEST(PairingTest, DistantDedicatedSpansHalfArray) {
  const auto pairs = make_pairs(PairingStrategy::kDistantDedicated, 8);
  ASSERT_EQ(pairs.size(), 4U);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].second - pairs[i].first, 4);
  }
}

TEST(PairingTest, ChainNeighborOverlaps) {
  const auto pairs = make_pairs(PairingStrategy::kChainNeighbor, 5);
  ASSERT_EQ(pairs.size(), 4U);
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].second, pairs[i + 1].first);
  }
}

TEST(PairingTest, RandomChallengeIsPerfectMatching) {
  const auto pairs = make_pairs(PairingStrategy::kRandomChallenge, 64, 99);
  ASSERT_EQ(pairs.size(), 32U);
  std::set<int> used;
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(used.insert(a).second) << "RO " << a << " reused";
    EXPECT_TRUE(used.insert(b).second) << "RO " << b << " reused";
    EXPECT_GE(a, 0);
    EXPECT_LT(b, 64);
  }
  EXPECT_EQ(used.size(), 64U);
}

TEST(PairingTest, RandomChallengeDependsOnSeed) {
  const auto a = make_pairs(PairingStrategy::kRandomChallenge, 64, 1);
  const auto b = make_pairs(PairingStrategy::kRandomChallenge, 64, 2);
  const auto a2 = make_pairs(PairingStrategy::kRandomChallenge, 64, 1);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
}

TEST(PairingTest, DedicatedStrategiesUseEveryRoOnce) {
  for (const auto strategy :
       {PairingStrategy::kAdjacentDedicated, PairingStrategy::kDistantDedicated}) {
    const auto pairs = make_pairs(strategy, 32);
    std::set<int> used;
    for (const auto& [a, b] : pairs) {
      used.insert(a);
      used.insert(b);
    }
    EXPECT_EQ(used.size(), 32U) << to_string(strategy);
  }
}

TEST(PairingTest, BitCountsMatchStrategy) {
  EXPECT_EQ(pairing_bits(PairingStrategy::kAdjacentDedicated, 256), 128U);
  EXPECT_EQ(pairing_bits(PairingStrategy::kDistantDedicated, 256), 128U);
  EXPECT_EQ(pairing_bits(PairingStrategy::kRandomChallenge, 256), 128U);
  EXPECT_EQ(pairing_bits(PairingStrategy::kChainNeighbor, 256), 255U);
}

TEST(PairingTest, RejectsOddRoCountForDedicated) {
  EXPECT_THROW(make_pairs(PairingStrategy::kAdjacentDedicated, 7), std::invalid_argument);
  EXPECT_THROW(make_pairs(PairingStrategy::kDistantDedicated, 7), std::invalid_argument);
  EXPECT_THROW(make_pairs(PairingStrategy::kRandomChallenge, 7), std::invalid_argument);
}

TEST(PairingTest, RejectsTooFewRos) {
  EXPECT_THROW(make_pairs(PairingStrategy::kChainNeighbor, 1), std::invalid_argument);
  EXPECT_THROW((void)pairing_bits(PairingStrategy::kChainNeighbor, 1), std::invalid_argument);
}

TEST(PairingTest, NamesAreStable) {
  EXPECT_STREQ(to_string(PairingStrategy::kAdjacentDedicated), "adjacent-dedicated");
  EXPECT_STREQ(to_string(PairingStrategy::kDistantDedicated), "distant-dedicated");
  EXPECT_STREQ(to_string(PairingStrategy::kChainNeighbor), "chain-neighbor");
  EXPECT_STREQ(to_string(PairingStrategy::kRandomChallenge), "random-challenge");
}

}  // namespace
}  // namespace aropuf
