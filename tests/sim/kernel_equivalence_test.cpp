// End-to-end delay-backend equivalence: the E2 aging series and the E3
// uniqueness study must produce bit-identical results whether frequencies
// come from the per-RO reference walk, the batched SoA kernel, or the
// explicit AVX2 kernel — backend selection changes speed only, never a
// single reported number.  Also pins the RoPuf-level contract: responses,
// pair differences, and raw frequency vectors agree across backends on one
// chip through a full age/evaluate cycle.
#include <gtest/gtest.h>

#include <vector>

#include "circuit/delay_kernel.hpp"
#include "puf/ro_puf.hpp"
#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

/// Restores the backend to the environment/hardware default on scope exit.
struct BackendGuard {
  ~BackendGuard() { reset_delay_backend(); }
};

/// The backends this build can actually execute (kSimd only when available).
std::vector<DelayBackend> executable_backends() {
  std::vector<DelayBackend> backends{DelayBackend::kReference, DelayBackend::kBatched};
  if (simd_available()) backends.push_back(DelayBackend::kSimd);
  return backends;
}

PopulationConfig small_population() {
  PopulationConfig pop;
  pop.chips = 12;
  pop.seed = 77;
  return pop;
}

TEST(KernelEquivalence, AgingSeriesBitIdenticalAcrossBackends) {
  BackendGuard guard;
  const PopulationConfig pop = small_population();
  const double checkpoints[] = {2.0, 6.0, 10.0};

  set_delay_backend(DelayBackend::kReference);
  const AgingSeries reference = run_aging_series(pop, PufConfig::aro(), checkpoints);
  for (const DelayBackend backend : executable_backends()) {
    set_delay_backend(backend);
    const AgingSeries result = run_aging_series(pop, PufConfig::aro(), checkpoints);
    // Exact floating-point equality: the kernels guarantee bit-identical
    // frequencies, so every derived statistic matches exactly.
    EXPECT_EQ(reference.years, result.years) << to_string(backend);
    EXPECT_EQ(reference.mean_flip_percent, result.mean_flip_percent) << to_string(backend);
    EXPECT_EQ(reference.max_flip_percent, result.max_flip_percent) << to_string(backend);
  }
}

TEST(KernelEquivalence, UniquenessBitIdenticalAcrossBackends) {
  BackendGuard guard;
  const PopulationConfig pop = small_population();

  set_delay_backend(DelayBackend::kReference);
  const UniquenessExperimentResult reference = run_uniqueness(pop, PufConfig::conventional());
  for (const DelayBackend backend : executable_backends()) {
    set_delay_backend(backend);
    const UniquenessExperimentResult result = run_uniqueness(pop, PufConfig::conventional());
    EXPECT_EQ(reference.uniqueness.stats.count(), result.uniqueness.stats.count());
    EXPECT_EQ(reference.uniqueness.stats.mean(), result.uniqueness.stats.mean());
    EXPECT_EQ(reference.uniqueness.stats.variance(), result.uniqueness.stats.variance());
    EXPECT_EQ(reference.uniqueness.stats.min(), result.uniqueness.stats.min());
    EXPECT_EQ(reference.uniqueness.stats.max(), result.uniqueness.stats.max());
    for (std::size_t b = 0; b < reference.uniqueness.histogram.bins(); ++b) {
      EXPECT_EQ(reference.uniqueness.histogram.count(b), result.uniqueness.histogram.count(b));
    }
    EXPECT_EQ(reference.uniformity.mean(), result.uniformity.mean());
    EXPECT_EQ(reference.aliasing.mean(), result.aliasing.mean());
  }
}

TEST(KernelEquivalence, ChipLifecycleBitIdenticalAcrossBackends) {
  BackendGuard guard;
  const TechnologyParams tech = TechnologyParams::cmos90();
  const OperatingPoint op{tech.vdd_nominal, celsius(45.0)};

  // One full lifecycle per backend on identical silicon: fresh evaluation,
  // 5 years of aging, aged evaluation.
  struct Snapshot {
    std::vector<double> fresh_freqs;
    std::vector<double> aged_freqs;
    std::vector<double> pair_diffs;
    BitVector fresh_response{1};
    BitVector aged_response{1};
    BitVector noiseless{1};
  };
  std::vector<Snapshot> snapshots;
  for (const DelayBackend backend : executable_backends()) {
    set_delay_backend(backend);
    RoPuf chip(tech, PufConfig::aro(), RngFabric(42).child("chip", 0));
    Snapshot snap;
    snap.fresh_freqs = chip.fresh_ro_frequencies(op);
    snap.fresh_response = chip.evaluate(op);
    chip.age_years(5.0);
    snap.aged_freqs = chip.ro_frequencies(op);
    snap.pair_diffs = chip.pair_frequency_differences(op);
    snap.aged_response = chip.evaluate(op);
    snap.noiseless = chip.noiseless_response(op);
    snapshots.push_back(std::move(snap));
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[0].fresh_freqs, snapshots[i].fresh_freqs);
    EXPECT_EQ(snapshots[0].aged_freqs, snapshots[i].aged_freqs);
    EXPECT_EQ(snapshots[0].pair_diffs, snapshots[i].pair_diffs);
    EXPECT_TRUE(snapshots[0].fresh_response == snapshots[i].fresh_response);
    EXPECT_TRUE(snapshots[0].aged_response == snapshots[i].aged_response);
    EXPECT_TRUE(snapshots[0].noiseless == snapshots[i].noiseless);
  }
}

TEST(KernelEquivalence, FrequencyVectorsMatchPerRoAccessors) {
  BackendGuard guard;
  const TechnologyParams tech = TechnologyParams::cmos90();
  RoPuf chip(tech, PufConfig::aro(), RngFabric(7).child("chip", 3));
  chip.age_years(3.0);
  const OperatingPoint op = chip.nominal_op();
  for (const DelayBackend backend : executable_backends()) {
    set_delay_backend(backend);
    const std::vector<double> aged = chip.ro_frequencies(op);
    const std::vector<double> fresh = chip.fresh_ro_frequencies(op);
    ASSERT_EQ(aged.size(), chip.oscillators().size());
    for (std::size_t i = 0; i < aged.size(); ++i) {
      EXPECT_EQ(aged[i], chip.oscillators()[i].frequency(op)) << to_string(backend);
      EXPECT_EQ(fresh[i], chip.oscillators()[i].fresh_frequency(op)) << to_string(backend);
    }
  }
}

}  // namespace
}  // namespace aropuf
