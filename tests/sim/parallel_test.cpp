// ParallelExecutor contract tests: full index coverage, bit-identical
// scenario results at 1/2/8 threads (E2 aging + E3 uniqueness), exception
// propagation out of worker tasks, the AROPUF_THREADS environment override,
// and the single-thread inline fallback.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

/// Restores the global executor to the environment default on scope exit so
/// thread-count mutations never leak into other tests.
struct GlobalThreadCountGuard {
  ~GlobalThreadCountGuard() { ParallelExecutor::set_global_thread_count(0); }
};

/// setenv/unsetenv with restoration of the previous value.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

PopulationConfig small_population() {
  PopulationConfig pop;
  pop.chips = 12;
  pop.seed = 77;
  return pop;
}

TEST(ParallelExecutor, CoversEveryIndexExactlyOnce) {
  ParallelExecutor executor(4);
  std::vector<int> touched(1000, 0);  // slot i written only by task i
  executor.parallel_for(touched.size(), [&](std::size_t i) { ++touched[i]; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000);
  for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelExecutor, EmptyRangeIsANoOp) {
  ParallelExecutor executor(4);
  bool called = false;
  executor.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelExecutor, AgingSeriesBitIdenticalAcrossThreadCounts) {
  GlobalThreadCountGuard guard;
  const PopulationConfig pop = small_population();
  const double checkpoints[] = {2.0, 6.0, 10.0};

  ParallelExecutor::set_global_thread_count(1);
  const AgingSeries serial = run_aging_series(pop, PufConfig::aro(), checkpoints);
  for (const int threads : {2, 8}) {
    ParallelExecutor::set_global_thread_count(threads);
    const AgingSeries parallel = run_aging_series(pop, PufConfig::aro(), checkpoints);
    // Exact floating-point equality: the engine guarantees bit-identical
    // results at any thread count, not merely statistical agreement.
    EXPECT_EQ(serial.years, parallel.years) << threads << " threads";
    EXPECT_EQ(serial.mean_flip_percent, parallel.mean_flip_percent) << threads << " threads";
    EXPECT_EQ(serial.max_flip_percent, parallel.max_flip_percent) << threads << " threads";
  }
}

TEST(ParallelExecutor, UniquenessBitIdenticalAcrossThreadCounts) {
  GlobalThreadCountGuard guard;
  const PopulationConfig pop = small_population();

  ParallelExecutor::set_global_thread_count(1);
  const UniquenessExperimentResult serial = run_uniqueness(pop, PufConfig::conventional());
  for (const int threads : {2, 8}) {
    ParallelExecutor::set_global_thread_count(threads);
    const UniquenessExperimentResult parallel = run_uniqueness(pop, PufConfig::conventional());
    EXPECT_EQ(serial.uniqueness.stats.count(), parallel.uniqueness.stats.count());
    EXPECT_EQ(serial.uniqueness.stats.mean(), parallel.uniqueness.stats.mean());
    EXPECT_EQ(serial.uniqueness.stats.variance(), parallel.uniqueness.stats.variance());
    EXPECT_EQ(serial.uniqueness.stats.min(), parallel.uniqueness.stats.min());
    EXPECT_EQ(serial.uniqueness.stats.max(), parallel.uniqueness.stats.max());
    for (std::size_t b = 0; b < serial.uniqueness.histogram.bins(); ++b) {
      EXPECT_EQ(serial.uniqueness.histogram.count(b), parallel.uniqueness.histogram.count(b));
    }
    EXPECT_EQ(serial.uniformity.mean(), parallel.uniformity.mean());
    EXPECT_EQ(serial.aliasing.mean(), parallel.aliasing.mean());
  }
}

TEST(ParallelExecutor, PropagatesWorkerExceptions) {
  ParallelExecutor executor(4);
  try {
    executor.parallel_for(100, [](std::size_t i) {
      if (i == 37) throw std::runtime_error("task 37 failed");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 37 failed");
  }
  // The pool must stay usable after a failed job.
  std::vector<int> touched(64, 0);
  executor.parallel_for(touched.size(), [&](std::size_t i) { ++touched[i]; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 64);
}

TEST(ParallelExecutor, PropagatesOneOfManyExceptions) {
  ParallelExecutor executor(8);
  EXPECT_THROW(
      executor.parallel_for(256, [](std::size_t) { throw std::invalid_argument("boom"); }),
      std::invalid_argument);
}

TEST(ParallelExecutor, ThreadsEnvOverride) {
  {
    ScopedEnv env("AROPUF_THREADS", "1");
    EXPECT_EQ(default_thread_count(), 1);
    const ParallelExecutor executor;
    EXPECT_EQ(executor.thread_count(), 1);
  }
  {
    ScopedEnv env("AROPUF_THREADS", "7");
    EXPECT_EQ(default_thread_count(), 7);
  }
  // Malformed or non-positive values fall back to the hardware default.
  for (const char* bad : {"", "abc", "0", "-3", "2x"}) {
    ScopedEnv env("AROPUF_THREADS", bad);
    EXPECT_GE(default_thread_count(), 1) << "AROPUF_THREADS=" << bad;
  }
  {
    ScopedEnv env("AROPUF_THREADS", nullptr);
    EXPECT_GE(default_thread_count(), 1);
  }
}

TEST(ParallelExecutor, SingleThreadRunsInlineOnCaller) {
  ParallelExecutor executor(1);
  EXPECT_EQ(executor.thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(32);
  executor.parallel_for(ran_on.size(),
                        [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); });
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(ParallelExecutor, NestedCallsRunInlineWithoutDeadlock) {
  ParallelExecutor executor(4);
  std::vector<int> counts(16 * 16, 0);
  executor.parallel_for(16, [&](std::size_t outer) {
    // A nested parallel_for must not re-enter the pool (deadlock); it runs
    // serially on the worker that owns `outer`.
    ParallelExecutor::global().parallel_for(
        16, [&](std::size_t inner) { ++counts[outer * 16 + inner]; });
  });
  for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(ParallelExecutor, SetGlobalThreadCount) {
  GlobalThreadCountGuard guard;
  ParallelExecutor::set_global_thread_count(3);
  EXPECT_EQ(ParallelExecutor::global().thread_count(), 3);
  ParallelExecutor::set_global_thread_count(0);  // back to the default
  EXPECT_EQ(ParallelExecutor::global().thread_count(), default_thread_count());
}

TEST(ParallelMapChips, PreservesIndexOrder) {
  const auto squares =
      parallel_map_chips(100, [](std::size_t i) { return static_cast<double>(i * i); });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<double>(i * i));
  }
}

}  // namespace
}  // namespace aropuf
