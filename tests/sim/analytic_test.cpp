// Cross-validation of the closed-form reliability model against both exact
// numerical integration and the Monte Carlo simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/analytic.hpp"
#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

TEST(AnalyticFlipTest, KnownValues) {
  // sigma_a == sigma_0: atan(1)/pi = 1/4.
  EXPECT_NEAR(analytic_flip_probability(1.0, 1.0), 0.25, 1e-12);
  EXPECT_NEAR(analytic_flip_probability(0.0, 1.0), 0.0, 1e-12);
  // Huge disturbance: approaches 1/2.
  EXPECT_NEAR(analytic_flip_probability(1e6, 1.0), 0.5, 1e-5);
}

TEST(AnalyticFlipTest, MatchesMonteCarlo) {
  Xoshiro256 rng(3);
  for (const double ratio : {0.1, 0.5, 1.5}) {
    int flips = 0;
    constexpr int kTrials = 400000;
    for (int i = 0; i < kTrials; ++i) {
      const double d0 = rng.gaussian();
      const double a = ratio * rng.gaussian();
      if ((d0 > 0) != (d0 + a > 0)) ++flips;
    }
    const double mc = static_cast<double>(flips) / kTrials;
    EXPECT_NEAR(mc, analytic_flip_probability(ratio, 1.0), 0.003) << "ratio " << ratio;
  }
}

TEST(AnalyticHdTest, KnownValues) {
  // No systematic bias: 50%.
  EXPECT_NEAR(analytic_interchip_hd(0.0, 1.0), 0.5, 1e-12);
  // Overwhelming shared bias: chips agree, HD -> 0.
  EXPECT_LT(analytic_interchip_hd(100.0, 1.0), 0.05);
  // Monotone decreasing in the bias.
  EXPECT_GT(analytic_interchip_hd(0.2, 1.0), analytic_interchip_hd(0.5, 1.0));
}

TEST(AnalyticHdTest, MatchesMonteCarlo) {
  Xoshiro256 rng(5);
  const double a = 0.45;  // the conventional design's calibrated regime
  long disagreements = 0;
  constexpr int kTrials = 400000;
  for (int i = 0; i < kTrials; ++i) {
    const double mu = a * rng.gaussian();
    const bool c1 = mu + rng.gaussian() > 0;
    const bool c2 = mu + rng.gaussian() > 0;
    if (c1 != c2) ++disagreements;
  }
  const double mc = static_cast<double>(disagreements) / kTrials;
  EXPECT_NEAR(mc, analytic_interchip_hd(a, 1.0), 0.003);
}

TEST(AnalyticMarginTest, ScalesWithMismatchAndStages) {
  const auto tech = TechnologyParams::cmos90();
  const double s13 = analytic_pair_margin_sigma(tech, 13);
  EXPECT_NEAR(s13, tech.sigma_vth_local * std::sqrt(2.0 / 26.0), 1e-15);
  // More stages average more devices: smaller margin sigma.
  EXPECT_GT(s13, analytic_pair_margin_sigma(tech, 21));
}

TEST(AnalyticAgingTest, ConventionalExceedsAro) {
  const auto tech = TechnologyParams::cmos90();
  const double conv = analytic_aging_disturbance_sigma(
      tech, 13, StressProfile::conventional_always_on(), 10.0);
  const double aro =
      analytic_aging_disturbance_sigma(tech, 13, StressProfile::aro_gated(20.0, 10e-3), 10.0);
  EXPECT_GT(conv, 4.0 * aro);
}

TEST(AnalyticAgingTest, PredictsSimulatedFlipRatesToLeadingOrder) {
  // The closed form ignores spatial/systematic margin boosts and noise, so
  // agreement within a few percentage points (absolute) is the bar — the
  // point is cross-validation of trend and magnitude, not replacement.
  const auto tech = TechnologyParams::cmos90();
  PopulationConfig pop;
  pop.chips = 20;
  pop.seed = 31;
  const double checkpoints[] = {10.0};

  const double conv_pred =
      analytic_aging_flip_probability(tech, PufConfig::conventional(), 10.0) * 100.0;
  const auto conv_mc = run_aging_series(pop, PufConfig::conventional(), checkpoints);
  // The analytic form lacks the conventional design's spatial margin boost,
  // so it overpredicts; require same decade and correct ordering.
  EXPECT_GT(conv_pred, conv_mc.mean_flip_percent[0] * 0.8);
  EXPECT_LT(conv_pred, conv_mc.mean_flip_percent[0] * 2.0);

  const double aro_pred = analytic_aging_flip_probability(tech, PufConfig::aro(), 10.0) * 100.0;
  const auto aro_mc = run_aging_series(pop, PufConfig::aro(), checkpoints);
  EXPECT_GT(aro_pred, (aro_mc.mean_flip_percent[0] - 2.0) * 0.4);  // noise floor ~1%
  EXPECT_LT(aro_pred, aro_mc.mean_flip_percent[0] * 2.0);
}

TEST(AnalyticAgingTest, RejectsBadInputs) {
  const auto tech = TechnologyParams::cmos90();
  EXPECT_THROW((void)analytic_flip_probability(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)analytic_flip_probability(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)analytic_pair_margin_sigma(tech, 1), std::invalid_argument);
  EXPECT_THROW((void)
      analytic_aging_disturbance_sigma(tech, 13, StressProfile::conventional_always_on(), -1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
