#include "sim/experiment_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(TechnologyJsonTest, RoundTripsEveryField) {
  TechnologyParams t = TechnologyParams::cmos65();
  t.nbti_a *= 1.5;
  t.counter_bits = 20;
  const TechnologyParams back = technology_from_json(to_json(t));
  EXPECT_EQ(back.name, t.name);
  EXPECT_DOUBLE_EQ(back.vdd_nominal, t.vdd_nominal);
  EXPECT_DOUBLE_EQ(back.nbti_a, t.nbti_a);
  EXPECT_DOUBLE_EQ(back.sigma_vth_local, t.sigma_vth_local);
  EXPECT_EQ(back.counter_bits, 20);
  EXPECT_DOUBLE_EQ(back.delay_k, t.delay_k);
  EXPECT_DOUBLE_EQ(back.layout_systematic_amplitude, t.layout_systematic_amplitude);
}

TEST(TechnologyJsonTest, NamedNodeIsCompleteConfig) {
  const auto t = technology_from_json(JsonValue::parse(R"({"name": "cmos45"})"));
  const auto reference = TechnologyParams::cmos45();
  EXPECT_DOUBLE_EQ(t.vdd_nominal, reference.vdd_nominal);
  EXPECT_DOUBLE_EQ(t.nbti_a, reference.nbti_a);
}

TEST(TechnologyJsonTest, OverridesApplyOnTopOfNode) {
  const auto t = technology_from_json(
      JsonValue::parse(R"({"name": "cmos90", "sigma_vth_local": 0.02})"));
  EXPECT_DOUBLE_EQ(t.sigma_vth_local, 0.02);
  EXPECT_DOUBLE_EQ(t.vdd_nominal, TechnologyParams::cmos90().vdd_nominal);
}

TEST(TechnologyJsonTest, LoadedConfigIsValidated) {
  EXPECT_THROW(technology_from_json(JsonValue::parse(R"({"vth_n": 5.0})")),
               std::invalid_argument);
}

TEST(StressProfileJsonTest, RoundTrip) {
  const StressProfile p = StressProfile::aro_gated(20.0, 10e-3);
  const StressProfile back = stress_profile_from_json(to_json(p));
  EXPECT_EQ(back.name, p.name);
  EXPECT_DOUBLE_EQ(back.oscillation_fraction, p.oscillation_fraction);
  EXPECT_DOUBLE_EQ(back.nbti_duty, p.nbti_duty);
  EXPECT_EQ(back.recovery_enabled, p.recovery_enabled);
}

TEST(PufConfigJsonTest, RoundTripBothDesigns) {
  for (const auto& cfg : {PufConfig::conventional(512), PufConfig::aro(64)}) {
    const PufConfig back = puf_config_from_json(to_json(cfg));
    EXPECT_EQ(back.design, cfg.design);
    EXPECT_EQ(back.label, cfg.label);
    EXPECT_EQ(back.num_ros, cfg.num_ros);
    EXPECT_EQ(back.pairing, cfg.pairing);
    EXPECT_DOUBLE_EQ(back.lifetime_profile.oscillation_fraction,
                     cfg.lifetime_profile.oscillation_fraction);
  }
}

TEST(PufConfigJsonTest, DesignFactorySelectsDefaults) {
  const auto c = puf_config_from_json(JsonValue::parse(R"({"design": "conventional RO-PUF"})"));
  EXPECT_EQ(c.pairing, PairingStrategy::kDistantDedicated);
  EXPECT_DOUBLE_EQ(c.lifetime_profile.oscillation_fraction, 1.0);
}

TEST(PufConfigJsonTest, UnknownPairingRejected) {
  EXPECT_THROW(puf_config_from_json(JsonValue::parse(R"({"pairing": "zigzag"})")),
               std::invalid_argument);
}

TEST(PopulationJsonTest, FileRoundTrip) {
  PopulationConfig pop;
  pop.tech = TechnologyParams::cmos65();
  pop.chips = 17;
  pop.seed = 424242;
  const std::string path = std::string(::testing::TempDir()) + "/pop.json";
  save_population_config(pop, path);
  const PopulationConfig back = load_population_config(path);
  EXPECT_EQ(back.chips, 17);
  EXPECT_EQ(back.seed, 424242U);
  EXPECT_EQ(back.tech.name, "cmos65");
  EXPECT_DOUBLE_EQ(back.tech.vdd_nominal, pop.tech.vdd_nominal);
}

TEST(PopulationJsonTest, MissingFileThrows) {
  EXPECT_THROW(load_population_config("/no/such/file.json"), std::runtime_error);
}

TEST(PopulationJsonTest, ConfigDrivesIdenticalResults) {
  // A config that round-trips through disk must reproduce the experiment
  // bit-exactly.
  PopulationConfig pop;
  pop.chips = 6;
  pop.seed = 99;
  const std::string path = std::string(::testing::TempDir()) + "/exp.json";
  save_population_config(pop, path);
  const PopulationConfig loaded = load_population_config(path);
  const auto direct = run_uniqueness(pop, PufConfig::aro(64));
  const auto via_file = run_uniqueness(loaded, PufConfig::aro(64));
  EXPECT_DOUBLE_EQ(direct.uniqueness.stats.mean(), via_file.uniqueness.stats.mean());
}

}  // namespace
}  // namespace aropuf
