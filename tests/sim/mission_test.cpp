// Mission-profile scenario tests: multi-phase, multi-temperature lifetimes.
#include <gtest/gtest.h>

#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

PopulationConfig small_pop() {
  PopulationConfig pop;
  pop.chips = 8;
  pop.seed = 23;
  return pop;
}

TEST(MissionProfileTest, AutomotiveFactoryShape) {
  const auto gated = MissionProfile::automotive(true);
  const auto always_on = MissionProfile::automotive(false);
  ASSERT_EQ(gated.cycle.size(), 2U);
  EXPECT_NEAR(gated.cycle_duration(), 86400.0, 1.0);
  // Engine-on phase is hot; parked phase is cool.
  EXPECT_GT(gated.cycle[0].profile.stress_temperature,
            gated.cycle[1].profile.stress_temperature);
  // Always-on keeps oscillating while parked; gated does not.
  EXPECT_DOUBLE_EQ(always_on.cycle[1].profile.oscillation_fraction, 1.0);
  EXPECT_DOUBLE_EQ(gated.cycle[1].profile.oscillation_fraction, 0.0);
}

TEST(MissionProfileTest, ValidationCatchesEmptyAndBadPhases) {
  MissionProfile m;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = MissionProfile::automotive(true);
  m.cycle[0].duration = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MissionTest, FlipsGrowWithMissionYears) {
  const double checkpoints[] = {2.0, 10.0};
  const auto result = run_mission(small_pop(), PufConfig::conventional(128),
                                  MissionProfile::automotive(false), checkpoints);
  ASSERT_EQ(result.years.size(), 2U);
  EXPECT_GT(result.mean_flip_percent[0], 1.0);
  EXPECT_LT(result.mean_flip_percent[0], result.mean_flip_percent[1]);
  EXPECT_GE(result.max_flip_percent[1], result.mean_flip_percent[1]);
}

TEST(MissionTest, GatedMissionAgesFarLess) {
  const double checkpoints[] = {10.0};
  const auto conv = run_mission(small_pop(), PufConfig::conventional(128),
                                MissionProfile::automotive(false), checkpoints);
  const auto aro = run_mission(small_pop(), PufConfig::aro(128),
                               MissionProfile::automotive(true), checkpoints);
  EXPECT_LT(aro.mean_flip_percent[0], conv.mean_flip_percent[0] * 0.6);
}

TEST(MissionTest, HotterMissionAgesFaster) {
  // Same duty cycle, hotter engine phase: strictly more flips — exercises
  // the nominal-equivalent temperature weighting.
  MissionProfile mild = MissionProfile::automotive(false);
  MissionProfile hot = MissionProfile::automotive(false);
  hot.cycle[0].profile.stress_temperature = celsius(150.0);
  const double checkpoints[] = {10.0};
  const auto mild_result =
      run_mission(small_pop(), PufConfig::conventional(128), mild, checkpoints);
  const auto hot_result =
      run_mission(small_pop(), PufConfig::conventional(128), hot, checkpoints);
  EXPECT_GT(hot_result.mean_flip_percent[0], mild_result.mean_flip_percent[0]);
}

TEST(MissionTest, ConstantMissionMatchesPlainAgingSeries) {
  // A one-phase mission with the standard profile must reproduce
  // run_aging_series (same accumulation path, same checkpoints).
  MissionProfile constant;
  constant.name = "constant";
  MissionPhase phase;
  phase.profile = StressProfile::conventional_always_on();
  phase.duration = 86400.0;
  constant.cycle = {phase};
  const double checkpoints[] = {5.0};
  const auto mission =
      run_mission(small_pop(), PufConfig::conventional(128), constant, checkpoints);
  const auto plain = run_aging_series(small_pop(), PufConfig::conventional(128), checkpoints);
  EXPECT_NEAR(mission.mean_flip_percent[0], plain.mean_flip_percent[0], 1e-9);
}

}  // namespace
}  // namespace aropuf
