// Tests for the extension scenarios: burn-in enrollment and stability
// masking studies.
#include <gtest/gtest.h>

#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

PopulationConfig small_pop() {
  PopulationConfig pop;
  pop.chips = 8;
  pop.seed = 17;
  return pop;
}

TEST(BurninTest, BurninReducesSubsequentFlips) {
  // Enrolling after a month of accelerated stress skips the steepest part
  // of the t^(1/6) curve: 10-year flips drop versus fresh enrollment.
  const double checkpoints[] = {10.0};
  const auto fresh = run_aging_series(small_pop(), PufConfig::conventional(128), checkpoints);
  StressProfile burnin = StressProfile::conventional_always_on();
  burnin.stress_temperature = celsius(125.0);  // accelerated burn-in oven
  const auto burned = run_aging_series_with_burnin(
      small_pop(), PufConfig::conventional(128), burnin, years(0.1), checkpoints);
  EXPECT_LT(burned.mean_flip_percent[0], fresh.mean_flip_percent[0]);
}

TEST(BurninTest, ZeroBurninMatchesPlainSeries) {
  const double checkpoints[] = {5.0};
  const auto plain = run_aging_series(small_pop(), PufConfig::aro(128), checkpoints);
  const auto zero = run_aging_series_with_burnin(
      small_pop(), PufConfig::aro(128), StressProfile::conventional_always_on(), 0.0,
      checkpoints);
  EXPECT_DOUBLE_EQ(zero.mean_flip_percent[0], plain.mean_flip_percent[0]);
}

TEST(BurninTest, RejectsNegativeDuration) {
  const double checkpoints[] = {1.0};
  EXPECT_THROW(run_aging_series_with_burnin(small_pop(), PufConfig::aro(128),
                                            StressProfile::conventional_always_on(), -1.0,
                                            checkpoints),
               std::invalid_argument);
}

TEST(MaskingStudyTest, MaskingLowersNoiseFloor) {
  // At 0 years the only errors are measurement noise, which screening
  // directly targets.
  const auto result = run_masking_study(small_pop(), PufConfig::aro(256),
                                        /*full_corners=*/false, /*repeats=*/6,
                                        /*years=*/0.0);
  EXPECT_GT(result.stable_fraction, 0.7);
  EXPECT_LT(result.masked_ber, result.unmasked_ber);
}

TEST(MaskingStudyTest, MaskingHelpsButCannotSeeAging) {
  const auto result = run_masking_study(small_pop(), PufConfig::conventional(256),
                                        /*full_corners=*/false, /*repeats=*/6,
                                        /*years=*/10.0);
  // Helps somewhat (marginal pairs are also noise-prone)...
  EXPECT_LT(result.masked_ber, result.unmasked_ber);
  // ...but most of the 10-year damage is stochastic aging that enrollment-
  // time screening fundamentally cannot predict.
  EXPECT_GT(result.masked_ber, result.unmasked_ber * 0.4);
}

TEST(MaskingStudyTest, CornerScreeningKeepsFewerBits) {
  const auto nominal = run_masking_study(small_pop(), PufConfig::aro(256), false, 3, 0.0);
  const auto corners = run_masking_study(small_pop(), PufConfig::aro(256), true, 3, 0.0);
  EXPECT_LE(corners.stable_fraction, nominal.stable_fraction);
}

}  // namespace
}  // namespace aropuf
