// Calibration tests: assert that the simulation reproduces the ARO-PUF
// paper's headline numbers within the documented bands (DESIGN.md §5).
//
// These are the reproduction's acceptance tests.  They use moderate
// populations, so the bands are generous enough to absorb Monte Carlo noise
// while still distinguishing the paper's claims from a broken model.
#include <gtest/gtest.h>

#include "sim/scenarios.hpp"

namespace aropuf {
namespace {

PopulationConfig paper_pop() {
  PopulationConfig pop;
  pop.chips = 30;
  pop.seed = 2014;  // DATE 2014
  return pop;
}

class CalibrationTest : public ::testing::Test {
 protected:
  PopulationConfig pop_ = paper_pop();
};

TEST_F(CalibrationTest, ConventionalTenYearFlipsNearPaper32Percent) {
  const double checkpoints[] = {10.0};
  const auto series = run_aging_series(pop_, PufConfig::conventional(), checkpoints);
  EXPECT_GT(series.mean_flip_percent[0], 25.0);
  EXPECT_LT(series.mean_flip_percent[0], 40.0);
}

TEST_F(CalibrationTest, AroTenYearFlipsNearPaper7_7Percent) {
  const double checkpoints[] = {10.0};
  const auto series = run_aging_series(pop_, PufConfig::aro(), checkpoints);
  EXPECT_GT(series.mean_flip_percent[0], 4.0);
  EXPECT_LT(series.mean_flip_percent[0], 12.0);
}

TEST_F(CalibrationTest, AroBeatsConventionalByPaperFactor) {
  // Paper: 32 % vs 7.7 % — a ~4x gap.  Accept 2.5x .. 8x.
  const double checkpoints[] = {10.0};
  const auto conv = run_aging_series(pop_, PufConfig::conventional(), checkpoints);
  const auto aro = run_aging_series(pop_, PufConfig::aro(), checkpoints);
  const double factor = conv.mean_flip_percent[0] / aro.mean_flip_percent[0];
  EXPECT_GT(factor, 2.5);
  EXPECT_LT(factor, 8.0);
}

TEST_F(CalibrationTest, ConventionalInterChipHdNearPaper45Percent) {
  const auto result = run_uniqueness(pop_, PufConfig::conventional());
  EXPECT_GT(result.uniqueness.mean_percent(), 40.0);
  EXPECT_LT(result.uniqueness.mean_percent(), 47.5);
}

TEST_F(CalibrationTest, AroInterChipHdNearPaper49_67Percent) {
  const auto result = run_uniqueness(pop_, PufConfig::aro());
  EXPECT_GT(result.uniqueness.mean_percent(), 48.5);
  EXPECT_LT(result.uniqueness.mean_percent(), 51.5);
}

TEST_F(CalibrationTest, AroUniquenessBeatsConventional) {
  const auto conv = run_uniqueness(pop_, PufConfig::conventional());
  const auto aro = run_uniqueness(pop_, PufConfig::aro());
  EXPECT_GT(aro.uniqueness.mean_percent(), conv.uniqueness.mean_percent());
}

TEST_F(CalibrationTest, FreshNoiseFloorIsPercentLevel) {
  // Enrollment-temperature re-measurement: ~1-2 % intra-chip HD.
  const double checkpoints[] = {0.0};
  const auto series = run_aging_series(pop_, PufConfig::aro(), checkpoints);
  EXPECT_LT(series.mean_flip_percent[0], 3.0);
}

TEST_F(CalibrationTest, ConventionalFrequencyDegradationBand) {
  // 10 years of continuous stress: mid-single-digit to ~15 % frequency loss.
  const double checkpoints[] = {10.0};
  const auto series = run_frequency_degradation(pop_, PufConfig::conventional(), checkpoints);
  EXPECT_GT(series.mean_freq_shift_percent[0], 3.0);
  EXPECT_LT(series.mean_freq_shift_percent[0], 16.0);
}

TEST_F(CalibrationTest, AroFrequencyDegradationNegligible) {
  const double checkpoints[] = {10.0};
  const auto series = run_frequency_degradation(pop_, PufConfig::aro(), checkpoints);
  EXPECT_LT(series.mean_freq_shift_percent[0], 2.0);
}

TEST_F(CalibrationTest, EccAreaRatioNearPaper24x) {
  // The paper's ~24x for a 128-bit key at the provisioning regime; accept
  // 12x .. 45x (the ratio is steep in the conventional design's tail BER).
  const auto cmp = run_ecc_comparison_from_simulation(pop_, CodeSearchConstraints{});
  EXPECT_GT(cmp.area_ratio(), 12.0);
  EXPECT_LT(cmp.area_ratio(), 45.0);
}

}  // namespace
}  // namespace aropuf
