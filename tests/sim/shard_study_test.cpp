#include "sim/shard_study.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/parallel.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/manifest.hpp"

namespace aropuf {
namespace {

struct GlobalThreadCountGuard {
  ~GlobalThreadCountGuard() { ParallelExecutor::set_global_thread_count(0); }
};

ShardStudyConfig small_config() {
  ShardStudyConfig cfg;
  cfg.pop.chips = 6;
  cfg.pop.seed = 77;
  cfg.checkpoints = {1.0, 5.0};
  return cfg;
}

/// Wraps one shard's study result in the minimal manifest the aggregator
/// accepts, mirroring what a worker process writes.
telemetry::ShardManifest to_manifest(const ShardStudyConfig& cfg, std::size_t index,
                                     std::size_t count, const ShardStudyResult& result) {
  JsonValue::Object doc;
  doc["schema"] = JsonValue(telemetry::kManifestSchema);
  doc["schema_version"] = JsonValue(telemetry::kManifestSchemaVersion);
  doc["run"] = JsonValue("study_test");
  doc["config"] = study_config_json(cfg);
  JsonValue::Object shard;
  shard["index"] = JsonValue(static_cast<std::uint64_t>(index));
  shard["count"] = JsonValue(static_cast<std::uint64_t>(count));
  shard["chip_lo"] = JsonValue(static_cast<std::uint64_t>(result.chip_lo));
  shard["chip_hi"] = JsonValue(static_cast<std::uint64_t>(result.chip_hi));
  doc["shard"] = JsonValue(std::move(shard));
  doc["results"] = study_results_to_json(result);
  return telemetry::wrap_shard_manifest(JsonValue(std::move(doc)),
                                        "shard-" + std::to_string(index));
}

TEST(ShardRangeTest, TilesExactlyAndBalances) {
  for (const std::size_t count : {1u, 7u, 40u, 101u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
      std::size_t cursor = 0;
      for (std::size_t k = 0; k < shards; ++k) {
        const auto [lo, hi] = shard_range(count, k, shards);
        EXPECT_EQ(lo, cursor);
        EXPECT_GE(hi, lo);
        // Balanced: no shard owns more than one item over the minimum.
        EXPECT_LE(hi - lo, count / shards + 1);
        cursor = hi;
      }
      EXPECT_EQ(cursor, count);
    }
  }
  EXPECT_THROW((void)shard_range(10, 3, 3), std::exception);  // index out of range
}

// The PR's acceptance bar: merging any shard decomposition must reproduce the
// single-process statistics bit-for-bit, not approximately.
TEST(ShardStudyTest, FourShardAggregateEqualsSingleShardAggregate) {
  const ShardStudyConfig cfg = small_config();

  std::vector<telemetry::ShardManifest> four;
  for (std::size_t k = 0; k < 4; ++k) {
    four.push_back(to_manifest(cfg, k, 4, run_shard_study(cfg, k, 4)));
  }
  const telemetry::AggregateResult merged_four = telemetry::aggregate_shards(std::move(four));

  std::vector<telemetry::ShardManifest> one;
  one.push_back(to_manifest(cfg, 0, 1, run_shard_study(cfg, 0, 1)));
  const telemetry::AggregateResult merged_one = telemetry::aggregate_shards(std::move(one));

  EXPECT_TRUE(merged_four.conflicts.empty());
  EXPECT_TRUE(merged_one.conflicts.empty());
  // dump() serializes doubles at %.17g, so string equality is bit equality.
  EXPECT_EQ(merged_four.manifest.at("results").dump(),
            merged_one.manifest.at("results").dump());
}

TEST(ShardStudyTest, ResultsAreThreadCountInvariant) {
  const ShardStudyConfig cfg = small_config();
  const GlobalThreadCountGuard guard;

  ParallelExecutor::set_global_thread_count(1);
  const std::string baseline = study_results_to_json(run_shard_study(cfg, 1, 3)).dump();
  for (const int threads : {2, 8}) {
    ParallelExecutor::set_global_thread_count(threads);
    EXPECT_EQ(study_results_to_json(run_shard_study(cfg, 1, 3)).dump(), baseline)
        << "threads=" << threads;
  }
}

TEST(ShardStudyTest, ProgressCallbackReportsMonotonicCompletion) {
  const ShardStudyConfig cfg = small_config();
  std::int64_t last_done = 0;
  std::int64_t final_total = 0;
  std::size_t calls = 0;
  (void)run_shard_study(cfg, 0, 2,
                        [&](const std::string& stage, std::int64_t done, std::int64_t total) {
                          EXPECT_FALSE(stage.empty());
                          EXPECT_GE(done, last_done);
                          EXPECT_LE(done, total);
                          last_done = done;
                          final_total = total;
                          ++calls;
                        });
  EXPECT_GT(calls, 0u);
  EXPECT_EQ(last_done, final_total);
}

TEST(ShardStudyTest, ConfigEchoIsIdenticalAcrossShards) {
  const ShardStudyConfig cfg = small_config();
  EXPECT_EQ(study_config_json(cfg).dump(), study_config_json(cfg).dump());
  ShardStudyConfig other = cfg;
  other.pop.seed = 78;
  EXPECT_NE(study_config_json(cfg).dump(), study_config_json(other).dump());
}

TEST(ShardStudyTest, RejectsDegenerateInputs) {
  ShardStudyConfig cfg = small_config();
  cfg.pop.chips = 1;
  EXPECT_THROW((void)run_shard_study(cfg, 0, 1), std::exception);
  cfg = small_config();
  cfg.checkpoints.clear();
  EXPECT_THROW((void)run_shard_study(cfg, 0, 1), std::exception);
}

}  // namespace
}  // namespace aropuf
