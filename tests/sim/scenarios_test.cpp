#include "sim/scenarios.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

PopulationConfig small_pop() {
  PopulationConfig pop;
  pop.chips = 8;
  pop.seed = 7;
  return pop;
}

TEST(ScenariosTest, FrequencyDegradationShape) {
  const double checkpoints[] = {1.0, 5.0, 10.0};
  const auto series =
      run_frequency_degradation(small_pop(), PufConfig::conventional(64), checkpoints);
  ASSERT_EQ(series.years.size(), 3U);
  ASSERT_EQ(series.mean_freq_shift_percent.size(), 3U);
  // Degradation is positive and monotone in time.
  EXPECT_GT(series.mean_freq_shift_percent[0], 0.0);
  EXPECT_LT(series.mean_freq_shift_percent[0], series.mean_freq_shift_percent[1]);
  EXPECT_LT(series.mean_freq_shift_percent[1], series.mean_freq_shift_percent[2]);
}

TEST(ScenariosTest, AgingSeriesMonotoneAndOrdered) {
  const double checkpoints[] = {2.0, 10.0};
  const auto conv = run_aging_series(small_pop(), PufConfig::conventional(128), checkpoints);
  const auto aro = run_aging_series(small_pop(), PufConfig::aro(128), checkpoints);
  // More aging, more flips; ARO flips far less than conventional.
  EXPECT_LT(conv.mean_flip_percent[0], conv.mean_flip_percent[1]);
  EXPECT_LT(aro.mean_flip_percent[1], conv.mean_flip_percent[1] * 0.6);
  EXPECT_GE(conv.max_flip_percent[1], conv.mean_flip_percent[1]);
}

TEST(ScenariosTest, CheckpointsMustBeSorted) {
  const double bad[] = {5.0, 1.0};
  EXPECT_THROW(run_aging_series(small_pop(), PufConfig::aro(64), bad), std::invalid_argument);
  const double empty[] = {1.0};
  EXPECT_NO_THROW(run_aging_series(small_pop(), PufConfig::aro(64),
                                   std::span<const double>(empty, 1)));
}

TEST(ScenariosTest, UniquenessOutputsAllMetrics) {
  const auto result = run_uniqueness(small_pop(), PufConfig::aro(128));
  EXPECT_EQ(result.uniqueness.stats.count(), 28U);  // C(8,2)
  EXPECT_GT(result.uniqueness.mean_percent(), 40.0);
  EXPECT_LT(result.uniqueness.mean_percent(), 60.0);
  EXPECT_GT(result.uniformity.mean(), 0.3);
  EXPECT_LT(result.uniformity.mean(), 0.7);
  EXPECT_EQ(result.aliasing.count(), 64U);  // bits
}

TEST(ScenariosTest, TemperatureSweepAnchoredAtNominal) {
  const double temps[] = {25.0, 85.0};
  const auto sweep = run_temperature_sweep(small_pop(), PufConfig::aro(128), temps);
  ASSERT_EQ(sweep.size(), 2U);
  // At the enrollment corner only measurement noise flips bits.
  EXPECT_LT(sweep[0].mean_ber_percent, 4.0);
  // Far from it, errors grow.
  EXPECT_GT(sweep[1].mean_ber_percent, sweep[0].mean_ber_percent);
  EXPECT_GE(sweep[1].max_ber_percent, sweep[1].mean_ber_percent);
}

TEST(ScenariosTest, VoltageSweepAnchoredAtNominal) {
  // Supply sensitivity of the ratioed comparison is second-order: the -10%
  // corner stays at the same percent-level noise floor as nominal (no strict
  // ordering — the effect is within measurement-noise variation).
  const double vdd[] = {1.2, 1.08};
  const auto sweep = run_voltage_sweep(small_pop(), PufConfig::aro(128), vdd);
  ASSERT_EQ(sweep.size(), 2U);
  EXPECT_LT(sweep[0].mean_ber_percent, 4.0);
  EXPECT_LT(sweep[1].mean_ber_percent, 6.0);
  EXPECT_GT(sweep[1].mean_ber_percent, 0.2 * sweep[0].mean_ber_percent);
}

TEST(ScenariosTest, EolBerStatsAreCoherent) {
  const auto stats = measure_eol_ber(small_pop(), PufConfig::conventional(128), 10.0);
  EXPECT_GT(stats.mean, 0.1);
  EXPECT_LT(stats.mean, 0.5);
  EXPECT_GE(stats.max, stats.mean);
  EXPECT_GT(stats.p90(), stats.mean);
  EXPECT_GT(stats.p95(), stats.p90());
}

TEST(ScenariosTest, EccComparisonFavorsAro) {
  const auto cmp = run_ecc_comparison(TechnologyParams::cmos90(), 0.35, 0.10,
                                      CodeSearchConstraints{});
  EXPECT_GT(cmp.area_ratio(), 3.0);
  EXPECT_LT(cmp.aro.scheme.raw_bits(), cmp.conventional.scheme.raw_bits());
}

TEST(ScenariosTest, EccComparisonThrowsWhenInfeasible) {
  CodeSearchConstraints cramped;
  cramped.repetition_options = {1};
  cramped.max_bch_t = 2;
  EXPECT_THROW((void)run_ecc_comparison(TechnologyParams::cmos90(), 0.35, 0.10, cramped),
               std::runtime_error);
}

TEST(ScenariosTest, ResultsAreSeedReproducible) {
  const double checkpoints[] = {10.0};
  const auto a = run_aging_series(small_pop(), PufConfig::aro(128), checkpoints);
  const auto b = run_aging_series(small_pop(), PufConfig::aro(128), checkpoints);
  EXPECT_DOUBLE_EQ(a.mean_flip_percent[0], b.mean_flip_percent[0]);
  PopulationConfig other = small_pop();
  other.seed = 8;
  const auto c = run_aging_series(other, PufConfig::aro(128), checkpoints);
  EXPECT_NE(a.mean_flip_percent[0], c.mean_flip_percent[0]);
}

}  // namespace
}  // namespace aropuf
