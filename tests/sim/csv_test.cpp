#include "sim/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aropuf {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CsvWriterTest, WritesSimpleRows) {
  const std::string path = temp_path("simple.csv");
  {
    CsvWriter w(path);
    w.write_row({"years", "flips"});
    w.write_row({"1", "26.5"});
    w.write_row({"10", "32.7"});
    EXPECT_EQ(w.rows_written(), 3U);
  }
  EXPECT_EQ(slurp(path), "years,flips\n1,26.5\n10,32.7\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, EscapedFieldsRoundTripInFile) {
  const std::string path = temp_path("escaped.csv");
  {
    CsvWriter w(path);
    w.write_row({"label", "value"});
    w.write_row({"conventional, always-on", "32.7"});
  }
  EXPECT_EQ(slurp(path), "label,value\n\"conventional, always-on\",32.7\n");
}

TEST(CsvWriterTest, EnforcesConsistentWidth) {
  CsvWriter w(temp_path("width.csv"));
  w.write_row({"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(w.write_row({}), std::invalid_argument);
}

TEST(CsvWriterTest, UnwritablePathLatchesFailureInsteadOfThrowing) {
  CsvWriter w("/nonexistent-dir-xyz/out.csv");
  EXPECT_FALSE(w.ok());
  w.write_row({"still", "safe"});  // must not crash on the dead stream
  EXPECT_FALSE(w.close());
}

TEST(CsvWriterTest, ForBenchHonorsEnvironment) {
  unsetenv("ARO_CSV_DIR");
  EXPECT_FALSE(CsvWriter::for_bench("e1").has_value());
  setenv("ARO_CSV_DIR", ::testing::TempDir().c_str(), 1);
  auto writer = CsvWriter::for_bench("e1");
  ASSERT_TRUE(writer.has_value());
  writer->write_row({"x"});
  unsetenv("ARO_CSV_DIR");
}

}  // namespace
}  // namespace aropuf
