#include "circuit/ring_oscillator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/statistics.hpp"
#include "device/technology.hpp"

namespace aropuf {
namespace {

class RingOscillatorTest : public ::testing::Test {
 protected:
  RingOscillator make_ro(std::uint64_t die_seed = 1, std::uint64_t dev_seed = 2,
                         int stages = 13, Position pos = {0.0, 0.0}) const {
    const DieVariation die(tech_, die_seed);
    Xoshiro256 rng(dev_seed);
    return RingOscillator(tech_, stages, pos, die, rng);
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
  OperatingPoint nominal_{tech_.vdd_nominal, tech_.temp_nominal};
  AgingModel aging_{tech_};
};

TEST_F(RingOscillatorTest, ConstructionPopulatesStages) {
  const RingOscillator ro = make_ro();
  EXPECT_EQ(ro.num_stages(), 13);
  ASSERT_EQ(ro.stages().size(), 13U);
  for (const auto& stage : ro.stages()) {
    EXPECT_EQ(stage.pmos.type, DeviceType::kPmos);
    EXPECT_EQ(stage.nmos.type, DeviceType::kNmos);
    EXPECT_GT(stage.pmos.vth_fresh, 0.1);
    EXPECT_GT(stage.nmos.vth_fresh, 0.1);
  }
}

TEST_F(RingOscillatorTest, RejectsEvenOrTinyStageCounts) {
  const DieVariation die(tech_, 1);
  Xoshiro256 rng(2);
  EXPECT_THROW(RingOscillator(tech_, 12, {0, 0}, die, rng), std::invalid_argument);
  EXPECT_THROW(RingOscillator(tech_, 1, {0, 0}, die, rng), std::invalid_argument);
}

TEST_F(RingOscillatorTest, FrequencyNearNominal) {
  const RingOscillator ro = make_ro();
  const Hertz f = ro.frequency(nominal_);
  const Hertz f_nom = tech_.nominal_ro_frequency(13);
  EXPECT_GT(f, f_nom * 0.7);
  EXPECT_LT(f, f_nom * 1.3);
}

TEST_F(RingOscillatorTest, DifferentDevicesDifferentFrequencies) {
  const RingOscillator a = make_ro(1, 2);
  const RingOscillator b = make_ro(1, 3);
  EXPECT_NE(a.frequency(nominal_), b.frequency(nominal_));
}

TEST_F(RingOscillatorTest, MismatchSpreadIsPercentLevel) {
  // Per-RO sigma(f)/f from 15 mV local mismatch averaged over 26 devices:
  // fractions of a percent, well below 2 %.
  const DieVariation die(tech_, 9);
  RunningStats stats;
  for (std::uint64_t s = 0; s < 400; ++s) {
    Xoshiro256 rng(s);
    const RingOscillator ro(tech_, 13, {0.0, 0.0}, die, rng);
    stats.add(ro.frequency(nominal_));
  }
  const double rel_sigma = stats.stddev() / stats.mean();
  EXPECT_GT(rel_sigma, 0.001);
  EXPECT_LT(rel_sigma, 0.02);
}

TEST_F(RingOscillatorTest, FreshFrequencyIgnoresAging) {
  RingOscillator ro = make_ro();
  const Hertz fresh_before = ro.fresh_frequency(nominal_);
  ro.apply_stress(aging_, StressProfile::conventional_always_on(), years(5.0));
  EXPECT_DOUBLE_EQ(ro.fresh_frequency(nominal_), fresh_before);
  EXPECT_LT(ro.frequency(nominal_), fresh_before);
}

TEST_F(RingOscillatorTest, AgingSlowsMonotonically) {
  RingOscillator ro = make_ro();
  double prev = ro.frequency(nominal_);
  for (int year = 0; year < 5; ++year) {
    ro.apply_stress(aging_, StressProfile::conventional_always_on(), years(1.0));
    const double f = ro.frequency(nominal_);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST_F(RingOscillatorTest, TenYearDegradationInPaperBand) {
  RingOscillator ro = make_ro();
  const double fresh = ro.frequency(nominal_);
  ro.apply_stress(aging_, StressProfile::conventional_always_on(), years(10.0));
  const double shift = (fresh - ro.frequency(nominal_)) / fresh;
  EXPECT_GT(shift, 0.02);
  EXPECT_LT(shift, 0.20);
}

TEST_F(RingOscillatorTest, GatedStressBarelyDegrades) {
  RingOscillator gated = make_ro();
  RingOscillator continuous = make_ro();
  const double fresh = gated.frequency(nominal_);
  gated.apply_stress(aging_, StressProfile::aro_gated(20.0, 10e-3), years(10.0));
  continuous.apply_stress(aging_, StressProfile::conventional_always_on(), years(10.0));
  const double gated_shift = (fresh - gated.frequency(nominal_)) / fresh;
  const double cont_shift = (fresh - continuous.frequency(nominal_)) / fresh;
  EXPECT_LT(gated_shift, cont_shift * 0.4);
}

TEST_F(RingOscillatorTest, ResetAgingRestoresFreshBehaviour) {
  RingOscillator ro = make_ro();
  const double fresh = ro.frequency(nominal_);
  ro.apply_stress(aging_, StressProfile::conventional_always_on(), years(10.0));
  ro.reset_aging();
  EXPECT_DOUBLE_EQ(ro.frequency(nominal_), fresh);
  EXPECT_DOUBLE_EQ(ro.stress().elapsed, 0.0);
}

TEST_F(RingOscillatorTest, StressStateAccumulates) {
  RingOscillator ro = make_ro();
  ro.apply_stress(aging_, StressProfile::conventional_always_on(), 100.0);
  ro.apply_stress(aging_, StressProfile::conventional_always_on(), 100.0);
  EXPECT_DOUBLE_EQ(ro.stress().elapsed, 200.0);
  EXPECT_GT(ro.stress().switching_cycles, 1e10);
}

TEST_F(RingOscillatorTest, HotterRunsSlowerAtNominalVdd) {
  const RingOscillator ro = make_ro();
  const OperatingPoint hot{tech_.vdd_nominal, celsius(85.0)};
  EXPECT_LT(ro.frequency(hot), ro.frequency(nominal_));
}

TEST_F(RingOscillatorTest, LowerVddRunsSlower) {
  const RingOscillator ro = make_ro();
  const OperatingPoint low{tech_.vdd_nominal * 0.9, tech_.temp_nominal};
  EXPECT_LT(ro.frequency(low), ro.frequency(nominal_));
}

// Stage-count sweep: frequency ordering must hold for any RO size.
class RoStageSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RoStageSweepTest, FrequencyWithinNominalBand) {
  const TechnologyParams tech = TechnologyParams::cmos90();
  const DieVariation die(tech, 3);
  Xoshiro256 rng(4);
  const RingOscillator ro(tech, GetParam(), {0.0, 0.0}, die, rng);
  const OperatingPoint op{tech.vdd_nominal, tech.temp_nominal};
  const double f_nom = tech.nominal_ro_frequency(GetParam());
  EXPECT_GT(ro.frequency(op), f_nom * 0.7);
  EXPECT_LT(ro.frequency(op), f_nom * 1.3);
}

INSTANTIATE_TEST_SUITE_P(StageCounts, RoStageSweepTest, ::testing::Values(3, 5, 7, 13, 21, 31));

}  // namespace
}  // namespace aropuf
