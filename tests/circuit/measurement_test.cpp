#include "circuit/measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"
#include "device/technology.hpp"

namespace aropuf {
namespace {

class MeasurementTest : public ::testing::Test {
 protected:
  RingOscillator make_ro(std::uint64_t dev_seed = 2) const {
    const DieVariation die(tech_, 1);
    Xoshiro256 rng(dev_seed);
    return RingOscillator(tech_, 13, {0.0, 0.0}, die, rng);
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
  OperatingPoint nominal_{tech_.vdd_nominal, tech_.temp_nominal};
};

TEST_F(MeasurementTest, CountTracksExpectedValue) {
  const FrequencyCounter counter(tech_, 20e-6);
  const RingOscillator ro = make_ro();
  const double expected = counter.expected_count(ro.frequency(nominal_));
  Xoshiro256 noise(3);
  RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    stats.add(static_cast<double>(counter.measure(ro, nominal_, noise)));
  }
  EXPECT_NEAR(stats.mean(), expected, expected * 1e-3);
}

TEST_F(MeasurementTest, NoiseScaleMatchesModel) {
  const FrequencyCounter counter(tech_, 20e-6);
  const RingOscillator ro = make_ro();
  const double expected = counter.expected_count(ro.frequency(nominal_));
  Xoshiro256 noise(5);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(static_cast<double>(counter.measure(ro, nominal_, noise)));
  }
  // sigma = sqrt((lf * N)^2 + jitter^2 * N) plus quantization.
  const double lf = tech_.noise_lowfreq_rel * expected;
  const double jitter = tech_.jitter_cycle_rel * std::sqrt(expected);
  const double predicted = std::sqrt(lf * lf + jitter * jitter + 1.0 / 12.0);
  EXPECT_NEAR(stats.stddev(), predicted, predicted * 0.15);
}

TEST_F(MeasurementTest, CounterSaturatesAtWidth) {
  TechnologyParams tech = tech_;
  tech.counter_bits = 8;  // max 255
  const FrequencyCounter counter(tech, 20e-6);
  EXPECT_EQ(counter.max_count(), 255U);
  const RingOscillator ro = make_ro();
  Xoshiro256 noise(7);
  // ~1 GHz for 20 us is tens of thousands of cycles: must clamp to 255.
  EXPECT_EQ(counter.measure(ro, nominal_, noise), 255U);
}

TEST_F(MeasurementTest, SixteenBitCounterFitsDefaultWindow) {
  const FrequencyCounter counter(tech_, 20e-6);
  const RingOscillator ro = make_ro();
  const double expected = counter.expected_count(ro.frequency(nominal_));
  EXPECT_LT(expected, static_cast<double>(counter.max_count()));
  EXPECT_GT(expected, 1000.0);  // enough resolution for percent-level diffs
}

TEST_F(MeasurementTest, LongerWindowMoreCounts) {
  const FrequencyCounter short_counter(tech_, 10e-6);
  const FrequencyCounter long_counter(tech_, 40e-6);
  const RingOscillator ro = make_ro();
  Xoshiro256 n1(9);
  Xoshiro256 n2(9);
  EXPECT_GT(long_counter.measure(ro, nominal_, n2), short_counter.measure(ro, nominal_, n1));
}

TEST_F(MeasurementTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(FrequencyCounter(tech_, 0.0), std::invalid_argument);
  EXPECT_THROW(FrequencyCounter(tech_, -1e-6), std::invalid_argument);
}

TEST_F(MeasurementTest, CompareCountsConvention) {
  EXPECT_TRUE(compare_counts(10, 9));
  EXPECT_FALSE(compare_counts(9, 10));
  EXPECT_FALSE(compare_counts(7, 7));  // ties resolve to 0
}

TEST_F(MeasurementTest, FasterRoWinsComparisonOnAverage) {
  const FrequencyCounter counter(tech_, 20e-6);
  const RingOscillator a = make_ro(2);
  const RingOscillator b = make_ro(3);
  const bool a_truly_faster = a.frequency(nominal_) > b.frequency(nominal_);
  Xoshiro256 noise(11);
  int a_wins = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const auto ca = counter.measure(a, nominal_, noise);
    const auto cb = counter.measure(b, nominal_, noise);
    if (compare_counts(ca, cb)) ++a_wins;
  }
  if (a_truly_faster) {
    EXPECT_GT(a_wins, kTrials / 2);
  } else {
    EXPECT_LT(a_wins, kTrials / 2);
  }
}

}  // namespace
}  // namespace aropuf
