#include "circuit/delay_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "device/technology.hpp"

namespace aropuf {
namespace {

class DelayModelTest : public ::testing::Test {
 protected:
  Transistor make(DeviceType type, double vth) const {
    Transistor t;
    t.type = type;
    t.vth_fresh = vth;
    t.vth_tempco = tech_.vth_tempco;
    return t;
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
  DelayModel model_{tech_};
  OperatingPoint nominal_{tech_.vdd_nominal, tech_.temp_nominal};
};

TEST_F(DelayModelTest, EdgeDelayMatchesAlphaPowerFormula) {
  const double vth = 0.35;
  const double expected =
      tech_.delay_k * tech_.vdd_nominal / std::pow(tech_.vdd_nominal - vth, tech_.alpha);
  EXPECT_NEAR(model_.edge_delay(vth, nominal_), expected, expected * 1e-12);
}

TEST_F(DelayModelTest, HigherVthIsSlower) {
  EXPECT_GT(model_.edge_delay(0.40, nominal_), model_.edge_delay(0.35, nominal_));
}

TEST_F(DelayModelTest, LowerSupplyIsSlower) {
  OperatingPoint low = nominal_;
  low.vdd = 1.08;
  EXPECT_GT(model_.edge_delay(0.35, low), model_.edge_delay(0.35, nominal_));
}

TEST_F(DelayModelTest, OverdriveClampKeepsDelayFinite) {
  // Vth above VDD would explode the formula; the clamp keeps it finite and
  // monotone.
  const double at_clamp = model_.edge_delay(1.3, nominal_);
  EXPECT_TRUE(std::isfinite(at_clamp));
  EXPECT_GE(at_clamp, model_.edge_delay(0.5, nominal_));
}

TEST_F(DelayModelTest, StageDelayAveragesEdges) {
  const Transistor p = make(DeviceType::kPmos, 0.38);
  const Transistor n = make(DeviceType::kNmos, 0.35);
  const double expected =
      0.5 * (model_.edge_delay(0.38, nominal_) + model_.edge_delay(0.35, nominal_));
  EXPECT_NEAR(model_.stage_delay(p, n, nominal_, AgingShifts{}), expected, expected * 1e-12);
}

TEST_F(DelayModelTest, TopologyFactorScalesStage) {
  const Transistor p = make(DeviceType::kPmos, 0.38);
  const Transistor n = make(DeviceType::kNmos, 0.35);
  const double inv = model_.stage_delay(p, n, nominal_, AgingShifts{}, 1.0);
  const double nand = model_.stage_delay(p, n, nominal_, AgingShifts{}, 1.35);
  EXPECT_NEAR(nand / inv, 1.35, 1e-12);
  EXPECT_THROW((void)model_.stage_delay(p, n, nominal_, AgingShifts{}, 0.9), std::invalid_argument);
}

TEST_F(DelayModelTest, NbtiShiftSlowsOnlyThroughPmos) {
  const Transistor p = make(DeviceType::kPmos, 0.38);
  const Transistor n = make(DeviceType::kNmos, 0.35);
  AgingShifts shifts;
  shifts.nbti = 0.05;
  const double fresh = model_.stage_delay(p, n, nominal_, AgingShifts{});
  const double aged = model_.stage_delay(p, n, nominal_, shifts);
  EXPECT_GT(aged, fresh);
  // The NMOS edge is untouched: the increase equals half the PMOS edge rise.
  const double pmos_rise =
      model_.edge_delay(0.43, nominal_) - model_.edge_delay(0.38, nominal_);
  EXPECT_NEAR(aged - fresh, 0.5 * pmos_rise, pmos_rise * 1e-9);
}

TEST_F(DelayModelTest, HciShiftSlowsOnlyThroughNmos) {
  const Transistor p = make(DeviceType::kPmos, 0.38);
  const Transistor n = make(DeviceType::kNmos, 0.35);
  AgingShifts shifts;
  shifts.hci = 0.03;
  const double fresh = model_.stage_delay(p, n, nominal_, AgingShifts{});
  const double aged = model_.stage_delay(p, n, nominal_, shifts);
  const double nmos_rise =
      model_.edge_delay(0.38, nominal_) - model_.edge_delay(0.35, nominal_);
  EXPECT_NEAR(aged - fresh, 0.5 * nmos_rise, nmos_rise * 1e-9);
}

TEST_F(DelayModelTest, RejectsBadOperatingPoint) {
  EXPECT_THROW((void)model_.edge_delay(0.35, OperatingPoint{0.0, 300.0}), std::invalid_argument);
  EXPECT_THROW((void)model_.edge_delay(0.35, OperatingPoint{1.2, 0.0}), std::invalid_argument);
}

// Temperature behaviour: Vth decrease speeds up, mobility decrease slows
// down.  Near nominal supply, mobility dominates in this model: delay grows
// with temperature.
class DelayTemperatureTest : public ::testing::TestWithParam<double> {};

TEST_P(DelayTemperatureTest, DelayGrowsWithTemperatureAtNominalVdd) {
  const TechnologyParams tech = TechnologyParams::cmos90();
  const DelayModel model(tech);
  Transistor p;
  p.type = DeviceType::kPmos;
  p.vth_fresh = tech.vth_p;
  p.vth_tempco = tech.vth_tempco;
  Transistor n;
  n.type = DeviceType::kNmos;
  n.vth_fresh = tech.vth_n;
  n.vth_tempco = tech.vth_tempco;

  const double t_cold = GetParam();
  const OperatingPoint cold{tech.vdd_nominal, celsius(t_cold)};
  const OperatingPoint hot{tech.vdd_nominal, celsius(t_cold + 40.0)};
  EXPECT_GT(model.stage_delay(p, n, hot, AgingShifts{}),
            model.stage_delay(p, n, cold, AgingShifts{}));
}

INSTANTIATE_TEST_SUITE_P(TemperatureSweep, DelayTemperatureTest,
                         ::testing::Values(-40.0, 0.0, 25.0, 85.0));

}  // namespace
}  // namespace aropuf
