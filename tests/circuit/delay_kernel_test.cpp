// Batched delay kernel contract tests: bitwise equality of every backend
// against the per-RO reference path (fresh silicon, aged silicon, off-nominal
// corners, near-threshold supplies where the overdrive floor engages), SoA
// flattening, span validation, and backend selection (API + AROPUF_KERNEL
// environment variable + AVX2 fallback).
#include "circuit/delay_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/ring_oscillator.hpp"
#include "device/technology.hpp"

namespace aropuf {
namespace {

/// Restores the backend to the environment/hardware default on scope exit so
/// backend mutations never leak into other tests.
struct BackendGuard {
  ~BackendGuard() { reset_delay_backend(); }
};

/// setenv/unsetenv with restoration of the previous value.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

class DelayKernelTest : public ::testing::Test {
 protected:
  /// A small array of distinct ROs at distinct die positions.
  std::vector<RingOscillator> make_ros(int count = 9, int stages = 13) const {
    const DieVariation die(tech_, 11);
    std::vector<RingOscillator> ros;
    ros.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(i));
      ros.emplace_back(tech_, stages, Position{static_cast<double>(i % 4),
                                               static_cast<double>(i / 4)},
                       die, rng);
    }
    return ros;
  }

  /// Ages each RO by a different amount so every AgingShifts is distinct.
  void age_unevenly(std::vector<RingOscillator>& ros) const {
    for (std::size_t i = 0; i < ros.size(); ++i) {
      ros[i].apply_stress(aging_, StressProfile::conventional_always_on(),
                          years(0.5 * static_cast<double>(i + 1)));
    }
  }

  static std::vector<AgingShifts> gather_shifts(const std::vector<RingOscillator>& ros) {
    std::vector<AgingShifts> shifts;
    shifts.reserve(ros.size());
    for (const auto& ro : ros) shifts.push_back(ro.aging_shifts());
    return shifts;
  }

  /// Expects the batched (and, when available, AVX2) kernel to reproduce the
  /// reference per-RO frequencies bit for bit at `op`.
  void expect_bitwise_equal_backends(const std::vector<RingOscillator>& ros,
                                     OperatingPoint op) const {
    const RoArraySoA soa = RoArraySoA::from_oscillators(ros);
    const std::vector<AgingShifts> shifts = gather_shifts(ros);
    std::vector<double> batched(ros.size());
    detail::frequencies_batched(soa, tech_, op, shifts, batched);
    for (std::size_t i = 0; i < ros.size(); ++i) {
      EXPECT_EQ(batched[i], ros[i].frequency(op)) << "RO " << i << " batched vs reference";
    }
#if defined(AROPUF_SIMD_ENABLED)
    if (simd_available()) {
      std::vector<double> simd(ros.size());
      detail::frequencies_avx2(soa, tech_, op, shifts, simd);
      for (std::size_t i = 0; i < ros.size(); ++i) {
        EXPECT_EQ(simd[i], batched[i]) << "RO " << i << " simd vs batched";
      }
    }
#endif
  }

  TechnologyParams tech_ = TechnologyParams::cmos90();
  OperatingPoint nominal_{tech_.vdd_nominal, tech_.temp_nominal};
  AgingModel aging_{tech_};
};

TEST_F(DelayKernelTest, SoAFlattensDeviceParameters) {
  const std::vector<RingOscillator> ros = make_ros(3, 7);
  const RoArraySoA soa = RoArraySoA::from_oscillators(ros);
  EXPECT_EQ(soa.num_ros, 3);
  EXPECT_EQ(soa.stages, 7);
  EXPECT_EQ(soa.size(), 21U);
  ASSERT_EQ(soa.vth_p_fresh.size(), 21U);
  for (std::size_t ro = 0; ro < ros.size(); ++ro) {
    for (std::size_t s = 0; s < 7; ++s) {
      const auto& stage = ros[ro].stages()[s];
      const std::size_t i = ro * 7 + s;
      EXPECT_EQ(soa.vth_p_fresh[i], stage.pmos.vth_fresh);
      EXPECT_EQ(soa.tempco_p[i], stage.pmos.vth_tempco);
      EXPECT_EQ(soa.nbti_sens[i], stage.pmos.nbti_sensitivity);
      EXPECT_EQ(soa.vth_n_fresh[i], stage.nmos.vth_fresh);
      EXPECT_EQ(soa.tempco_n[i], stage.nmos.vth_tempco);
      EXPECT_EQ(soa.hci_sens[i], stage.nmos.hci_sensitivity);
    }
  }
}

TEST_F(DelayKernelTest, SoARejectsMixedStageCounts) {
  std::vector<RingOscillator> ros = make_ros(2, 13);
  {
    const DieVariation die(tech_, 11);
    Xoshiro256 rng(999);
    ros.emplace_back(tech_, 7, Position{3.0, 3.0}, die, rng);
  }
  EXPECT_THROW(RoArraySoA::from_oscillators(ros), std::invalid_argument);
}

TEST_F(DelayKernelTest, EmptyArrayYieldsEmptySoA) {
  const RoArraySoA soa = RoArraySoA::from_oscillators({});
  EXPECT_EQ(soa.num_ros, 0);
  EXPECT_EQ(soa.size(), 0U);
}

TEST_F(DelayKernelTest, KernelValidatesSpanSizes) {
  const std::vector<RingOscillator> ros = make_ros(4);
  const RoArraySoA soa = RoArraySoA::from_oscillators(ros);
  std::vector<AgingShifts> shifts(3);  // one too few
  std::vector<double> freqs(4);
  EXPECT_THROW(compute_frequencies(soa, tech_, nominal_, shifts, freqs), std::invalid_argument);
  shifts.resize(4);
  freqs.resize(5);  // one too many
  EXPECT_THROW(compute_frequencies(soa, tech_, nominal_, shifts, freqs), std::invalid_argument);
}

TEST_F(DelayKernelTest, FreshSiliconMatchesReferenceBitwise) {
  const std::vector<RingOscillator> ros = make_ros();
  expect_bitwise_equal_backends(ros, nominal_);
}

TEST_F(DelayKernelTest, AgedSiliconMatchesReferenceBitwise) {
  std::vector<RingOscillator> ros = make_ros();
  age_unevenly(ros);
  expect_bitwise_equal_backends(ros, nominal_);
}

TEST_F(DelayKernelTest, OffNominalCornersMatchReferenceBitwise) {
  std::vector<RingOscillator> ros = make_ros();
  age_unevenly(ros);
  const OperatingPoint corners[] = {
      {tech_.vdd_nominal * 0.9, celsius(-40.0)},
      {tech_.vdd_nominal * 1.1, celsius(85.0)},
      {tech_.vdd_nominal, celsius(125.0)},
  };
  for (const OperatingPoint op : corners) {
    SCOPED_TRACE(::testing::Message() << "vdd=" << op.vdd << " T=" << op.temp);
    expect_bitwise_equal_backends(ros, op);
  }
}

// Stage counts that exercise the AVX2 main loop (multiples of 4 after the
// NAND stage) and scalar-tail combinations: 3 (pure tail), 5, 7, 13, 21.
TEST_F(DelayKernelTest, StageCountSweepMatchesReferenceBitwise) {
  for (const int stages : {3, 5, 7, 13, 21}) {
    SCOPED_TRACE(::testing::Message() << stages << " stages");
    std::vector<RingOscillator> ros = make_ros(5, stages);
    age_unevenly(ros);
    expect_bitwise_equal_backends(ros, nominal_);
  }
}

// Regression test for the overdrive floor: near (vdd = 0.39 V, barely above
// the nominal |Vth_p| of 0.38 V, so device-to-device variation pushes many
// overdrives below kMinOverdrive) and below (vdd = 0.30 V, under both
// nominal Vth values, every overdrive clamped) threshold, the batched/SIMD
// kernels must apply the same max(vdd - vth, kMinOverdrive) floor as
// DelayModel::edge_delay — frequencies stay finite, positive, and
// bit-identical to the reference path.
TEST_F(DelayKernelTest, NearThresholdVddHonoursOverdriveFloorBitwise) {
  std::vector<RingOscillator> ros = make_ros();
  age_unevenly(ros);
  for (const double vdd : {0.39, 0.30}) {
    SCOPED_TRACE(::testing::Message() << "vdd=" << vdd);
    const OperatingPoint op{vdd, tech_.temp_nominal};
    const RoArraySoA soa = RoArraySoA::from_oscillators(ros);
    std::vector<double> freqs(ros.size());
    detail::frequencies_batched(soa, tech_, op, gather_shifts(ros), freqs);
    for (const double f : freqs) {
      EXPECT_TRUE(std::isfinite(f));
      EXPECT_GT(f, 0.0);
    }
    expect_bitwise_equal_backends(ros, op);
  }
}

TEST(DelayBackendTest, ToStringNamesEveryBackend) {
  EXPECT_STREQ(to_string(DelayBackend::kReference), "reference");
  EXPECT_STREQ(to_string(DelayBackend::kBatched), "batched");
  EXPECT_STREQ(to_string(DelayBackend::kSimd), "simd");
}

TEST(DelayBackendTest, SetBackendReturnsEffectiveBackend) {
  BackendGuard guard;
  EXPECT_EQ(set_delay_backend(DelayBackend::kReference), DelayBackend::kReference);
  EXPECT_EQ(delay_backend(), DelayBackend::kReference);
  EXPECT_EQ(set_delay_backend(DelayBackend::kBatched), DelayBackend::kBatched);
  // kSimd degrades to kBatched when the AVX2 kernel is absent.
  const DelayBackend effective = set_delay_backend(DelayBackend::kSimd);
  if (simd_available()) {
    EXPECT_EQ(effective, DelayBackend::kSimd);
  } else {
    EXPECT_EQ(effective, DelayBackend::kBatched);
  }
  EXPECT_EQ(delay_backend(), effective);
}

TEST(DelayBackendTest, SimdAvailableImpliesSimdCompiled) {
  if (simd_available()) EXPECT_TRUE(simd_compiled());
}

TEST(DelayBackendTest, EnvironmentVariableSelectsBackend) {
  BackendGuard guard;
  {
    ScopedEnv env("AROPUF_KERNEL", "reference");
    reset_delay_backend();
    EXPECT_EQ(delay_backend(), DelayBackend::kReference);
  }
  {
    ScopedEnv env("AROPUF_KERNEL", "batched");
    reset_delay_backend();
    EXPECT_EQ(delay_backend(), DelayBackend::kBatched);
  }
  {
    // Unset (and unrecognized values) resolve to the best available backend.
    ScopedEnv env("AROPUF_KERNEL", nullptr);
    reset_delay_backend();
    EXPECT_EQ(delay_backend(),
              simd_available() ? DelayBackend::kSimd : DelayBackend::kBatched);
  }
}

}  // namespace
}  // namespace aropuf
