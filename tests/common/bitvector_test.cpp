#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace aropuf {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0U);
  EXPECT_EQ(v.popcount(), 0U);
}

TEST(BitVectorTest, ConstructedZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130U);
  EXPECT_EQ(v.popcount(), 0U);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVectorTest, SetGetFlip) {
  BitVector v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_EQ(v.popcount(), 4U);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.set(0, false);
  EXPECT_EQ(v.popcount(), 2U);
}

TEST(BitVectorTest, IndexOutOfRangeThrows) {
  BitVector v(10);
  EXPECT_THROW((void)v.get(10), std::invalid_argument);
  EXPECT_THROW(v.set(10, true), std::invalid_argument);
  EXPECT_THROW(v.flip(10), std::invalid_argument);
}

TEST(BitVectorTest, FromStringRoundTrip) {
  const std::string s = "1011001110001111";
  const BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 10U);
}

TEST(BitVectorTest, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVector::from_string("10x1"), std::invalid_argument);
}

TEST(BitVectorTest, PushBackGrowsAcrossWords) {
  BitVector v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 130U);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitVectorTest, XorBehaves) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  BitVector c = a;
  c ^= b;
  EXPECT_EQ(c.to_string(), "0110");
  EXPECT_EQ((a ^ a).popcount(), 0U);
}

TEST(BitVectorTest, XorLengthMismatchThrows) {
  const BitVector a(4);
  const BitVector b(5);
  EXPECT_THROW(a ^ b, std::invalid_argument);
}

TEST(BitVectorTest, EqualityIncludesLength) {
  EXPECT_EQ(BitVector::from_string("101"), BitVector::from_string("101"));
  EXPECT_FALSE(BitVector::from_string("101") == BitVector::from_string("1010"));
  EXPECT_FALSE(BitVector::from_string("101") == BitVector::from_string("100"));
}

TEST(BitVectorTest, SliceExtractsRange) {
  const BitVector v = BitVector::from_string("0110100110");
  EXPECT_EQ(v.slice(2, 5).to_string(), "10100");
  EXPECT_EQ(v.slice(0, 0).size(), 0U);
  EXPECT_THROW(v.slice(6, 5), std::invalid_argument);
}

TEST(BitVectorTest, ConcatPreservesOrder) {
  const BitVector a = BitVector::from_string("110");
  const BitVector b = BitVector::from_string("01");
  EXPECT_EQ(a.concat(b).to_string(), "11001");
  EXPECT_EQ(BitVector().concat(b).to_string(), "01");
}

TEST(BitVectorTest, OnesFraction) {
  EXPECT_DOUBLE_EQ(BitVector().ones_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(BitVector::from_string("1100").ones_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(BitVector::from_string("1111").ones_fraction(), 1.0);
}

TEST(BitVectorTest, ToBytesLsbFirst) {
  // bits 0..7 = 10000000 -> byte 0x01; bit 8 set -> second byte 0x01.
  BitVector v(9);
  v.set(0, true);
  v.set(8, true);
  const auto bytes = v.to_bytes();
  ASSERT_EQ(bytes.size(), 2U);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x01);
}

TEST(HammingDistanceTest, CountsDifferences) {
  const BitVector a = BitVector::from_string("110010");
  const BitVector b = BitVector::from_string("011010");
  EXPECT_EQ(hamming_distance(a, b), 2U);
  EXPECT_EQ(hamming_distance(a, a), 0U);
}

TEST(HammingDistanceTest, WorksAcrossWordBoundaries) {
  BitVector a(200);
  BitVector b(200);
  for (std::size_t i = 0; i < 200; i += 7) b.flip(i);
  EXPECT_EQ(hamming_distance(a, b), b.popcount());
}

TEST(HammingDistanceTest, LengthMismatchThrows) {
  EXPECT_THROW((void)hamming_distance(BitVector(3), BitVector(4)), std::invalid_argument);
}

TEST(FractionalHammingDistanceTest, NormalizesByLength) {
  const BitVector a = BitVector::from_string("1111");
  const BitVector b = BitVector::from_string("0011");
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(BitVector(), BitVector()), 0.0);
}

TEST(BitVectorTest, FromBytesRoundTripsToBytes) {
  for (const std::size_t bits : {0UL, 1UL, 7UL, 8UL, 63UL, 64UL, 65UL, 130UL, 200UL}) {
    BitVector v(bits);
    for (std::size_t i = 0; i < bits; i += 3) v.set(i, true);
    const std::vector<std::uint8_t> packed = v.to_bytes();
    EXPECT_EQ(BitVector::from_bytes(packed.data(), bits), v) << bits << " bits";
  }
}

TEST(BitVectorTest, FromBytesIgnoresStrayPaddingBits) {
  // Bits past `bits` in the final byte must not leak into the vector (the
  // padding-is-zero invariant), so popcount and equality stay exact.
  const std::uint8_t raw[] = {0xff, 0xff};
  const BitVector v = BitVector::from_bytes(raw, 10);
  EXPECT_EQ(v.size(), 10U);
  EXPECT_EQ(v.popcount(), 10U);
  EXPECT_EQ(v, BitVector::from_bytes(v.to_bytes().data(), 10));
}

/// Scalar reference: count set bits one by one.
std::size_t popcount_bytes_scalar(const std::uint8_t* data, std::size_t size) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < size; ++i) {
    for (int b = 0; b < 8; ++b) count += (data[i] >> b) & 1;
  }
  return count;
}

TEST(PopcountBytesTest, MatchesScalarReference) {
  std::vector<std::uint8_t> data;
  for (std::size_t i = 0; i < 41; ++i) {
    data.push_back(static_cast<std::uint8_t>((i * 37 + 11) & 0xff));
    EXPECT_EQ(popcount_bytes(data.data(), data.size()),
              popcount_bytes_scalar(data.data(), data.size()))
        << data.size() << " bytes";
  }
  EXPECT_EQ(popcount_bytes(data.data(), 0), 0U);
}

/// Scalar reference for the packed-HD hot path: bit-by-bit comparison.
std::size_t hamming_distance_packed_scalar(const BitVector& a, const std::uint8_t* packed,
                                           std::size_t bits) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const bool pb = ((packed[i / 8] >> (i % 8)) & 1) != 0;
    count += a.get(i) != pb ? 1 : 0;
  }
  return count;
}

TEST(HammingDistancePackedTest, MatchesScalarReferenceAtAllLengths) {
  for (const std::size_t bits : {1UL, 7UL, 8UL, 63UL, 64UL, 65UL, 128UL, 200UL}) {
    BitVector a(bits);
    std::vector<std::uint8_t> packed((bits + 7) / 8, 0);
    for (std::size_t i = 0; i < bits; i += 3) a.set(i, true);
    for (std::size_t i = 0; i < packed.size(); ++i) {
      packed[i] = static_cast<std::uint8_t>((i * 73 + 29) & 0xff);
    }
    EXPECT_EQ(hamming_distance_packed(a, packed.data(), bits),
              hamming_distance_packed_scalar(a, packed.data(), bits))
        << bits << " bits";
  }
}

TEST(HammingDistancePackedTest, AgreesWithBitVectorHammingDistance) {
  BitVector a(130);
  BitVector b(130);
  for (std::size_t i = 0; i < 130; i += 5) a.flip(i);
  for (std::size_t i = 1; i < 130; i += 7) b.flip(i);
  const std::vector<std::uint8_t> packed = b.to_bytes();
  EXPECT_EQ(hamming_distance_packed(a, packed.data(), 130), hamming_distance(a, b));
}

TEST(HammingDistancePackedTest, StrayBitsInTheFinalPackedByteAreMasked) {
  // 10 bits leaves 6 padding bits in the second byte; set them all and the
  // distance must not change.
  const BitVector a(10);
  std::uint8_t packed[] = {0x03, 0x01};
  const std::size_t clean = hamming_distance_packed(a, packed, 10);
  packed[1] |= 0xfc;
  EXPECT_EQ(hamming_distance_packed(a, packed, 10), clean);
  EXPECT_EQ(clean, 3U);
}

TEST(HammingDistancePackedTest, LengthMismatchThrows) {
  const BitVector a(16);
  const std::uint8_t packed[2] = {0, 0};
  EXPECT_THROW((void)hamming_distance_packed(a, packed, 8), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
