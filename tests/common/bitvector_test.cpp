#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0U);
  EXPECT_EQ(v.popcount(), 0U);
}

TEST(BitVectorTest, ConstructedZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130U);
  EXPECT_EQ(v.popcount(), 0U);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVectorTest, SetGetFlip) {
  BitVector v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_EQ(v.popcount(), 4U);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.set(0, false);
  EXPECT_EQ(v.popcount(), 2U);
}

TEST(BitVectorTest, IndexOutOfRangeThrows) {
  BitVector v(10);
  EXPECT_THROW((void)v.get(10), std::invalid_argument);
  EXPECT_THROW(v.set(10, true), std::invalid_argument);
  EXPECT_THROW(v.flip(10), std::invalid_argument);
}

TEST(BitVectorTest, FromStringRoundTrip) {
  const std::string s = "1011001110001111";
  const BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 10U);
}

TEST(BitVectorTest, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVector::from_string("10x1"), std::invalid_argument);
}

TEST(BitVectorTest, PushBackGrowsAcrossWords) {
  BitVector v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 130U);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitVectorTest, XorBehaves) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  BitVector c = a;
  c ^= b;
  EXPECT_EQ(c.to_string(), "0110");
  EXPECT_EQ((a ^ a).popcount(), 0U);
}

TEST(BitVectorTest, XorLengthMismatchThrows) {
  const BitVector a(4);
  const BitVector b(5);
  EXPECT_THROW(a ^ b, std::invalid_argument);
}

TEST(BitVectorTest, EqualityIncludesLength) {
  EXPECT_EQ(BitVector::from_string("101"), BitVector::from_string("101"));
  EXPECT_FALSE(BitVector::from_string("101") == BitVector::from_string("1010"));
  EXPECT_FALSE(BitVector::from_string("101") == BitVector::from_string("100"));
}

TEST(BitVectorTest, SliceExtractsRange) {
  const BitVector v = BitVector::from_string("0110100110");
  EXPECT_EQ(v.slice(2, 5).to_string(), "10100");
  EXPECT_EQ(v.slice(0, 0).size(), 0U);
  EXPECT_THROW(v.slice(6, 5), std::invalid_argument);
}

TEST(BitVectorTest, ConcatPreservesOrder) {
  const BitVector a = BitVector::from_string("110");
  const BitVector b = BitVector::from_string("01");
  EXPECT_EQ(a.concat(b).to_string(), "11001");
  EXPECT_EQ(BitVector().concat(b).to_string(), "01");
}

TEST(BitVectorTest, OnesFraction) {
  EXPECT_DOUBLE_EQ(BitVector().ones_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(BitVector::from_string("1100").ones_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(BitVector::from_string("1111").ones_fraction(), 1.0);
}

TEST(BitVectorTest, ToBytesLsbFirst) {
  // bits 0..7 = 10000000 -> byte 0x01; bit 8 set -> second byte 0x01.
  BitVector v(9);
  v.set(0, true);
  v.set(8, true);
  const auto bytes = v.to_bytes();
  ASSERT_EQ(bytes.size(), 2U);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x01);
}

TEST(HammingDistanceTest, CountsDifferences) {
  const BitVector a = BitVector::from_string("110010");
  const BitVector b = BitVector::from_string("011010");
  EXPECT_EQ(hamming_distance(a, b), 2U);
  EXPECT_EQ(hamming_distance(a, a), 0U);
}

TEST(HammingDistanceTest, WorksAcrossWordBoundaries) {
  BitVector a(200);
  BitVector b(200);
  for (std::size_t i = 0; i < 200; i += 7) b.flip(i);
  EXPECT_EQ(hamming_distance(a, b), b.popcount());
}

TEST(HammingDistanceTest, LengthMismatchThrows) {
  EXPECT_THROW((void)hamming_distance(BitVector(3), BitVector(4)), std::invalid_argument);
}

TEST(FractionalHammingDistanceTest, NormalizesByLength) {
  const BitVector a = BitVector::from_string("1111");
  const BitVector b = BitVector::from_string("0011");
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(BitVector(), BitVector()), 0.0);
}

}  // namespace
}  // namespace aropuf
