#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace aropuf::cli {
namespace {

/// Owns argv storage: Parser::parse wants char**, string literals are const.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(pointers_.size()); }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

void set_env(const char* name, const char* value) {
#ifdef _WIN32
  _putenv_s(name, value == nullptr ? "" : value);
#else
  if (value == nullptr) {
    unsetenv(name);
  } else {
    setenv(name, value, 1);
  }
#endif
}

TEST(CliParserTest, ParsesEveryFlagKind) {
  bool verbose = false;
  int chips = 0;
  std::uint64_t seed = 0;
  double timeout = 0.0;
  std::string out;
  std::string custom;
  Parser parser("prog", "test program");
  parser.flag("--verbose", &verbose, "chatty")
      .opt_int("--chips", &chips, "N", "population", 2)
      .opt_uint64("--seed", &seed, "S", "master seed")
      .opt_double("--timeout", &timeout, "SECS", "per-shard budget", 0.0)
      .opt_string("--out", &out, "DIR", "output directory")
      .opt_custom("--pair", "K/N", "bespoke grammar",
                  [&custom](const std::string& value) {
                    custom = value;
                    return value.find('/') != std::string::npos;
                  });
  Argv argv({"prog", "--verbose", "--chips", "12", "--seed=18446744073709551615",
             "--timeout", "2.5", "--out=runs/a", "--pair", "3/4"});
  ASSERT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kOk);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(chips, 12);
  EXPECT_EQ(seed, UINT64_MAX);
  EXPECT_EQ(timeout, 2.5);
  EXPECT_EQ(out, "runs/a");
  EXPECT_EQ(custom, "3/4");
}

TEST(CliParserTest, UnknownFlagIsAnErrorInStrictMode) {
  int chips = 0;
  Parser parser("prog", "test program");
  parser.opt_int("--chips", &chips, "N", "population", 2);
  Argv argv({"prog", "--nope"});
  EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kError);
}

TEST(CliParserTest, AllowUnknownSkipsForeignArguments) {
  int chips = 0;
  Parser parser("prog", "test program");
  parser.opt_int("--chips", &chips, "N", "population", 2).allow_unknown();
  Argv argv({"prog", "--benchmark_filter=all", "--chips", "8", "positional"});
  EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kOk);
  EXPECT_EQ(chips, 8);
}

TEST(CliParserTest, HelpShortCircuits) {
  Parser parser("prog", "test program");
  Argv argv({"prog", "--help"});
  EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kHelp);
  Argv short_form({"prog", "-h"});
  EXPECT_EQ(parser.parse(short_form.argc(), short_form.argv()), ParseStatus::kHelp);
}

TEST(CliParserTest, RejectsBadValues) {
  int chips = 0;
  std::uint64_t seed = 0;
  {  // below the declared minimum
    Parser parser("prog", "test");
    parser.opt_int("--chips", &chips, "N", "population", 2);
    Argv argv({"prog", "--chips", "1"});
    EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kError);
  }
  {  // not a number at all
    Parser parser("prog", "test");
    parser.opt_uint64("--seed", &seed, "S", "seed");
    Argv argv({"prog", "--seed", "twelve"});
    EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kError);
  }
  {  // trailing junk after the number is not silently ignored
    Parser parser("prog", "test");
    parser.opt_int("--chips", &chips, "N", "population", 2);
    Argv argv({"prog", "--chips", "12abc"});
    EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kError);
  }
  {  // missing value
    Parser parser("prog", "test");
    parser.opt_int("--chips", &chips, "N", "population", 2);
    Argv argv({"prog", "--chips"});
    EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kError);
  }
  {  // custom parser veto
    Parser parser("prog", "test");
    parser.opt_custom("--pair", "K/N", "grammar",
                      [](const std::string& value) { return value == "ok"; });
    Argv argv({"prog", "--pair", "bad"});
    EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kError);
  }
}

TEST(CliParserTest, HiddenFlagsStillParse) {
  std::string manifest;
  Parser parser("prog", "test");
  parser.opt_string("--manifest", &manifest, "PATH", "worker plumbing").hidden();
  Argv argv({"prog", "--manifest=/tmp/m.json"});
  EXPECT_EQ(parser.parse(argv.argc(), argv.argv()), ParseStatus::kOk);
  EXPECT_EQ(manifest, "/tmp/m.json");
}

TEST(CliEnvTest, RegistryLookupsTreatEmptyAsUnset) {
  // AROPUF_TRACE is registered but only read by the trace subsystem at
  // session start, so mutating it here cannot perturb other tests.
  set_env("AROPUF_TRACE", nullptr);
  EXPECT_EQ(env_value("AROPUF_TRACE"), nullptr);
  set_env("AROPUF_TRACE", "");
  EXPECT_EQ(env_value("AROPUF_TRACE"), nullptr);
  set_env("AROPUF_TRACE", "trace.json");
  ASSERT_NE(env_value("AROPUF_TRACE"), nullptr);
  EXPECT_STREQ(env_value("AROPUF_TRACE"), "trace.json");
  set_env("AROPUF_TRACE", nullptr);
}

TEST(CliEnvTest, EveryRegisteredVariableIsDocumented) {
  ASSERT_FALSE(env_vars().empty());
  for (const EnvVar& var : env_vars()) {
    EXPECT_NE(var.name, nullptr);
    EXPECT_NE(var.doc, nullptr);
    EXPECT_NE(env_help().find(var.name), std::string::npos) << var.name;
  }
}

}  // namespace
}  // namespace aropuf::cli
