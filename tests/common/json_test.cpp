#include "common/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1.5e3").as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2E-2").as_number(), 0.02);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(JsonValue::parse(R"("line\nbreak")").as_string(), "line\nbreak");
  EXPECT_EQ(JsonValue::parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(JsonValue::parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xC3\xA9");    // é
  EXPECT_EQ(JsonValue::parse(R"("€")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(JsonParseTest, NestedStructures) {
  const auto v = JsonValue::parse(R"({
    "name": "cmos90",
    "sweep": [1, 2.5, 10],
    "nested": {"flag": true, "note": null}
  })");
  EXPECT_EQ(v.at("name").as_string(), "cmos90");
  const auto& sweep = v.at("sweep").as_array();
  ASSERT_EQ(sweep.size(), 3U);
  EXPECT_DOUBLE_EQ(sweep[1].as_number(), 2.5);
  EXPECT_TRUE(v.at("nested").at("flag").as_bool());
  EXPECT_TRUE(v.at("nested").at("note").is_null());
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(JsonValue::parse("[]").as_array().empty());
  EXPECT_TRUE(JsonValue::parse("{}").as_object().empty());
  EXPECT_TRUE(JsonValue::parse("  [ ]  ").as_array().empty());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "[1 2]", "{\"a\" 1}", "{\"a\":}", "tru", "nul", "01x", "+1",
        "\"unterminated", "{\"a\":1,}", "[1,]", "1 2", "{1: 2}", "\"bad\\q\"",
        "\"\\u12G4\""}) {
    EXPECT_THROW(JsonValue::parse(bad), std::invalid_argument) << "input: " << bad;
  }
}

TEST(JsonParseTest, RejectsUnescapedControlCharacters) {
  EXPECT_THROW(JsonValue::parse("\"a\nb\""), std::invalid_argument);
}

TEST(JsonParseTest, ExtremeNumbersParseOrFailTyped) {
  // Fuzz regression: glibc strtod flags subnormal results with ERANGE, which
  // made std::stod throw std::out_of_range — the wrong type — for the legal
  // document "5e-324".  Subnormals and huge-but-finite values must parse;
  // overflow must be the usual std::invalid_argument, never out_of_range.
  EXPECT_DOUBLE_EQ(JsonValue::parse("5e-324").as_number(), 5e-324);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e-400").as_number(), 0.0);
  EXPECT_THROW(JsonValue::parse("1e309"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("-1e999"), std::invalid_argument);
}

TEST(JsonDumpTest, CompactRendering) {
  JsonValue::Object o;
  o["b"] = JsonValue(true);
  o["a"] = JsonValue(1);
  o["s"] = JsonValue("x,y");
  JsonValue::Array arr{JsonValue(1), JsonValue(2)};
  o["arr"] = JsonValue(arr);
  // std::map ordering: keys alphabetical -> canonical output.
  EXPECT_EQ(JsonValue(o).dump(), R"({"a":1,"arr":[1,2],"b":true,"s":"x,y"})");
}

TEST(JsonDumpTest, NumbersRoundTripPrecisely) {
  for (const double d : {0.0, 1.0, -7.0, 3.141592653589793, 1e-9, 2.35e-3, 1.5e15}) {
    const std::string text = JsonValue(d).dump();
    EXPECT_DOUBLE_EQ(JsonValue::parse(text).as_number(), d) << text;
  }
}

TEST(JsonDumpTest, StringsEscapeOnOutput) {
  EXPECT_EQ(JsonValue("say \"hi\"\n").dump(), R"("say \"hi\"\n")");
}

TEST(JsonDumpTest, PrettyPrintIndents) {
  JsonValue::Object o;
  o["k"] = JsonValue(1);
  const std::string pretty = JsonValue(o).dump(2);
  EXPECT_NE(pretty.find("{\n  \"k\": 1\n}"), std::string::npos);
}

TEST(JsonRoundTripTest, ParseDumpParseIsIdentity) {
  const std::string text =
      R"({"a":[1,2,{"deep":true}],"b":"text","c":null,"d":-2.5,"e":{}})";
  const JsonValue once = JsonValue::parse(text);
  const JsonValue twice = JsonValue::parse(once.dump());
  EXPECT_TRUE(once == twice);
}

TEST(JsonAccessTest, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW((void)v.as_object(), std::invalid_argument);
  EXPECT_THROW((void)v.as_string(), std::invalid_argument);
  EXPECT_THROW((void)v.at("missing"), std::invalid_argument);
  const JsonValue o = JsonValue::parse("{\"x\": 1}");
  EXPECT_THROW((void)o.at("y"), std::invalid_argument);
  EXPECT_THROW((void)o.at("x").as_bool(), std::invalid_argument);
}

TEST(JsonAccessTest, DefaultingAccessors) {
  const JsonValue o = JsonValue::parse(R"({"x": 2, "flag": true, "s": "v"})");
  EXPECT_DOUBLE_EQ(o.number_or("x", 7.0), 2.0);
  EXPECT_DOUBLE_EQ(o.number_or("missing", 7.0), 7.0);
  EXPECT_TRUE(o.bool_or("flag", false));
  EXPECT_FALSE(o.bool_or("missing", false));
  EXPECT_EQ(o.string_or("s", "d"), "v");
  EXPECT_EQ(o.string_or("missing", "d"), "d");
}

}  // namespace
}  // namespace aropuf
