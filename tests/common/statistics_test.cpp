#include "common/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace aropuf {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squares 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2U);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsSamplesCorrectly) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);
  h.add(0.15);
  h.add(0.15);
  h.add(0.95);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 2U);
  EXPECT_EQ(h.count(9), 1U);
  EXPECT_EQ(h.total(), 4U);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(3), 1U);
  EXPECT_EQ(h.total(), 2U);
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 1.75);
  EXPECT_THROW((void)h.bin_center(4), std::invalid_argument);
}

TEST(HistogramTest, AsciiBarsScaleToPeak) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  h.add(0.75);
  const auto lines = h.ascii(20);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0].size(), 20U);
  EXPECT_EQ(lines[1].size(), 2U);
}

TEST(PercentileTest, HandlesSimpleCases) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(PercentileTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(BinomialTest, CoefficientMatchesPascal) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-7);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(4, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(4, 4)), 1.0, 1e-12);
}

TEST(BinomialTest, PmfSumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) total += binomial_pmf(20, k, 0.3);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BinomialTest, PmfDegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(BinomialTest, TailMatchesDirectSum) {
  const double direct = binomial_pmf(12, 9, 0.4) + binomial_pmf(12, 10, 0.4) +
                        binomial_pmf(12, 11, 0.4) + binomial_pmf(12, 12, 0.4);
  EXPECT_NEAR(binomial_tail_greater(12, 8, 0.4), direct, 1e-12);
}

TEST(BinomialTest, TailEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_tail_greater(10, 10, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_greater(10, 12, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_greater(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_greater(10, 3, 1.0), 1.0);
  // P[X > 0] = 1 - (1-p)^n.
  EXPECT_NEAR(binomial_tail_greater(10, 0, 0.1), 1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(BinomialTest, DeepTailStaysAccurate) {
  // P[Bin(255, 0.01) > 20] is astronomically small but must not underflow
  // to garbage; compare against a direct log-space sum of the first terms.
  const double tail = binomial_tail_greater(255, 20, 0.01);
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 1e-12);
  const double first_term = binomial_pmf(255, 21, 0.01);
  EXPECT_GT(tail, first_term * 0.99);
  EXPECT_LT(tail, first_term * 2.0);
}

TEST(BinomialTest, LeftSideBranchConsistent) {
  // k far below the mean exercises the 1 - CDF branch.
  const double tail = binomial_tail_greater(100, 10, 0.5);
  double direct = 0.0;
  for (std::uint64_t i = 11; i <= 100; ++i) direct += binomial_pmf(100, i, 0.5);
  EXPECT_NEAR(tail, direct, 1e-9);
}

}  // namespace
}  // namespace aropuf
