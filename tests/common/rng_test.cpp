#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/statistics.hpp"

namespace aropuf {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64Test, KnownReferenceValues) {
  // Reference outputs of the public-domain splitmix64 for seed 1234567.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(Xoshiro256Test, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, UniformMeanAndVariance) {
  Xoshiro256 rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Xoshiro256Test, UniformRangeRespectsBounds) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256Test, GaussianMoments) {
  Xoshiro256 rng(19);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Xoshiro256Test, GaussianScaledMoments) {
  Xoshiro256 rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Xoshiro256Test, GaussianTailFractionMatchesNormal) {
  Xoshiro256 rng(29);
  int beyond_2sigma = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (std::fabs(rng.gaussian()) > 2.0) ++beyond_2sigma;
  }
  // P(|Z| > 2) = 4.55 %.
  EXPECT_NEAR(static_cast<double>(beyond_2sigma) / kSamples, 0.0455, 0.005);
}

TEST(Xoshiro256Test, BoundedStaysInBound) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17U);
}

TEST(Xoshiro256Test, BoundedZeroReturnsZero) {
  Xoshiro256 rng(37);
  EXPECT_EQ(rng.bounded(0), 0U);
}

TEST(Xoshiro256Test, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(41);
  std::vector<int> counts(8, 0);
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.bounded(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 0.125, 0.01);
  }
}

TEST(Xoshiro256Test, BernoulliMatchesProbability) {
  Xoshiro256 rng(43);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngFabricTest, SameNameSameStream) {
  const RngFabric fabric(99);
  Xoshiro256 a = fabric.stream("devices", 3);
  Xoshiro256 b = fabric.stream("devices", 3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(RngFabricTest, DifferentNamesDiverge) {
  const RngFabric fabric(99);
  EXPECT_NE(fabric.derive("devices"), fabric.derive("noise"));
}

TEST(RngFabricTest, DifferentIndicesDiverge) {
  const RngFabric fabric(99);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(fabric.derive("chip", i));
  EXPECT_EQ(seeds.size(), 1000U);
}

TEST(RngFabricTest, AllThreeIndicesMatter) {
  const RngFabric fabric(5);
  EXPECT_NE(fabric.derive("x", 1, 0, 0), fabric.derive("x", 0, 1, 0));
  EXPECT_NE(fabric.derive("x", 0, 1, 0), fabric.derive("x", 0, 0, 1));
  EXPECT_NE(fabric.derive("x", 1, 0, 0), fabric.derive("x", 0, 0, 1));
}

TEST(RngFabricTest, ChildFabricsAreIndependent) {
  const RngFabric parent(7);
  const RngFabric c0 = parent.child("chip", 0);
  const RngFabric c1 = parent.child("chip", 1);
  EXPECT_NE(c0.derive("devices"), c1.derive("devices"));
  // A child never reproduces the parent's streams.
  EXPECT_NE(c0.derive("devices"), parent.derive("devices"));
}

TEST(RngFabricTest, MasterSeedChangesEverything) {
  const RngFabric a(1);
  const RngFabric b(2);
  EXPECT_NE(a.derive("devices", 1, 2, 3), b.derive("devices", 1, 2, 3));
}

}  // namespace
}  // namespace aropuf
