#include "common/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace aropuf {
namespace {

TEST(GammaTest, PAndQAreComplementary) {
  for (const double a : {0.5, 1.0, 2.5, 10.0}) {
    for (const double x : {0.1, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, IntegerShapeMatchesPoissonCdf) {
  // For integer a, Q(a, x) = P[Poisson(x) < a] = sum_{k<a} e^-x x^k / k!.
  const double x = 2.5;
  double poisson_cdf = 0.0;
  double term = std::exp(-x);
  for (int k = 0; k < 3; ++k) {
    poisson_cdf += term;
    term *= x / (k + 1);
  }
  EXPECT_NEAR(regularized_gamma_q(3.0, x), poisson_cdf, 1e-12);
}

TEST(GammaTest, HalfShapeMatchesErfc) {
  // Q(1/2, x) = erfc(sqrt(x)).
  for (const double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_q(0.5, x), std::erfc(std::sqrt(x)), 1e-12);
  }
}

TEST(GammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 50.0), 1.0, 1e-12);
}

TEST(GammaTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double p = regularized_gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GammaTest, RejectsBadDomain) {
  EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)regularized_gamma_p(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)regularized_gamma_q(-2.0, 1.0), std::invalid_argument);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 2e-4);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-7);
  EXPECT_NEAR(normal_quantile(0.95), 1.644853627, 1e-7);
}

TEST(NormalQuantileTest, RejectsBadDomain) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
