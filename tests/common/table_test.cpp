#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace aropuf {
namespace {

TEST(TableTest, RendersTitleHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "long-column", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long-column"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find(" | "), std::string::npos);
}

TEST(TableTest, RowWidthMustMatchHeader) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, HeaderAfterRowsRejected) {
  Table t("demo");
  t.add_row({"free-form"});
  EXPECT_THROW(t.set_header({"a"}), std::invalid_argument);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(TableTest, HeaderlessTablePrintsRows) {
  Table t("raw");
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

}  // namespace
}  // namespace aropuf
