#include "ecc/repetition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(RepetitionTest, RejectsEvenOrNonPositiveFactors) {
  EXPECT_THROW(RepetitionCode(0), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(2), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(-3), std::invalid_argument);
  EXPECT_NO_THROW(RepetitionCode(1));
}

TEST(RepetitionTest, EncodeRepeatsEachBit) {
  const RepetitionCode code(3);
  const BitVector encoded = code.encode(BitVector::from_string("101"));
  EXPECT_EQ(encoded.to_string(), "111000111");
}

TEST(RepetitionTest, RateOneIsIdentity) {
  const RepetitionCode code(1);
  const BitVector msg = BitVector::from_string("1100101");
  EXPECT_EQ(code.encode(msg), msg);
  EXPECT_EQ(code.decode(msg), msg);
}

TEST(RepetitionTest, DecodeMajorityVotes) {
  const RepetitionCode code(3);
  // Groups: 110 -> 1, 001 -> 0, 111 -> 1.
  EXPECT_EQ(code.decode(BitVector::from_string("110001111")).to_string(), "101");
}

TEST(RepetitionTest, RoundTripWithoutErrors) {
  const RepetitionCode code(5);
  const BitVector msg = BitVector::from_string("010011");
  EXPECT_EQ(code.decode(code.encode(msg)), msg);
}

TEST(RepetitionTest, CorrectsUpToHalfPerGroup) {
  const RepetitionCode code(5);
  const BitVector msg = BitVector::from_string("10");
  BitVector noisy = code.encode(msg);
  noisy.flip(0);
  noisy.flip(3);  // 2 of 5 copies of bit 0
  noisy.flip(7);  // 1 of 5 copies of bit 1
  EXPECT_EQ(code.decode(noisy), msg);
}

TEST(RepetitionTest, MajorityOfFlipsWins) {
  const RepetitionCode code(3);
  BitVector noisy = code.encode(BitVector::from_string("0"));
  noisy.flip(0);
  noisy.flip(2);
  EXPECT_EQ(code.decode(noisy).to_string(), "1");
}

TEST(RepetitionTest, DecodeRejectsNonMultipleLength) {
  const RepetitionCode code(3);
  EXPECT_THROW(code.decode(BitVector(7)), std::invalid_argument);
}

TEST(RepetitionTest, DecodedErrorRateFormula) {
  const RepetitionCode code(3);
  // P[>=2 of 3 flip] = 3p^2(1-p) + p^3.
  const double p = 0.1;
  EXPECT_NEAR(code.decoded_error_rate(p), 3 * p * p * (1 - p) + p * p * p, 1e-12);
  EXPECT_DOUBLE_EQ(code.decoded_error_rate(0.0), 0.0);
}

TEST(RepetitionTest, MoreRepetitionLowersErrorRate) {
  const double p = 0.08;
  double prev = 1.0;
  for (const int r : {1, 3, 5, 7, 9}) {
    const double rate = RepetitionCode(r).decoded_error_rate(p);
    EXPECT_LT(rate, prev + 1e-15);
    prev = rate;
  }
}

TEST(RepetitionTest, ErrorRateAboveHalfGetsAmplified) {
  // Majority voting amplifies error when the channel is worse than random.
  const RepetitionCode code(5);
  EXPECT_GT(code.decoded_error_rate(0.6), 0.6);
}

}  // namespace
}  // namespace aropuf
