#include "ecc/gf2m.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(GF2mTest, ConstructsAllSupportedFields) {
  for (int m = 3; m <= 14; ++m) {
    const GF2m field(m);
    EXPECT_EQ(field.m(), m);
    EXPECT_EQ(field.size(), 1U << m);
    EXPECT_EQ(field.order(), (1U << m) - 1);
  }
}

TEST(GF2mTest, RejectsUnsupportedDegrees) {
  EXPECT_THROW(GF2m(2), std::invalid_argument);
  EXPECT_THROW(GF2m(15), std::invalid_argument);
}

TEST(GF2mTest, RejectsNonPrimitivePolynomial) {
  // x^4 + 1 is not even irreducible.
  EXPECT_THROW(GF2m(4, 0x11), std::invalid_argument);
  // Wrong degree.
  EXPECT_THROW(GF2m(4, 0x0B), std::invalid_argument);
}

TEST(GF2mTest, AdditionIsXor) {
  EXPECT_EQ(GF2m::add(0b1010, 0b0110), 0b1100U);
  EXPECT_EQ(GF2m::add(7, 7), 0U);
}

TEST(GF2mTest, Gf8MultiplicationTable) {
  // GF(8) with x^3 + x + 1: alpha = 2, alpha^3 = alpha + 1 = 3.
  const GF2m f(3);
  EXPECT_EQ(f.mul(2, 2), 4U);
  EXPECT_EQ(f.mul(2, 4), 3U);   // alpha^3 = x + 1
  EXPECT_EQ(f.mul(4, 4), 6U);   // alpha^6
  EXPECT_EQ(f.mul(0, 5), 0U);
  EXPECT_EQ(f.mul(1, 5), 5U);
}

TEST(GF2mTest, MultiplicationIsCommutativeAndAssociative) {
  const GF2m f(8);
  for (std::uint32_t a = 1; a < 40; ++a) {
    for (std::uint32_t b = 1; b < 40; ++b) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
      EXPECT_EQ(f.mul(f.mul(a, b), 7), f.mul(a, f.mul(b, 7)));
    }
  }
}

TEST(GF2mTest, DistributesOverAddition) {
  const GF2m f(8);
  for (std::uint32_t a = 1; a < 30; ++a) {
    for (std::uint32_t b = 0; b < 30; ++b) {
      EXPECT_EQ(f.mul(a, GF2m::add(b, 17)), GF2m::add(f.mul(a, b), f.mul(a, 17)));
    }
  }
}

TEST(GF2mTest, InverseRoundTrips) {
  const GF2m f(8);
  for (std::uint32_t a = 1; a < f.size(); ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1U);
  }
}

TEST(GF2mTest, DivisionIsMultiplicationByInverse) {
  const GF2m f(6);
  for (std::uint32_t a = 0; a < f.size(); ++a) {
    for (std::uint32_t b = 1; b < 20; ++b) {
      EXPECT_EQ(f.div(a, b), f.mul(a, f.inv(b)));
    }
  }
}

TEST(GF2mTest, ZeroHasNoInverse) {
  const GF2m f(5);
  EXPECT_THROW((void)f.inv(0), std::invalid_argument);
  EXPECT_THROW((void)f.div(3, 0), std::invalid_argument);
  EXPECT_THROW((void)f.log(0), std::invalid_argument);
}

TEST(GF2mTest, AlphaPowersCycle) {
  const GF2m f(5);
  EXPECT_EQ(f.alpha_pow(0), 1U);
  EXPECT_EQ(f.alpha_pow(1), 2U);
  EXPECT_EQ(f.alpha_pow(f.order()), 1U);
  EXPECT_EQ(f.alpha_pow(-1), f.alpha_pow(f.order() - 1));
  EXPECT_EQ(f.alpha_pow(2 * static_cast<std::int64_t>(f.order()) + 3), f.alpha_pow(3));
}

TEST(GF2mTest, LogInvertsAlphaPow) {
  const GF2m f(7);
  for (std::uint32_t e = 0; e < f.order(); ++e) {
    EXPECT_EQ(f.log(f.alpha_pow(e)), e);
  }
}

TEST(GF2mTest, PowMatchesRepeatedMultiplication) {
  const GF2m f(6);
  for (std::uint32_t a = 1; a < 10; ++a) {
    std::uint32_t acc = 1;
    for (std::uint64_t e = 0; e < 12; ++e) {
      EXPECT_EQ(f.pow(a, e), acc);
      acc = f.mul(acc, a);
    }
  }
  EXPECT_EQ(f.pow(0, 0), 1U);
  EXPECT_EQ(f.pow(0, 5), 0U);
}

TEST(GF2mTest, OperandRangeChecked) {
  const GF2m f(3);
  EXPECT_THROW((void)f.mul(8, 1), std::invalid_argument);
  EXPECT_THROW((void)f.inv(8), std::invalid_argument);
}

TEST(GF2mTest, FermatPropertyHolds) {
  // a^(2^m - 1) = 1 for all nonzero a.
  const GF2m f(9);
  for (std::uint32_t a = 1; a < 100; ++a) {
    EXPECT_EQ(f.pow(a, f.order()), 1U);
  }
}

}  // namespace
}  // namespace aropuf
