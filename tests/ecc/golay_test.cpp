#include "ecc/golay.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "common/rng.hpp"

namespace aropuf {
namespace {

BitVector random_message(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector m(GolayCode::kK);
  for (std::size_t i = 0; i < m.size(); ++i) m.set(i, rng.bernoulli(0.5));
  return m;
}

class GolayTest : public ::testing::Test {
 protected:
  GolayCode code_;
};

TEST_F(GolayTest, Parameters) {
  EXPECT_EQ(GolayCode::n(), 23U);
  EXPECT_EQ(GolayCode::k(), 12U);
  EXPECT_EQ(GolayCode::t(), 3);
}

TEST_F(GolayTest, EncodeProducesCodewords) {
  for (std::uint64_t s = 0; s < 20; ++s) {
    const BitVector msg = random_message(s);
    const BitVector cw = code_.encode(msg);
    EXPECT_EQ(cw.size(), 23U);
    EXPECT_TRUE(code_.is_codeword(cw));
    EXPECT_EQ(code_.extract_message(cw), msg);
  }
}

TEST_F(GolayTest, AllSingleAndDoubleErrorsCorrected) {
  const BitVector cw = code_.encode(random_message(7));
  for (std::size_t a = 0; a < 23; ++a) {
    BitVector e1 = cw;
    e1.flip(a);
    EXPECT_EQ(code_.decode(e1), cw) << "single error at " << a;
    for (std::size_t b = a + 1; b < 23; ++b) {
      BitVector e2 = e1;
      e2.flip(b);
      EXPECT_EQ(code_.decode(e2), cw) << "double error at " << a << "," << b;
    }
  }
}

TEST_F(GolayTest, AllTripleErrorsCorrected) {
  const BitVector cw = code_.encode(random_message(9));
  // All C(23,3) = 1771 patterns.
  for (std::size_t a = 0; a < 23; ++a) {
    for (std::size_t b = a + 1; b < 23; ++b) {
      for (std::size_t c = b + 1; c < 23; ++c) {
        BitVector noisy = cw;
        noisy.flip(a);
        noisy.flip(b);
        noisy.flip(c);
        ASSERT_EQ(code_.decode(noisy), cw) << a << "," << b << "," << c;
      }
    }
  }
}

TEST_F(GolayTest, FourErrorsMisdecodeToAnotherCodeword) {
  // Perfect code: weight-4 errors land within distance 3 of a *different*
  // codeword; decode always yields a codeword but not the original.
  const BitVector cw = code_.encode(random_message(11));
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector noisy = cw;
    std::set<std::uint64_t> pos;
    while (pos.size() < 4) pos.insert(rng.bounded(23));
    for (const auto p : pos) noisy.flip(static_cast<std::size_t>(p));
    const BitVector decoded = code_.decode(noisy);
    EXPECT_TRUE(code_.is_codeword(decoded));
    EXPECT_FALSE(decoded == cw);
  }
}

TEST_F(GolayTest, MinimumDistanceIsSeven) {
  // Spot-check: distance between distinct codewords is at least 7, with 7
  // achieved somewhere (the code's weight enumerator has A_7 = 253).
  std::size_t min_distance = 23;
  for (std::uint32_t m1 = 0; m1 < 64; ++m1) {
    for (std::uint32_t m2 = m1 + 1; m2 < 64; ++m2) {
      BitVector a(GolayCode::kK);
      BitVector b(GolayCode::kK);
      for (std::size_t i = 0; i < 6; ++i) {
        a.set(i, (m1 >> i) & 1U);
        b.set(i, (m2 >> i) & 1U);
      }
      const std::size_t d = hamming_distance(code_.encode(a), code_.encode(b));
      EXPECT_GE(d, 7U);
      min_distance = std::min(min_distance, d);
    }
  }
  EXPECT_EQ(min_distance, 7U);
}

TEST_F(GolayTest, LinearCode) {
  const BitVector c1 = code_.encode(random_message(17));
  const BitVector c2 = code_.encode(random_message(18));
  EXPECT_TRUE(code_.is_codeword(c1 ^ c2));
  EXPECT_TRUE(code_.is_codeword(BitVector(23)));  // zero word
}

TEST_F(GolayTest, ExtendedEncodeHasEvenWeight) {
  for (std::uint64_t s = 0; s < 30; ++s) {
    const BitVector cw = code_.encode_extended(random_message(s));
    EXPECT_EQ(cw.size(), 24U);
    EXPECT_EQ(cw.popcount() % 2, 0U);
  }
}

TEST_F(GolayTest, ExtendedCorrectsUpToThreeAnywhere) {
  const BitVector cw = code_.encode_extended(random_message(21));
  Xoshiro256 rng(23);
  for (int weight = 0; weight <= 3; ++weight) {
    for (int trial = 0; trial < 60; ++trial) {
      BitVector noisy = cw;
      std::set<std::uint64_t> pos;
      while (pos.size() < static_cast<std::size_t>(weight)) pos.insert(rng.bounded(24));
      for (const auto p : pos) noisy.flip(static_cast<std::size_t>(p));
      const auto decoded = code_.decode_extended(noisy);
      ASSERT_TRUE(decoded.has_value()) << "weight " << weight;
      EXPECT_EQ(*decoded, cw) << "weight " << weight;
    }
  }
}

TEST_F(GolayTest, ExtendedDetectsAllWeightFourErrors) {
  const BitVector cw = code_.encode_extended(random_message(25));
  Xoshiro256 rng(27);
  for (int trial = 0; trial < 200; ++trial) {
    BitVector noisy = cw;
    std::set<std::uint64_t> pos;
    while (pos.size() < 4) pos.insert(rng.bounded(24));
    for (const auto p : pos) noisy.flip(static_cast<std::size_t>(p));
    EXPECT_FALSE(code_.decode_extended(noisy).has_value());
  }
}

TEST_F(GolayTest, ExtendedRejectsWrongLength) {
  EXPECT_THROW(code_.decode_extended(BitVector(23)), std::invalid_argument);
}

TEST_F(GolayTest, RejectsWrongLengths) {
  EXPECT_THROW(code_.encode(BitVector(11)), std::invalid_argument);
  EXPECT_THROW(code_.decode(BitVector(24)), std::invalid_argument);
  EXPECT_THROW(code_.extract_message(BitVector(22)), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
