// Randomized property sweep over the BCH codec: for arbitrary codes,
// messages, and error patterns, decoding within capability always restores
// the codeword, and decoding never fabricates a non-codeword.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "ecc/bch.hpp"

namespace aropuf {
namespace {

struct SweepCase {
  int m;
  int t;
  std::uint64_t seed;
};

class BchPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BchPropertyTest, RandomizedCorrectionSweep) {
  const auto [m, t, seed] = GetParam();
  const BchCode code(m, t);
  Xoshiro256 rng(seed);

  for (int round = 0; round < 25; ++round) {
    BitVector msg(code.k());
    for (std::size_t i = 0; i < msg.size(); ++i) msg.set(i, rng.bernoulli(0.5));
    const BitVector cw = code.encode(msg);

    // Property 1: encoding is systematic and valid.
    ASSERT_TRUE(code.is_codeword(cw));
    ASSERT_EQ(code.extract_message(cw), msg);

    // Property 2: any error pattern of weight <= t is corrected.
    const auto weight = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(t) + 1));
    BitVector noisy = cw;
    std::set<std::uint64_t> positions;
    while (positions.size() < static_cast<std::size_t>(weight)) {
      positions.insert(rng.bounded(cw.size()));
    }
    for (const auto p : positions) noisy.flip(static_cast<std::size_t>(p));
    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value()) << "weight " << weight;
    ASSERT_EQ(*decoded, cw) << "weight " << weight;

    // Property 3: beyond-capability patterns never yield a non-codeword.
    BitVector heavy = cw;
    std::set<std::uint64_t> heavy_positions;
    const std::size_t heavy_weight = static_cast<std::size_t>(t) + 2 + rng.bounded(5);
    while (heavy_positions.size() < heavy_weight) {
      heavy_positions.insert(rng.bounded(cw.size()));
    }
    for (const auto p : heavy_positions) heavy.flip(static_cast<std::size_t>(p));
    const auto maybe = code.decode(heavy);
    if (maybe.has_value()) {
      EXPECT_TRUE(code.is_codeword(*maybe));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CodeGrid, BchPropertyTest,
    ::testing::Values(SweepCase{4, 2, 1}, SweepCase{5, 2, 2}, SweepCase{5, 5, 3},
                      SweepCase{6, 3, 4}, SweepCase{6, 7, 5}, SweepCase{7, 4, 6},
                      SweepCase{7, 9, 7}, SweepCase{8, 6, 8}, SweepCase{8, 22, 9},
                      SweepCase{9, 12, 10}),
    [](const auto& info) {
      std::string name = "m";
      name += std::to_string(info.param.m);
      name += "t";
      name += std::to_string(info.param.t);
      return name;
    });

// Dimension table property: k is non-increasing in t and bounded by n - m*t.
TEST(BchDimensionPropertyTest, SingletonAndMonotonicity) {
  for (int m = 4; m <= 10; ++m) {
    const std::size_t n = (std::size_t{1} << m) - 1;
    std::size_t prev_k = n;
    for (int t = 1; t <= 12; ++t) {
      const std::size_t k = BchCode::dimension(m, t);
      if (k == 0) break;
      EXPECT_LE(k, prev_k) << "m=" << m << " t=" << t;
      // Each of the t conjugate classes has at most m members (signed math:
      // the bound can go negative when m*t exceeds n).
      EXPECT_GE(static_cast<long>(k), static_cast<long>(n) - static_cast<long>(m) * t)
          << "m=" << m << " t=" << t;
      prev_k = k;
    }
  }
}

}  // namespace
}  // namespace aropuf
