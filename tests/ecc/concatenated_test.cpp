#include "ecc/concatenated.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace aropuf {
namespace {

ConcatenatedScheme small_scheme() {
  ConcatenatedScheme s;
  s.repetition = 3;
  s.bch_m = 5;
  s.bch_t = 3;  // (31, 16, 3)
  s.key_bits = 40;
  return s;
}

BitVector random_key(int bits, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector k(static_cast<std::size_t>(bits));
  for (std::size_t i = 0; i < k.size(); ++i) k.set(i, rng.bernoulli(0.5));
  return k;
}

TEST(ConcatenatedSchemeTest, DerivedQuantities) {
  const auto s = small_scheme();
  EXPECT_EQ(s.bch_n(), 31U);
  EXPECT_EQ(s.bch_k(), 16U);
  EXPECT_EQ(s.blocks(), 3U);  // ceil(40 / 16)
  EXPECT_EQ(s.raw_bits(), 3U * 31U * 3U);
}

TEST(ConcatenatedSchemeTest, ValidationCatchesBadSchemes) {
  auto s = small_scheme();
  s.repetition = 4;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = small_scheme();
  s.key_bits = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = small_scheme();
  s.bch_t = 7;  // (31, 1, 7): k = 1 still exists
  EXPECT_NO_THROW(s.validate());
  s.bch_t = 16;  // 2t wraps past n: generator consumes every root, k = 0
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ConcatenatedSchemeTest, FailureProbabilityMonotoneInBer) {
  const auto s = small_scheme();
  double prev = -1.0;
  for (const double p : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3}) {
    const double fail = s.key_failure_probability(p);
    EXPECT_GE(fail, prev);
    prev = fail;
  }
  EXPECT_DOUBLE_EQ(s.key_failure_probability(0.0), 0.0);
}

TEST(ConcatenatedSchemeTest, StrongerOuterCodeFailsLess) {
  auto weak = small_scheme();
  auto strong = small_scheme();
  strong.bch_t = 5;
  EXPECT_LT(strong.block_failure_probability(0.1), weak.block_failure_probability(0.1));
}

TEST(ConcatenatedSchemeTest, MoreBlocksFailMore) {
  auto one = small_scheme();
  one.key_bits = 16;  // 1 block
  auto many = small_scheme();
  many.key_bits = 160;  // 10 blocks
  EXPECT_GT(many.key_failure_probability(0.08), one.key_failure_probability(0.08));
}

TEST(ConcatenatedCodeTest, RoundTripNoErrors) {
  const ConcatenatedCode code(small_scheme());
  const BitVector key = random_key(40, 1);
  const BitVector encoded = code.encode(key);
  EXPECT_EQ(encoded.size(), code.scheme().raw_bits());
  const auto decoded = code.decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, key);
}

TEST(ConcatenatedCodeTest, CorrectsScatteredErrors) {
  const ConcatenatedCode code(small_scheme());
  const BitVector key = random_key(40, 2);
  BitVector noisy = code.encode(key);
  // Flip ~4 % of raw bits: well within rep-3 + BCH t=3 capability.
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    if (rng.bernoulli(0.04)) noisy.flip(i);
  }
  const auto decoded = code.decode(noisy);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, key);
}

TEST(ConcatenatedCodeTest, FailsCleanlyUnderHeavyNoise) {
  const ConcatenatedCode code(small_scheme());
  const BitVector key = random_key(40, 4);
  BitVector noisy = code.encode(key);
  Xoshiro256 rng(5);
  int clean_failures = 0;
  int wrong_key = 0;
  for (int trial = 0; trial < 20; ++trial) {
    BitVector heavy = noisy;
    for (std::size_t i = 0; i < heavy.size(); ++i) {
      if (rng.bernoulli(0.35)) heavy.flip(i);
    }
    const auto decoded = code.decode(heavy);
    if (!decoded.has_value()) {
      ++clean_failures;
    } else if (*decoded != key) {
      ++wrong_key;
    }
  }
  EXPECT_GT(clean_failures + wrong_key, 15);
}

TEST(ConcatenatedCodeTest, EncodeRejectsWrongKeyLength) {
  const ConcatenatedCode code(small_scheme());
  EXPECT_THROW(code.encode(BitVector(41)), std::invalid_argument);
}

TEST(ConcatenatedCodeTest, DecodeRejectsWrongLength) {
  const ConcatenatedCode code(small_scheme());
  EXPECT_THROW(code.decode(BitVector(100)), std::invalid_argument);
}

TEST(ConcatenatedCodeTest, PaperSized128BitKey) {
  ConcatenatedScheme s;
  s.repetition = 3;
  s.bch_m = 8;
  s.bch_t = 18;  // (255, 131, 18)
  s.key_bits = 128;
  const ConcatenatedCode code(s);
  EXPECT_EQ(s.blocks(), 1U);
  const BitVector key = random_key(128, 6);
  BitVector noisy = code.encode(key);
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    if (rng.bernoulli(0.05)) noisy.flip(i);
  }
  const auto decoded = code.decode(noisy);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, key);
}

}  // namespace
}  // namespace aropuf
