#include "ecc/area_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

class AreaModelTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = TechnologyParams::cmos90();
  AreaModel model_{tech_};
};

TEST_F(AreaModelTest, RosForRawBitsIsTwoPerBit) {
  EXPECT_EQ(AreaModel::ros_for_raw_bits(128), 256U);
  EXPECT_EQ(AreaModel::ros_for_raw_bits(0), 0U);
}

TEST_F(AreaModelTest, GeToAreaUsesTechnologyCell) {
  EXPECT_DOUBLE_EQ(model_.ge_to_um2(100.0), 100.0 * tech_.area_ge_um2);
}

TEST_F(AreaModelTest, DecoderGrowsWithT) {
  EXPECT_LT(model_.bch_decoder_ge(8, 4), model_.bch_decoder_ge(8, 16));
  EXPECT_LT(model_.bch_decoder_ge(8, 16), model_.bch_decoder_ge(8, 40));
}

TEST_F(AreaModelTest, DecoderGrowsWithFieldDegree) {
  EXPECT_LT(model_.bch_decoder_ge(7, 10), model_.bch_decoder_ge(10, 10));
}

TEST_F(AreaModelTest, DecoderInPlausibleGateBand) {
  // A (255, 131, 18) decoder synthesizes to a few thousand GE.
  const double ge = model_.bch_decoder_ge(8, 18);
  EXPECT_GT(ge, 1000.0);
  EXPECT_LT(ge, 50000.0);
}

TEST_F(AreaModelTest, EncoderSmallerThanDecoder) {
  EXPECT_LT(model_.bch_encoder_ge(8, 18), model_.bch_decoder_ge(8, 18));
}

TEST_F(AreaModelTest, MajorityVoterScaling) {
  EXPECT_DOUBLE_EQ(model_.majority_voter_ge(1), 0.0);
  EXPECT_GT(model_.majority_voter_ge(3), 0.0);
  EXPECT_LE(model_.majority_voter_ge(3), model_.majority_voter_ge(31));
  EXPECT_THROW((void)model_.majority_voter_ge(4), std::invalid_argument);
}

TEST_F(AreaModelTest, EstimateBreakdownIsConsistent) {
  ConcatenatedScheme s;
  s.repetition = 3;
  s.bch_m = 8;
  s.bch_t = 18;
  s.key_bits = 128;
  const AreaBreakdown a = model_.estimate(s);
  EXPECT_GT(a.puf_array_ge, 0.0);
  EXPECT_GT(a.counters_ge, 0.0);
  EXPECT_GT(a.voter_ge, 0.0);
  EXPECT_GT(a.bch_decoder_ge, 0.0);
  EXPECT_NEAR(a.total_ge(),
              a.puf_array_ge + a.counters_ge + a.voter_ge + a.bch_decoder_ge + a.bch_encoder_ge,
              1e-9);
  // RO array dominates a PUF key macro.
  EXPECT_GT(a.puf_array_ge, 0.5 * a.total_ge());
}

TEST_F(AreaModelTest, PufArrayScalesWithRawBits) {
  ConcatenatedScheme small;
  small.repetition = 1;
  small.bch_m = 8;
  small.bch_t = 18;
  small.key_bits = 128;
  ConcatenatedScheme large = small;
  large.repetition = 3;
  const double ratio =
      model_.estimate(large).puf_array_ge / model_.estimate(small).puf_array_ge;
  EXPECT_NEAR(ratio, 3.0, 1e-9);
}

TEST_F(AreaModelTest, RejectsInvalidParameters) {
  EXPECT_THROW((void)model_.bch_decoder_ge(2, 1), std::invalid_argument);
  EXPECT_THROW((void)model_.bch_decoder_ge(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
