#include "ecc/code_search.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

class CodeSearchTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = TechnologyParams::cmos90();
  CodeSearchConstraints constraints_;
};

TEST_F(CodeSearchTest, FindsSchemeAtLowBer) {
  const auto result = find_min_area_scheme(tech_, 0.02, constraints_);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->key_failure, constraints_.target_key_failure);
  EXPECT_GE(result->scheme.bch_k() * result->scheme.blocks(),
            static_cast<std::size_t>(constraints_.key_bits));
}

TEST_F(CodeSearchTest, ZeroBerPrefersLightestScheme) {
  const auto result = find_min_area_scheme(tech_, 0.0, constraints_);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->scheme.repetition, 1);
  EXPECT_DOUBLE_EQ(result->key_failure, 0.0);
}

TEST_F(CodeSearchTest, AreaGrowsWithBer) {
  double prev_area = 0.0;
  for (const double ber : {0.01, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    const auto result = find_min_area_scheme(tech_, ber, constraints_);
    ASSERT_TRUE(result.has_value()) << "ber " << ber;
    EXPECT_GE(result->area.total_ge(), prev_area) << "ber " << ber;
    prev_area = result->area.total_ge();
  }
}

TEST_F(CodeSearchTest, PaperRegimeRatioIsLarge) {
  // Conventional provisioning BER ~0.40 vs ARO ~0.12: order-of-magnitude+
  // area gap (the paper's ~24x lives here).
  const auto conv = find_min_area_scheme(tech_, 0.40, constraints_);
  const auto aro = find_min_area_scheme(tech_, 0.12, constraints_);
  ASSERT_TRUE(conv.has_value());
  ASSERT_TRUE(aro.has_value());
  const double ratio = conv->area.total_ge() / aro->area.total_ge();
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 60.0);
}

TEST_F(CodeSearchTest, HighBerNeedsHeavyRepetition) {
  const auto result = find_min_area_scheme(tech_, 0.35, constraints_);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->scheme.repetition, 15);
}

TEST_F(CodeSearchTest, ResultMeetsTargetExactlyByConstruction) {
  for (const double ber : {0.05, 0.15, 0.25}) {
    const auto result = find_min_area_scheme(tech_, ber, constraints_);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->key_failure, constraints_.target_key_failure);
    // Consistency: recomputing the failure from the scheme matches.
    EXPECT_NEAR(result->scheme.key_failure_probability(ber), result->key_failure, 1e-15);
  }
}

TEST_F(CodeSearchTest, TighterTargetCostsMoreArea) {
  CodeSearchConstraints loose = constraints_;
  loose.target_key_failure = 1e-3;
  CodeSearchConstraints tight = constraints_;
  tight.target_key_failure = 1e-9;
  const auto loose_result = find_min_area_scheme(tech_, 0.10, loose);
  const auto tight_result = find_min_area_scheme(tech_, 0.10, tight);
  ASSERT_TRUE(loose_result.has_value());
  ASSERT_TRUE(tight_result.has_value());
  EXPECT_LE(loose_result->area.total_ge(), tight_result->area.total_ge());
}

TEST_F(CodeSearchTest, LongerKeyCostsMoreArea) {
  CodeSearchConstraints short_key = constraints_;
  short_key.key_bits = 64;
  CodeSearchConstraints long_key = constraints_;
  long_key.key_bits = 256;
  const auto s = find_min_area_scheme(tech_, 0.08, short_key);
  const auto l = find_min_area_scheme(tech_, 0.08, long_key);
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(l.has_value());
  EXPECT_LT(s->area.total_ge(), l->area.total_ge());
}

TEST_F(CodeSearchTest, ReturnsNulloptWhenImpossible) {
  CodeSearchConstraints cramped = constraints_;
  cramped.repetition_options = {1};
  cramped.bch_m_options = {7};
  cramped.max_bch_t = 2;
  EXPECT_FALSE(find_min_area_scheme(tech_, 0.30, cramped).has_value());
}

TEST_F(CodeSearchTest, RejectsBadInputs) {
  EXPECT_THROW((void)find_min_area_scheme(tech_, 0.5, constraints_), std::invalid_argument);
  EXPECT_THROW((void)find_min_area_scheme(tech_, -0.1, constraints_), std::invalid_argument);
  CodeSearchConstraints bad = constraints_;
  bad.target_key_failure = 0.0;
  EXPECT_THROW((void)find_min_area_scheme(tech_, 0.1, bad), std::invalid_argument);
  bad = constraints_;
  bad.repetition_options = {2};
  EXPECT_THROW((void)find_min_area_scheme(tech_, 0.1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
