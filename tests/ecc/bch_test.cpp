#include "ecc/bch.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "common/rng.hpp"

namespace aropuf {
namespace {

BitVector random_message(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector m(k);
  for (std::size_t i = 0; i < k; ++i) m.set(i, rng.bernoulli(0.5));
  return m;
}

BitVector with_random_errors(const BitVector& word, int errors, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector noisy = word;
  std::set<std::uint64_t> positions;
  while (positions.size() < static_cast<std::size_t>(errors)) {
    positions.insert(rng.bounded(word.size()));
  }
  for (const auto p : positions) noisy.flip(static_cast<std::size_t>(p));
  return noisy;
}

TEST(BchCodeTest, ClassicParameterTable) {
  // Well-known (n, k, t) triples of binary primitive BCH codes.
  EXPECT_EQ(BchCode(4, 1).k(), 11U);   // (15, 11, 1) Hamming
  EXPECT_EQ(BchCode(4, 2).k(), 7U);    // (15, 7, 2)
  EXPECT_EQ(BchCode(4, 3).k(), 5U);    // (15, 5, 3)
  EXPECT_EQ(BchCode(5, 1).k(), 26U);   // (31, 26, 1)
  EXPECT_EQ(BchCode(5, 2).k(), 21U);   // (31, 21, 2)
  EXPECT_EQ(BchCode(5, 3).k(), 16U);   // (31, 16, 3)
  EXPECT_EQ(BchCode(6, 2).k(), 51U);   // (63, 51, 2)
  EXPECT_EQ(BchCode(7, 5).k(), 92U);   // (127, 92, 5)
  EXPECT_EQ(BchCode(8, 2).k(), 239U);  // (255, 239, 2)
}

TEST(BchCodeTest, DimensionHelperMatchesConstruction) {
  for (int m = 4; m <= 8; ++m) {
    for (int t = 1; t <= 5; ++t) {
      EXPECT_EQ(BchCode::dimension(m, t), BchCode(m, t).k()) << "m=" << m << " t=" << t;
    }
  }
}

TEST(BchCodeTest, DimensionReturnsZeroWhenVoid) {
  // t = 7 still leaves the (15, 1, 7) repetition-like code; 2t reaching n
  // pulls exponent 0 into the generator's root set and kills the code.
  EXPECT_EQ(BchCode::dimension(4, 7), 1U);
  EXPECT_EQ(BchCode::dimension(4, 8), 0U);
}

TEST(BchCodeTest, Bch15_7GeneratorPolynomial) {
  // g(x) = x^8 + x^7 + x^6 + x^4 + 1 for the (15, 7, 2) code.
  const BchCode code(4, 2);
  EXPECT_EQ(code.generator().to_string(), "100010111");
}

TEST(BchCodeTest, EncodeProducesCodeword) {
  const BchCode code(5, 3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const BitVector msg = random_message(code.k(), seed);
    const BitVector cw = code.encode(msg);
    EXPECT_EQ(cw.size(), code.n());
    EXPECT_TRUE(code.is_codeword(cw));
    EXPECT_EQ(code.extract_message(cw), msg);
  }
}

TEST(BchCodeTest, EncodeRejectsWrongLength) {
  const BchCode code(5, 2);
  EXPECT_THROW(code.encode(BitVector(code.k() + 1)), std::invalid_argument);
}

TEST(BchCodeTest, DecodeNoErrorsIsIdentity) {
  const BchCode code(6, 3);
  const BitVector cw = code.encode(random_message(code.k(), 42));
  const auto decoded = code.decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cw);
}

// Parameterized: decoding must succeed for every error weight up to t.
struct BchCase {
  int m;
  int t;
};

class BchCorrectionTest : public ::testing::TestWithParam<BchCase> {};

TEST_P(BchCorrectionTest, CorrectsUpToTErrors) {
  const auto [m, t] = GetParam();
  const BchCode code(m, t);
  for (int errors = 1; errors <= t; ++errors) {
    const BitVector msg = random_message(code.k(), static_cast<std::uint64_t>(errors));
    const BitVector cw = code.encode(msg);
    const BitVector noisy =
        with_random_errors(cw, errors, static_cast<std::uint64_t>(100 + errors));
    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value()) << "m=" << m << " t=" << t << " e=" << errors;
    EXPECT_EQ(*decoded, cw);
    EXPECT_EQ(code.extract_message(*decoded), msg);
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, BchCorrectionTest,
                         ::testing::Values(BchCase{4, 1}, BchCase{4, 2}, BchCase{4, 3},
                                           BchCase{5, 3}, BchCase{6, 4}, BchCase{7, 5},
                                           BchCase{8, 8}, BchCase{8, 18}),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param.m) + "t" +
                                  std::to_string(info.param.t);
                         });

TEST(BchCodeTest, DetectsBeyondCapacityMostly) {
  // t+many errors: the decoder must either fail (preferred) or mis-decode to
  // a different codeword — never return a non-codeword.
  const BchCode code(6, 3);
  const BitVector cw = code.encode(random_message(code.k(), 7));
  int failures = 0;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const BitVector noisy = with_random_errors(cw, 9, 500 + trial);
    const auto decoded = code.decode(noisy);
    if (!decoded.has_value()) {
      ++failures;
    } else {
      EXPECT_TRUE(code.is_codeword(*decoded));
    }
  }
  EXPECT_GT(failures, 25);  // overwhelming majority detected
}

TEST(BchCodeTest, DecodeRejectsWrongLength) {
  const BchCode code(5, 2);
  EXPECT_THROW(code.decode(BitVector(30)), std::invalid_argument);
  EXPECT_THROW((void)code.is_codeword(BitVector(32)), std::invalid_argument);
}

TEST(BchCodeTest, SingleBitErrorAnyPosition) {
  const BchCode code(5, 1);  // (31, 26, 1) Hamming-equivalent
  const BitVector cw = code.encode(random_message(code.k(), 3));
  for (std::size_t p = 0; p < code.n(); ++p) {
    BitVector noisy = cw;
    noisy.flip(p);
    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value()) << "position " << p;
    EXPECT_EQ(*decoded, cw);
  }
}

TEST(BchCodeTest, AllZeroAndAllOneMessages) {
  const BchCode code(6, 5);
  const BitVector zeros(code.k());
  BitVector ones(code.k());
  for (std::size_t i = 0; i < ones.size(); ++i) ones.set(i, true);
  for (const auto& msg : {zeros, ones}) {
    const BitVector cw = code.encode(msg);
    const BitVector noisy = with_random_errors(cw, 5, 9);
    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(code.extract_message(*decoded), msg);
  }
}

TEST(BchCodeTest, RejectsInvalidParameters) {
  EXPECT_THROW(BchCode(4, 0), std::invalid_argument);
  EXPECT_THROW(BchCode(4, 8), std::invalid_argument);  // empty code
}

TEST(BchCodeTest, LinearityOfCodewords) {
  const BchCode code(5, 2);
  const BitVector c1 = code.encode(random_message(code.k(), 11));
  const BitVector c2 = code.encode(random_message(code.k(), 12));
  EXPECT_TRUE(code.is_codeword(c1 ^ c2));
}

}  // namespace
}  // namespace aropuf
