#include "device/transistor.hpp"

#include <gtest/gtest.h>

namespace aropuf {
namespace {

Transistor make(DeviceType type) {
  Transistor t;
  t.type = type;
  t.vth_fresh = 0.35;
  t.vth_tempco = 0.8e-3;
  t.nbti_sensitivity = 1.0;
  t.hci_sensitivity = 1.0;
  return t;
}

TEST(TransistorTest, FreshVthAtNominalTemp) {
  const Transistor t = make(DeviceType::kNmos);
  EXPECT_DOUBLE_EQ(t.vth(300.0, 300.0, 0.0, 0.0), 0.35);
}

TEST(TransistorTest, VthFallsWithTemperature) {
  const Transistor t = make(DeviceType::kNmos);
  EXPECT_NEAR(t.vth(400.0, 300.0, 0.0, 0.0), 0.35 - 0.08, 1e-12);
  EXPECT_NEAR(t.vth(250.0, 300.0, 0.0, 0.0), 0.35 + 0.04, 1e-12);
}

TEST(TransistorTest, NbtiAppliesOnlyToPmos) {
  const Transistor p = make(DeviceType::kPmos);
  const Transistor n = make(DeviceType::kNmos);
  EXPECT_DOUBLE_EQ(p.vth(300.0, 300.0, 0.05, 0.0), 0.40);
  EXPECT_DOUBLE_EQ(n.vth(300.0, 300.0, 0.05, 0.0), 0.35);
}

TEST(TransistorTest, HciAppliesOnlyToNmos) {
  const Transistor p = make(DeviceType::kPmos);
  const Transistor n = make(DeviceType::kNmos);
  EXPECT_DOUBLE_EQ(n.vth(300.0, 300.0, 0.0, 0.02), 0.37);
  EXPECT_DOUBLE_EQ(p.vth(300.0, 300.0, 0.0, 0.02), 0.35);
}

TEST(TransistorTest, SensitivityScalesAging) {
  Transistor p = make(DeviceType::kPmos);
  p.nbti_sensitivity = 1.5;
  EXPECT_DOUBLE_EQ(p.vth(300.0, 300.0, 0.04, 0.0), 0.35 + 0.06);
  Transistor n = make(DeviceType::kNmos);
  n.hci_sensitivity = 0.5;
  EXPECT_DOUBLE_EQ(n.vth(300.0, 300.0, 0.0, 0.04), 0.35 + 0.02);
}

TEST(TransistorTest, TemperatureAndAgingCompose) {
  Transistor p = make(DeviceType::kPmos);
  const double vth = p.vth(350.0, 300.0, 0.03, 0.0);
  EXPECT_NEAR(vth, 0.35 - 0.8e-3 * 50.0 + 0.03, 1e-12);
}

}  // namespace
}  // namespace aropuf
