#include "device/stress.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(StressProfileTest, ConventionalProfileShape) {
  const auto p = StressProfile::conventional_always_on();
  p.validate();
  EXPECT_DOUBLE_EQ(p.oscillation_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.nbti_duty, 0.5);
  EXPECT_TRUE(p.recovery_enabled);
}

TEST(StressProfileTest, StaticIdleProfileShape) {
  const auto p = StressProfile::static_enabled_idle();
  p.validate();
  EXPECT_DOUBLE_EQ(p.oscillation_fraction, 0.0);
  EXPECT_DOUBLE_EQ(p.nbti_duty, 0.5);
  EXPECT_FALSE(p.recovery_enabled);
}

TEST(StressProfileTest, GatedProfileComputesActiveFraction) {
  // 20 evaluations of 10 ms per day: 0.2 s / 86400 s.
  const auto p = StressProfile::aro_gated(20.0, 10e-3);
  p.validate();
  EXPECT_NEAR(p.oscillation_fraction, 0.2 / 86400.0, 1e-12);
  EXPECT_NEAR(p.nbti_duty, 0.5 * 0.2 / 86400.0, 1e-12);
  EXPECT_TRUE(p.recovery_enabled);
}

TEST(StressProfileTest, GatedProfileSaturatesAtContinuousUse) {
  const auto p = StressProfile::aro_gated(1e9, 1.0);
  EXPECT_DOUBLE_EQ(p.oscillation_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.nbti_duty, 0.5);
}

TEST(StressProfileTest, GatedRejectsNegativeInputs) {
  EXPECT_THROW(StressProfile::aro_gated(-1.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(StressProfile::aro_gated(1.0, -1e-3), std::invalid_argument);
}

TEST(StressProfileTest, ZeroUsageMeansZeroStress) {
  const auto p = StressProfile::aro_gated(0.0, 1e-3);
  EXPECT_DOUBLE_EQ(p.oscillation_fraction, 0.0);
  EXPECT_DOUBLE_EQ(p.nbti_duty, 0.0);
}

TEST(StressProfileTest, ValidationCatchesBadValues) {
  StressProfile p = StressProfile::conventional_always_on();
  p.nbti_duty = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = StressProfile::conventional_always_on();
  p.oscillation_fraction = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = StressProfile::conventional_always_on();
  p.stress_temperature = -5.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StressStateTest, DefaultIsFresh) {
  const StressState s;
  EXPECT_DOUBLE_EQ(s.elapsed, 0.0);
  EXPECT_DOUBLE_EQ(s.nbti_effective, 0.0);
  EXPECT_DOUBLE_EQ(s.switching_cycles, 0.0);
}

}  // namespace
}  // namespace aropuf
