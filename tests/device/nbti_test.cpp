#include "device/nbti.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "device/technology.hpp"

namespace aropuf {
namespace {

class NbtiModelTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = TechnologyParams::cmos90();
  NbtiModel model_{tech_};
};

TEST_F(NbtiModelTest, ZeroStressZeroShift) {
  EXPECT_DOUBLE_EQ(model_.delta_vth(0.0, celsius(55.0)), 0.0);
}

TEST_F(NbtiModelTest, ShiftFollowsSixthRootOfTime) {
  const Kelvin t = celsius(55.0);
  const double v1 = model_.delta_vth(1e6, t);
  const double v64 = model_.delta_vth(64e6, t);
  EXPECT_NEAR(v64 / v1, 2.0, 1e-9);  // 64^(1/6) = 2
}

TEST_F(NbtiModelTest, ShiftGrowsWithTemperature) {
  EXPECT_GT(model_.delta_vth(1e7, celsius(125.0)), model_.delta_vth(1e7, celsius(25.0)));
  EXPECT_GT(model_.delta_vth(1e7, celsius(25.0)), model_.delta_vth(1e7, celsius(-40.0)));
}

TEST_F(NbtiModelTest, PrefactorIsShiftAtOneSecondNominalTemp) {
  EXPECT_NEAR(model_.delta_vth(1.0, tech_.temp_nominal), tech_.nbti_a, 1e-15);
}

TEST_F(NbtiModelTest, TenYearContinuousStressNearCalibrationAnchor) {
  // DC stress at 55 C for 10 years: calibrated to tens of millivolts.
  const Seconds eff = model_.effective_stress(years(10.0), 1.0, false);
  const double shift = model_.delta_vth(eff, celsius(55.0));
  EXPECT_GT(shift, 0.04);
  EXPECT_LT(shift, 0.15);
}

TEST_F(NbtiModelTest, EffectiveStressScalesWithDuty) {
  const Seconds full = model_.effective_stress(1000.0, 1.0, false);
  const Seconds half = model_.effective_stress(1000.0, 0.5, false);
  EXPECT_DOUBLE_EQ(full, 1000.0);
  EXPECT_DOUBLE_EQ(half, 500.0);
}

TEST_F(NbtiModelTest, RecoveryReducesEffectiveStress) {
  const Seconds with = model_.effective_stress(1000.0, 0.5, true);
  const Seconds without = model_.effective_stress(1000.0, 0.5, false);
  EXPECT_LT(with, without);
  // At duty 0.5 with recovery fraction r: 500 * (1 - r/2).
  EXPECT_NEAR(with, 500.0 * (1.0 - tech_.nbti_recovery_fraction * 0.5), 1e-9);
}

TEST_F(NbtiModelTest, RecoveryIrrelevantAtFullDuty) {
  EXPECT_DOUBLE_EQ(model_.effective_stress(1000.0, 1.0, true),
                   model_.effective_stress(1000.0, 1.0, false));
}

TEST_F(NbtiModelTest, TinyDutyCollapsesShiftBySixthRoot) {
  // The ARO mechanism: duty 1e-6 => shift ratio (1e-6)^(1/6) = 0.1.
  const Kelvin t = celsius(55.0);
  const double full = model_.delta_vth(model_.effective_stress(years(10.0), 1.0, false), t);
  const double gated =
      model_.delta_vth(model_.effective_stress(years(10.0), 1e-6, false), t);
  EXPECT_NEAR(gated / full, 0.1, 1e-6);
}

TEST_F(NbtiModelTest, InverseRecoversTime) {
  const Kelvin t = celsius(85.0);
  const Seconds eff = 3.7e8;
  const double shift = model_.delta_vth(eff, t);
  EXPECT_NEAR(model_.effective_stress_for_shift(shift, t), eff, eff * 1e-9);
}

TEST_F(NbtiModelTest, InverseOfZeroIsZero) {
  EXPECT_DOUBLE_EQ(model_.effective_stress_for_shift(0.0, celsius(25.0)), 0.0);
}

TEST_F(NbtiModelTest, RejectsBadDomain) {
  EXPECT_THROW((void)model_.delta_vth(-1.0, 300.0), std::invalid_argument);
  EXPECT_THROW((void)model_.delta_vth(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)model_.effective_stress(-1.0, 0.5, true), std::invalid_argument);
  EXPECT_THROW((void)model_.effective_stress(1.0, 1.5, true), std::invalid_argument);
  EXPECT_THROW((void)model_.effective_stress_for_shift(-0.1, 300.0), std::invalid_argument);
}

// Property sweep: monotonicity of the shift in stress time at any duty.
class NbtiMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(NbtiMonotonicityTest, ShiftIsMonotoneInTime) {
  const TechnologyParams tech = TechnologyParams::cmos90();
  const NbtiModel model(tech);
  const double duty = GetParam();
  double prev = -1.0;
  for (double t = 0.0; t <= 10.0; t += 1.0) {
    const Seconds eff = model.effective_stress(years(t), duty, true);
    const double shift = model.delta_vth(eff, celsius(55.0));
    EXPECT_GE(shift, prev);
    prev = shift;
  }
}

INSTANTIATE_TEST_SUITE_P(DutySweep, NbtiMonotonicityTest,
                         ::testing::Values(1e-7, 1e-5, 1e-3, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace aropuf
