#include "device/technology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

TEST(TechnologyTest, FactoriesValidate) {
  EXPECT_NO_THROW(TechnologyParams::cmos90().validate());
  EXPECT_NO_THROW(TechnologyParams::cmos65().validate());
  EXPECT_NO_THROW(TechnologyParams::cmos45().validate());
}

TEST(TechnologyTest, FactoriesAreDistinctNodes) {
  const auto t90 = TechnologyParams::cmos90();
  const auto t65 = TechnologyParams::cmos65();
  const auto t45 = TechnologyParams::cmos45();
  EXPECT_EQ(t90.name, "cmos90");
  EXPECT_EQ(t65.name, "cmos65");
  EXPECT_EQ(t45.name, "cmos45");
  // Scaling trends: lower supply, faster gates, more mismatch.
  EXPECT_GT(t90.vdd_nominal, t65.vdd_nominal);
  EXPECT_GT(t65.vdd_nominal, t45.vdd_nominal);
  EXPECT_GT(t90.delay_k, t65.delay_k);
  EXPECT_LT(t90.sigma_vth_local, t45.sigma_vth_local);
}

TEST(TechnologyTest, ValidationCatchesBadParameters) {
  auto t = TechnologyParams::cmos90();
  t.vth_n = 1.5;  // above vdd
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = TechnologyParams::cmos90();
  t.alpha = 2.5;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = TechnologyParams::cmos90();
  t.delay_k = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = TechnologyParams::cmos90();
  t.nbti_recovery_fraction = 1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = TechnologyParams::cmos90();
  t.counter_bits = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = TechnologyParams::cmos90();
  t.sigma_vth_local = -1e-3;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(TechnologyTest, NominalFrequencyInPlausibleBand) {
  const auto tech = TechnologyParams::cmos90();
  const Hertz f13 = tech.nominal_ro_frequency(13);
  // 90 nm 13-stage RO: high hundreds of MHz to low GHz.
  EXPECT_GT(f13, 300e6);
  EXPECT_LT(f13, 3e9);
}

TEST(TechnologyTest, FrequencyFallsWithStageCount) {
  const auto tech = TechnologyParams::cmos90();
  EXPECT_GT(tech.nominal_ro_frequency(5), tech.nominal_ro_frequency(13));
  EXPECT_GT(tech.nominal_ro_frequency(13), tech.nominal_ro_frequency(21));
}

TEST(TechnologyTest, FrequencyScalesInverselyWithStages) {
  // Doubling the delay chain roughly halves the frequency (the NAND stage
  // makes it slightly off-exact).
  const auto tech = TechnologyParams::cmos90();
  const double ratio = tech.nominal_ro_frequency(7) / tech.nominal_ro_frequency(13);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.1);
}

TEST(TechnologyTest, FrequencyRejectsBadStageCounts) {
  const auto tech = TechnologyParams::cmos90();
  EXPECT_THROW((void)tech.nominal_ro_frequency(4), std::invalid_argument);
  EXPECT_THROW((void)tech.nominal_ro_frequency(1), std::invalid_argument);
}

TEST(TechnologyTest, SmallerNodesAreFaster) {
  EXPECT_GT(TechnologyParams::cmos45().nominal_ro_frequency(13),
            TechnologyParams::cmos90().nominal_ro_frequency(13));
}

}  // namespace
}  // namespace aropuf
