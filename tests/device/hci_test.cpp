#include "device/hci.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "device/technology.hpp"

namespace aropuf {
namespace {

class HciModelTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = TechnologyParams::cmos90();
  HciModel model_{tech_};
};

TEST_F(HciModelTest, ZeroCyclesZeroShift) {
  EXPECT_DOUBLE_EQ(model_.delta_vth(0.0, celsius(55.0)), 0.0);
}

TEST_F(HciModelTest, PrefactorIsShiftAtReferenceCycles) {
  EXPECT_NEAR(model_.delta_vth(1e15, tech_.temp_nominal), tech_.hci_b, 1e-15);
}

TEST_F(HciModelTest, PowerLawExponent) {
  const Kelvin t = tech_.temp_nominal;
  const double v1 = model_.delta_vth(1e15, t);
  const double v100 = model_.delta_vth(1e17, t);
  EXPECT_NEAR(v100 / v1, std::pow(100.0, tech_.hci_m), 1e-9);
}

TEST_F(HciModelTest, ColdIsWorseForHci) {
  // Negative activation energy: impact ionization worsens at low T.
  EXPECT_GT(model_.delta_vth(1e16, celsius(-40.0)), model_.delta_vth(1e16, celsius(125.0)));
}

TEST_F(HciModelTest, TenYearContinuousOscillationAnchor) {
  // ~1.2 GHz for 10 years: a few tens of millivolts.
  const double cycles = 1.2e9 * years(10.0);
  const double shift = model_.delta_vth(cycles, celsius(55.0));
  EXPECT_GT(shift, 0.005);
  EXPECT_LT(shift, 0.08);
}

TEST_F(HciModelTest, GatedDesignAccumulatesNegligibleHci) {
  // ARO usage: ~0.2 s of oscillation per day for 10 years.
  const double cycles = 1.2e9 * (0.2 / 86400.0) * years(10.0);
  const double gated = model_.delta_vth(cycles, celsius(55.0));
  const double continuous = model_.delta_vth(1.2e9 * years(10.0), celsius(55.0));
  EXPECT_LT(gated, continuous * 0.01);
}

TEST_F(HciModelTest, MonotoneInCycles) {
  double prev = -1.0;
  for (double c = 0.0; c <= 1e17; c += 2e16) {
    const double shift = model_.delta_vth(c, celsius(55.0));
    EXPECT_GE(shift, prev);
    prev = shift;
  }
}

TEST_F(HciModelTest, RejectsBadDomain) {
  EXPECT_THROW((void)model_.delta_vth(-1.0, 300.0), std::invalid_argument);
  EXPECT_THROW((void)model_.delta_vth(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
