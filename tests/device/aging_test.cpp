#include "device/aging.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "device/technology.hpp"

namespace aropuf {
namespace {

class AgingModelTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = TechnologyParams::cmos90();
  AgingModel model_{tech_};
};

TEST_F(AgingModelTest, FreshStateHasNoShifts) {
  const auto shifts = model_.shifts(StressState{});
  EXPECT_DOUBLE_EQ(shifts.nbti, 0.0);
  EXPECT_DOUBLE_EQ(shifts.hci, 0.0);
}

TEST_F(AgingModelTest, AccumulateAdvancesAllFields) {
  const auto profile = StressProfile::conventional_always_on();
  const StressState s = model_.accumulate(StressState{}, profile, 1000.0, 1e9);
  EXPECT_DOUBLE_EQ(s.elapsed, 1000.0);
  EXPECT_GT(s.nbti_effective, 0.0);
  // Cycles are stored nominal-temperature-equivalent.
  const double hci_weight = model_.hci().temperature_weight(profile.stress_temperature);
  EXPECT_NEAR(s.switching_cycles, hci_weight * 1e12, 1e6);
}

TEST_F(AgingModelTest, AccumulateIsAdditive) {
  const auto profile = StressProfile::conventional_always_on();
  StressState once = model_.accumulate(StressState{}, profile, 2000.0, 1e9);
  StressState twice = model_.accumulate(StressState{}, profile, 1000.0, 1e9);
  twice = model_.accumulate(twice, profile, 1000.0, 1e9);
  EXPECT_NEAR(once.elapsed, twice.elapsed, 1e-9);
  EXPECT_NEAR(once.nbti_effective, twice.nbti_effective, 1e-6);
  EXPECT_NEAR(once.switching_cycles, twice.switching_cycles, 1.0);
}

TEST_F(AgingModelTest, GatedProfileAccumulatesLessOfEverything) {
  const auto conv = StressProfile::conventional_always_on();
  const auto gated = StressProfile::aro_gated(20.0, 10e-3);
  const StressState sc = model_.accumulate(StressState{}, conv, years(1.0), 1e9);
  const StressState sg = model_.accumulate(StressState{}, gated, years(1.0), 1e9);
  EXPECT_LT(sg.nbti_effective, sc.nbti_effective * 1e-4);
  EXPECT_LT(sg.switching_cycles, sc.switching_cycles * 1e-4);
}

TEST_F(AgingModelTest, StaticIdleGetsNoHciButFullNbti) {
  const auto profile = StressProfile::static_enabled_idle();
  const StressState s = model_.accumulate(StressState{}, profile, years(1.0), 1e9);
  EXPECT_DOUBLE_EQ(s.switching_cycles, 0.0);
  EXPECT_GT(s.nbti_effective, 0.0);
  // No recovery: effective stress is elapsed * duty, temperature-weighted
  // into nominal-equivalent seconds.
  const double w = model_.nbti().temperature_weight(profile.stress_temperature);
  EXPECT_NEAR(s.nbti_effective, w * years(1.0) * 0.5, w * 10.0);
}

TEST_F(AgingModelTest, ShiftsGrowWithAccumulatedStress) {
  const auto profile = StressProfile::conventional_always_on();
  StressState s = StressState{};
  double prev_nbti = -1.0;
  double prev_hci = -1.0;
  for (int year = 0; year < 5; ++year) {
    s = model_.accumulate(s, profile, years(1.0), 1e9);
    const auto shifts = model_.shifts(s);
    EXPECT_GT(shifts.nbti, prev_nbti);
    EXPECT_GT(shifts.hci, prev_hci);
    prev_nbti = shifts.nbti;
    prev_hci = shifts.hci;
  }
}

TEST_F(AgingModelTest, SublinearGrowthInTime) {
  // Both mechanisms saturate: the second 5 years add less than the first 5.
  const auto profile = StressProfile::conventional_always_on();
  const StressState s5 = model_.accumulate(StressState{}, profile, years(5.0), 1e9);
  const StressState s10 = model_.accumulate(s5, profile, years(5.0), 1e9);
  const auto sh5 = model_.shifts(s5);
  const auto sh10 = model_.shifts(s10);
  EXPECT_LT(sh10.nbti - sh5.nbti, sh5.nbti);
  EXPECT_LT(sh10.hci - sh5.hci, sh5.hci);
}

TEST_F(AgingModelTest, RejectsBadInputs) {
  const auto profile = StressProfile::conventional_always_on();
  EXPECT_THROW((void)model_.accumulate(StressState{}, profile, -1.0, 1e9), std::invalid_argument);
  EXPECT_THROW((void)model_.accumulate(StressState{}, profile, 1.0, -1e9), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
