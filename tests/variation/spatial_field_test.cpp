#include "variation/spatial_field.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"

namespace aropuf {
namespace {

TEST(SpatialFieldTest, DeterministicForSameSeed) {
  const SpatialField a(8e-3, 12.0, 42);
  const SpatialField b(8e-3, 12.0, 42);
  for (double x = 0.0; x < 20.0; x += 2.3) {
    EXPECT_DOUBLE_EQ(a({x, x * 0.5}), b({x, x * 0.5}));
  }
}

TEST(SpatialFieldTest, DifferentSeedsDiffer) {
  const SpatialField a(8e-3, 12.0, 1);
  const SpatialField b(8e-3, 12.0, 2);
  int differ = 0;
  for (double x = 0.0; x < 20.0; x += 1.0) {
    if (a({x, 0.0}) != b({x, 0.0})) ++differ;
  }
  EXPECT_EQ(differ, 20);
}

TEST(SpatialFieldTest, ZeroSigmaIsIdenticallyZero) {
  const SpatialField f(0.0, 12.0, 7);
  EXPECT_DOUBLE_EQ(f({3.0, 4.0}), 0.0);
}

TEST(SpatialFieldTest, MarginalIsStandardizedToSigma) {
  // Sample the field of many independent dies at a fixed point; the marginal
  // across dies must be N(0, sigma^2).
  const double sigma = 8e-3;
  RunningStats stats;
  for (std::uint64_t seed = 0; seed < 4000; ++seed) {
    const SpatialField f(sigma, 12.0, seed);
    stats.add(f({5.3, 7.1}));
  }
  EXPECT_NEAR(stats.mean(), 0.0, sigma * 0.05);
  EXPECT_NEAR(stats.stddev(), sigma, sigma * 0.05);
}

TEST(SpatialFieldTest, NearbyPointsAreHighlyCorrelated) {
  // Correlation estimated over dies: adjacent points (1 pitch apart, with
  // correlation length 12) must correlate > 0.95.
  double sum_ab = 0.0;
  double sum_a2 = 0.0;
  double sum_b2 = 0.0;
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    const SpatialField f(1.0, 12.0, seed);
    const double a = f({4.0, 4.0});
    const double b = f({5.0, 4.0});
    sum_ab += a * b;
    sum_a2 += a * a;
    sum_b2 += b * b;
  }
  const double corr = sum_ab / std::sqrt(sum_a2 * sum_b2);
  EXPECT_GT(corr, 0.95);
}

TEST(SpatialFieldTest, DistantPointsDecorrelate) {
  double sum_ab = 0.0;
  double sum_a2 = 0.0;
  double sum_b2 = 0.0;
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    const SpatialField f(1.0, 3.0, seed);
    const double a = f({0.0, 0.0});
    const double b = f({30.0, 30.0});
    sum_ab += a * b;
    sum_a2 += a * a;
    sum_b2 += b * b;
  }
  const double corr = sum_ab / std::sqrt(sum_a2 * sum_b2);
  EXPECT_LT(std::fabs(corr), 0.1);
}

TEST(SpatialFieldTest, CorrelationFallsWithDistance) {
  auto corr_at = [](double dist) {
    double sum_ab = 0.0;
    double sum_a2 = 0.0;
    double sum_b2 = 0.0;
    for (std::uint64_t seed = 0; seed < 1500; ++seed) {
      const SpatialField f(1.0, 6.0, seed);
      const double a = f({10.0, 10.0});
      const double b = f({10.0 + dist, 10.0});
      sum_ab += a * b;
      sum_a2 += a * a;
      sum_b2 += b * b;
    }
    return sum_ab / std::sqrt(sum_a2 * sum_b2);
  };
  const double c2 = corr_at(2.0);
  const double c6 = corr_at(6.0);
  const double c15 = corr_at(15.0);
  EXPECT_GT(c2, c6);
  EXPECT_GT(c6, c15);
}

TEST(SpatialFieldTest, SmoothAtSubPitchScale) {
  const SpatialField f(8e-3, 12.0, 99);
  const double v0 = f({5.0, 5.0});
  const double v1 = f({5.01, 5.0});
  EXPECT_NEAR(v0, v1, 8e-3 * 0.01);
}

TEST(SpatialFieldTest, RejectsBadParameters) {
  EXPECT_THROW(SpatialField(-1.0, 12.0, 0), std::invalid_argument);
  EXPECT_THROW(SpatialField(1.0, 0.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
