#include "variation/pelgrom.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace aropuf {
namespace {

TEST(PelgromTest, SigmaMatchesFormula) {
  const PelgromModel m{4.5};
  // 4.5 mV·um over a 0.3 x 0.1 um device: 4.5e-3 / sqrt(0.03).
  EXPECT_NEAR(m.sigma_vth(0.3, 0.1), 4.5e-3 / std::sqrt(0.03), 1e-12);
}

TEST(PelgromTest, SigmaShrinksWithArea) {
  const PelgromModel m{4.5};
  EXPECT_GT(m.sigma_vth(0.12, 0.1), m.sigma_vth(0.48, 0.1));
  // Quadrupling area halves sigma.
  EXPECT_NEAR(m.sigma_vth(0.12, 0.1) / m.sigma_vth(0.48, 0.1), 2.0, 1e-9);
}

TEST(PelgromTest, MinimumSizeDeviceNearCalibrationAnchor) {
  // 90 nm minimum device ~ W=0.12, L=0.1 um: sigma in the 10-20 mV decade.
  const PelgromModel m{1.7};
  const double sigma = m.sigma_vth(0.12, 0.1);
  EXPECT_GT(sigma, 8e-3);
  EXPECT_LT(sigma, 25e-3);
}

TEST(PelgromTest, UpsizingIsQuadratic) {
  EXPECT_DOUBLE_EQ(PelgromModel::upsizing_for_sigma_reduction(1.0), 1.0);
  EXPECT_DOUBLE_EQ(PelgromModel::upsizing_for_sigma_reduction(2.0), 4.0);
  EXPECT_DOUBLE_EQ(PelgromModel::upsizing_for_sigma_reduction(3.0), 9.0);
}

TEST(PelgromTest, RejectsBadInputs) {
  const PelgromModel m{4.5};
  EXPECT_THROW((void)m.sigma_vth(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)m.sigma_vth(0.1, -0.1), std::invalid_argument);
  EXPECT_THROW((void)PelgromModel::upsizing_for_sigma_reduction(0.5), std::invalid_argument);
  const PelgromModel bad{0.0};
  EXPECT_THROW((void)bad.sigma_vth(0.1, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
