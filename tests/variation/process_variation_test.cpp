#include "variation/process_variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"

namespace aropuf {
namespace {

class DieVariationTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = TechnologyParams::cmos90();
};

TEST_F(DieVariationTest, GlobalOffsetIsPerDie) {
  const DieVariation a(tech_, 1);
  const DieVariation b(tech_, 2);
  EXPECT_NE(a.global_offset(), b.global_offset());
  // Same seed reproduces the same die.
  const DieVariation a2(tech_, 1);
  EXPECT_DOUBLE_EQ(a.global_offset(), a2.global_offset());
}

TEST_F(DieVariationTest, GlobalOffsetDistribution) {
  RunningStats stats;
  for (std::uint64_t seed = 0; seed < 3000; ++seed) {
    stats.add(DieVariation(tech_, seed).global_offset());
  }
  EXPECT_NEAR(stats.mean(), 0.0, tech_.sigma_vth_global * 0.1);
  EXPECT_NEAR(stats.stddev(), tech_.sigma_vth_global, tech_.sigma_vth_global * 0.05);
}

TEST_F(DieVariationTest, SystematicIsIdenticalAcrossDies) {
  const DieVariation a(tech_, 10);
  const DieVariation b(tech_, 20);
  for (double x = 0.0; x < 16.0; x += 3.0) {
    for (double y = 0.0; y < 16.0; y += 3.0) {
      EXPECT_DOUBLE_EQ(a.systematic_offset({x, y}), b.systematic_offset({x, y}));
    }
  }
}

TEST_F(DieVariationTest, SystematicVanishesWhenAmplitudeZero) {
  TechnologyParams t = tech_;
  t.layout_systematic_amplitude = 0.0;
  const DieVariation die(t, 3);
  EXPECT_DOUBLE_EQ(die.systematic_offset({7.0, 9.0}), 0.0);
}

TEST_F(DieVariationTest, SystematicChangesMoreAcrossHalfArrayThanOnePitch) {
  // The design premise of the pairing comparison: a distant pair (delta-y =
  // 8) sees much more systematic offset than an adjacent pair (delta-x = 1).
  const DieVariation die(tech_, 5);
  RunningStats adjacent;
  RunningStats distant;
  for (double x = 0.0; x < 14.0; x += 1.0) {
    for (double y = 0.0; y < 8.0; y += 1.0) {
      adjacent.add(std::fabs(die.systematic_offset({x + 1.0, y}) -
                             die.systematic_offset({x, y})));
      distant.add(std::fabs(die.systematic_offset({x, y + 8.0}) -
                            die.systematic_offset({x, y})));
    }
  }
  EXPECT_GT(distant.mean(), 3.0 * adjacent.mean());
}

TEST_F(DieVariationTest, SpatialOffsetDiffersAcrossDies) {
  const DieVariation a(tech_, 100);
  const DieVariation b(tech_, 200);
  EXPECT_NE(a.spatial_offset({4.0, 4.0}), b.spatial_offset({4.0, 4.0}));
}

TEST_F(DieVariationTest, LocalSampleMatchesSigma) {
  const DieVariation die(tech_, 11);
  Xoshiro256 rng(77);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(die.local_sample(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 1e-3);
  EXPECT_NEAR(stats.stddev(), tech_.sigma_vth_local, tech_.sigma_vth_local * 0.03);
}

TEST_F(DieVariationTest, TotalOffsetCombinesComponents) {
  const DieVariation die(tech_, 13);
  const Position p{3.0, 5.0};
  // With a zero-variance local RNG contribution removed by averaging, the
  // total must centre on global + spatial + systematic.
  Xoshiro256 rng(123);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(die.total_offset(p, rng));
  const double expected =
      die.global_offset() + die.spatial_offset(p) + die.systematic_offset(p);
  EXPECT_NEAR(stats.mean(), expected, tech_.sigma_vth_local * 0.05);
  EXPECT_NEAR(stats.stddev(), tech_.sigma_vth_local, tech_.sigma_vth_local * 0.03);
}

}  // namespace
}  // namespace aropuf
