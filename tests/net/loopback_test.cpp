// Loopback coordinator/worker e2e over 127.0.0.1 (POSIX only; registered by
// tests/net/CMakeLists.txt under UNIX).  Runs the REAL study job runner
// in-process and requires the fleet-merged aggregate to be bit-identical to a
// directly computed single-process aggregate — the tentpole guarantee — plus
// the failure paths: a worker hard-killed mid-job (reassignment), a job that
// throws (ERROR + retry budget), and a client speaking the wrong protocol
// version.
//
// Workers run jobs SEQUENTIALLY here (one worker thread at a time, or one
// worker serving all jobs): the run record and metrics registry are
// process-global, so two concurrent in-process jobs would interleave their
// telemetry.  Real fleet workers are separate processes — the parallel case
// is covered by the tools.fleet_* ctest legs driving real binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/coordinator.hpp"
#include "net/fleet_view.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/worker.hpp"
#include "sim/shard_study.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/trace.hpp"

namespace aropuf::net {
namespace {

ShardStudyConfig tiny_config() {
  ShardStudyConfig cfg;
  cfg.pop.chips = 8;
  cfg.pop.seed = 77;
  cfg.checkpoints = {1.0};
  return cfg;
}

JobMsg job_template(const ShardStudyConfig& cfg, int shards, const std::string& format) {
  JobMsg job;
  job.shards = shards;
  job.chips = cfg.pop.chips;
  job.seed = cfg.pop.seed;
  job.checkpoints = cfg.checkpoints;
  job.run = "loopback";
  job.format = format;
  return job;
}

/// The production job body: the same runner tools/aropuf_fleet wires in.
JobRunner study_runner() {
  return [](const JobMsg& job, const auto& progress) {
    ShardStudyConfig cfg;
    cfg.pop.chips = job.chips;
    cfg.pop.seed = job.seed;
    cfg.checkpoints = job.checkpoints;
    return run_shard_job(cfg, job.shard, job.shards, job.run, job.format == "binary", progress);
  };
}

/// The reference: every shard folded without any network in between.
std::string direct_aggregate_results(const ShardStudyConfig& cfg, int shards,
                                     const std::string& format) {
  telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kKeep);
  for (int k = 0; k < shards; ++k) {
    builder.add(telemetry::decode_shard_input(
        run_shard_job(cfg, k, shards, "loopback", format == "binary"), "<direct>"));
  }
  return builder.finalize().manifest.at("results").dump();
}

TEST(LoopbackTest, FleetMergeIsBitIdenticalToDirectFold) {
  const ShardStudyConfig cfg = tiny_config();
  const int kShards = 3;

  for (const std::string format : {"binary", "json"}) {
    CoordinatorConfig config;
    config.port = 0;
    config.jobs = kShards;
    config.job_template = job_template(cfg, kShards, format);

    telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kKeep);
    CoordinatorCallbacks callbacks;
    callbacks.on_result = [&](int, std::string bytes, const std::string& worker) {
      builder.add(telemetry::decode_shard_input(std::move(bytes), "tcp://" + worker));
    };

    Coordinator coordinator(config, std::move(callbacks));
    const std::uint16_t port = coordinator.port();
    ASSERT_GT(port, 0);

    // One worker serves all three jobs back to back over one connection.
    std::thread worker_thread([port] {
      WorkerConfig wc;
      wc.host = "127.0.0.1";
      wc.port = port;
      wc.name = "loop-w1";
      EXPECT_EQ(run_worker(wc, study_runner()), WorkerExit::kBye);
    });

    const FleetSummary summary = coordinator.run();
    worker_thread.join();
    EXPECT_TRUE(summary.ok);
    EXPECT_EQ(summary.jobs_done, kShards);
    EXPECT_EQ(summary.jobs_failed, 0);
    EXPECT_EQ(summary.workers_seen, 1);
    EXPECT_EQ(summary.reassignments, 0);

    const std::string fleet_results = builder.finalize().manifest.at("results").dump();
    EXPECT_EQ(fleet_results, direct_aggregate_results(cfg, kShards, format))
        << "fleet-merged results differ from the direct fold (format " << format << ")";
  }
}

TEST(LoopbackTest, KilledWorkerJobIsReassignedAndStillBitIdentical) {
  const ShardStudyConfig cfg = tiny_config();
  const int kShards = 2;

  CoordinatorConfig config;
  config.port = 0;
  config.jobs = kShards;
  config.retries = 1;
  config.job_template = job_template(cfg, kShards, "binary");

  telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kKeep);
  std::atomic<int> reassign_events{0};
  CoordinatorCallbacks callbacks;
  callbacks.on_result = [&](int, std::string bytes, const std::string& worker) {
    builder.add(telemetry::decode_shard_input(std::move(bytes), "tcp://" + worker));
  };
  callbacks.on_event = [&](const std::string& event, int, const std::string&) {
    if (event == "retry") reassign_events.fetch_add(1);
  };

  Coordinator coordinator(config, std::move(callbacks));
  const std::uint16_t port = coordinator.port();

  std::thread workers([port] {
    // Worker 1 hard-closes on its first job — the deterministic stand-in for
    // a machine dying mid-shard.  It must exit kAborted without sending
    // RESULT or ERROR.
    WorkerConfig killed;
    killed.host = "127.0.0.1";
    killed.port = port;
    killed.name = "loop-killed";
    killed.abort_first_job = true;
    EXPECT_EQ(run_worker(killed, study_runner()), WorkerExit::kAborted);

    // Worker 2 then serves everything, including the reassigned job.
    WorkerConfig survivor;
    survivor.host = "127.0.0.1";
    survivor.port = port;
    survivor.name = "loop-survivor";
    EXPECT_EQ(run_worker(survivor, study_runner()), WorkerExit::kBye);
  });

  const FleetSummary summary = coordinator.run();
  workers.join();
  EXPECT_TRUE(summary.ok);
  EXPECT_EQ(summary.jobs_done, kShards);
  EXPECT_EQ(summary.jobs_failed, 0);
  EXPECT_EQ(summary.workers_seen, 2);
  EXPECT_GE(summary.reassignments, 1);
  EXPECT_GE(reassign_events.load(), 1);

  const std::string fleet_results = builder.finalize().manifest.at("results").dump();
  EXPECT_EQ(fleet_results, direct_aggregate_results(cfg, kShards, "binary"));
}

TEST(LoopbackTest, ObservabilityPlaneMergesTraceAndAccountsJobsAcrossAKill) {
  // The full observability loop against real sockets: trace context on JOB
  // frames, METRICS snapshots (including the killed worker's initial one),
  // clock-offset estimation, and the FleetView fold the tools wire in.
  //
  // Caveat: both "processes" share this test binary's global trace buffer, so
  // span *attribution* between coordinator and worker blurs (each drain grabs
  // whatever is buffered).  Assertions therefore target what survives the
  // blur — one trace_id, synthetic pids present, monotonic merged timestamps,
  // coordinator-side job accounting.  Per-process attribution is covered by
  // scripts/fleet_smoke.sh with real separate binaries.
  (void)telemetry::drain_trace_events();  // flush spans left by earlier tests

  const ShardStudyConfig cfg = tiny_config();
  const int kShards = 2;

  CoordinatorConfig config;
  config.port = 0;
  config.jobs = kShards;
  config.retries = 1;
  config.job_template = job_template(cfg, kShards, "binary");
  config.job_template.trace_id = "loopbacktrace001";

  FleetView view(kShards, "loopback", config.job_template.trace_id, 0);
  auto now_ms = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  };
  telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kKeep);
  std::atomic<int> metrics_frames{0};
  CoordinatorCallbacks callbacks;
  callbacks.on_result = [&](int shard, std::string bytes, const std::string& worker) {
    builder.add(telemetry::decode_shard_input(std::move(bytes), "tcp://" + worker));
    view.note_result(shard, worker, now_ms());
  };
  callbacks.on_event = [&](const std::string& event, int shard, const std::string& detail) {
    view.note_event(event, shard, detail, now_ms());
  };
  callbacks.on_heartbeat = [&](const telemetry::Heartbeat& beat, const std::string& worker) {
    view.note_heartbeat(beat, worker, now_ms());
  };
  callbacks.on_metrics = [&](const MetricsMsg& msg, const std::string& worker, double offset) {
    metrics_frames.fetch_add(1);
    view.note_metrics(msg, worker, offset, now_ms());
  };

  Coordinator coordinator(config, std::move(callbacks));
  const std::uint16_t port = coordinator.port();

  std::thread workers([port] {
    WorkerConfig killed;
    killed.host = "127.0.0.1";
    killed.port = port;
    killed.name = "obs-killed";
    killed.abort_first_job = true;
    EXPECT_EQ(run_worker(killed, study_runner()), WorkerExit::kAborted);

    WorkerConfig survivor;
    survivor.host = "127.0.0.1";
    survivor.port = port;
    survivor.name = "obs-survivor";
    EXPECT_EQ(run_worker(survivor, study_runner()), WorkerExit::kBye);
  });

  const FleetSummary summary = coordinator.run();
  workers.join();
  ASSERT_TRUE(summary.ok);
  view.add_local_events(telemetry::drain_trace_events(),
                        telemetry::trace_epoch_unix_ms(), "coordinator loopback");

  // Both workers sent their initial METRICS right after HELLO, and the
  // survivor one more per finished job.
  EXPECT_GE(metrics_frames.load(), 3);
  ASSERT_EQ(view.workers().size(), 2u);
  const WorkerView& killed = view.workers()[0];
  const WorkerView& survivor = view.workers()[1];
  EXPECT_EQ(killed.name, "obs-killed");
  EXPECT_GE(killed.failed_attempts, 1);
  EXPECT_TRUE(killed.offset_known);
  EXPECT_TRUE(survivor.offset_known);
  // Loopback clocks are one clock: the min-filtered estimate stays tiny.
  EXPECT_LT(std::abs(survivor.clock_offset_ms), 50.0);
  // Job accounting sums to the shard plan, reassigned shard included.
  EXPECT_EQ(killed.jobs_done + survivor.jobs_done, kShards);
  EXPECT_GE(view.reassignments(), 1);

  const JsonValue trace = view.merged_trace_json();
  EXPECT_EQ(trace.at("trace_id").as_string(), "loopbacktrace001");
  bool saw_killed_pid = false, saw_survivor_pid = false, saw_job_span = false;
  double prev_ts = -1.0;
  for (const JsonValue& event : trace.at("traceEvents").as_array()) {
    if (event.string_or("ph", "") != "X") continue;
    const double ts = event.at("ts").as_number();
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    const int pid = static_cast<int>(event.at("pid").as_number());
    if (pid == killed.pid) saw_killed_pid = true;
    if (pid == survivor.pid) saw_survivor_pid = true;
    if (event.string_or("name", "") == "fleet.job" && event.contains("args")) {
      saw_job_span = true;
      EXPECT_EQ(event.at("args").string_or("trace_id", ""), "loopbacktrace001");
    }
  }
  // The killed worker's initial METRICS shipped its fleet.connect span before
  // it died, so even that process appears in the merged timeline.
  EXPECT_TRUE(saw_killed_pid);
  EXPECT_TRUE(saw_survivor_pid);
  EXPECT_TRUE(saw_job_span);

  const JsonValue doc = view.fleet_metrics_json(now_ms());
  EXPECT_EQ(doc.at("shards").at("done").as_number(), static_cast<double>(kShards));
  double sum_done = 0.0;
  for (const JsonValue& w : doc.at("workers").as_array()) {
    sum_done += w.at("jobs_done").as_number();
  }
  EXPECT_DOUBLE_EQ(sum_done, static_cast<double>(kShards));
  EXPECT_EQ(doc.at("shards").at("reassigned").as_number(),
            static_cast<double>(view.reassignments()));
}

TEST(LoopbackTest, ThrowingJobConsumesRetryBudgetThenFails) {
  CoordinatorConfig config;
  config.port = 0;
  config.jobs = 1;
  config.retries = 1;  // 2 attempts total
  config.job_template = job_template(tiny_config(), 1, "binary");

  std::atomic<int> attempts{0};
  CoordinatorCallbacks callbacks;
  callbacks.on_result = [](int, std::string, const std::string&) {
    FAIL() << "no RESULT should arrive from a runner that always throws";
  };

  Coordinator coordinator(config, std::move(callbacks));
  const std::uint16_t port = coordinator.port();

  std::thread worker_thread([port, &attempts] {
    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = port;
    wc.name = "loop-thrower";
    const JobRunner runner = [&attempts](const JobMsg&, const auto&) -> std::string {
      attempts.fetch_add(1);
      throw std::runtime_error("synthetic job failure");
    };
    // The worker survives its jobs' failures; the coordinator dismisses it
    // with BYE once the retry budget is spent.
    EXPECT_EQ(run_worker(wc, runner), WorkerExit::kBye);
  });

  const FleetSummary summary = coordinator.run();
  worker_thread.join();
  EXPECT_FALSE(summary.ok);
  EXPECT_EQ(summary.jobs_done, 0);
  EXPECT_EQ(summary.jobs_failed, 1);
  EXPECT_EQ(attempts.load(), 2);  // retries + 1, the aropuf_shard budget rule
}

TEST(LoopbackTest, RejectedResultRoutesThroughRetryBudget) {
  // A manifest that will not fold is as fatal as a crashed worker: on_result
  // throwing must consume an attempt and redispatch.
  CoordinatorConfig config;
  config.port = 0;
  config.jobs = 1;
  config.retries = 1;
  config.job_template = job_template(tiny_config(), 1, "binary");

  std::atomic<int> results_seen{0};
  CoordinatorCallbacks callbacks;
  callbacks.on_result = [&](int, std::string bytes, const std::string&) {
    if (results_seen.fetch_add(1) == 0) {
      throw std::runtime_error("synthetic fold rejection");
    }
  };

  Coordinator coordinator(config, std::move(callbacks));
  const std::uint16_t port = coordinator.port();
  std::thread worker_thread([port] {
    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = port;
    EXPECT_EQ(run_worker(wc, study_runner()), WorkerExit::kBye);
  });

  const FleetSummary summary = coordinator.run();
  worker_thread.join();
  EXPECT_TRUE(summary.ok);
  EXPECT_EQ(results_seen.load(), 2);
  EXPECT_EQ(summary.reassignments, 1);
}

TEST(LoopbackTest, VersionMismatchGetsStructuredErrorThenGoodWorkerFinishes) {
  CoordinatorConfig config;
  config.port = 0;
  config.jobs = 1;
  config.job_template = job_template(tiny_config(), 1, "binary");

  CoordinatorCallbacks callbacks;
  telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kKeep);
  callbacks.on_result = [&](int, std::string bytes, const std::string& worker) {
    builder.add(telemetry::decode_shard_input(std::move(bytes), "tcp://" + worker));
  };

  Coordinator coordinator(config, std::move(callbacks));
  const std::uint16_t port = coordinator.port();

  std::thread clients([port] {
    // A client from the future: HELLO with a protocol the coordinator does
    // not speak.  DESIGN.md §11.5 requires ERROR code "version-mismatch"
    // followed by connection close.
    {
      Socket socket = tcp_connect("127.0.0.1", port, 10.0);
      HelloMsg hello;
      hello.protocol = 9999;
      hello.worker = "time-traveler";
      socket.send_all(encode_hello(hello));
      FrameDecoder decoder;
      Frame frame;
      bool got_error = false;
      char buf[4096];
      while (!got_error) {
        const std::size_t n = socket.recv_some(buf, sizeof buf);
        if (n == 0) break;  // closed before we parsed — still a failure below
        decoder.feed(buf, n);
        while (decoder.next(&frame)) {
          ASSERT_EQ(frame.type, FrameType::kError);
          EXPECT_EQ(error_from_json(frame_payload_json(frame)).code, "version-mismatch");
          got_error = true;
        }
      }
      EXPECT_TRUE(got_error);
    }
    // A well-versioned worker then completes the run.
    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = port;
    EXPECT_EQ(run_worker(wc, study_runner()), WorkerExit::kBye);
  });

  const FleetSummary summary = coordinator.run();
  clients.join();
  EXPECT_TRUE(summary.ok);
  EXPECT_EQ(summary.jobs_done, 1);
  // The mismatched client never completed the handshake.
  EXPECT_EQ(summary.workers_seen, 1);
}

}  // namespace
}  // namespace aropuf::net
