// FleetView fold tests: the observability model is pure state (injected
// clocks, no sockets), so every render path — merged Chrome trace, fleet
// metrics document, Prometheus exposition — is pinned here deterministically.
// The loopback e2e exercises the same paths against real worker processes.
#include "net/fleet_view.hpp"

#include <gtest/gtest.h>

#include <string>

namespace aropuf::net {
namespace {

/// Chrome "X" event as a worker ships it inside METRICS.spans: steady-clock
/// `ts` µs, no pid (the merge assigns the synthetic one).
JsonValue span_event(const std::string& name, double ts_us, double dur_us,
                     const std::string& tname = "") {
  JsonValue::Object obj;
  obj["name"] = JsonValue(name);
  obj["ph"] = JsonValue("X");
  obj["cat"] = JsonValue("fleet");
  obj["ts"] = JsonValue(ts_us);
  obj["dur"] = JsonValue(dur_us);
  obj["tid"] = JsonValue(0);
  if (!tname.empty()) obj["tname"] = JsonValue(tname);
  return JsonValue(std::move(obj));
}

MetricsMsg metrics_with_span(double epoch_unix_ms, JsonValue span) {
  MetricsMsg msg;
  msg.ts_unix_ms = static_cast<std::int64_t>(epoch_unix_ms) + 1;
  msg.trace_epoch_unix_ms = epoch_unix_ms;
  msg.metrics = JsonValue(JsonValue::Object{});
  msg.spans.push_back(std::move(span));
  return msg;
}

TEST(FleetViewTest, MergedTraceRebasesOffsetsAndStaysMonotonic) {
  FleetView view(2, "run", "feedf00d", 1000);
  view.note_event("connect", -1, "w1", 1000);
  view.note_event("connect", -1, "w2", 1001);

  // w1's clock runs 500 ms behind the coordinator (offset +500); its span at
  // local epoch 10000 + 2000 µs lands at coordinator time 10500 ms + 2000 µs.
  view.note_metrics(metrics_with_span(10000.0, span_event("fleet.job", 2000.0, 100.0)),
                    "w1", 500.0, 1002);
  // w2's clock runs 500 ms ahead (offset −500); its local epoch 11200 span
  // corrects to 10700 ms — later than w1's despite the larger raw epoch.
  view.note_metrics(metrics_with_span(11200.0, span_event("fleet.job", 0.0, 100.0)),
                    "w2", -500.0, 1003);
  // Coordinator's own span at wall 10400 ms is the earliest event overall.
  JsonValue::Array local;
  local.push_back(span_event("fleet.coordinate", 0.0, 9000.0));
  view.add_local_events(std::move(local), 10400.0, "coordinator run");

  const JsonValue trace = view.merged_trace_json();
  EXPECT_EQ(trace.at("trace_id").as_string(), "feedf00d");
  EXPECT_EQ(trace.at("run").as_string(), "run");
  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");

  double prev_ts = -1.0;
  double first_x_ts = -1.0;
  int x_events = 0;
  std::string first_name, last_name;
  for (const JsonValue& event : trace.at("traceEvents").as_array()) {
    if (event.string_or("ph", "") != "X") continue;
    const double ts = event.at("ts").as_number();
    EXPECT_GE(ts, prev_ts) << "merged trace must be time-sorted";
    prev_ts = ts;
    if (x_events == 0) {
      first_x_ts = ts;
      first_name = event.string_or("name", "");
    }
    last_name = event.string_or("name", "");
    ++x_events;
  }
  ASSERT_EQ(x_events, 3);
  // Rebased to the earliest corrected timestamp: coordinator first, at ts 0.
  EXPECT_DOUBLE_EQ(first_x_ts, 0.0);
  EXPECT_EQ(first_name, "fleet.coordinate");
  // Offset correction reorders the workers: w2's raw-later span is truly last,
  // and w1's corrected span sits 102 ms after the coordinator epoch.
  EXPECT_EQ(last_name, "fleet.job");
  EXPECT_DOUBLE_EQ(prev_ts, (10700.0 - 10400.0) * 1000.0);
}

TEST(FleetViewTest, MergedTraceStampsSyntheticPidsAndMetadata) {
  FleetView view(1, "run", "cafe", 0);
  view.note_event("connect", -1, "hostA:9", 0);
  view.note_metrics(metrics_with_span(100.0, span_event("fleet.job", 0.0, 5.0, "worker main")),
                    "hostA:9", 0.0, 1);
  JsonValue::Array local;
  local.push_back(span_event("fleet.coordinate", 0.0, 10.0));
  view.add_local_events(std::move(local), 50.0, "coordinator run");

  const JsonValue trace = view.merged_trace_json();
  bool saw_coord_proc = false, saw_worker_proc = false, saw_tname = false;
  for (const JsonValue& event : trace.at("traceEvents").as_array()) {
    const std::string ph = event.string_or("ph", "");
    const std::string name = event.string_or("name", "");
    if (ph == "M" && name == "process_name") {
      const std::string label = event.at("args").at("name").as_string();
      if (event.at("pid").as_number() == 1.0) {
        saw_coord_proc = true;
        EXPECT_EQ(label, "coordinator run");
      } else {
        saw_worker_proc = true;
        EXPECT_EQ(event.at("pid").as_number(), 2.0);
        EXPECT_EQ(label, "worker[0] hostA:9");
      }
    }
    if (ph == "M" && name == "thread_name" && event.at("pid").as_number() == 2.0) {
      saw_tname = true;
      EXPECT_EQ(event.at("args").at("name").as_string(), "worker main");
    }
    if (ph == "X") {
      // The transport-only "tname" key never leaks into the final trace.
      EXPECT_FALSE(event.contains("tname"));
      EXPECT_TRUE(event.contains("pid"));
    }
  }
  EXPECT_TRUE(saw_coord_proc);
  EXPECT_TRUE(saw_worker_proc);
  EXPECT_TRUE(saw_tname);
}

TEST(FleetViewTest, RetryChargesTheDispatchOwnerNotTheReasonText) {
  FleetView view(2, "run", "id", 0);
  view.note_event("connect", -1, "w1", 0);
  view.note_event("connect", -1, "w2", 0);
  view.note_event("dispatch", 0, "w1", 1);
  view.note_event("dispatch", 1, "w2", 1);
  // The retry event's detail is a reason string, not a worker name; the
  // ownership map from the dispatch must attribute the charge to w1.
  view.note_event("retry", 0, "heartbeat timeout", 2);
  view.note_event("dispatch", 0, "w2", 3);  // reassignment
  view.note_result(0, "w2", 4);
  view.note_result(1, "w2", 5);

  ASSERT_EQ(view.workers().size(), 2u);
  const WorkerView& w1 = view.workers()[0];
  const WorkerView& w2 = view.workers()[1];
  EXPECT_EQ(w1.failed_attempts, 1);
  EXPECT_EQ(w1.jobs_done, 0);
  EXPECT_EQ(w1.busy_shard, -1);
  EXPECT_EQ(w2.failed_attempts, 0);
  EXPECT_EQ(w2.jobs_done, 2);
  EXPECT_EQ(view.reassignments(), 1);
  EXPECT_EQ(view.shards_done(), 2);
  // Per-worker job counts sum to the plan even across the reassignment.
  EXPECT_EQ(w1.jobs_done + w2.jobs_done, 2);
}

TEST(FleetViewTest, DisconnectParsesNameFromReasonSuffix) {
  FleetView view(1, "run", "id", 0);
  view.note_event("connect", -1, "host:w.1", 0);
  EXPECT_TRUE(view.workers()[0].connected);
  view.note_event("disconnect", -1, "host:w.1: peer closed", 1);
  EXPECT_FALSE(view.workers()[0].connected);
}

TEST(FleetViewTest, FleetMetricsJsonAccountsShardsAndUtilization) {
  FleetView view(3, "study", "abcd", 1000);
  view.note_event("connect", -1, "w1", 1000);
  view.note_event("dispatch", 0, "w1", 1000);
  view.note_metrics(metrics_with_span(0.0, span_event("fleet.job", 0.0, 400000.0)),
                    "w1", 0.0, 1200);
  view.note_result(0, "w1", 2000);
  view.note_event("dispatch", 1, "w1", 2000);

  const JsonValue doc = view.fleet_metrics_json(3000);
  EXPECT_EQ(doc.at("schema").as_string(), "aropuf-fleet-metrics");
  EXPECT_EQ(doc.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(doc.at("trace_id").as_string(), "abcd");
  EXPECT_DOUBLE_EQ(doc.at("elapsed_ms").as_number(), 2000.0);
  const JsonValue& shards = doc.at("shards");
  EXPECT_EQ(shards.at("total").as_number(), 3.0);
  EXPECT_EQ(shards.at("done").as_number(), 1.0);
  EXPECT_EQ(shards.at("in_flight").as_number(), 1.0);
  EXPECT_EQ(shards.at("queued").as_number(), 1.0);

  const JsonValue& w1 = doc.at("workers").as_array().at(0);
  EXPECT_EQ(w1.at("name").as_string(), "w1");
  EXPECT_EQ(w1.at("jobs_done").as_number(), 1.0);
  EXPECT_EQ(w1.at("jobs_assigned").as_number(), 2.0);
  EXPECT_EQ(w1.at("busy_shard").as_number(), 1.0);
  // 400 ms of shipped fleet.job span over 2000 ms elapsed.
  EXPECT_DOUBLE_EQ(w1.at("busy_ms").as_number(), 400.0);
  EXPECT_DOUBLE_EQ(w1.at("utilization").as_number(), 0.2);
  // Current job started at 2000, now 3000 → 1000 ms elapsed; the 1 s floor
  // (mean completed job is 1000 ms → threshold 2000 ms) keeps it off.
  EXPECT_FALSE(w1.at("straggler").as_bool());
  EXPECT_TRUE(view.fleet_metrics_json(5000).at("workers").as_array().at(0)
                  .at("straggler").as_bool());
}

TEST(FleetViewTest, PrometheusTextEscapesLabelsAndListsCoreSeries) {
  FleetView view(2, "run", "id", 0);
  view.note_event("connect", -1, "host\"quoted\":1", 0);
  view.note_event("dispatch", 0, "host\"quoted\":1", 1);
  view.note_result(0, "host\"quoted\":1", 2);

  const std::string text = view.prometheus_text();
  EXPECT_NE(text.find("# TYPE aropuf_fleet_shards_done gauge"), std::string::npos);
  EXPECT_NE(text.find("aropuf_fleet_shards_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("aropuf_fleet_shards_done 1\n"), std::string::npos);
  EXPECT_NE(text.find(
                "aropuf_fleet_worker_jobs_done{worker=\"host\\\"quoted\\\":1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aropuf_fleet_worker_clock_offset_ms"), std::string::npos);
}

TEST(FleetViewTest, PrometheusTextExportsWorkerProfileInstruments) {
  FleetView view(1, "run", "id", 0);
  view.note_event("connect", -1, "w1", 0);

  MetricsMsg msg;
  msg.ts_unix_ms = 1;
  JsonValue::Object counters;
  counters["prof.cycles"] = JsonValue(123456.0);
  counters["fold.shards"] = JsonValue(7.0);  // non-profiling: must NOT export
  JsonValue::Object gauges;
  gauges["proc.rss_kib"] = JsonValue(2048.0);
  gauges["prof.ipc"] = JsonValue(1.75);
  JsonValue::Object snapshot;
  snapshot["counters"] = JsonValue(std::move(counters));
  snapshot["gauges"] = JsonValue(std::move(gauges));
  snapshot["histograms"] = JsonValue(JsonValue::Object{});
  msg.metrics = JsonValue(std::move(snapshot));
  view.note_metrics(msg, "w1", 0.0, 2);

  const std::string text = view.prometheus_text();
  EXPECT_NE(text.find("# TYPE aropuf_fleet_worker_profile gauge"), std::string::npos);
  EXPECT_NE(text.find("aropuf_fleet_worker_profile{worker=\"w1\","
                      "metric=\"prof.cycles\"} 123456\n"),
            std::string::npos);
  EXPECT_NE(text.find("metric=\"proc.rss_kib\"} 2048\n"), std::string::npos);
  EXPECT_NE(text.find("metric=\"prof.ipc\"} 1.75\n"), std::string::npos);
  EXPECT_EQ(text.find("fold.shards"), std::string::npos);
}

TEST(FleetViewTest, PrometheusTextOmitsProfileFamilyWithoutInstruments) {
  FleetView view(1, "run", "id", 0);
  view.note_event("connect", -1, "w1", 0);
  EXPECT_EQ(view.prometheus_text().find("aropuf_fleet_worker_profile"),
            std::string::npos);
}

TEST(FleetViewTest, HistoryRingIsBounded) {
  FleetView view(1, "run", "id", 0);
  for (std::size_t i = 0; i < kFleetHistoryCap + 50; ++i) {
    view.note_event("retry", 0, "reason " + std::to_string(i), static_cast<std::int64_t>(i));
  }
  ASSERT_EQ(view.history().size(), kFleetHistoryCap);
  // Oldest entries dropped: the ring starts 50 events in.
  EXPECT_EQ(view.history().front().detail, "reason 50");
  EXPECT_EQ(view.history().back().detail, "reason " + std::to_string(kFleetHistoryCap + 49));
}

}  // namespace
}  // namespace aropuf::net
