// ARPF frame codec tests: every byte of the wire format (DESIGN.md §11) is
// pinned here — encode/decode round-trips for all seven types, header-field
// rejection, truncation at every byte, and arbitrary packetization.  The
// fuzz harness (fuzz/fuzz_netframe.cpp) extends this with coverage-guided
// garbage; these tests keep the *intended* behavior from drifting.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aropuf::net {
namespace {

Frame decode_one(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_TRUE(decoder.next(&frame));
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame;
}

FrameErrc decode_errc(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  try {
    (void)decoder.next(&frame);
  } catch (const FrameError& e) {
    return e.code();
  }
  ADD_FAILURE() << "decode did not throw";
  return FrameErrc::kBadMagic;
}

TEST(FrameTest, HeaderLayoutIsExactlyTwelveLittleEndianBytes) {
  const std::string bytes = encode_frame(FrameType::kHeartbeat, "{}");
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 2);
  EXPECT_EQ(bytes.substr(0, 4), "ARPF");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), kProtocolVersion & 0xff);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), kProtocolVersion >> 8);
  EXPECT_EQ(static_cast<unsigned char>(bytes[6]),
            static_cast<unsigned char>(FrameType::kHeartbeat));
  EXPECT_EQ(bytes[7], '\0');                                  // reserved
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 2);         // length LE
  EXPECT_EQ(bytes[9], '\0');
  EXPECT_EQ(bytes[10], '\0');
  EXPECT_EQ(bytes[11], '\0');
  EXPECT_EQ(bytes.substr(kFrameHeaderSize), "{}");
}

TEST(FrameTest, AllTypesRoundTrip) {
  const std::vector<FrameType> types = {FrameType::kHello,  FrameType::kJob,
                                        FrameType::kHeartbeat, FrameType::kResult,
                                        FrameType::kError,  FrameType::kBye,
                                        FrameType::kMetrics};
  for (const FrameType type : types) {
    const std::string payload =
        type == FrameType::kBye ? "" : std::string("payload-") + frame_type_name(type);
    const Frame frame = decode_one(encode_frame(type, payload));
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(FrameTest, ResultPayloadMayBeArbitraryBinary) {
  std::string blob(4096, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<char>(i * 31);
  const Frame frame = decode_one(encode_frame(FrameType::kResult, blob));
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, blob);
}

TEST(FrameTest, TruncationAtEveryByteNeedsMoreAndNeverThrows) {
  const std::string whole = encode_frame(FrameType::kJob, R"({"probe": 1})");
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(whole.substr(0, cut));
    Frame frame;
    EXPECT_FALSE(decoder.next(&frame)) << "cut at " << cut;
    // The remainder completes the frame: nothing was consumed or corrupted.
    decoder.feed(whole.substr(cut));
    EXPECT_TRUE(decoder.next(&frame)) << "cut at " << cut;
    EXPECT_EQ(frame.payload, R"({"probe": 1})");
  }
}

TEST(FrameTest, ByteByByteFeedingDecodesIdentically) {
  const std::string a = encode_frame(FrameType::kHello, R"({"worker": "w"})");
  const std::string b = encode_frame(FrameType::kBye, "");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char c : a + b) {
    decoder.feed(&c, 1);
    Frame frame;
    while (decoder.next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kBye);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, MultipleFramesInOneFeed) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kHeartbeat, "{}") + encode_frame(FrameType::kBye, "") +
               encode_frame(FrameType::kResult, "raw"));
  Frame frame;
  ASSERT_TRUE(decoder.next(&frame));
  EXPECT_EQ(frame.type, FrameType::kHeartbeat);
  ASSERT_TRUE(decoder.next(&frame));
  EXPECT_EQ(frame.type, FrameType::kBye);
  ASSERT_TRUE(decoder.next(&frame));
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, "raw");
  EXPECT_FALSE(decoder.next(&frame));
}

TEST(FrameTest, BadMagicFailsFastEvenOnAPartialHeader) {
  // A poisoned stream must not wait for 12 bytes that will never arrive.
  EXPECT_EQ(decode_errc("HTTP"), FrameErrc::kBadMagic);
  EXPECT_EQ(decode_errc("A@"), FrameErrc::kBadMagic);
  EXPECT_EQ(decode_errc(std::string("\0\0\0\0", 4)), FrameErrc::kBadMagic);
}

TEST(FrameTest, HeaderFieldRejection) {
  std::string bytes = encode_frame(FrameType::kJob, "{}");
  bytes[4] = 0x7f;  // version
  EXPECT_EQ(decode_errc(bytes), FrameErrc::kUnsupportedVersion);

  bytes = encode_frame(FrameType::kJob, "{}");
  bytes[6] = 0x00;  // type below range
  EXPECT_EQ(decode_errc(bytes), FrameErrc::kBadType);
  bytes[6] = 0x08;  // type above range (0x07 became METRICS in §11.8)
  EXPECT_EQ(decode_errc(bytes), FrameErrc::kBadType);

  bytes = encode_frame(FrameType::kJob, "{}");
  bytes[7] = 0x01;  // reserved byte
  EXPECT_EQ(decode_errc(bytes), FrameErrc::kReservedNonzero);
}

TEST(FrameTest, DeclaredLengthOverCapIsRejectedBeforeBuffering) {
  // A control frame claiming a 16 MiB payload must die on header validation —
  // the decoder never waits for (or allocates) the phantom payload.
  std::string bytes = encode_frame(FrameType::kHeartbeat, "{}");
  bytes[10] = 0x01;  // length byte 2: declared length = 2 + (1 << 16) ... still small
  bytes[11] = 0x01;  // length byte 3: + (1 << 24) — now far over the 1 MiB cap
  EXPECT_EQ(decode_errc(bytes), FrameErrc::kOversizedPayload);
}

TEST(FrameTest, EncodeRejectsOversizedControlPayload) {
  const std::string big(kMaxControlPayload + 1, 'x');
  EXPECT_THROW((void)encode_frame(FrameType::kError, big), FrameError);
  // The same size is fine for RESULT, whose cap is the 1 GiB container bound.
  EXPECT_NO_THROW((void)encode_frame(FrameType::kResult, big));
}

TEST(FrameTest, PayloadJsonRejectsGarbageAndNonObjects) {
  Frame frame;
  frame.type = FrameType::kHello;
  frame.payload = "not json";
  EXPECT_THROW((void)frame_payload_json(frame), FrameError);
  frame.payload = "[1, 2]";
  EXPECT_THROW((void)frame_payload_json(frame), FrameError);
  frame.payload = R"({"ok": true})";
  EXPECT_TRUE(frame_payload_json(frame).is_object());
  // RESULT payloads are opaque container bytes: JSON access is a layering
  // violation, even when the bytes happen to parse.
  frame.type = FrameType::kResult;
  frame.payload = "{}";
  EXPECT_THROW((void)frame_payload_json(frame), FrameError);
}

TEST(FrameTest, HelloRoundTripAndSchemaEnforcement) {
  HelloMsg msg;
  msg.worker = "host:1234";
  msg.threads = 8;
  const Frame frame = decode_one(encode_hello(msg));
  ASSERT_EQ(frame.type, FrameType::kHello);
  const HelloMsg back = hello_from_json(frame_payload_json(frame));
  EXPECT_EQ(back.protocol, kProtocolVersion);
  EXPECT_EQ(back.worker, "host:1234");
  EXPECT_EQ(back.threads, 8);

  EXPECT_THROW((void)hello_from_json(JsonValue::parse(R"({"worker": "w"})")), FrameError);
  EXPECT_THROW((void)hello_from_json(JsonValue::parse(R"({"protocol": 1})")), FrameError);
}

TEST(FrameTest, JobRoundTripAndValidation) {
  JobMsg msg;
  msg.shard = 2;
  msg.shards = 5;
  msg.chips = 100;
  msg.seed = 2014;
  msg.checkpoints = {1.0, 2.5, 10.0};
  msg.run = "fleet_study";
  msg.format = "binary";
  msg.attempt = 3;
  const Frame frame = decode_one(encode_job(msg));
  ASSERT_EQ(frame.type, FrameType::kJob);
  const JobMsg back = job_from_json(frame_payload_json(frame));
  EXPECT_EQ(back.shard, 2);
  EXPECT_EQ(back.shards, 5);
  EXPECT_EQ(back.chips, 100);
  EXPECT_EQ(back.seed, 2014u);
  EXPECT_EQ(back.checkpoints, msg.checkpoints);
  EXPECT_EQ(back.run, "fleet_study");
  EXPECT_EQ(back.format, "binary");
  EXPECT_EQ(back.attempt, 3);

  // Out-of-range coordinates and unknown formats are schema violations.
  JobMsg bad = msg;
  bad.shard = 5;  // == shards
  EXPECT_THROW((void)job_from_json(job_to_json(bad)), FrameError);
  bad = msg;
  bad.chips = 1;
  EXPECT_THROW((void)job_from_json(job_to_json(bad)), FrameError);
  bad = msg;
  bad.checkpoints.clear();
  EXPECT_THROW((void)job_from_json(job_to_json(bad)), FrameError);
  bad = msg;
  bad.format = "xml";
  EXPECT_THROW((void)job_from_json(job_to_json(bad)), FrameError);
}

TEST(FrameTest, ErrorRoundTripWithDefaults) {
  ErrorMsg msg;
  msg.code = "job-failed";
  msg.message = "shard study threw";
  msg.shard = 4;
  const ErrorMsg back = error_from_json(frame_payload_json(decode_one(encode_error(msg))));
  EXPECT_EQ(back.code, "job-failed");
  EXPECT_EQ(back.message, "shard study threw");
  EXPECT_EQ(back.shard, 4);
  // `code` is the only required field.
  const ErrorMsg minimal = error_from_json(JsonValue::parse(R"({"code": "bad-frame"})"));
  EXPECT_EQ(minimal.code, "bad-frame");
  EXPECT_EQ(minimal.message, "");
  EXPECT_EQ(minimal.shard, -1);
  EXPECT_THROW((void)error_from_json(JsonValue::parse(R"({"message": "no code"})")),
               FrameError);
}

TEST(FrameTest, HelloCarriesOptionalSenderClock) {
  HelloMsg msg;
  msg.worker = "w";
  msg.threads = 1;
  msg.ts_unix_ms = 1754700000123;
  const HelloMsg back = hello_from_json(frame_payload_json(decode_one(encode_hello(msg))));
  EXPECT_EQ(back.ts_unix_ms, 1754700000123);
  // Pre-observability HELLOs omit the clock entirely; decode must not require it.
  const HelloMsg old = hello_from_json(
      JsonValue::parse(R"({"protocol": 1, "worker": "w", "threads": 2})"));
  EXPECT_EQ(old.ts_unix_ms, 0);
}

TEST(FrameTest, JobCarriesOptionalTraceContext) {
  JobMsg msg;
  msg.shard = 0;
  msg.shards = 1;
  msg.chips = 8;
  msg.checkpoints = {1.0};
  msg.run = "fleet_study";
  msg.format = "json";
  msg.trace_id = "deadbeefcafef00d";
  msg.parent_span = "dispatch/0#1";
  const JobMsg back = job_from_json(frame_payload_json(decode_one(encode_job(msg))));
  EXPECT_EQ(back.trace_id, "deadbeefcafef00d");
  EXPECT_EQ(back.parent_span, "dispatch/0#1");
  // Without trace context the keys are absent from the wire document and the
  // decoded fields stay empty — old coordinators keep producing old JOBs.
  msg.trace_id.clear();
  msg.parent_span.clear();
  const JsonValue doc = job_to_json(msg);
  EXPECT_FALSE(doc.contains("trace_id"));
  EXPECT_FALSE(doc.contains("parent_span"));
  EXPECT_TRUE(job_from_json(doc).trace_id.empty());
}

TEST(FrameTest, MetricsRoundTrip) {
  MetricsMsg msg;
  msg.ts_unix_ms = 1754700001000;
  msg.seq = 7;
  msg.trace_epoch_unix_ms = 1754699990000.5;
  msg.jobs_done = 3;
  msg.jobs_in_flight = 1;
  JsonValue::Object counters;
  counters["fleet.jobs_run"] = JsonValue(3);
  JsonValue::Object metrics;
  metrics["counters"] = JsonValue(std::move(counters));
  msg.metrics = JsonValue(std::move(metrics));
  JsonValue::Object span;
  span["name"] = JsonValue(std::string("fleet.job"));
  span["ph"] = JsonValue(std::string("X"));
  span["ts"] = JsonValue(12.0);
  span["dur"] = JsonValue(34.0);
  msg.spans.push_back(JsonValue(std::move(span)));

  const Frame frame = decode_one(encode_metrics(msg));
  ASSERT_EQ(frame.type, FrameType::kMetrics);
  const MetricsMsg back = metrics_from_json(frame_payload_json(frame));
  EXPECT_EQ(back.ts_unix_ms, 1754700001000);
  EXPECT_EQ(back.seq, 7);
  EXPECT_DOUBLE_EQ(back.trace_epoch_unix_ms, 1754699990000.5);
  EXPECT_EQ(back.jobs_done, 3);
  EXPECT_EQ(back.jobs_in_flight, 1);
  EXPECT_DOUBLE_EQ(back.metrics.at("counters").number_or("fleet.jobs_run", 0.0), 3.0);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].at("name").as_string(), "fleet.job");
}

TEST(FrameTest, MetricsSchemaEnforcement) {
  const auto reject = [](const std::string& json) {
    EXPECT_THROW((void)metrics_from_json(JsonValue::parse(json)), FrameError) << json;
  };
  reject(R"({"metrics": {}})");                            // missing ts_unix_ms
  reject(R"({"ts_unix_ms": 1})");                          // missing metrics object
  reject(R"({"ts_unix_ms": 1, "metrics": [1, 2]})");       // metrics not an object
  reject(R"({"ts_unix_ms": 0, "metrics": {}})");           // ts out of range
  reject(R"({"ts_unix_ms": 1, "metrics": {}, "seq": -1})");
  reject(R"({"ts_unix_ms": 1, "metrics": {}, "jobs_done": -2})");
  reject(R"({"ts_unix_ms": 1, "metrics": {}, "jobs_in_flight": -1})");
  reject(R"({"ts_unix_ms": 1, "metrics": {}, "trace_epoch_unix_ms": -5})");
  reject(R"({"ts_unix_ms": 1, "metrics": {}, "spans": {"not": "array"}})");
  reject(R"({"ts_unix_ms": 1, "metrics": {}, "spans": [42]})");  // span not object
  // Minimal valid document: everything beyond ts + metrics is optional.
  const MetricsMsg minimal =
      metrics_from_json(JsonValue::parse(R"({"ts_unix_ms": 1, "metrics": {}})"));
  EXPECT_EQ(minimal.seq, 0);
  EXPECT_TRUE(minimal.spans.empty());
}

TEST(FrameTest, MetricsTruncationAtEveryByteNeedsMoreAndNeverThrows) {
  MetricsMsg msg;
  msg.ts_unix_ms = 1754700001000;
  msg.metrics = JsonValue(JsonValue::Object{});
  const std::string whole = encode_metrics(msg);
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(whole.substr(0, cut));
    Frame frame;
    EXPECT_FALSE(decoder.next(&frame)) << "cut at " << cut;
    decoder.feed(whole.substr(cut));
    EXPECT_TRUE(decoder.next(&frame)) << "cut at " << cut;
    EXPECT_EQ(frame.type, FrameType::kMetrics);
    EXPECT_NO_THROW((void)metrics_from_json(frame_payload_json(frame)));
  }
}

TEST(FrameTest, UnknownJsonKeysAreIgnoredForForwardCompatibility) {
  const JsonValue doc = JsonValue::parse(
      R"({"protocol": 1, "worker": "w", "threads": 2, "future_field": [1, 2, 3]})");
  EXPECT_EQ(hello_from_json(doc).worker, "w");
}

}  // namespace
}  // namespace aropuf::net
