#include "attack/order_attack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "puf/ro_puf.hpp"

namespace aropuf {
namespace {

TEST(OrderAttackTest, StartsKnowingNothing) {
  const OrderAttack attack(8);
  EXPECT_DOUBLE_EQ(attack.coverage(), 0.0);
  EXPECT_FALSE(attack.predict(0, 1).has_value());
}

TEST(OrderAttackTest, DirectObservationIsRemembered) {
  OrderAttack attack(8);
  attack.observe(2, 5, true);
  ASSERT_TRUE(attack.predict(2, 5).has_value());
  EXPECT_TRUE(*attack.predict(2, 5));
  ASSERT_TRUE(attack.predict(5, 2).has_value());
  EXPECT_FALSE(*attack.predict(5, 2));
  EXPECT_FALSE(attack.predict(2, 3).has_value());
}

TEST(OrderAttackTest, TransitivityPropagates) {
  OrderAttack attack(8);
  attack.observe(0, 1, true);   // 0 > 1
  attack.observe(1, 2, true);   // 1 > 2
  attack.observe(3, 2, false);  // 2 > 3
  ASSERT_TRUE(attack.predict(0, 3).has_value());
  EXPECT_TRUE(*attack.predict(0, 3));
  EXPECT_TRUE(*attack.predict(0, 2));
  EXPECT_FALSE(*attack.predict(3, 1));
}

TEST(OrderAttackTest, TransitivityAcrossLateJoin) {
  // Two chains merged by a later edge must close through both sides.
  OrderAttack attack(16);
  attack.observe(0, 1, true);
  attack.observe(1, 2, true);
  attack.observe(10, 11, true);
  attack.observe(11, 12, true);
  EXPECT_FALSE(attack.predict(0, 12).has_value());
  attack.observe(2, 10, true);  // join the chains
  ASSERT_TRUE(attack.predict(0, 12).has_value());
  EXPECT_TRUE(*attack.predict(0, 12));
  EXPECT_FALSE(*attack.predict(12, 0));
}

TEST(OrderAttackTest, ContradictionsAreDiscarded) {
  OrderAttack attack(4);
  attack.observe(0, 1, true);
  attack.observe(1, 2, true);
  // Claims 2 > 0, contradicting the closure: must be ignored.
  attack.observe(0, 2, false);
  ASSERT_TRUE(attack.predict(0, 2).has_value());
  EXPECT_TRUE(*attack.predict(0, 2));
  EXPECT_EQ(attack.observations(), 3U);
}

TEST(OrderAttackTest, FullChainDeterminesEverything) {
  constexpr int kN = 32;
  OrderAttack attack(kN);
  for (int i = 0; i + 1 < kN; ++i) attack.observe(i, i + 1, true);
  EXPECT_DOUBLE_EQ(attack.coverage(), 1.0);
  for (int a = 0; a < kN; ++a) {
    for (int b = a + 1; b < kN; ++b) {
      ASSERT_TRUE(attack.predict(a, b).has_value());
      EXPECT_TRUE(*attack.predict(a, b));
    }
  }
}

TEST(OrderAttackTest, CoverageGrowsMonotonically) {
  OrderAttack attack(64);
  Xoshiro256 rng(3);
  double prev = 0.0;
  for (int step = 0; step < 200; ++step) {
    const int a = static_cast<int>(rng.bounded(64));
    int b = static_cast<int>(rng.bounded(63));
    if (b >= a) ++b;
    attack.observe(a, b, a < b);  // consistent order: identity ranking
    const double cov = attack.coverage();
    EXPECT_GE(cov, prev);
    prev = cov;
  }
  // 200 random edges over 64 nodes close roughly a third of all pairs.
  EXPECT_GT(prev, 0.25);
}

TEST(OrderAttackTest, LearnsARealPufFromRandomCrps) {
  // The security punchline: a few hundred noisy CRPs from a 64-RO PUF
  // predict the majority of the unseen challenge space.
  const TechnologyParams tech = TechnologyParams::cmos90();
  PufConfig cfg = PufConfig::aro(64);
  cfg.pairing = PairingStrategy::kRandomChallenge;
  const RoPuf chip(tech, cfg, RngFabric(12).child("chip", 0));
  const auto op = chip.nominal_op();

  OrderAttack attack(64);
  Xoshiro256 challenge_rng(99);
  const FrequencyCounter counter(tech, cfg.measurement_window);
  for (int crp = 0; crp < 400; ++crp) {
    const int a = static_cast<int>(challenge_rng.bounded(64));
    int b = static_cast<int>(challenge_rng.bounded(63));
    if (b >= a) ++b;
    Xoshiro256 noise(challenge_rng());
    const auto ca = counter.measure(chip.oscillators()[static_cast<std::size_t>(a)], op, noise);
    const auto cb = counter.measure(chip.oscillators()[static_cast<std::size_t>(b)], op, noise);
    attack.observe(a, b, compare_counts(ca, cb));
  }

  // Evaluate on ALL pairs against the true (noiseless) order.
  int predicted = 0;
  int correct = 0;
  int total = 0;
  for (int a = 0; a < 64; ++a) {
    for (int b = a + 1; b < 64; ++b) {
      ++total;
      const auto p = attack.predict(a, b);
      if (!p.has_value()) continue;
      ++predicted;
      const bool truth = chip.oscillators()[static_cast<std::size_t>(a)].frequency(op) >
                         chip.oscillators()[static_cast<std::size_t>(b)].frequency(op);
      if (*p == truth) ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(predicted) / total, 0.6);
  EXPECT_GT(static_cast<double>(correct) / predicted, 0.95);
}

TEST(OrderAttackTest, RejectsBadArguments) {
  OrderAttack attack(8);
  EXPECT_THROW(attack.observe(0, 8, true), std::invalid_argument);
  EXPECT_THROW(attack.observe(3, 3, true), std::invalid_argument);
  EXPECT_THROW((void)attack.predict(-1, 2), std::invalid_argument);
  EXPECT_THROW(OrderAttack(1), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
