#include "keygen/hmac.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace aropuf {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<std::uint8_t> repeated(std::uint8_t value, std::size_t count) {
  return std::vector<std::uint8_t>(count, value);
}

std::string hex(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0F]);
  }
  return out;
}

// --- RFC 4231 HMAC-SHA256 test vectors -------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  const auto key = repeated(0x0b, 20);
  const auto msg = bytes_of("Hi There");
  EXPECT_EQ(Sha256::to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  const auto msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(Sha256::to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const auto key = repeated(0xaa, 20);
  const auto msg = repeated(0xdd, 50);
  EXPECT_EQ(Sha256::to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  // Key longer than the block size: hashed first.
  const auto key = repeated(0xaa, 131);
  const auto msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(Sha256::to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, EmptyKeyAndMessageWork) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(hmac_sha256(empty, empty).size(), 32U);
}

// --- RFC 5869 HKDF test vectors ----------------------------------------------

TEST(HkdfTest, Rfc5869Case1) {
  const auto ikm = repeated(0x0b, 22);
  std::vector<std::uint8_t> salt;
  for (std::uint8_t i = 0; i <= 0x0c; ++i) salt.push_back(i);
  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(Sha256::to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  std::vector<std::uint8_t> info;
  for (std::uint8_t i = 0xf0; i <= 0xf9; ++i) info.push_back(i);
  const auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3ZeroSaltInfo) {
  const auto ikm = repeated(0x0b, 22);
  const auto prk = hkdf_extract({}, ikm);
  EXPECT_EQ(Sha256::to_hex(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  const auto okm = hkdf_expand(prk, {}, 42);
  EXPECT_EQ(hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, ExpandLengthLimits) {
  const Sha256::Digest prk{};
  EXPECT_THROW(hkdf_expand(prk, {}, 0), std::invalid_argument);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
  EXPECT_EQ(hkdf_expand(prk, {}, 100).size(), 100U);
}

TEST(DeriveSubkeyTest, LabelsSeparateKeys) {
  Sha256::Digest root{};
  root[0] = 0x42;
  const auto enc = derive_subkey(root, "encryption");
  const auto mac = derive_subkey(root, "mac");
  EXPECT_EQ(enc.size(), 32U);
  EXPECT_NE(hex(enc), hex(mac));
  // Deterministic per (root, label).
  EXPECT_EQ(hex(enc), hex(derive_subkey(root, "encryption")));
  // Different roots diverge.
  Sha256::Digest other{};
  other[0] = 0x43;
  EXPECT_NE(hex(enc), hex(derive_subkey(other, "encryption")));
}

}  // namespace
}  // namespace aropuf
