// Helper-data refresh (key maintenance) tests.
#include <gtest/gtest.h>

#include "keygen/fuzzy_extractor.hpp"
#include "puf/ro_puf.hpp"

namespace aropuf {
namespace {

ConcatenatedScheme tight_scheme() {
  // Deliberately light ECC: enough for inter-refresh drift, not for a
  // decade of accumulated drift — the scenario where refresh matters.
  ConcatenatedScheme s;
  s.repetition = 3;
  s.bch_m = 7;
  s.bch_t = 5;  // (127, 92, 5)
  s.key_bits = 128;
  return s;
}

class RefreshTest : public ::testing::Test {
 protected:
  RefreshTest() : fx_(tight_scheme()) {}

  RoPuf make_chip(const PufConfig& base, std::uint64_t index) const {
    PufConfig cfg = base;
    cfg.num_ros = static_cast<int>(2 * fx_.response_bits());
    return RoPuf(TechnologyParams::cmos90(), cfg, RngFabric(61).child("chip", index));
  }

  FuzzyExtractor fx_;
  Xoshiro256 trng_{99};
};

TEST_F(RefreshTest, RefreshPreservesTheKey) {
  RoPuf chip = make_chip(PufConfig::aro(), 0);
  const auto op = chip.nominal_op();
  const Enrollment e = fx_.enroll(chip.evaluate(op, 0), trng_);
  chip.age_years(2.0);
  const auto new_helper = fx_.refresh_helper_data(chip.evaluate(op, 1), e.helper_data);
  ASSERT_TRUE(new_helper.has_value());
  // Key through the refreshed helper is unchanged.
  const auto key = fx_.reconstruct(chip.evaluate(op, 2), *new_helper);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, e.key);
}

TEST_F(RefreshTest, RefreshedHelperDiffersWhenResponseDrifted) {
  RoPuf chip = make_chip(PufConfig::aro(), 1);
  const auto op = chip.nominal_op();
  const Enrollment e = fx_.enroll(chip.evaluate(op, 0), trng_);
  chip.age_years(3.0);
  const auto new_helper = fx_.refresh_helper_data(chip.evaluate(op, 1), e.helper_data);
  ASSERT_TRUE(new_helper.has_value());
  EXPECT_FALSE(*new_helper == e.helper_data);
}

TEST_F(RefreshTest, PeriodicRefreshOutlivesOneShotEnrollment) {
  // Controlled drift: each epoch flips 3% of the response (well inside the
  // code), but five epochs accumulate ~14% (beyond it).  Rolling refresh
  // only ever faces one epoch of drift; the one-shot helper faces them all.
  Xoshiro256 drift_rng(5);
  BitVector response(fx_.response_bits());
  for (std::size_t i = 0; i < response.size(); ++i) response.set(i, drift_rng.bernoulli(0.5));

  const Enrollment e = fx_.enroll(response, trng_);
  BitVector rolling_helper = e.helper_data;

  int one_shot_ok = 0;
  int refreshed_ok = 0;
  int refresh_failures = 0;
  for (int epoch = 1; epoch <= 5; ++epoch) {
    for (std::size_t i = 0; i < response.size(); ++i) {
      if (drift_rng.bernoulli(0.03)) response.flip(i);
    }
    const auto k1 = fx_.reconstruct(response, e.helper_data);
    if (k1.has_value() && *k1 == e.key) ++one_shot_ok;
    const auto k2 = fx_.reconstruct(response, rolling_helper);
    if (k2.has_value() && *k2 == e.key) ++refreshed_ok;
    const auto next_helper = fx_.refresh_helper_data(response, rolling_helper);
    if (next_helper.has_value()) {
      rolling_helper = *next_helper;
    } else {
      ++refresh_failures;
    }
  }
  EXPECT_EQ(refreshed_ok, 5);
  EXPECT_LT(one_shot_ok, 5);
  EXPECT_EQ(refresh_failures, 0);
}

TEST_F(RefreshTest, RefreshFailsWhenDriftExceededTheCode) {
  RoPuf chip = make_chip(PufConfig::conventional(), 3);
  const auto op = chip.nominal_op();
  const Enrollment e = fx_.enroll(chip.evaluate(op, 0), trng_);
  chip.age_years(10.0);  // ~33% drift vs a t=5 code: hopeless
  const auto new_helper = fx_.refresh_helper_data(chip.evaluate(op, 1), e.helper_data);
  EXPECT_FALSE(new_helper.has_value());
}

TEST_F(RefreshTest, RejectsWrongLengths) {
  EXPECT_THROW(fx_.refresh_helper_data(BitVector(10), BitVector(10)), std::invalid_argument);
  const BitVector ok(fx_.response_bits());
  EXPECT_THROW(fx_.refresh_helper_data(ok, BitVector(10)), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
