#include "keygen/sha256.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace aropuf {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string hash_hex(const std::string& s) {
  const auto b = bytes_of(s);
  return Sha256::to_hex(Sha256::hash(b));
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, ExactBlockBoundary64Bytes) {
  const std::string s(64, 'a');
  EXPECT_EQ(hash_hex(s),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha256::to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingEqualsOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (const char c : msg) {
    const auto byte = static_cast<std::uint8_t>(c);
    h.update({&byte, 1});
  }
  EXPECT_EQ(Sha256::to_hex(h.finish()), hash_hex(msg));
}

TEST(Sha256Test, StreamingAcrossBlockBoundary) {
  const std::string msg(130, 'x');
  Sha256 h;
  h.update(bytes_of(msg.substr(0, 63)));
  h.update(bytes_of(msg.substr(63, 2)));
  h.update(bytes_of(msg.substr(65)));
  EXPECT_EQ(Sha256::to_hex(h.finish()), hash_hex(msg));
}

TEST(Sha256Test, ReuseAfterFinishRejected) {
  Sha256 h;
  h.update(bytes_of("abc"));
  (void)h.finish();
  EXPECT_THROW(h.update(bytes_of("x")), std::invalid_argument);
  EXPECT_THROW((void)h.finish(), std::invalid_argument);
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(hash_hex("abc"), hash_hex("abd"));
  EXPECT_NE(hash_hex("abc"), hash_hex("abc "));
}

TEST(Sha256Test, HexRenderingIsLowercase64Chars) {
  const auto d = Sha256::hash(bytes_of("x"));
  const std::string hex = Sha256::to_hex(d);
  EXPECT_EQ(hex.size(), 64U);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace aropuf
