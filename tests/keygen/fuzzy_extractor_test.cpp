#include "keygen/fuzzy_extractor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace aropuf {
namespace {

ConcatenatedScheme test_scheme() {
  ConcatenatedScheme s;
  s.repetition = 3;
  s.bch_m = 7;
  s.bch_t = 10;  // (127, 64, 10)
  s.key_bits = 128;
  return s;
}

BitVector random_response(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

BitVector flip_fraction(const BitVector& v, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector out = v;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng.bernoulli(p)) out.flip(i);
  }
  return out;
}

class FuzzyExtractorTest : public ::testing::Test {
 protected:
  FuzzyExtractor fx_{test_scheme()};
  Xoshiro256 rng_{2014};
};

TEST_F(FuzzyExtractorTest, ResponseBitsMatchScheme) {
  EXPECT_EQ(fx_.response_bits(), test_scheme().raw_bits());
}

TEST_F(FuzzyExtractorTest, ExactResponseReconstructsKey) {
  const BitVector response = random_response(fx_.response_bits(), 1);
  const Enrollment e = fx_.enroll(response, rng_);
  const auto key = fx_.reconstruct(response, e.helper_data);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, e.key);
}

TEST_F(FuzzyExtractorTest, NoisyResponseReconstructsKey) {
  const BitVector response = random_response(fx_.response_bits(), 2);
  const Enrollment e = fx_.enroll(response, rng_);
  // 5 % raw BER: comfortably within rep-3 + BCH t=10.
  const BitVector noisy = flip_fraction(response, 0.05, 3);
  const auto key = fx_.reconstruct(noisy, e.helper_data);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, e.key);
}

TEST_F(FuzzyExtractorTest, HeavyNoiseFailsOrMismatches) {
  const BitVector response = random_response(fx_.response_bits(), 4);
  const Enrollment e = fx_.enroll(response, rng_);
  int bad = 0;
  for (std::uint64_t t = 0; t < 10; ++t) {
    const BitVector noisy = flip_fraction(response, 0.45, 100 + t);
    const auto key = fx_.reconstruct(noisy, e.helper_data);
    if (!key.has_value() || *key != e.key) ++bad;
  }
  EXPECT_GE(bad, 9);
}

TEST_F(FuzzyExtractorTest, WrongChipCannotReconstruct) {
  const BitVector response_a = random_response(fx_.response_bits(), 5);
  const BitVector response_b = random_response(fx_.response_bits(), 6);
  const Enrollment e = fx_.enroll(response_a, rng_);
  const auto key = fx_.reconstruct(response_b, e.helper_data);
  // A different chip's response is ~50 % HD away: reconstruction must not
  // yield the enrolled key.
  EXPECT_TRUE(!key.has_value() || *key != e.key);
}

TEST_F(FuzzyExtractorTest, DistinctEnrollmentsDistinctKeys) {
  const BitVector response = random_response(fx_.response_bits(), 7);
  const Enrollment e1 = fx_.enroll(response, rng_);
  const Enrollment e2 = fx_.enroll(response, rng_);
  // Fresh secret each enrollment: keys and helper data both differ.
  EXPECT_NE(e1.key, e2.key);
  EXPECT_FALSE(e1.helper_data == e2.helper_data);
}

TEST_F(FuzzyExtractorTest, HelperDataAloneDoesNotLeakResponseWeight) {
  // Code-offset masking: helper = response XOR codeword.  For a balanced
  // random secret the helper's ones-fraction stays near 1/2 regardless of
  // the response's own bias.
  BitVector biased(fx_.response_bits());
  for (std::size_t i = 0; i < biased.size(); ++i) biased.set(i, true);
  const Enrollment e = fx_.enroll(biased, rng_);
  EXPECT_GT(e.helper_data.ones_fraction(), 0.3);
  EXPECT_LT(e.helper_data.ones_fraction(), 0.7);
}

TEST_F(FuzzyExtractorTest, RejectsWrongLengths) {
  const BitVector short_resp(10);
  EXPECT_THROW(fx_.enroll(short_resp, rng_), std::invalid_argument);
  const BitVector response = random_response(fx_.response_bits(), 8);
  const Enrollment e = fx_.enroll(response, rng_);
  EXPECT_THROW((void)fx_.reconstruct(short_resp, e.helper_data), std::invalid_argument);
  EXPECT_THROW((void)fx_.reconstruct(response, short_resp), std::invalid_argument);
}

TEST_F(FuzzyExtractorTest, KeyIsDeterministicGivenSecret) {
  // Reconstruction through different noisy readings yields the same digest.
  const BitVector response = random_response(fx_.response_bits(), 9);
  const Enrollment e = fx_.enroll(response, rng_);
  const auto k1 = fx_.reconstruct(flip_fraction(response, 0.03, 11), e.helper_data);
  const auto k2 = fx_.reconstruct(flip_fraction(response, 0.03, 12), e.helper_data);
  ASSERT_TRUE(k1.has_value());
  ASSERT_TRUE(k2.has_value());
  EXPECT_EQ(*k1, *k2);
  EXPECT_EQ(*k1, e.key);
}

}  // namespace
}  // namespace aropuf
