#include "keygen/debias.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace aropuf {
namespace {

TEST(DebiasTest, PairConvention) {
  // 01 -> 0, 10 -> 1, 00/11 discarded.
  const auto r = von_neumann_debias(BitVector::from_string("01100011"));
  EXPECT_EQ(r.bits.to_string(), "01");
  EXPECT_EQ(r.consumed, 8U);
  EXPECT_DOUBLE_EQ(r.yield(), 0.25);
}

TEST(DebiasTest, TrailingOddBitIgnored) {
  const auto r = von_neumann_debias(BitVector::from_string("101"));
  EXPECT_EQ(r.bits.to_string(), "1");
  EXPECT_EQ(r.consumed, 2U);
}

TEST(DebiasTest, EmptyAndConstantInputs) {
  EXPECT_EQ(von_neumann_debias(BitVector()).bits.size(), 0U);
  const auto ones = von_neumann_debias(BitVector::from_string("11111111"));
  EXPECT_EQ(ones.bits.size(), 0U);
  EXPECT_DOUBLE_EQ(ones.yield(), 0.0);
}

TEST(DebiasTest, RemovesBiasFromBernoulliSource) {
  Xoshiro256 rng(3);
  BitVector biased(40000);
  for (std::size_t i = 0; i < biased.size(); ++i) biased.set(i, rng.bernoulli(0.8));
  const auto r = von_neumann_debias(biased);
  // Output is unbiased regardless of the 80/20 input.
  EXPECT_NEAR(r.bits.ones_fraction(), 0.5, 0.02);
  // Yield near p(1-p) = 0.16.
  EXPECT_NEAR(r.yield(), expected_von_neumann_yield(0.8), 0.01);
}

TEST(DebiasTest, ExpectedYieldFormula) {
  EXPECT_DOUBLE_EQ(expected_von_neumann_yield(0.5), 0.25);
  EXPECT_DOUBLE_EQ(expected_von_neumann_yield(0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_von_neumann_yield(1.0), 0.0);
  EXPECT_THROW((void)expected_von_neumann_yield(1.5), std::invalid_argument);
}

TEST(DebiasTest, OutputLengthIsDataDependent) {
  // The fuzzy-extractor caveat: two noisy readings of the same biased
  // response can debias to different *lengths*, which is why debiasing
  // composes poorly with code-offset helper data.
  Xoshiro256 rng(5);
  BitVector a(1000);
  for (std::size_t i = 0; i < a.size(); ++i) a.set(i, rng.bernoulli(0.7));
  BitVector b = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (rng.bernoulli(0.05)) b.flip(i);
  }
  const auto ra = von_neumann_debias(a);
  const auto rb = von_neumann_debias(b);
  EXPECT_NE(ra.bits.size(), rb.bits.size());
}

}  // namespace
}  // namespace aropuf
