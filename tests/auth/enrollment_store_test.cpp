#include "auth/enrollment_store.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aropuf {
namespace {

EnrollmentRecord record_of(std::size_t response_bits, std::size_t helper_bits,
                           std::uint8_t fill) {
  EnrollmentRecord record;
  record.response = BitVector(response_bits);
  record.helper = BitVector(helper_bits);
  for (std::size_t i = 0; i < response_bits; ++i) {
    record.response.set(i, ((fill >> (i % 8)) & 1) != 0);
  }
  record.tag.fill(fill);
  return record;
}

TEST(MemoryEnrollmentStoreTest, AdoptsLayoutFromFirstPut) {
  MemoryEnrollmentStore store;
  EXPECT_EQ(store.device_count(), 0U);
  EXPECT_EQ(store.response_bits(), 0U);
  EXPECT_TRUE(store.is_mutable());

  store.put(DeviceId{1}, record_of(20, 13, 0xa5));
  EXPECT_EQ(store.response_bits(), 20U);
  EXPECT_EQ(store.helper_bits(), 13U);

  // Later records must match the adopted layout exactly.
  EXPECT_THROW(store.put(DeviceId{2}, record_of(21, 13, 0)), std::invalid_argument);
  EXPECT_THROW(store.put(DeviceId{2}, record_of(20, 12, 0)), std::invalid_argument);
  store.put(DeviceId{2}, record_of(20, 13, 0x3c));
  EXPECT_EQ(store.device_count(), 2U);
}

TEST(MemoryEnrollmentStoreTest, FixedLayoutConstructorEnforcesFromTheStart) {
  MemoryEnrollmentStore store(16, 0);
  EXPECT_EQ(store.response_bits(), 16U);
  EXPECT_THROW(store.put(DeviceId{1}, record_of(8, 0, 0)), std::invalid_argument);
  store.put(DeviceId{1}, record_of(16, 0, 0x11));
}

TEST(MemoryEnrollmentStoreTest, FindReturnsTheStoredBytes) {
  MemoryEnrollmentStore store;
  const EnrollmentRecord record = record_of(20, 13, 0xa5);
  store.put(DeviceId{7}, record);

  const auto view = store.find(DeviceId{7});
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(BitVector::from_bytes(view->response, 20), record.response);
  EXPECT_EQ(BitVector::from_bytes(view->helper, 13), record.helper);
  EXPECT_EQ(view->tag[0], 0xa5);
  EXPECT_TRUE(store.contains(DeviceId{7}));
  EXPECT_FALSE(store.find(DeviceId{8}).has_value());
  EXPECT_FALSE(store.contains(DeviceId{8}));
}

TEST(MemoryEnrollmentStoreTest, PutReplacesExistingRecord) {
  MemoryEnrollmentStore store;
  store.put(DeviceId{3}, record_of(20, 13, 0x01));
  store.put(DeviceId{3}, record_of(20, 13, 0xff));
  EXPECT_EQ(store.device_count(), 1U);
  const auto view = store.find(DeviceId{3});
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->tag[0], 0xff);
}

}  // namespace
}  // namespace aropuf
