#include "auth/auth_service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "keygen/sha256.hpp"
#include "sim/parallel.hpp"

namespace aropuf {
namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  if (f != nullptr) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

FleetConfig small_fleet() {
  FleetConfig fleet;
  fleet.devices = 300;
  fleet.seed = 99;
  fleet.response_bits = 128;
  fleet.model = FleetModel::kSynthetic;
  return fleet;
}

TEST(FleetServiceTest, ShardRangesPartitionTheFleet) {
  std::uint64_t covered = 0;
  std::uint64_t previous_end = 0;
  for (std::size_t s = 0; s < 7; ++s) {
    const auto [first, last] = fleet_shard_range(100, s, 7);
    EXPECT_EQ(first, previous_end);
    EXPECT_GE(last, first);
    covered += last - first;
    previous_end = last;
  }
  EXPECT_EQ(covered, 100U);
  EXPECT_THROW((void)fleet_shard_range(10, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)fleet_shard_range(10, 0, 0), std::invalid_argument);
}

TEST(FleetServiceTest, ResponsesAreDeterministicPerDevice) {
  const FleetConfig fleet = small_fleet();
  EXPECT_EQ(fleet_enrollment_response(fleet, 5), fleet_enrollment_response(fleet, 5));
  EXPECT_NE(fleet_enrollment_response(fleet, 5), fleet_enrollment_response(fleet, 6));
  EXPECT_EQ(fleet_device_id(fleet, 5), fleet_device_id(fleet, 5));
  // Noiseless field read reproduces enrollment; noisy read drifts a little.
  EXPECT_EQ(fleet_field_response(fleet, 5, 1, 0.0), fleet_enrollment_response(fleet, 5));
  const BitVector noisy = fleet_field_response(fleet, 5, 1, 0.05);
  const std::size_t hd = hamming_distance(noisy, fleet_enrollment_response(fleet, 5));
  EXPECT_GT(hd, 0U);
  EXPECT_LT(hd, 32U);
}

TEST(FleetServiceTest, ShardedBuildMergesToTheSingleShardBytes) {
  const FleetConfig fleet = small_fleet();
  const std::string dir = ::testing::TempDir();

  const std::string single = dir + "/svc-single.arps";
  EXPECT_EQ(build_fleet_shard(fleet, 0, 1, single), fleet.devices);

  std::vector<std::string> shards;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string path = dir + "/svc-shard-" + std::to_string(s) + ".arps";
    total += build_fleet_shard(fleet, s, 3, path);
    shards.push_back(path);
  }
  EXPECT_EQ(total, fleet.devices);

  const std::string merged = dir + "/svc-merged.arps";
  EXPECT_EQ(merge_enrollment_stores(shards, merged), fleet.devices);
  EXPECT_EQ(read_file(merged), read_file(single));
}

class WorkloadDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ParallelExecutor::set_global_thread_count(0); }
};

TEST_F(WorkloadDeterminismTest, DecisionsAreBitIdenticalAcrossThreadsAndCache) {
  const FleetConfig fleet = small_fleet();
  const std::string path = ::testing::TempDir() + "/svc-workload.arps";
  ASSERT_EQ(build_fleet_shard(fleet, 0, 1, path), fleet.devices);
  std::shared_ptr<BinaryEnrollmentStore> store = BinaryEnrollmentStore::open(path);

  const AuthPolicy policy = AuthPolicy::for_false_accept_rate(fleet.response_bits, 1e-6);
  WorkloadConfig cfg;
  cfg.requests = 2000;
  cfg.impostor_fraction = 0.25;
  cfg.noise = 0.03;

  std::vector<std::string> digests;
  std::vector<double> far;
  for (const int threads : {1, 2, 8}) {
    for (const std::size_t cache : {std::size_t{0}, std::size_t{64}}) {
      ParallelExecutor::set_global_thread_count(threads);
      Authenticator auth(policy, store, fleet_verifier_key(fleet.seed));
      if (cache > 0) auth.set_cache(cache);
      const WorkloadStats stats = run_verify_workload(auth, fleet, cfg);
      EXPECT_EQ(stats.requests, cfg.requests);
      EXPECT_EQ(stats.genuine + stats.impostors, cfg.requests);
      digests.push_back(Sha256::to_hex(stats.decisions_digest));
      far.push_back(stats.far_measured);
      if (cache > 0) {
        EXPECT_GT(stats.cache_hits + stats.cache_misses, 0U);
      }
    }
  }
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "config " << i;
    EXPECT_DOUBLE_EQ(far[i], far[0]);
  }
}

TEST_F(WorkloadDeterminismTest, OperatingPointIsSane) {
  // 3% read noise against a ~0.28 threshold: essentially no false rejects;
  // impostors are fair-coin and must basically never pass a 1e-6 policy.
  const FleetConfig fleet = small_fleet();
  const std::string path = ::testing::TempDir() + "/svc-oppoint.arps";
  ASSERT_EQ(build_fleet_shard(fleet, 0, 1, path), fleet.devices);
  std::shared_ptr<BinaryEnrollmentStore> store = BinaryEnrollmentStore::open(path);
  Authenticator auth(AuthPolicy::for_false_accept_rate(fleet.response_bits, 1e-6), store,
                     fleet_verifier_key(fleet.seed));
  WorkloadConfig cfg;
  cfg.requests = 3000;
  cfg.impostor_fraction = 0.3;
  cfg.noise = 0.03;
  const WorkloadStats stats = run_verify_workload(auth, fleet, cfg);
  EXPECT_GT(stats.impostors, 0U);
  EXPECT_EQ(stats.false_accepts, 0U);
  EXPECT_EQ(stats.false_rejects, 0U);
  EXPECT_EQ(stats.accepted, stats.genuine);
  EXPECT_GT(stats.auth_per_sec, 0.0);
  EXPECT_GE(stats.p99_us, stats.p50_us);
}

TEST(FleetServiceTest, SimModelBuildsAndVerifies) {
  FleetConfig fleet;
  fleet.devices = 6;
  fleet.seed = 11;
  fleet.response_bits = 128;
  fleet.model = FleetModel::kSim;
  const std::string path = ::testing::TempDir() + "/svc-sim.arps";
  ASSERT_EQ(build_fleet_shard(fleet, 0, 1, path), fleet.devices);
  std::shared_ptr<BinaryEnrollmentStore> store = BinaryEnrollmentStore::open(path);
  EXPECT_EQ(store->params().model, static_cast<std::uint32_t>(FleetModel::kSim));

  Authenticator auth(AuthPolicy::for_false_accept_rate(fleet.response_bits, 1e-6), store,
                     fleet_verifier_key(fleet.seed));
  // A genuine re-read (different eval index → fresh measurement noise) passes.
  const auto result =
      auth.verify(fleet_device_id(fleet, 2), fleet_field_response(fleet, 2, 9, 0.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted);
}

}  // namespace
}  // namespace aropuf
