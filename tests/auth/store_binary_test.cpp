#include "auth/store_binary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace aropuf {
namespace {

BitVector random_bits(Xoshiro256& rng, std::size_t bits) {
  BitVector out(bits);
  for (std::size_t i = 0; i < bits; ++i) out.set(i, rng.bernoulli(0.5));
  return out;
}

AuthStoreParams small_params() {
  AuthStoreParams params;
  params.response_bits = 20;  // deliberately not byte-aligned
  params.helper_bits = 13;
  params.model = 0;
  params.fleet_seed = 42;
  return params;
}

std::vector<std::pair<DeviceId, EnrollmentRecord>> make_records(
    const AuthStoreParams& params, std::size_t count, std::uint64_t seed) {
  RngFabric fabric(seed);
  std::vector<std::pair<DeviceId, EnrollmentRecord>> records;
  for (std::size_t i = 0; i < count; ++i) {
    Xoshiro256 rng = fabric.stream("record", i);
    EnrollmentRecord record;
    record.response = random_bits(rng, params.response_bits);
    record.helper = random_bits(rng, params.helper_bits);
    for (auto& byte : record.tag) byte = static_cast<std::uint8_t>(rng.bounded(256));
    records.push_back({fabric.derive("id", i), std::move(record)});
  }
  return records;
}

AuthStoreErrc parse_errc(const std::string& bytes) {
  try {
    (void)BinaryEnrollmentStore::parse(bytes);
  } catch (const AuthStoreError& error) {
    return error.code();
  }
  ADD_FAILURE() << "image of " << bytes.size() << " bytes unexpectedly parsed";
  return AuthStoreErrc::kIoError;
}

class StoreBinaryTest : public ::testing::Test {
 protected:
  StoreBinaryTest()
      : params_(small_params()),
        records_(make_records(params_, 16, 7)),
        image_(encode_enrollment_store(params_, records_)) {}

  AuthStoreParams params_;
  std::vector<std::pair<DeviceId, EnrollmentRecord>> records_;
  std::string image_;
};

TEST_F(StoreBinaryTest, RoundTripIsBitIdentical) {
  const auto store = BinaryEnrollmentStore::parse(image_);
  EXPECT_EQ(store->device_count(), records_.size());
  EXPECT_EQ(store->response_bits(), params_.response_bits);
  EXPECT_EQ(store->helper_bits(), params_.helper_bits);
  EXPECT_EQ(store->params().fleet_seed, params_.fleet_seed);
  for (const auto& [id, record] : records_) {
    const auto view = store->find(id);
    ASSERT_TRUE(view.has_value()) << "device " << id;
    const BitVector response =
        BitVector::from_bytes(view->response, params_.response_bits);
    const BitVector helper = BitVector::from_bytes(view->helper, params_.helper_bits);
    EXPECT_EQ(response, record.response);
    EXPECT_EQ(helper, record.helper);
    EXPECT_TRUE(std::equal(record.tag.begin(), record.tag.end(), view->tag));
  }
  // Index is strictly increasing and find() misses unknown ids.
  for (std::size_t i = 1; i < store->device_count(); ++i) {
    EXPECT_LT(store->device_id_at(i - 1), store->device_id_at(i));
  }
  EXPECT_FALSE(store->find(DeviceId{0xdeadbeef}).has_value());
}

TEST_F(StoreBinaryTest, EncodingIsIndependentOfInputOrder) {
  auto reversed = records_;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ(encode_enrollment_store(params_, reversed), image_);
}

TEST_F(StoreBinaryTest, TruncationAtEveryByteIsATypedError) {
  for (std::size_t len = 0; len < image_.size(); ++len) {
    const std::string cut = image_.substr(0, len);
    try {
      (void)BinaryEnrollmentStore::parse(cut);
      FAIL() << "truncation to " << len << " bytes parsed";
    } catch (const AuthStoreError& error) {
      EXPECT_TRUE(error.code() == AuthStoreErrc::kTruncated ||
                  error.code() == AuthStoreErrc::kSizeMismatch)
          << "len " << len << ": " << to_string(error.code());
    }
  }
}

TEST_F(StoreBinaryTest, TrailingGarbageIsRejected) {
  EXPECT_EQ(parse_errc(image_ + std::string(1, '\0')), AuthStoreErrc::kSizeMismatch);
}

TEST_F(StoreBinaryTest, HeaderCorruptionsCarryTypedCodes) {
  std::string bad_magic = image_;
  bad_magic[0] = 'X';
  EXPECT_EQ(parse_errc(bad_magic), AuthStoreErrc::kBadMagic);

  std::string bad_version = image_;
  bad_version[4] = 9;
  EXPECT_EQ(parse_errc(bad_version), AuthStoreErrc::kUnsupportedVersion);

  std::string reserved = image_;
  reserved[6] = 1;
  EXPECT_EQ(parse_errc(reserved), AuthStoreErrc::kReservedNonzero);

  std::string bad_tag_bytes = image_;
  bad_tag_bytes[24] = 16;  // tag_bytes must be kRecordTagBytes
  EXPECT_EQ(parse_errc(bad_tag_bytes), AuthStoreErrc::kBadHeader);
}

TEST_F(StoreBinaryTest, UnsortedIndexIsRejected) {
  // Swap the first two 8-byte index entries in place.
  std::string swapped = image_;
  for (std::size_t i = 0; i < 8; ++i) std::swap(swapped[40 + i], swapped[48 + i]);
  EXPECT_EQ(parse_errc(swapped), AuthStoreErrc::kUnsortedIndex);
  // Duplicate id (copy entry 0 over entry 1) is also not strictly increasing.
  std::string dup = image_;
  for (std::size_t i = 0; i < 8; ++i) dup[48 + i] = dup[40 + i];
  EXPECT_EQ(parse_errc(dup), AuthStoreErrc::kUnsortedIndex);
}

TEST_F(StoreBinaryTest, EncodeRejectsDuplicateIdsAndLayoutViolations) {
  auto dup = records_;
  dup.push_back(dup.front());
  EXPECT_THROW((void)encode_enrollment_store(params_, dup), AuthStoreError);

  auto wrong = records_;
  wrong.front().second.response = BitVector(params_.response_bits + 1);
  EXPECT_THROW((void)encode_enrollment_store(params_, wrong), std::invalid_argument);
}

TEST_F(StoreBinaryTest, MergeEqualsSingleEncode) {
  // Split the records into 3 interleaved shards, write, merge, and compare
  // byte-for-byte against the single-shot encoding.
  const std::string dir = ::testing::TempDir();
  std::vector<std::string> shard_paths;
  for (int s = 0; s < 3; ++s) {
    std::vector<std::pair<DeviceId, EnrollmentRecord>> shard;
    for (std::size_t i = static_cast<std::size_t>(s); i < records_.size(); i += 3) {
      shard.push_back(records_[i]);
    }
    const std::string path = dir + "/arps-merge-shard-" + std::to_string(s) + ".arps";
    write_enrollment_store(path, params_, shard);
    shard_paths.push_back(path);
  }
  const std::string out = dir + "/arps-merged.arps";
  EXPECT_EQ(merge_enrollment_stores(shard_paths, out), records_.size());

  std::string merged;
  {
    std::FILE* f = std::fopen(out.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) merged.append(buf, n);
    std::fclose(f);
  }
  EXPECT_EQ(merged, image_);

  // A device present in two shards must be a typed merge failure.
  const std::string clash = dir + "/arps-clash.arps";
  write_enrollment_store(clash, params_, {records_.front()});
  try {
    (void)merge_enrollment_stores({shard_paths[0], clash}, dir + "/arps-bad.arps");
    FAIL() << "duplicate device across shards merged";
  } catch (const AuthStoreError& error) {
    EXPECT_EQ(error.code(), AuthStoreErrc::kDuplicateDevice);
  }

  // Shards with different header parameters must not merge.
  AuthStoreParams other = params_;
  other.fleet_seed = 43;
  const std::string alien = dir + "/arps-alien.arps";
  write_enrollment_store(alien, other, {});
  try {
    (void)merge_enrollment_stores({shard_paths[0], alien}, dir + "/arps-bad2.arps");
    FAIL() << "mismatched shard parameters merged";
  } catch (const AuthStoreError& error) {
    EXPECT_EQ(error.code(), AuthStoreErrc::kBadHeader);
  }
}

TEST_F(StoreBinaryTest, OpenMapsTheSameImage) {
  const std::string path = ::testing::TempDir() + "/arps-open.arps";
  write_enrollment_store(path, params_, records_);
  const auto store = BinaryEnrollmentStore::open(path);
  EXPECT_EQ(store->device_count(), records_.size());
  EXPECT_TRUE(store->find(records_.front().first).has_value());
  EXPECT_FALSE(store->is_mutable());
  EXPECT_THROW(store->put(DeviceId{1}, EnrollmentRecord{}), std::invalid_argument);
  EXPECT_THROW((void)BinaryEnrollmentStore::open(path + ".missing"), AuthStoreError);
}

TEST(StoreBinaryEmptyTest, EmptyStoreRoundTrips) {
  const std::string image = encode_enrollment_store(small_params(), {});
  const auto store = BinaryEnrollmentStore::parse(image);
  EXPECT_EQ(store->device_count(), 0U);
  EXPECT_FALSE(store->find(DeviceId{1}).has_value());
}

}  // namespace
}  // namespace aropuf
