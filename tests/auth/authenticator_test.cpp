#include "auth/authenticator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "puf/ro_puf.hpp"

namespace aropuf {
namespace {

TEST(AuthPolicyTest, ValidationBounds) {
  AuthPolicy p;
  p.accept_threshold = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.accept_threshold = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.accept_threshold = 0.2;
  EXPECT_NO_THROW(p.validate());
}

TEST(AuthPolicyTest, FalseAcceptMatchesBinomialTail) {
  AuthPolicy p;
  p.accept_threshold = 0.25;
  // 128 bits: P[Bin(128, 0.5) <= 32].
  const double far = p.false_accept_probability(128);
  EXPECT_GT(far, 0.0);
  EXPECT_LT(far, 1e-7);
  // Looser threshold accepts more impostors.
  AuthPolicy loose;
  loose.accept_threshold = 0.45;
  EXPECT_GT(loose.false_accept_probability(128), far);
}

TEST(AuthPolicyTest, ForFalseAcceptRatePicksLargestSafeThreshold) {
  const auto policy = AuthPolicy::for_false_accept_rate(128, 1e-6);
  EXPECT_LE(policy.false_accept_probability(128), 1e-6);
  // One more bit of slack would blow the budget.
  AuthPolicy next;
  next.accept_threshold = policy.accept_threshold + 1.0 / 128.0;
  EXPECT_GT(next.false_accept_probability(128), 1e-6);
}

TEST(AuthPolicyTest, LongerResponsesAllowHigherThresholds) {
  const auto short_resp = AuthPolicy::for_false_accept_rate(64, 1e-6);
  const auto long_resp = AuthPolicy::for_false_accept_rate(512, 1e-6);
  EXPECT_GT(long_resp.accept_threshold, short_resp.accept_threshold);
}

class AuthenticatorTest : public ::testing::Test {
 protected:
  AuthenticatorTest() : auth_(AuthPolicy::for_false_accept_rate(128, 1e-6)) {}

  RoPuf make_chip(std::uint64_t index) const {
    return RoPuf(TechnologyParams::cmos90(), PufConfig::aro(), RngFabric(5).child("chip", index));
  }

  Authenticator auth_;
};

TEST_F(AuthenticatorTest, UnknownDeviceIsNullopt) {
  EXPECT_FALSE(auth_.verify("ghost", BitVector(128)).has_value());
  EXPECT_FALSE(auth_.knows("ghost"));
}

TEST_F(AuthenticatorTest, EnrolledDeviceAuthenticates) {
  const RoPuf chip = make_chip(0);
  const auto op = chip.nominal_op();
  auth_.enroll("device-0", chip.evaluate(op, 0));
  EXPECT_TRUE(auth_.knows("device-0"));
  const auto result = auth_.verify("device-0", chip.evaluate(op, 1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted);
  EXPECT_GT(result->margin, 0.0);
}

TEST_F(AuthenticatorTest, ImpostorChipIsRejected) {
  const RoPuf genuine = make_chip(1);
  const RoPuf impostor = make_chip(2);
  const auto op = genuine.nominal_op();
  auth_.enroll("device-1", genuine.evaluate(op, 0));
  const auto result = auth_.verify("device-1", impostor.evaluate(op, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->accepted);
  EXPECT_GT(result->fractional_distance, 0.3);
}

TEST_F(AuthenticatorTest, ReEnrollReplacesResponse) {
  const RoPuf chip = make_chip(3);
  const auto op = chip.nominal_op();
  auth_.enroll("device-3", chip.evaluate(op, 0));
  auth_.enroll("device-3", chip.evaluate(op, 5));
  EXPECT_EQ(auth_.enrolled_count(), 1U);
  EXPECT_TRUE(auth_.verify("device-3", chip.evaluate(op, 6))->accepted);
}

TEST_F(AuthenticatorTest, AgedConventionalChipEventuallyFailsFixedThreshold) {
  Authenticator auth(AuthPolicy::for_false_accept_rate(128, 1e-6));
  RoPuf chip(TechnologyParams::cmos90(), PufConfig::conventional(),
             RngFabric(5).child("chip", 7));
  const auto op = chip.nominal_op();
  auth.enroll("conv", chip.evaluate(op, 0));
  chip.age_years(10.0);
  const auto result = auth.verify("conv", chip.evaluate(op, 1));
  ASSERT_TRUE(result.has_value());
  // ~33% flips vs a ~0.3 threshold: the conventional chip is locked out.
  EXPECT_FALSE(result->accepted);
}

TEST_F(AuthenticatorTest, AgedAroChipKeepsAuthenticating) {
  RoPuf chip(TechnologyParams::cmos90(), PufConfig::aro(), RngFabric(5).child("chip", 8));
  const auto op = chip.nominal_op();
  auth_.enroll("aro", chip.evaluate(op, 0));
  chip.age_years(10.0);
  const auto result = auth_.verify("aro", chip.evaluate(op, 1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted);
}

TEST_F(AuthenticatorTest, RefreshPolicyFlagsThinMargins) {
  AuthResult comfy;
  comfy.accepted = true;
  comfy.margin = 0.15;
  AuthResult thin;
  thin.accepted = true;
  thin.margin = 0.02;
  AuthResult rejected;
  rejected.accepted = false;
  rejected.margin = -0.1;
  EXPECT_FALSE(auth_.needs_refresh(comfy, 0.05));
  EXPECT_TRUE(auth_.needs_refresh(thin, 0.05));
  EXPECT_FALSE(auth_.needs_refresh(rejected, 0.05));
}

TEST_F(AuthenticatorTest, RejectsDegenerateInputs) {
  EXPECT_THROW(auth_.enroll("", BitVector(8)), std::invalid_argument);
  EXPECT_THROW(auth_.enroll("x", BitVector()), std::invalid_argument);
  auth_.enroll("x", BitVector(16));
  EXPECT_THROW((void)auth_.verify("x", BitVector(8)), std::invalid_argument);
  EXPECT_THROW((void)auth_.needs_refresh(AuthResult{}, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace aropuf
