#include "auth/authenticator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "auth/store_binary.hpp"
#include "ecc/code_search.hpp"
#include "keygen/fuzzy_extractor.hpp"
#include "puf/ro_puf.hpp"

namespace aropuf {
namespace {

TEST(AuthPolicyTest, ValidationBounds) {
  AuthPolicy p;
  p.accept_threshold = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.accept_threshold = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.accept_threshold = 0.2;
  EXPECT_NO_THROW(p.validate());
}

TEST(AuthPolicyTest, FalseAcceptMatchesBinomialTail) {
  AuthPolicy p;
  p.accept_threshold = 0.25;
  // 128 bits: P[Bin(128, 0.5) <= 32].
  const double far = p.false_accept_probability(128);
  EXPECT_GT(far, 0.0);
  EXPECT_LT(far, 1e-7);
  // Looser threshold accepts more impostors.
  AuthPolicy loose;
  loose.accept_threshold = 0.45;
  EXPECT_GT(loose.false_accept_probability(128), far);
}

TEST(AuthPolicyTest, ForFalseAcceptRatePicksLargestSafeThreshold) {
  const auto policy = AuthPolicy::for_false_accept_rate(128, 1e-6);
  EXPECT_LE(policy.false_accept_probability(128), 1e-6);
  // One more bit of slack would blow the budget.
  AuthPolicy next;
  next.accept_threshold = policy.accept_threshold + 1.0 / 128.0;
  EXPECT_GT(next.false_accept_probability(128), 1e-6);
}

TEST(AuthPolicyTest, LongerResponsesAllowHigherThresholds) {
  const auto short_resp = AuthPolicy::for_false_accept_rate(64, 1e-6);
  const auto long_resp = AuthPolicy::for_false_accept_rate(512, 1e-6);
  EXPECT_GT(long_resp.accept_threshold, short_resp.accept_threshold);
}

// Regression: 8-bit responses against a 2% FAR budget used to return a
// threshold accepting HD <= 1, whose true FAR is (1 + 8)/256 ~ 3.5% — a
// silently degenerate policy.  The only compliant threshold is exact match
// (FAR 2^-8 ~ 0.39%).
TEST(AuthPolicyTest, ShortResponsesNeverGetDegenerateThresholds) {
  const auto policy = AuthPolicy::for_false_accept_rate(8, 0.02);
  EXPECT_LE(policy.false_accept_probability(8), 0.02);
  EXPECT_LT(policy.accept_threshold, 1.0 / 8.0);  // accepts exact match only
}

// Regression: when even exact match cannot meet the target FAR (2^-n >
// target), the old code looped to a nonsense threshold; now it throws.
TEST(AuthPolicyTest, UnreachableFarTargetThrows) {
  EXPECT_THROW(AuthPolicy::for_false_accept_rate(4, 1e-9), std::invalid_argument);
  EXPECT_THROW(AuthPolicy::for_false_accept_rate(16, 1e-12), std::invalid_argument);
}

TEST(AuthPolicyTest, ForFalseAcceptRateRejectsDegenerateInputs) {
  EXPECT_THROW(AuthPolicy::for_false_accept_rate(1, 0.01), std::invalid_argument);
  EXPECT_THROW(AuthPolicy::for_false_accept_rate(128, 0.0), std::invalid_argument);
  EXPECT_THROW(AuthPolicy::for_false_accept_rate(128, 0.5), std::invalid_argument);
  EXPECT_THROW(AuthPolicy::for_false_accept_rate(128, 1.0), std::invalid_argument);
}

TEST(AuthPolicyTest, SmallButAchievableTargetsStillResolve) {
  // 16 bits, 1% budget: HD <= 2 has FAR (1+16+120)/65536 ~ 0.21%, HD <= 3
  // would be ~1.06% — the picked threshold must accept exactly HD <= 2.
  const auto policy = AuthPolicy::for_false_accept_rate(16, 0.01);
  EXPECT_LE(policy.false_accept_probability(16), 0.01);
  EXPECT_GT(policy.accept_threshold * 16.0, 2.0);
  EXPECT_LT(policy.accept_threshold * 16.0, 3.0);
}

class AuthenticatorTest : public ::testing::Test {
 protected:
  AuthenticatorTest() : auth_(AuthPolicy::for_false_accept_rate(128, 1e-6)) {}

  RoPuf make_chip(std::uint64_t index) const {
    return RoPuf(TechnologyParams::cmos90(), PufConfig::aro(), RngFabric(5).child("chip", index));
  }

  Authenticator auth_;
};

TEST_F(AuthenticatorTest, UnknownDeviceIsNullopt) {
  auth_.enroll(DeviceId{1}, BitVector(128));
  EXPECT_FALSE(auth_.verify(DeviceId{999}, BitVector(128)).has_value());
  EXPECT_FALSE(auth_.knows(DeviceId{999}));
}

TEST_F(AuthenticatorTest, EnrolledDeviceAuthenticates) {
  const RoPuf chip = make_chip(0);
  const auto op = chip.nominal_op();
  auth_.enroll(DeviceId{10}, chip.evaluate(op, 0));
  EXPECT_TRUE(auth_.knows(DeviceId{10}));
  const auto result = auth_.verify(DeviceId{10}, chip.evaluate(op, 1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted);
  EXPECT_GT(result->margin, 0.0);
}

TEST_F(AuthenticatorTest, ImpostorChipIsRejected) {
  const RoPuf genuine = make_chip(1);
  const RoPuf impostor = make_chip(2);
  const auto op = genuine.nominal_op();
  auth_.enroll(DeviceId{11}, genuine.evaluate(op, 0));
  const auto result = auth_.verify(DeviceId{11}, impostor.evaluate(op, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->accepted);
  EXPECT_GT(result->fractional_distance, 0.3);
}

TEST_F(AuthenticatorTest, ReEnrollReplacesResponse) {
  const RoPuf chip = make_chip(3);
  const auto op = chip.nominal_op();
  auth_.enroll(DeviceId{12}, chip.evaluate(op, 0));
  auth_.enroll(DeviceId{12}, chip.evaluate(op, 5));
  EXPECT_EQ(auth_.enrolled_count(), 1U);
  EXPECT_TRUE(auth_.verify(DeviceId{12}, chip.evaluate(op, 6))->accepted);
}

TEST_F(AuthenticatorTest, AgedConventionalChipEventuallyFailsFixedThreshold) {
  Authenticator auth(AuthPolicy::for_false_accept_rate(128, 1e-6));
  RoPuf chip(TechnologyParams::cmos90(), PufConfig::conventional(),
             RngFabric(5).child("chip", 7));
  const auto op = chip.nominal_op();
  auth.enroll(DeviceId{13}, chip.evaluate(op, 0));
  chip.age_years(10.0);
  const auto result = auth.verify(DeviceId{13}, chip.evaluate(op, 1));
  ASSERT_TRUE(result.has_value());
  // ~33% flips vs a ~0.3 threshold: the conventional chip is locked out.
  EXPECT_FALSE(result->accepted);
}

TEST_F(AuthenticatorTest, AgedAroChipKeepsAuthenticating) {
  RoPuf chip(TechnologyParams::cmos90(), PufConfig::aro(), RngFabric(5).child("chip", 8));
  const auto op = chip.nominal_op();
  auth_.enroll(DeviceId{14}, chip.evaluate(op, 0));
  chip.age_years(10.0);
  const auto result = auth_.verify(DeviceId{14}, chip.evaluate(op, 1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->accepted);
}

TEST_F(AuthenticatorTest, RefreshPolicyFlagsThinMargins) {
  AuthResult comfy;
  comfy.accepted = true;
  comfy.margin = 0.15;
  AuthResult thin;
  thin.accepted = true;
  thin.margin = 0.02;
  AuthResult rejected;
  rejected.accepted = false;
  rejected.margin = -0.1;
  EXPECT_FALSE(auth_.needs_refresh(comfy, 0.05));
  EXPECT_TRUE(auth_.needs_refresh(thin, 0.05));
  EXPECT_FALSE(auth_.needs_refresh(rejected, 0.05));
}

TEST_F(AuthenticatorTest, RejectsDegenerateInputs) {
  EXPECT_THROW(auth_.enroll(DeviceId{20}, BitVector()), std::invalid_argument);
  auth_.enroll(DeviceId{20}, BitVector(16));
  EXPECT_THROW((void)auth_.verify(DeviceId{20}, BitVector(8)), std::invalid_argument);
  EXPECT_THROW((void)auth_.needs_refresh(AuthResult{}, -0.1), std::invalid_argument);
}

TEST_F(AuthenticatorTest, CachedAndUncachedDecisionsAgree) {
  const RoPuf chip = make_chip(4);
  const auto op = chip.nominal_op();
  auth_.enroll(DeviceId{30}, chip.evaluate(op, 0));
  const auto cold = auth_.verify(DeviceId{30}, chip.evaluate(op, 1));
  auth_.set_cache(8);
  const auto miss = auth_.verify(DeviceId{30}, chip.evaluate(op, 1));
  const auto hit = auth_.verify(DeviceId{30}, chip.evaluate(op, 1));
  ASSERT_TRUE(cold && miss && hit);
  EXPECT_EQ(cold->accepted, miss->accepted);
  EXPECT_DOUBLE_EQ(cold->fractional_distance, miss->fractional_distance);
  EXPECT_DOUBLE_EQ(miss->fractional_distance, hit->fractional_distance);
  ASSERT_NE(auth_.cache(), nullptr);
  EXPECT_EQ(auth_.cache()->hits(), 1U);
  EXPECT_EQ(auth_.cache()->misses(), 1U);
  auth_.set_cache(0);
  EXPECT_EQ(auth_.cache(), nullptr);
}

TEST_F(AuthenticatorTest, TamperedRecordFailsTheBindingTag) {
  Authenticator::VerifierKey key{};
  key[0] = 0x5a;
  auto store = std::make_shared<MemoryEnrollmentStore>();
  Authenticator auth(AuthPolicy::for_false_accept_rate(128, 1e-6), store, key);
  const RoPuf chip = make_chip(5);
  const BitVector golden = chip.evaluate(chip.nominal_op(), 0);
  auth.enroll(DeviceId{40}, golden);
  EXPECT_TRUE(auth.verify(DeviceId{40}, golden)->accepted);

  // Re-insert the same response bytes with a zeroed tag: the verifier must
  // refuse to match against unauthenticated store bytes.
  EnrollmentRecord tampered;
  tampered.response = golden;
  store->put(DeviceId{40}, tampered);
  EXPECT_THROW((void)auth.verify(DeviceId{40}, golden), AuthStoreError);
}

TEST_F(AuthenticatorTest, KeyModeEnrollAndConfirm) {
  const auto scheme = find_min_area_scheme(TechnologyParams::cmos90(), 0.05,
                                           CodeSearchConstraints{});
  ASSERT_TRUE(scheme.has_value());
  const FuzzyExtractor extractor(scheme->scheme);
  RngFabric fabric(77);
  Xoshiro256 rng = fabric.stream("enroll", 0);
  BitVector golden(extractor.response_bits());
  Xoshiro256 bits = fabric.stream("golden", 0);
  for (std::size_t i = 0; i < golden.size(); ++i) golden.set(i, bits.bernoulli(0.5));

  Authenticator auth(AuthPolicy::for_false_accept_rate(128, 1e-6));
  auth.enroll_key(DeviceId{50}, extractor, golden, rng);

  // Clean re-read reconstructs the key and the confirmation tag matches.
  const auto ok = auth.verify_key(DeviceId{50}, extractor, golden);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->decoded);
  EXPECT_TRUE(ok->accepted);

  // A different device's response fails (either decode or confirmation).
  BitVector other(extractor.response_bits());
  Xoshiro256 noise = fabric.stream("golden", 1);
  for (std::size_t i = 0; i < other.size(); ++i) other.set(i, noise.bernoulli(0.5));
  const auto bad = auth.verify_key(DeviceId{50}, extractor, other);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->accepted);

  EXPECT_FALSE(auth.verify_key(DeviceId{51}, extractor, golden).has_value());
}

// The one-release string shim must behave exactly like the DeviceId API
// under the documented FNV-1a mapping.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST_F(AuthenticatorTest, DeprecatedStringShimForwardsThroughNameHash) {
  const RoPuf chip = make_chip(6);
  const auto op = chip.nominal_op();
  auth_.enroll("device-6", chip.evaluate(op, 0));
  const DeviceId id = Authenticator::device_id_from_name("device-6");
  EXPECT_TRUE(auth_.knows("device-6"));
  EXPECT_TRUE(auth_.knows(id));
  const auto via_name = auth_.verify("device-6", chip.evaluate(op, 1));
  const auto via_id = auth_.verify(id, chip.evaluate(op, 1));
  ASSERT_TRUE(via_name && via_id);
  EXPECT_DOUBLE_EQ(via_name->fractional_distance, via_id->fractional_distance);
  EXPECT_THROW(auth_.enroll("", BitVector(8)), std::invalid_argument);
}

TEST_F(AuthenticatorTest, NameHashIsTheDocumentedFnv1a) {
  // FNV-1a 64 of "a": (basis ^ 'a') * prime.
  const DeviceId expected = (14695981039346656037ULL ^ 0x61ULL) * 1099511628211ULL;
  EXPECT_EQ(Authenticator::device_id_from_name("a"), expected);
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace aropuf
