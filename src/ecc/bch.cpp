#include "ecc/bch.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace aropuf {

namespace {

/// Cyclotomic coset of `i` modulo n = 2^m − 1 (the exponents of the
/// conjugates alpha^(i·2^j)).
std::set<std::uint32_t> cyclotomic_coset(std::uint32_t i, std::uint32_t n) {
  std::set<std::uint32_t> coset;
  std::uint32_t x = i % n;
  while (coset.insert(x).second) {
    x = static_cast<std::uint32_t>((static_cast<std::uint64_t>(x) * 2) % n);
  }
  return coset;
}

/// Exponents of all conjugate classes covering alpha^1 .. alpha^2t.
std::set<std::uint32_t> generator_root_exponents(int t, std::uint32_t n) {
  std::set<std::uint32_t> roots;
  for (std::uint32_t i = 1; i <= 2U * static_cast<std::uint32_t>(t); ++i) {
    const auto coset = cyclotomic_coset(i, n);
    roots.insert(coset.begin(), coset.end());
  }
  return roots;
}

}  // namespace

std::size_t BchCode::dimension(int m, int t) {
  ARO_REQUIRE(m >= 3 && m <= 14, "BCH supports m in [3, 14]");
  ARO_REQUIRE(t >= 1, "BCH needs t >= 1");
  const std::uint32_t n = (1U << m) - 1;
  const auto roots = generator_root_exponents(t, n);
  if (roots.size() >= n) return 0;
  return n - roots.size();
}

BchCode::BchCode(int m, int t) : field_(m), t_(t), n_((1U << m) - 1) {
  ARO_REQUIRE(t >= 1, "BCH needs t >= 1");
  const auto n32 = static_cast<std::uint32_t>(n_);
  const auto roots = generator_root_exponents(t, n32);
  ARO_REQUIRE(roots.size() < n_, "design distance too large: empty code");
  k_ = n_ - roots.size();

  // g(x) = prod over root exponents e of (x - alpha^e), computed over
  // GF(2^m); the product of full conjugate classes has binary coefficients.
  std::vector<std::uint32_t> g{1};
  g.reserve(roots.size() + 1);
  for (const std::uint32_t e : roots) {
    const std::uint32_t root = field_.alpha_pow(e);
    std::vector<std::uint32_t> next(g.size() + 1, 0);
    for (std::size_t i = 0; i < g.size(); ++i) {
      next[i + 1] ^= g[i];                  // x * g_i
      next[i] ^= field_.mul(g[i], root);    // root * g_i (char-2: add = xor)
    }
    g = std::move(next);
  }
  generator_ = BitVector(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    ARO_ASSERT(g[i] <= 1, "generator polynomial must be binary");
    generator_.set(i, g[i] == 1);
  }
  ARO_ASSERT(generator_.get(g.size() - 1), "generator must be monic");
}

BitVector BchCode::encode(const BitVector& message) const {
  ARO_REQUIRE(message.size() == k_, "message length must equal k");
  const std::size_t parity_len = n_ - k_;
  ARO_ASSERT(parity_len >= 1, "BCH with t >= 1 always has parity bits");
  // remainder of x^(n-k) * m(x) modulo g(x): LFSR-style long division over
  // GF(2), consuming message bits from the highest power down.
  std::vector<std::uint8_t> rem(parity_len, 0);
  for (std::size_t i = message.size(); i-- > 0;) {
    const bool feedback = (message.get(i) ? 1 : 0) ^ rem[parity_len - 1];
    for (std::size_t j = parity_len; j-- > 1;) rem[j] = rem[j - 1];
    rem[0] = 0;
    if (feedback) {
      for (std::size_t j = 0; j < parity_len; ++j) {
        if (generator_.get(j)) rem[j] ^= 1;
      }
    }
  }
  BitVector codeword(n_);
  for (std::size_t j = 0; j < parity_len; ++j) codeword.set(j, rem[j] != 0);
  for (std::size_t i = 0; i < k_; ++i) codeword.set(parity_len + i, message.get(i));
  ARO_ASSERT(is_codeword(codeword), "systematic encoding produced a non-codeword");
  return codeword;
}

std::vector<std::uint32_t> BchCode::syndromes(const BitVector& received) const {
  std::vector<std::uint32_t> s(static_cast<std::size_t>(2 * t_), 0);
  for (std::size_t i = 0; i < n_; ++i) {
    if (!received.get(i)) continue;
    for (int j = 1; j <= 2 * t_; ++j) {
      s[static_cast<std::size_t>(j - 1)] ^=
          field_.alpha_pow(static_cast<std::int64_t>(i) * j);
    }
  }
  return s;
}

bool BchCode::is_codeword(const BitVector& word) const {
  ARO_REQUIRE(word.size() == n_, "word length must equal n");
  const auto s = syndromes(word);
  return std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; });
}

std::optional<BitVector> BchCode::decode(const BitVector& received) const {
  ARO_REQUIRE(received.size() == n_, "received length must equal n");
  const auto s = syndromes(received);
  if (std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; })) {
    return received;
  }

  // Berlekamp–Massey: find the minimal error-locator sigma(x).
  std::vector<std::uint32_t> sigma{1};   // C(x)
  std::vector<std::uint32_t> prev{1};    // B(x)
  std::size_t l = 0;
  std::size_t shift = 1;                 // m in the classic formulation
  std::uint32_t prev_disc = 1;           // b

  for (std::size_t step = 0; step < static_cast<std::size_t>(2 * t_); ++step) {
    std::uint32_t disc = s[step];
    for (std::size_t i = 1; i <= l && i < sigma.size(); ++i) {
      if (step >= i) disc ^= field_.mul(sigma[i], s[step - i]);
    }
    if (disc == 0) {
      ++shift;
      continue;
    }
    // C(x) -= (d / b) x^shift B(x)
    std::vector<std::uint32_t> next = sigma;
    const std::uint32_t factor = field_.div(disc, prev_disc);
    if (next.size() < prev.size() + shift) next.resize(prev.size() + shift, 0);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      next[i + shift] ^= field_.mul(factor, prev[i]);
    }
    if (2 * l <= step) {
      prev = sigma;
      prev_disc = disc;
      l = step + 1 - l;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }

  if (l > static_cast<std::size_t>(t_)) return std::nullopt;

  // Chien search: error at position p iff sigma(alpha^(-p)) == 0.
  BitVector corrected = received;
  std::size_t found = 0;
  for (std::size_t p = 0; p < n_; ++p) {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < sigma.size(); ++i) {
      if (sigma[i] == 0) continue;
      const std::int64_t e = static_cast<std::int64_t>(field_.log(sigma[i])) -
                             static_cast<std::int64_t>(i * p);
      value ^= field_.alpha_pow(e);
    }
    if (value == 0) {
      corrected.flip(p);
      ++found;
    }
  }
  if (found != l) return std::nullopt;
  if (!is_codeword(corrected)) return std::nullopt;
  return corrected;
}

BitVector BchCode::extract_message(const BitVector& codeword) const {
  ARO_REQUIRE(codeword.size() == n_, "codeword length must equal n");
  return codeword.slice(n_ - k_, k_);
}

}  // namespace aropuf
