// GF(2^m) arithmetic via log/antilog tables.
//
// The field underpins BCH construction and decoding.  Elements are
// represented as unsigned integers in [0, 2^m): the polynomial basis, with
// bit i the coefficient of x^i.  Zero has no discrete log; the API checks.
#pragma once

#include <cstdint>
#include <vector>

namespace aropuf {

class GF2m {
 public:
  /// Field of size 2^m with the conventional primitive polynomial for m
  /// (supported m: 3..14).
  explicit GF2m(int m);

  /// Field with an explicit primitive polynomial (degree m, bit m set).
  GF2m(int m, std::uint32_t primitive_poly);

  [[nodiscard]] int m() const noexcept { return m_; }
  /// Field size 2^m.
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  /// Multiplicative-group order 2^m − 1.
  [[nodiscard]] std::uint32_t order() const noexcept { return size_ - 1; }
  [[nodiscard]] std::uint32_t primitive_poly() const noexcept { return poly_; }

  /// Addition = subtraction = XOR.
  [[nodiscard]] static std::uint32_t add(std::uint32_t a, std::uint32_t b) noexcept {
    return a ^ b;
  }

  [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const;
  [[nodiscard]] std::uint32_t div(std::uint32_t a, std::uint32_t b) const;

  /// alpha^e for any integer exponent (reduced mod 2^m − 1).
  [[nodiscard]] std::uint32_t alpha_pow(std::int64_t e) const;

  /// Discrete log base alpha; requires a != 0.
  [[nodiscard]] std::uint32_t log(std::uint32_t a) const;

  /// a^e for field element a (e >= 0).
  [[nodiscard]] std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  /// The conventional primitive polynomial for m in [3, 14].
  [[nodiscard]] static std::uint32_t default_primitive_poly(int m);

 private:
  void build_tables();

  int m_;
  std::uint32_t size_;
  std::uint32_t poly_;
  std::vector<std::uint32_t> exp_;  // exp_[i] = alpha^i, doubled for cheap mul
  std::vector<std::uint32_t> log_;  // log_[a] for a in [1, 2^m)
};

}  // namespace aropuf
