// Repetition code with majority decoding — the inner code of the
// fuzzy-extractor concatenation.
//
// An odd repetition factor r turns a raw bit-error rate p into a majority
// error rate P[Bin(r, p) > r/2]; cheap in logic (one majority voter per
// bit), expensive in raw PUF bits.  The code search trades it off against
// the outer BCH strength.
#pragma once

#include <cstdint>

#include "common/bitvector.hpp"

namespace aropuf {

class RepetitionCode {
 public:
  /// `r` must be odd so majority voting is unambiguous.
  explicit RepetitionCode(int r);

  [[nodiscard]] int r() const noexcept { return r_; }

  /// Each input bit appears r times consecutively.
  [[nodiscard]] BitVector encode(const BitVector& message) const;

  /// Majority-decodes a length-multiple-of-r word.
  [[nodiscard]] BitVector decode(const BitVector& received) const;

  /// Post-decoding bit error probability for raw error rate `p`.
  [[nodiscard]] double decoded_error_rate(double p) const;

 private:
  int r_;
};

}  // namespace aropuf
