#include "ecc/area_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace aropuf {

namespace {
// Structural gate-equivalent costs (GE per element).
constexpr double kGePerFlipFlop = 6.0;
constexpr double kGePerXor = 2.0;
constexpr double kGePerAnd = 1.25;
constexpr double kControlOverheadGe = 250.0;  // FSM, handshaking, addressing
}  // namespace

AreaModel::AreaModel(const TechnologyParams& tech) : tech_(&tech) { tech.validate(); }

double AreaModel::ge_to_um2(double ge) const { return ge * tech_->area_ge_um2; }

double AreaModel::bch_decoder_ge(int m, int t) const {
  ARO_REQUIRE(m >= 3 && t >= 1, "invalid BCH parameters");
  const double md = m;
  const double td = t;
  // Syndrome generator: 2t cells, each an m-bit register plus a constant
  // GF(2^m) multiplier (~m^2/2 XOR gates).
  const double syndrome =
      2.0 * td * (md * kGePerFlipFlop + 0.5 * md * md * kGePerXor);
  // Inversionless Berlekamp-Massey: ~(3t + 2) m-bit registers, two full
  // GF multipliers (~2 m^2 gates each), and a comparator tree.
  const double bm = (3.0 * td + 2.0) * md * kGePerFlipFlop +
                    2.0 * (2.0 * md * md) * kGePerAnd + 4.0 * md;
  // Chien search: (t + 1) m-bit registers with constant multipliers and a
  // zero-detect OR tree.
  const double chien =
      (td + 1.0) * (md * kGePerFlipFlop + 0.5 * md * md * kGePerXor) + 2.0 * md;
  return syndrome + bm + chien + kControlOverheadGe;
}

double AreaModel::bch_encoder_ge(int m, int t) const {
  ARO_REQUIRE(m >= 3 && t >= 1, "invalid BCH parameters");
  // LFSR of deg(g) <= m*t bits with feedback taps.
  const double deg = static_cast<double>(m) * static_cast<double>(t);
  return deg * (kGePerFlipFlop + kGePerXor) + 0.5 * kControlOverheadGe;
}

double AreaModel::majority_voter_ge(int r) const {
  ARO_REQUIRE(r >= 1 && r % 2 == 1, "repetition factor must be odd");
  if (r == 1) return 0.0;
  // Serial vote: ceil(log2(r+1))-bit up counter + threshold compare.
  const double bits = std::ceil(std::log2(static_cast<double>(r) + 1.0));
  return bits * (kGePerFlipFlop + 2.0 * kGePerAnd) + 3.0 * bits;
}

AreaBreakdown AreaModel::estimate(const ConcatenatedScheme& scheme) const {
  scheme.validate();
  AreaBreakdown a;
  const std::size_t raw = scheme.raw_bits();
  a.puf_array_ge = static_cast<double>(ros_for_raw_bits(raw)) * tech_->area_ro_cell_ge;
  // Two shared counters (the pair is measured simultaneously), one
  // comparator, plus sequencing control.
  a.counters_ge = 2.0 * tech_->counter_bits * tech_->area_counter_bit_ge +
                  tech_->counter_bits * 3.0 + kControlOverheadGe;
  a.voter_ge = majority_voter_ge(scheme.repetition);
  a.bch_decoder_ge = bch_decoder_ge(scheme.bch_m, scheme.bch_t);
  a.bch_encoder_ge = bch_encoder_ge(scheme.bch_m, scheme.bch_t);
  return a;
}

}  // namespace aropuf
