// Binary Golay code (23, 12, 7) — the perfect 3-error-correcting code.
//
// An alternative outer code for small key blocks: being perfect, its 2^11
// syndromes map one-to-one onto the error patterns of weight <= 3, so
// decoding is a table lookup (no Berlekamp–Massey machinery) — attractive
// for the tiny-decoder corner of the E7 area trade-off.  Ten (23,12) blocks
// carry a 120-bit key; twelve carry 128 bits with headroom.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"

namespace aropuf {

class GolayCode {
 public:
  static constexpr std::size_t kN = 23;
  static constexpr std::size_t kK = 12;
  static constexpr int kT = 3;

  GolayCode();

  [[nodiscard]] static constexpr std::size_t n() { return kN; }
  [[nodiscard]] static constexpr std::size_t k() { return kK; }
  [[nodiscard]] static constexpr int t() { return kT; }

  /// Systematic encode: [parity(11) | message(12)].
  [[nodiscard]] BitVector encode(const BitVector& message) const;

  /// Decodes a 23-bit word.  A perfect code always lands on *some* codeword
  /// within distance 3, so this never returns nullopt for well-formed input
  /// — words with > 3 errors mis-decode silently (use the extended parity
  /// bit or an outer check when detection matters).
  [[nodiscard]] BitVector decode(const BitVector& received) const;

  /// Message bits of a codeword.
  [[nodiscard]] BitVector extract_message(const BitVector& codeword) const;

  [[nodiscard]] bool is_codeword(const BitVector& word) const;

  // --- Extended (24, 12, 8) variant ------------------------------------------
  /// Appends an overall parity bit: corrects 3 errors AND detects 4.

  static constexpr std::size_t kExtendedN = 24;

  /// [codeword(23) | overall parity] — every extended word has even weight.
  [[nodiscard]] BitVector encode_extended(const BitVector& message) const;

  /// Decodes a 24-bit extended word; std::nullopt when a weight-4 error
  /// pattern is detected (3-correctable patterns always succeed).
  [[nodiscard]] std::optional<BitVector> decode_extended(const BitVector& received) const;

 private:
  /// 11-bit syndrome of a 23-bit word (remainder mod the generator).
  [[nodiscard]] std::uint32_t syndrome(const BitVector& word) const;

  /// syndrome -> 23-bit error pattern (as a mask), for all weight <= 3.
  std::vector<std::uint32_t> error_table_;
};

}  // namespace aropuf
