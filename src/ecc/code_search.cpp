#include "ecc/code_search.hpp"

#include "common/check.hpp"
#include "sim/parallel.hpp"

namespace aropuf {

std::optional<CodeSearchResult> find_min_area_scheme(const TechnologyParams& tech,
                                                     double raw_ber,
                                                     const CodeSearchConstraints& constraints) {
  ARO_REQUIRE(raw_ber >= 0.0 && raw_ber < 0.5, "raw BER must be in [0, 0.5)");
  ARO_REQUIRE(constraints.key_bits >= 1, "key must have at least one bit");
  ARO_REQUIRE(constraints.target_key_failure > 0.0 && constraints.target_key_failure < 1.0,
              "target failure must be in (0, 1)");
  const AreaModel area_model(tech);

  // Each (repetition, m) cell of the grid is independent: walk its t range to
  // the first scheme meeting the failure target (raising t further only adds
  // area).  Cells evaluate in parallel; the min-area reduction then runs in
  // grid order, so ties resolve to the same scheme a serial search returns.
  const std::size_t m_count = constraints.bch_m_options.size();
  const auto candidates = parallel_map_chips(
      constraints.repetition_options.size() * m_count,
      [&](std::size_t cell) -> std::optional<CodeSearchResult> {
        const int r = constraints.repetition_options[cell / m_count];
        const int m = constraints.bch_m_options[cell % m_count];
        ARO_REQUIRE(r >= 1 && r % 2 == 1, "repetition options must be odd");
        for (int t = 1; t <= constraints.max_bch_t; ++t) {
          ConcatenatedScheme scheme;
          scheme.repetition = r;
          scheme.bch_m = m;
          scheme.bch_t = t;
          scheme.key_bits = constraints.key_bits;
          if (scheme.bch_k() < 1) break;  // t exhausted the code's redundancy
          const double failure = scheme.key_failure_probability(raw_ber);
          if (failure > constraints.target_key_failure) continue;
          const AreaBreakdown area = area_model.estimate(scheme);
          return CodeSearchResult{scheme, area, failure};
        }
        return std::nullopt;
      });

  std::optional<CodeSearchResult> best;
  for (const auto& candidate : candidates) {
    if (!candidate.has_value()) continue;
    if (!best.has_value() || candidate->area.total_ge() < best->area.total_ge()) {
      best = *candidate;
    }
  }
  return best;
}

}  // namespace aropuf
