#include "ecc/code_search.hpp"

#include "common/check.hpp"

namespace aropuf {

std::optional<CodeSearchResult> find_min_area_scheme(const TechnologyParams& tech,
                                                     double raw_ber,
                                                     const CodeSearchConstraints& constraints) {
  ARO_REQUIRE(raw_ber >= 0.0 && raw_ber < 0.5, "raw BER must be in [0, 0.5)");
  ARO_REQUIRE(constraints.key_bits >= 1, "key must have at least one bit");
  ARO_REQUIRE(constraints.target_key_failure > 0.0 && constraints.target_key_failure < 1.0,
              "target failure must be in (0, 1)");
  const AreaModel area_model(tech);

  std::optional<CodeSearchResult> best;
  for (const int r : constraints.repetition_options) {
    ARO_REQUIRE(r >= 1 && r % 2 == 1, "repetition options must be odd");
    for (const int m : constraints.bch_m_options) {
      for (int t = 1; t <= constraints.max_bch_t; ++t) {
        ConcatenatedScheme scheme;
        scheme.repetition = r;
        scheme.bch_m = m;
        scheme.bch_t = t;
        scheme.key_bits = constraints.key_bits;
        if (scheme.bch_k() < 1) break;  // t exhausted the code's redundancy
        const double failure = scheme.key_failure_probability(raw_ber);
        if (failure > constraints.target_key_failure) continue;
        const AreaBreakdown area = area_model.estimate(scheme);
        if (!best.has_value() || area.total_ge() < best->area.total_ge()) {
          best = CodeSearchResult{scheme, area, failure};
        }
        // Raising t further only adds area at this (r, m): raw bits grow
        // with blocks and the decoder grows with t, while the target is
        // already met.
        break;
      }
    }
  }
  return best;
}

}  // namespace aropuf
