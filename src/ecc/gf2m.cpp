#include "ecc/gf2m.hpp"

#include "common/check.hpp"

namespace aropuf {

std::uint32_t GF2m::default_primitive_poly(int m) {
  // Conventional choices (lowest-weight primitive trinomials/pentanomials).
  switch (m) {
    case 3:  return 0x0B;    // x^3 + x + 1
    case 4:  return 0x13;    // x^4 + x + 1
    case 5:  return 0x25;    // x^5 + x^2 + 1
    case 6:  return 0x43;    // x^6 + x + 1
    case 7:  return 0x89;    // x^7 + x^3 + 1
    case 8:  return 0x11D;   // x^8 + x^4 + x^3 + x^2 + 1
    case 9:  return 0x211;   // x^9 + x^4 + 1
    case 10: return 0x409;   // x^10 + x^3 + 1
    case 11: return 0x805;   // x^11 + x^2 + 1
    case 12: return 0x1053;  // x^12 + x^6 + x^4 + x + 1
    case 13: return 0x201B;  // x^13 + x^4 + x^3 + x + 1
    case 14: return 0x4443;  // x^14 + x^10 + x^6 + x + 1
    default:
      ARO_REQUIRE(false, "GF(2^m) supports m in [3, 14]");
      return 0;
  }
}

GF2m::GF2m(int m) : GF2m(m, default_primitive_poly(m)) {}

GF2m::GF2m(int m, std::uint32_t primitive_poly)
    : m_(m), size_(1U << m), poly_(primitive_poly) {
  ARO_REQUIRE(m >= 3 && m <= 14, "GF(2^m) supports m in [3, 14]");
  ARO_REQUIRE((primitive_poly >> m) == 1U, "primitive polynomial must have degree m");
  build_tables();
}

void GF2m::build_tables() {
  exp_.assign(2 * order(), 0);
  log_.assign(size_, 0);
  std::uint32_t value = 1;
  for (std::uint32_t i = 0; i < order(); ++i) {
    exp_[i] = value;
    log_[value] = i;
    value <<= 1;
    if (value & size_) value ^= poly_;
  }
  ARO_REQUIRE(value == 1, "polynomial is not primitive for this m");
  // Doubled table: exp_[i + order] == exp_[i], so mul avoids a modulo.
  for (std::uint32_t i = 0; i < order(); ++i) exp_[order() + i] = exp_[i];
}

std::uint32_t GF2m::mul(std::uint32_t a, std::uint32_t b) const {
  ARO_REQUIRE(a < size_ && b < size_, "operand outside field");
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

std::uint32_t GF2m::inv(std::uint32_t a) const {
  ARO_REQUIRE(a != 0, "zero has no inverse");
  ARO_REQUIRE(a < size_, "operand outside field");
  return exp_[order() - log_[a]];
}

std::uint32_t GF2m::div(std::uint32_t a, std::uint32_t b) const {
  ARO_REQUIRE(b != 0, "division by zero");
  ARO_REQUIRE(a < size_ && b < size_, "operand outside field");
  if (a == 0) return 0;
  return exp_[log_[a] + order() - log_[b]];
}

std::uint32_t GF2m::alpha_pow(std::int64_t e) const {
  const auto n = static_cast<std::int64_t>(order());
  std::int64_t r = e % n;
  if (r < 0) r += n;
  return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t GF2m::log(std::uint32_t a) const {
  ARO_REQUIRE(a != 0, "discrete log of zero");
  ARO_REQUIRE(a < size_, "operand outside field");
  return log_[a];
}

std::uint32_t GF2m::pow(std::uint32_t a, std::uint64_t e) const {
  ARO_REQUIRE(a < size_, "operand outside field");
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % order();
  return exp_[static_cast<std::size_t>(le)];
}

}  // namespace aropuf
