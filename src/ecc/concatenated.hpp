// Concatenated ECC scheme: inner repetition, outer BCH.
//
// The standard key-generation construction the paper's ECC/area analysis
// assumes: raw PUF bits are first majority-voted (repetition r), then the
// voted bits form shortened-BCH codewords.  The scheme's analytical failure
// probability (binomial tails at both levels) drives the E7 area search;
// encode/decode implement the same scheme concretely for the end-to-end
// fuzzy-extractor tests.
#pragma once

#include <cstddef>
#include <optional>

#include "common/bitvector.hpp"
#include "ecc/bch.hpp"
#include "ecc/repetition.hpp"

namespace aropuf {

struct ConcatenatedScheme {
  int repetition = 1;  ///< inner repetition factor (odd)
  int bch_m = 8;       ///< outer BCH field degree (n = 2^m − 1)
  int bch_t = 1;       ///< outer BCH correction capability
  int key_bits = 128;  ///< total secret bits to protect

  /// Outer code dimension k (0 if the (m, t) combination is void).
  [[nodiscard]] std::size_t bch_k() const { return BchCode::dimension(bch_m, bch_t); }
  [[nodiscard]] std::size_t bch_n() const { return (std::size_t{1} << bch_m) - 1; }

  /// Number of outer codewords needed to carry key_bits.
  [[nodiscard]] std::size_t blocks() const;

  /// Total raw PUF response bits consumed.
  [[nodiscard]] std::size_t raw_bits() const {
    return blocks() * bch_n() * static_cast<std::size_t>(repetition);
  }

  /// Probability one outer block fails to decode at raw bit-error rate `p`.
  [[nodiscard]] double block_failure_probability(double raw_ber) const;

  /// Probability the key fails to reconstruct at raw bit-error rate `p`.
  [[nodiscard]] double key_failure_probability(double raw_ber) const;

  void validate() const;
};

class ConcatenatedCode {
 public:
  explicit ConcatenatedCode(const ConcatenatedScheme& scheme);

  [[nodiscard]] const ConcatenatedScheme& scheme() const noexcept { return scheme_; }
  [[nodiscard]] const BchCode& bch() const noexcept { return bch_; }
  [[nodiscard]] const RepetitionCode& repetition() const noexcept { return rep_; }

  /// key_bits → raw_bits codeword (zero-padding inside the last block).
  [[nodiscard]] BitVector encode(const BitVector& key) const;

  /// raw_bits → key_bits; std::nullopt if any outer block fails.
  [[nodiscard]] std::optional<BitVector> decode(const BitVector& received) const;

 private:
  ConcatenatedScheme scheme_;
  RepetitionCode rep_;
  BchCode bch_;
};

}  // namespace aropuf
