#include "ecc/golay.hpp"

#include "common/check.hpp"

namespace aropuf {

namespace {

// Generator polynomial x^11 + x^10 + x^6 + x^5 + x^4 + x^2 + 1.
constexpr std::uint32_t kGenerator = 0xC75;
constexpr std::uint32_t kParityBits = 11;

/// Remainder of word(x) * 1 mod g(x), word given as a 23-bit integer with
/// bit i the coefficient of x^i.
std::uint32_t poly_mod(std::uint32_t word) {
  for (int bit = 22; bit >= static_cast<int>(kParityBits); --bit) {
    if (word & (1U << bit)) {
      word ^= kGenerator << (bit - static_cast<int>(kParityBits));
    }
  }
  return word;
}

std::uint32_t to_word(const BitVector& v) {
  std::uint32_t word = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.get(i)) word |= 1U << i;
  }
  return word;
}

BitVector to_bits(std::uint32_t word, std::size_t size) {
  BitVector v(size);
  for (std::size_t i = 0; i < size; ++i) v.set(i, (word >> i) & 1U);
  return v;
}

}  // namespace

GolayCode::GolayCode() : error_table_(1U << kParityBits, 0) {
  // Perfect code: the 1 + 23 + 253 + 1771 = 2048 patterns of weight <= 3
  // hit every syndrome exactly once.
  auto add_pattern = [this](std::uint32_t pattern) {
    const std::uint32_t s = poly_mod(pattern);
    ARO_ASSERT(pattern == 0 || error_table_[s] == 0, "syndrome collision: not a perfect code");
    error_table_[s] = pattern;
  };
  add_pattern(0);
  for (int a = 0; a < 23; ++a) {
    add_pattern(1U << a);
    for (int b = a + 1; b < 23; ++b) {
      add_pattern((1U << a) | (1U << b));
      for (int c = b + 1; c < 23; ++c) {
        add_pattern((1U << a) | (1U << b) | (1U << c));
      }
    }
  }
}

std::uint32_t GolayCode::syndrome(const BitVector& word) const {
  ARO_REQUIRE(word.size() == kN, "Golay words are 23 bits");
  return poly_mod(to_word(word));
}

BitVector GolayCode::encode(const BitVector& message) const {
  ARO_REQUIRE(message.size() == kK, "Golay messages are 12 bits");
  // Systematic: codeword = x^11 * m(x) + (x^11 * m(x) mod g).
  const std::uint32_t shifted = to_word(message) << kParityBits;
  const std::uint32_t parity = poly_mod(shifted);
  const std::uint32_t codeword = shifted | parity;
  ARO_ASSERT(poly_mod(codeword) == 0, "systematic Golay encoding failed");
  return to_bits(codeword, kN);
}

bool GolayCode::is_codeword(const BitVector& word) const { return syndrome(word) == 0; }

BitVector GolayCode::decode(const BitVector& received) const {
  const std::uint32_t s = syndrome(received);
  const std::uint32_t pattern = error_table_[s];
  const std::uint32_t corrected = to_word(received) ^ pattern;
  ARO_ASSERT(poly_mod(corrected) == 0, "Golay correction left a nonzero syndrome");
  return to_bits(corrected, kN);
}

BitVector GolayCode::encode_extended(const BitVector& message) const {
  const BitVector base = encode(message);
  BitVector extended(kExtendedN);
  for (std::size_t i = 0; i < kN; ++i) extended.set(i, base.get(i));
  extended.set(kN, base.popcount() % 2 == 1);  // even overall weight
  return extended;
}

std::optional<BitVector> GolayCode::decode_extended(const BitVector& received) const {
  ARO_REQUIRE(received.size() == kExtendedN, "extended Golay words are 24 bits");
  const BitVector base = received.slice(0, kN);
  const bool received_parity = received.get(kN);
  const BitVector corrected = decode(base);
  const std::size_t corrections = hamming_distance(base, corrected);
  const bool parity_consistent = (corrected.popcount() % 2 == 1) == received_parity;
  // A true weight-4 pattern either forces three "corrections" onto a wrong
  // codeword (odd-weight offset flips the parity relation) or is 3-in-body
  // plus a flipped parity bit; both show up as (3 corrections, parity
  // mismatch).  Every weight <= 3 pattern avoids that signature.
  if (corrections == 3 && !parity_consistent) return std::nullopt;
  BitVector out(kExtendedN);
  for (std::size_t i = 0; i < kN; ++i) out.set(i, corrected.get(i));
  out.set(kN, corrected.popcount() % 2 == 1);
  return out;
}

BitVector GolayCode::extract_message(const BitVector& codeword) const {
  ARO_REQUIRE(codeword.size() == kN, "Golay words are 23 bits");
  return codeword.slice(kParityBits, kK);
}

}  // namespace aropuf
