// Gate-count area model for a complete PUF key macro.
//
// Reproduces the paper's Table-E7 comparison: for a 128-bit key, the total
// silicon area is dominated by the raw PUF bits (two ROs per response bit),
// so a design whose bit-error rate demands heavy repetition + strong BCH
// pays an area multiple.  Gate-equivalent (GE) formulas follow standard
// structural estimates:
//
//   RO cell            — area_ro_cell_ge per RO (stages + enable + mux leg)
//   counters           — two shared ripple counters + comparator
//   majority voter     — serial accumulate-and-threshold per repetition group
//   BCH decoder        — syndrome cells + iBM datapath + Chien search, all
//                        scaling with (m, t): registers are m bits, constant
//                        GF multipliers ~ m^2/2 XORs, full multipliers ~ 2m^2
//
// Helper-data storage is excluded on both sides (it lives in NVM, identical
// per raw bit for both designs), matching the paper's PUF+ECC focus.
#pragma once

#include "device/technology.hpp"
#include "ecc/concatenated.hpp"

namespace aropuf {

struct AreaBreakdown {
  double puf_array_ge = 0.0;    ///< RO cells for all raw bits
  double counters_ge = 0.0;     ///< measurement counters + comparator + control
  double voter_ge = 0.0;        ///< repetition majority logic
  double bch_decoder_ge = 0.0;  ///< syndrome + BM + Chien
  double bch_encoder_ge = 0.0;  ///< LFSR encoder (enrollment path)

  [[nodiscard]] double total_ge() const {
    return puf_array_ge + counters_ge + voter_ge + bch_decoder_ge + bch_encoder_ge;
  }
};

class AreaModel {
 public:
  explicit AreaModel(const TechnologyParams& tech);

  /// Full macro estimate for a key-generation scheme.
  [[nodiscard]] AreaBreakdown estimate(const ConcatenatedScheme& scheme) const;

  /// Number of ROs needed for `raw_bits` response bits (dedicated pairing).
  [[nodiscard]] static std::size_t ros_for_raw_bits(std::size_t raw_bits) {
    return 2 * raw_bits;
  }

  /// GE → um^2 conversion for this technology.
  [[nodiscard]] double ge_to_um2(double ge) const;

  /// Decoder-only estimate (unit-testable pieces).
  [[nodiscard]] double bch_decoder_ge(int m, int t) const;
  [[nodiscard]] double bch_encoder_ge(int m, int t) const;
  [[nodiscard]] double majority_voter_ge(int r) const;

 private:
  const TechnologyParams* tech_;
};

}  // namespace aropuf
