#include "ecc/concatenated.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/statistics.hpp"

namespace aropuf {

void ConcatenatedScheme::validate() const {
  ARO_REQUIRE(repetition >= 1 && repetition % 2 == 1, "repetition must be odd and >= 1");
  ARO_REQUIRE(key_bits >= 1, "key must have at least one bit");
  ARO_REQUIRE(bch_k() >= 1, "BCH (m, t) combination has no information bits");
}

std::size_t ConcatenatedScheme::blocks() const {
  const std::size_t k = bch_k();
  ARO_REQUIRE(k >= 1, "BCH (m, t) combination has no information bits");
  return (static_cast<std::size_t>(key_bits) + k - 1) / k;
}

double ConcatenatedScheme::block_failure_probability(double raw_ber) const {
  const RepetitionCode rep(repetition);
  const double inner_ber = rep.decoded_error_rate(raw_ber);
  return binomial_tail_greater(bch_n(), static_cast<std::uint64_t>(bch_t), inner_ber);
}

double ConcatenatedScheme::key_failure_probability(double raw_ber) const {
  const double p_block = block_failure_probability(raw_ber);
  const double blocks_d = static_cast<double>(blocks());
  // 1 - (1 - p)^B, computed stably for tiny p.
  return -std::expm1(blocks_d * std::log1p(-p_block));
}

ConcatenatedCode::ConcatenatedCode(const ConcatenatedScheme& scheme)
    : scheme_(scheme), rep_(scheme.repetition), bch_(scheme.bch_m, scheme.bch_t) {
  scheme_.validate();
}

BitVector ConcatenatedCode::encode(const BitVector& key) const {
  ARO_REQUIRE(key.size() == static_cast<std::size_t>(scheme_.key_bits),
              "key length must match the scheme");
  const std::size_t k = bch_.k();
  BitVector out;
  for (std::size_t block = 0; block < scheme_.blocks(); ++block) {
    BitVector message(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t key_index = block * k + i;
      if (key_index < key.size()) message.set(i, key.get(key_index));
    }
    out = out.concat(rep_.encode(bch_.encode(message)));
  }
  ARO_ASSERT(out.size() == scheme_.raw_bits(), "encoded length mismatch");
  return out;
}

std::optional<BitVector> ConcatenatedCode::decode(const BitVector& received) const {
  ARO_REQUIRE(received.size() == scheme_.raw_bits(), "received length must match the scheme");
  const std::size_t block_raw = bch_.n() * static_cast<std::size_t>(rep_.r());
  BitVector key(static_cast<std::size_t>(scheme_.key_bits));
  for (std::size_t block = 0; block < scheme_.blocks(); ++block) {
    const BitVector voted = rep_.decode(received.slice(block * block_raw, block_raw));
    const auto corrected = bch_.decode(voted);
    if (!corrected.has_value()) return std::nullopt;
    const BitVector message = bch_.extract_message(*corrected);
    for (std::size_t i = 0; i < message.size(); ++i) {
      const std::size_t key_index = block * bch_.k() + i;
      if (key_index < key.size()) key.set(key_index, message.get(i));
    }
  }
  return key;
}

}  // namespace aropuf
