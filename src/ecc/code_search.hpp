// Minimum-area ECC search for a target key-failure probability.
//
// Given a raw bit-error rate (the PUF's measured worst-case BER including
// aging), find the (repetition r, BCH(m, t)) concatenation that minimizes
// total macro area while keeping P[key reconstruction fails] below target.
// This is exactly the paper's Table-E7 procedure: the conventional RO-PUF's
// 32 % BER forces heavy repetition and a strong outer code, while the
// ARO-PUF's 7.7 % admits a light scheme — the ~24x area ratio.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "device/technology.hpp"
#include "ecc/area_model.hpp"
#include "ecc/concatenated.hpp"

namespace aropuf {

struct CodeSearchConstraints {
  int key_bits = 128;
  double target_key_failure = 1e-6;
  /// Candidate odd repetition factors.
  std::vector<int> repetition_options = {1, 3, 5, 7, 9, 11, 15, 21, 27, 31, 37, 45, 61, 81, 101, 127};
  /// Candidate BCH field degrees (n = 2^m − 1).
  std::vector<int> bch_m_options = {7, 8, 9, 10};
  /// Upper bound on BCH t per m (search stops earlier when k hits 0).
  int max_bch_t = 120;
};

struct CodeSearchResult {
  ConcatenatedScheme scheme;
  AreaBreakdown area;
  double key_failure = 1.0;
};

/// Exhaustive search over the constraint grid; std::nullopt when no scheme
/// meets the target (e.g. BER >= 0.5).
[[nodiscard]] std::optional<CodeSearchResult> find_min_area_scheme(
    const TechnologyParams& tech, double raw_ber, const CodeSearchConstraints& constraints);

}  // namespace aropuf
