// Binary primitive BCH codes: construction, systematic encoding, and
// Berlekamp–Massey + Chien decoding.
//
// A BchCode(m, t) has length n = 2^m − 1 and corrects up to t bit errors;
// the dimension k = n − deg(g) falls out of the generator construction
// (LCM of the minimal polynomials of alpha^1 .. alpha^2t).  Shortening by s
// bits (prepending zero information bits that are never transmitted) yields
// the (n−s, k−s, t) codes the fuzzy extractor uses to match key sizes.
//
// This is a faithful implementation — syndromes, the error-locator via BM,
// and root search via Chien — not a behavioural stub, because the E7 area
// bench derives decoder complexity from the same (m, t) parameters that
// drive this decoder, and the keygen tests exercise real correction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"
#include "ecc/gf2m.hpp"

namespace aropuf {

class BchCode {
 public:
  /// Primitive BCH over GF(2^m) correcting `t` errors.
  BchCode(int m, int t);

  [[nodiscard]] int m() const noexcept { return field_.m(); }
  [[nodiscard]] int t() const noexcept { return t_; }
  /// Code length n = 2^m − 1.
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  /// Information length k = n − deg(g).
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  /// Generator polynomial, bit i = coefficient of x^i.
  [[nodiscard]] const BitVector& generator() const noexcept { return generator_; }

  /// Systematic encode: returns the n-bit codeword [parity | message].
  [[nodiscard]] BitVector encode(const BitVector& message) const;

  /// Decodes an n-bit word; corrects up to t errors.  Returns std::nullopt
  /// on decoder failure (more than t errors detected).
  [[nodiscard]] std::optional<BitVector> decode(const BitVector& received) const;

  /// Extracts the message bits from a (corrected) codeword.
  [[nodiscard]] BitVector extract_message(const BitVector& codeword) const;

  /// True if `word` is a codeword (all syndromes zero).
  [[nodiscard]] bool is_codeword(const BitVector& word) const;

  /// Dimension k of BchCode(m, t) without building tables twice; returns 0
  /// if the code does not exist (deg(g) >= n).  Used by the code search.
  [[nodiscard]] static std::size_t dimension(int m, int t);

 private:
  [[nodiscard]] std::vector<std::uint32_t> syndromes(const BitVector& received) const;

  GF2m field_;
  int t_;
  std::size_t n_;
  std::size_t k_;
  BitVector generator_;
};

}  // namespace aropuf
