#include "ecc/repetition.hpp"

#include "common/check.hpp"
#include "common/statistics.hpp"

namespace aropuf {

RepetitionCode::RepetitionCode(int r) : r_(r) {
  ARO_REQUIRE(r >= 1 && r % 2 == 1, "repetition factor must be odd and >= 1");
}

BitVector RepetitionCode::encode(const BitVector& message) const {
  BitVector out(message.size() * static_cast<std::size_t>(r_));
  for (std::size_t i = 0; i < message.size(); ++i) {
    if (!message.get(i)) continue;
    for (int j = 0; j < r_; ++j) {
      out.set(i * static_cast<std::size_t>(r_) + static_cast<std::size_t>(j), true);
    }
  }
  return out;
}

BitVector RepetitionCode::decode(const BitVector& received) const {
  ARO_REQUIRE(received.size() % static_cast<std::size_t>(r_) == 0,
              "received length must be a multiple of r");
  const std::size_t bits = received.size() / static_cast<std::size_t>(r_);
  BitVector out(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    int ones = 0;
    for (int j = 0; j < r_; ++j) {
      ones += received.get(i * static_cast<std::size_t>(r_) + static_cast<std::size_t>(j)) ? 1 : 0;
    }
    out.set(i, 2 * ones > r_);
  }
  return out;
}

double RepetitionCode::decoded_error_rate(double p) const {
  // Majority fails when more than half the copies flip.
  return binomial_tail_greater(static_cast<std::uint64_t>(r_),
                               static_cast<std::uint64_t>(r_ / 2), p);
}

}  // namespace aropuf
