#include "keygen/hmac.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"

namespace aropuf {

namespace {
constexpr std::size_t kBlockSize = 64;
}

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, kBlockSize> padded{};
  if (key.size() > kBlockSize) {
    const Sha256::Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), padded.begin());
  } else {
    std::copy(key.begin(), key.end(), padded.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256::Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm) {
  // RFC 5869: PRK = HMAC(salt, IKM); empty salt means a zero-filled key.
  if (salt.empty()) {
    const std::array<std::uint8_t, Sha256::kDigestBytes> zeros{};
    return hmac_sha256(zeros, ikm);
  }
  return hmac_sha256(salt, ikm);
}

std::vector<std::uint8_t> hkdf_expand(const Sha256::Digest& prk,
                                      std::span<const std::uint8_t> info, std::size_t length) {
  ARO_REQUIRE(length >= 1, "must request at least one byte");
  ARO_REQUIRE(length <= 255 * Sha256::kDigestBytes, "HKDF output limited to 255 blocks");
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  std::vector<std::uint8_t> t;  // T(i-1)
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    std::vector<std::uint8_t> block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const Sha256::Digest digest = hmac_sha256(prk, block);
    t.assign(digest.begin(), digest.end());
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

std::vector<std::uint8_t> derive_subkey(const Sha256::Digest& root_key,
                                        std::string_view label, std::size_t length) {
  const Sha256::Digest prk = hkdf_extract({}, root_key);
  const std::span<const std::uint8_t> info{
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()};
  return hkdf_expand(prk, info, length);
}

}  // namespace aropuf
