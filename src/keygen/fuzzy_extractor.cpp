#include "keygen/fuzzy_extractor.hpp"

#include "common/check.hpp"
#include "telemetry/metrics.hpp"

namespace aropuf {

namespace {

/// Keygen health counters: a rising failure/attempt ratio is the first sign
/// that aging has pushed the BER past what the code corrects.
struct KeygenTelemetry {
  telemetry::Counter& enrollments;
  telemetry::Counter& decode_attempts;
  telemetry::Counter& decode_failures;

  static KeygenTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static KeygenTelemetry t{reg.counter("keygen.enrollments"),
                             reg.counter("ecc.decode_attempts"),
                             reg.counter("ecc.decode_failures")};
    return t;
  }
};

}  // namespace

FuzzyExtractor::FuzzyExtractor(const ConcatenatedScheme& scheme) : code_(scheme) {}

Sha256::Digest FuzzyExtractor::derive_key(const BitVector& secret) {
  const auto bytes = secret.to_bytes();
  return Sha256::hash(bytes);
}

Enrollment FuzzyExtractor::enroll(const BitVector& golden_response, Xoshiro256& rng) const {
  ARO_REQUIRE(golden_response.size() == response_bits(),
              "response length must match the scheme's raw bits");
  KeygenTelemetry::get().enrollments.add(1);
  BitVector secret(static_cast<std::size_t>(code_.scheme().key_bits));
  for (std::size_t i = 0; i < secret.size(); ++i) secret.set(i, rng.bernoulli(0.5));
  Enrollment e;
  e.helper_data = golden_response ^ code_.encode(secret);
  e.key = derive_key(secret);
  return e;
}

std::optional<BitVector> FuzzyExtractor::refresh_helper_data(
    const BitVector& current_response, const BitVector& old_helper_data) const {
  ARO_REQUIRE(current_response.size() == response_bits(),
              "response length must match the scheme's raw bits");
  ARO_REQUIRE(old_helper_data.size() == response_bits(), "helper data length mismatch");
  KeygenTelemetry& telem = KeygenTelemetry::get();
  telem.decode_attempts.add(1);
  const auto secret = code_.decode(current_response ^ old_helper_data);
  if (!secret.has_value()) {
    telem.decode_failures.add(1);
    return std::nullopt;
  }
  return current_response ^ code_.encode(*secret);
}

std::optional<Sha256::Digest> FuzzyExtractor::reconstruct(const BitVector& response,
                                                          const BitVector& helper_data) const {
  ARO_REQUIRE(response.size() == response_bits(),
              "response length must match the scheme's raw bits");
  ARO_REQUIRE(helper_data.size() == response_bits(), "helper data length mismatch");
  KeygenTelemetry& telem = KeygenTelemetry::get();
  telem.decode_attempts.add(1);
  const auto secret = code_.decode(response ^ helper_data);
  if (!secret.has_value()) {
    telem.decode_failures.add(1);
    return std::nullopt;
  }
  return derive_key(*secret);
}

}  // namespace aropuf
