#include "keygen/debias.hpp"

#include "common/check.hpp"

namespace aropuf {

DebiasResult von_neumann_debias(const BitVector& input) {
  DebiasResult result;
  const std::size_t pairs = input.size() / 2;
  result.consumed = pairs * 2;
  for (std::size_t p = 0; p < pairs; ++p) {
    const bool a = input.get(2 * p);
    const bool b = input.get(2 * p + 1);
    if (a != b) result.bits.push_back(a);  // 01 -> 0, 10 -> 1
  }
  return result;
}

double expected_von_neumann_yield(double ones_fraction) {
  ARO_REQUIRE(ones_fraction >= 0.0 && ones_fraction <= 1.0, "bias must be in [0, 1]");
  return ones_fraction * (1.0 - ones_fraction);
}

}  // namespace aropuf
