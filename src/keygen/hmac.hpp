// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869), from scratch on Sha256.
//
// A PUF-derived device key is a *root* secret; applications need per-session
// and per-purpose keys derived from it without ever exposing it.  HKDF's
// extract-and-expand is the standard construction: the E9/auth examples use
// it to turn one reconstructed 256-bit key into any number of labelled
// subkeys.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "keygen/sha256.hpp"

namespace aropuf {

/// HMAC-SHA256 of `message` under `key` (any key length; hashed if > 64 B).
[[nodiscard]] Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                                         std::span<const std::uint8_t> message);

/// HKDF-Extract: (salt, input keying material) -> pseudorandom key.
[[nodiscard]] Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                                          std::span<const std::uint8_t> ikm);

/// HKDF-Expand: pseudorandom key + context info -> `length` output bytes
/// (length <= 255 * 32).
[[nodiscard]] std::vector<std::uint8_t> hkdf_expand(const Sha256::Digest& prk,
                                                    std::span<const std::uint8_t> info,
                                                    std::size_t length);

/// Convenience: derive a labelled subkey from a PUF root key.
[[nodiscard]] std::vector<std::uint8_t> derive_subkey(const Sha256::Digest& root_key,
                                                      std::string_view label,
                                                      std::size_t length = 32);

}  // namespace aropuf
