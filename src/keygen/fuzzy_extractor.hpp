// Code-offset fuzzy extractor (Dodis et al.) over the concatenated ECC.
//
// Enrollment (in the fab / at first boot):
//   1. draw a random secret s of key_bits;
//   2. helper = PUF_response XOR Encode(s)          — public helper data;
//   3. key = SHA-256(s)                             — the device key.
//
// Reconstruction (in the field, possibly years later):
//   1. word = helper XOR PUF_response'              — a noisy codeword;
//   2. s = Decode(word)                             — ECC absorbs the flips;
//   3. key = SHA-256(s).
//
// The helper data reveals nothing about s beyond the code's redundancy
// (information-theoretic secure-sketch argument); the reproduction's E9
// bench measures reconstruction failure end-to-end against aged responses.
#pragma once

#include <optional>

#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "ecc/concatenated.hpp"
#include "keygen/sha256.hpp"

namespace aropuf {

struct Enrollment {
  BitVector helper_data;  ///< public; stored in NVM
  Sha256::Digest key;     ///< secret; never stored
};

class FuzzyExtractor {
 public:
  explicit FuzzyExtractor(const ConcatenatedScheme& scheme);

  /// Raw PUF response bits the extractor consumes per key.
  [[nodiscard]] std::size_t response_bits() const { return code_.scheme().raw_bits(); }

  /// Enrolls from a golden response; randomness for the secret comes from
  /// `rng` (in silicon: a TRNG or fab-side provisioning).
  [[nodiscard]] Enrollment enroll(const BitVector& golden_response, Xoshiro256& rng) const;

  /// Reconstructs the key from a (noisy / aged) response and helper data.
  /// std::nullopt when the error pattern exceeds the code's capability.
  [[nodiscard]] std::optional<Sha256::Digest> reconstruct(const BitVector& response,
                                                          const BitVector& helper_data) const;

  /// Helper-data refresh (key maintenance): recovers the secret through the
  /// old helper data and re-binds it to the *current* response, so future
  /// reconstructions only have to absorb drift accumulated since this
  /// refresh rather than since enrollment.  The key is unchanged; only the
  /// public helper data rotates.  std::nullopt when the old helper data can
  /// no longer decode (refresh came too late).
  [[nodiscard]] std::optional<BitVector> refresh_helper_data(
      const BitVector& current_response, const BitVector& old_helper_data) const;

  [[nodiscard]] const ConcatenatedCode& code() const noexcept { return code_; }

 private:
  [[nodiscard]] static Sha256::Digest derive_key(const BitVector& secret);

  ConcatenatedCode code_;
};

}  // namespace aropuf
