// Von Neumann debiasing.
//
// The conventional RO-PUF's layout systematics bias response bits (E4 shows
// it failing monobit); feeding biased bits into key material overstates
// entropy.  The von Neumann extractor turns any i.i.d.-per-pair biased
// source into exactly unbiased output at the cost of yield:
// pairs 01 -> 0, 10 -> 1, 00/11 -> discarded (expected yield p(1-p)).
//
// Classic trade-off demonstrated in the tests: debiasing fixes *bias* but
// cannot fix *correlation*, and it discards data a fuzzy extractor would
// need aligned — so the ARO answer (fix the bias at the source, by pairing)
// is the better design.
#pragma once

#include "common/bitvector.hpp"

namespace aropuf {

struct DebiasResult {
  BitVector bits;           ///< extracted unbiased bits
  std::size_t consumed = 0; ///< input bits consumed (always even)

  [[nodiscard]] double yield() const {
    return consumed == 0 ? 0.0
                         : static_cast<double>(bits.size()) / static_cast<double>(consumed);
  }
};

/// Runs the von Neumann extractor over consecutive bit pairs of `input`
/// (a trailing odd bit is ignored).
[[nodiscard]] DebiasResult von_neumann_debias(const BitVector& input);

/// Expected yield for per-bit bias p (fraction of ones): p(1-p).
[[nodiscard]] double expected_von_neumann_yield(double ones_fraction);

}  // namespace aropuf
