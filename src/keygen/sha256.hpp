// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The fuzzy extractor compresses the reconstructed secret through a hash to
// produce the final cryptographic key (entropy extraction); this is the only
// cryptographic primitive the key-generation flow needs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aropuf {

class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha256();

  /// Streams `data` into the hash.
  void update(std::span<const std::uint8_t> data);

  /// Finishes and returns the digest; the object must not be reused after.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);

  /// Lowercase hex rendering of a digest.
  [[nodiscard]] static std::string to_hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace aropuf
