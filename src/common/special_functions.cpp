#include "common/special_functions.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace aropuf {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;

// Series expansion of P(a, x), valid and fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x), valid for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  ARO_REQUIRE(a > 0.0, "gamma P requires a > 0");
  ARO_REQUIRE(x >= 0.0, "gamma P requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  ARO_REQUIRE(a > 0.0, "gamma Q requires a > 0");
  ARO_REQUIRE(x >= 0.0, "gamma Q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  ARO_REQUIRE(p > 0.0 && p < 1.0, "normal quantile requires p in (0, 1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log1p(-p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace aropuf
