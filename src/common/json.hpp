// Minimal JSON value, parser, and serializer (RFC 8259 subset).
//
// Experiment configurations (technology corners, PUF configs, population
// setups) are serialized through this module so studies are reproducible
// from checked-in config files, not just from code.  Scope: UTF-8 text,
// objects/arrays/strings/numbers/bools/null, \uXXXX escapes for the BMP;
// no comments, no trailing commas (strict by design — configs are data).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace aropuf {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps keys sorted: serialization is canonical, diffs stable.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Checked accessors: throw std::invalid_argument on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member access; throws if not an object or key missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Member access with a default when the key is absent.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws std::invalid_argument with a
  /// position-annotated message on malformed input or trailing garbage.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  [[nodiscard]] bool operator==(const JsonValue& other) const { return value_ == other.value_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace aropuf
