// Streaming statistics, histograms, and binomial tail probabilities.
//
// RunningStats implements Welford's online algorithm so population metrics
// (inter-chip HD over ~half a million pairs) accumulate without storing
// samples.  The binomial tail helpers work in log space so the ECC search can
// evaluate key-failure probabilities down to 1e-30 without underflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aropuf {

/// Welford online mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Reconstructs an accumulator from serialized moments (the shard-merge
  /// path: manifests carry n/mean/m2/min/max, the aggregator rebuilds the
  /// accumulator and merges with merge()).  `m2` is the raw sum of squared
  /// deviations, i.e. variance() * (n - 1) — exact round trip, unlike
  /// reconstructing from stddev.
  [[nodiscard]] static RunningStats from_moments(std::size_t n, double mean, double m2,
                                                 double min, double max) noexcept;

  /// Raw second central moment (serialization counterpart of from_moments).
  [[nodiscard]] double m2() const noexcept { return m2_; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins; out-of-range samples clamp into
/// the first/last bin so totals always match the number of adds.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept;
  /// Fraction of all samples falling in `bin` (0 if empty histogram).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Renders a fixed-width ASCII bar chart (used by the bench reporters).
  [[nodiscard]] std::vector<std::string> ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile (linear interpolation) of a sample set; sorts a copy.
[[nodiscard]] double percentile(std::span<const double> samples, double p);

/// log(n choose k) via lgamma.
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// Binomial PMF P[X = k] for X ~ Bin(n, p), computed in log space.
[[nodiscard]] double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// Upper binomial tail P[X > k] for X ~ Bin(n, p) (strictly greater).
/// Accurate for very small tails; used for ECC key-failure probability.
[[nodiscard]] double binomial_tail_greater(std::uint64_t n, std::uint64_t k, double p);

}  // namespace aropuf
