// Dynamic bit vector used for PUF responses, ECC codewords, and keys.
//
// std::vector<bool> hides its storage, which makes popcount-based Hamming
// distance (the hottest metric in the population studies) slow and awkward;
// this class keeps explicit 64-bit words so HD is a word-wise XOR+popcount.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aropuf {

class BitVector {
 public:
  BitVector() = default;

  /// Creates `size` bits, all zero.
  explicit BitVector(std::size_t size);

  /// Creates from a string of '0'/'1' characters (test convenience).
  static BitVector from_string(const std::string& bits);

  /// Inverse of to_bytes(): unpacks `bits` bits from LSB-first packed bytes.
  /// Reads ceil(bits / 8) bytes from `data`; stray bits in the final byte
  /// beyond `bits` are ignored.
  static BitVector from_bytes(const std::uint8_t* data, std::size_t bits);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Appends one bit.
  void push_back(bool value);

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Fraction of set bits (0 for the empty vector).
  [[nodiscard]] double ones_fraction() const noexcept;

  /// XOR of two equal-length vectors.
  [[nodiscard]] BitVector operator^(const BitVector& other) const;
  BitVector& operator^=(const BitVector& other);

  [[nodiscard]] bool operator==(const BitVector& other) const noexcept;

  /// Extracts bits [begin, begin+len).
  [[nodiscard]] BitVector slice(std::size_t begin, std::size_t len) const;

  /// Concatenates `other` after this vector.
  [[nodiscard]] BitVector concat(const BitVector& other) const;

  /// '0'/'1' rendering, index 0 first.
  [[nodiscard]] std::string to_string() const;

  /// Packs the bits into bytes, LSB-first within each byte (for hashing).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// Raw word access (read-only) for the hot HD loops in metrics.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  void check_index(std::size_t i) const;
  /// Zeroes any bits beyond size_ in the last word (class invariant: padding
  /// bits are always zero so popcount/== work word-wise).
  void clear_padding() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Hamming distance between two equal-length bit vectors.
[[nodiscard]] std::size_t hamming_distance(const BitVector& a, const BitVector& b);

/// Hamming distance normalized by length (0 for empty vectors).
[[nodiscard]] double fractional_hamming_distance(const BitVector& a, const BitVector& b);

/// Number of set bits in a packed byte buffer, accumulated word-wise (eight
/// bytes per popcount).  Shared by every hot path that compares bit material
/// still sitting in serialized form (e.g. the mmap-ed enrollment store).
[[nodiscard]] std::size_t popcount_bytes(const std::uint8_t* data, std::size_t size);

/// Hamming distance between `a` and `bits` bits packed LSB-first at `packed`
/// (the to_bytes() layout), without materializing a second BitVector.  Runs
/// word-wise; stray bits in the final byte beyond `bits` are ignored.
/// Requires a.size() == bits.
[[nodiscard]] std::size_t hamming_distance_packed(const BitVector& a,
                                                  const std::uint8_t* packed,
                                                  std::size_t bits);

}  // namespace aropuf
