// Special functions needed by the NIST-lite randomness battery.
//
// The NIST SP 800-22 statistics report p-values through the complementary
// error function and the regularized upper incomplete gamma function; the
// standard library provides erfc but not igamc, so we implement the classic
// series/continued-fraction pair (Numerical Recipes style).
#pragma once

namespace aropuf {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Standard normal CDF Φ(x).
[[nodiscard]] double normal_cdf(double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 — ample for confidence-interval reporting).
[[nodiscard]] double normal_quantile(double p);

}  // namespace aropuf
