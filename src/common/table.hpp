// Minimal ASCII table renderer for the benchmark harness.
//
// Every bench binary prints the rows the paper's table/figure reports; this
// keeps that output aligned and diff-friendly (EXPERIMENTS.md embeds it).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace aropuf {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Adds a row of pre-formatted cells (must match the header width).
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (helper for cells).
  static std::string num(double value, int precision = 3);

  /// Renders the table with box-drawing dashes and padded columns.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aropuf
