#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace aropuf {

bool JsonValue::as_bool() const {
  ARO_REQUIRE(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  ARO_REQUIRE(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  ARO_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  ARO_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  ARO_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(value_);
}

JsonValue::Array& JsonValue::as_array() {
  ARO_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

JsonValue::Object& JsonValue::as_object() {
  ARO_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  ARO_REQUIRE(it != obj.end(), "missing JSON key: " + key);
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

std::string JsonValue::string_or(const std::string& key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  ARO_REQUIRE(std::isfinite(d), "JSON cannot represent NaN or infinity");
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << why;
    throw std::invalid_argument(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw std::invalid_argument("JSON parse error: unexpected end");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported by scope).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits required in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    // strtod, not std::stod: the token is already syntax-checked, and stod
    // throws out_of_range on ERANGE — which glibc also sets for subnormal
    // results, so a legal "5e-324" would escape as the wrong exception type
    // (found by fuzzing).  strtod returns the subnormal quietly; genuine
    // overflow comes back as ±infinity, which JSON cannot represent, so that
    // stays a parse error.
    const std::string token = text_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), nullptr);
    if (std::isinf(v)) fail("number out of double range");
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string{};
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      append_escaped(out, key);
      out += kv_sep;
      value.dump_to(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace aropuf
