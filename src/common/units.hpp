// Physical units and constants used across the device / circuit models.
//
// The library uses plain doubles in SI units (seconds, volts, hertz, kelvin)
// with type aliases for documentation.  Helper functions convert the common
// non-SI inputs (years, Celsius) that appear throughout the ARO-PUF paper.
#pragma once

namespace aropuf {

using Seconds = double;
using Volts = double;
using Hertz = double;
using Kelvin = double;
using Celsius = double;

namespace constants {

/// Boltzmann constant in eV/K (activation energies in this library are in eV).
inline constexpr double k_boltzmann_ev = 8.617333262e-5;

/// Seconds per Julian year (365.25 days), the lifetime unit of the paper.
inline constexpr double seconds_per_year = 365.25 * 24.0 * 3600.0;

/// 0 °C in kelvin.
inline constexpr double zero_celsius_kelvin = 273.15;

}  // namespace constants

/// Converts years of operation to seconds.
constexpr Seconds years(double y) { return y * constants::seconds_per_year; }

/// Converts a Celsius temperature to kelvin.
constexpr Kelvin celsius(double c) { return c + constants::zero_celsius_kelvin; }

/// Converts kelvin back to Celsius (for reporting).
constexpr Celsius to_celsius(Kelvin k) { return k - constants::zero_celsius_kelvin; }

}  // namespace aropuf
