#include "common/rng.hpp"

#include <cmath>

namespace aropuf {

double Xoshiro256::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t RngFabric::derive(std::string_view name, std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) const noexcept {
  // FNV-1a over the name, then SplitMix64 mixing of the indices and seed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    h *= 0x100000001b3ULL;
  }
  SplitMix64 mixer(h ^ master_seed_);
  std::uint64_t seed = mixer.next();
  seed ^= SplitMix64(seed ^ a).next();
  seed ^= SplitMix64(seed ^ b).next();
  seed ^= SplitMix64(seed ^ c).next();
  return seed;
}

}  // namespace aropuf
