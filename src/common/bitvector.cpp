#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace aropuf {

namespace {
constexpr std::size_t kWordBits = 64;

constexpr std::size_t words_for(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

// Loads up to eight packed LSB-first bytes as the little-endian word they
// spell.  The full-width case is a single memcpy (plus a swap on big-endian
// hosts); short tails fall back to a byte loop.
std::uint64_t load_word_le(const std::uint8_t* p, std::size_t n) {
  if (n == 8) {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    w = __builtin_bswap64(w);
#endif
    return w;
  }
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < n; ++i) w |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return w;
}
}  // namespace

BitVector::BitVector(std::size_t size) : words_(words_for(size), 0), size_(size) {}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    ARO_REQUIRE(c == '0' || c == '1', "bit string may contain only '0' and '1'");
    v.set(i, c == '1');
  }
  return v;
}

BitVector BitVector::from_bytes(const std::uint8_t* data, std::size_t bits) {
  ARO_REQUIRE(data != nullptr || bits == 0, "from_bytes with null data");
  BitVector v(bits);
  const std::size_t nbytes = (bits + 7) / 8;
  for (std::size_t w = 0; w < v.words_.size(); ++w) {
    const std::size_t off = w * 8;
    v.words_[w] = load_word_le(data + off, std::min<std::size_t>(8, nbytes - off));
  }
  v.clear_padding();
  return v;
}

void BitVector::check_index(std::size_t i) const {
  ARO_REQUIRE(i < size_, "bit index out of range");
}

bool BitVector::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

void BitVector::push_back(bool value) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, value);
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

double BitVector::ones_fraction() const noexcept {
  if (size_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(size_);
}

void BitVector::clear_padding() noexcept {
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1ULL;
  }
}

BitVector BitVector::operator^(const BitVector& other) const {
  BitVector result = *this;
  result ^= other;
  return result;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  ARO_REQUIRE(size_ == other.size_, "XOR of bit vectors with different lengths");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

bool BitVector::operator==(const BitVector& other) const noexcept {
  return size_ == other.size_ && words_ == other.words_;
}

BitVector BitVector::slice(std::size_t begin, std::size_t len) const {
  ARO_REQUIRE(begin + len <= size_, "slice out of range");
  BitVector out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(begin + i));
  return out;
}

BitVector BitVector::concat(const BitVector& other) const {
  BitVector out(size_ + other.size_);
  for (std::size_t i = 0; i < size_; ++i) out.set(i, get(i));
  for (std::size_t i = 0; i < other.size_; ++i) out.set(size_ + i, other.get(i));
  return out;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

std::vector<std::uint8_t> BitVector::to_bytes() const {
  std::vector<std::uint8_t> bytes((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) bytes[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
  }
  return bytes;
}

std::size_t hamming_distance(const BitVector& a, const BitVector& b) {
  ARO_REQUIRE(a.size() == b.size(), "Hamming distance requires equal lengths");
  std::size_t total = 0;
  const auto& wa = a.words();
  const auto& wb = b.words();
  for (std::size_t w = 0; w < wa.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(wa[w] ^ wb[w]));
  }
  return total;
}

double fractional_hamming_distance(const BitVector& a, const BitVector& b) {
  if (a.size() == 0 && b.size() == 0) return 0.0;
  return static_cast<double>(hamming_distance(a, b)) / static_cast<double>(a.size());
}

std::size_t popcount_bytes(const std::uint8_t* data, std::size_t size) {
  ARO_REQUIRE(data != nullptr || size == 0, "popcount_bytes with null data");
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, sizeof w);  // byte order is irrelevant to popcount
    total += static_cast<std::size_t>(std::popcount(w));
  }
  if (i < size) {
    total += static_cast<std::size_t>(std::popcount(load_word_le(data + i, size - i)));
  }
  return total;
}

std::size_t hamming_distance_packed(const BitVector& a, const std::uint8_t* packed,
                                    std::size_t bits) {
  ARO_REQUIRE(a.size() == bits, "Hamming distance requires equal lengths");
  ARO_REQUIRE(packed != nullptr || bits == 0, "hamming_distance_packed with null data");
  const auto& wa = a.words();
  const std::size_t nbytes = (bits + 7) / 8;
  std::size_t total = 0;
  for (std::size_t w = 0; w < wa.size(); ++w) {
    const std::size_t off = w * 8;
    std::uint64_t pw = load_word_le(packed + off, std::min<std::size_t>(8, nbytes - off));
    if (w + 1 == wa.size()) {
      // BitVector keeps its padding bits zero; mask the packed side the same
      // way so stray bits in the final byte cannot inflate the distance.
      const std::size_t tail = bits % kWordBits;
      if (tail != 0) pw &= (std::uint64_t{1} << tail) - 1;
    }
    total += static_cast<std::size_t>(std::popcount(wa[w] ^ pw));
  }
  return total;
}

}  // namespace aropuf
