// Deterministic random-number fabric for Monte Carlo simulation.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table in EXPERIMENTS.md must regenerate bit-exactly from a master seed.
// Instead of sharing one global engine (whose stream would depend on
// evaluation order), the fabric derives an independent, named sub-stream for
// every die / device / purpose via SplitMix64 hashing of (master seed, path).
//
//   RngFabric fabric{42};
//   Xoshiro256 die_rng  = fabric.stream("die", die_index);
//   Xoshiro256 meas_rng = fabric.stream("measurement", die_index, eval_index);
//
// Xoshiro256** is used as the engine: it satisfies the C++ named requirement
// UniformRandomBitGenerator, so it composes with <random> distributions, and
// it is small enough to create per-object without heap traffic.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace aropuf {

/// SplitMix64 — used for seeding and for hashing stream names.  Public because
/// tests and the variation substrate use it to derive per-coordinate hashes.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** engine (Blackman & Vigna).  Fast, 256-bit state, passes
/// BigCrush; plenty for circuit Monte Carlo.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a SplitMix64 of `seed`, per the
  /// reference implementation's recommendation.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate (Marsaglia polar method — branchy but
  /// allocation-free and deterministic across platforms, unlike
  /// std::normal_distribution whose algorithm is implementation-defined).
  double gaussian() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double sigma) noexcept { return mean + sigma * gaussian(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  // Cached second deviate from the polar method.
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Derives independent named sub-streams from one master seed.
///
/// Stream identity is the FNV-1a hash of the name mixed with up to three
/// integer indices; two streams collide only if their (name, indices) match.
class RngFabric {
 public:
  explicit constexpr RngFabric(std::uint64_t master_seed) noexcept
      : master_seed_(master_seed) {}

  [[nodiscard]] constexpr std::uint64_t master_seed() const noexcept { return master_seed_; }

  /// Returns a fresh engine for the sub-stream identified by (name, a, b, c).
  [[nodiscard]] Xoshiro256 stream(std::string_view name, std::uint64_t a = 0,
                                  std::uint64_t b = 0, std::uint64_t c = 0) const noexcept {
    return Xoshiro256(derive(name, a, b, c));
  }

  /// The derived 64-bit seed itself (used where only a seed is needed).
  [[nodiscard]] std::uint64_t derive(std::string_view name, std::uint64_t a = 0,
                                     std::uint64_t b = 0, std::uint64_t c = 0) const noexcept;

  /// A fabric whose streams are all distinct from this one's (used to give
  /// each chip in a population its own fabric).
  [[nodiscard]] RngFabric child(std::string_view name, std::uint64_t index = 0) const noexcept {
    return RngFabric(derive(name, index, 0x6368696c64ULL /* "child" */));
  }

 private:
  std::uint64_t master_seed_;
};

}  // namespace aropuf
