// Lightweight precondition / invariant checking for the aropuf library.
//
// ARO_REQUIRE is used at public API boundaries: it throws std::invalid_argument
// so callers can recover.  ARO_ASSERT is used for internal invariants: it
// throws std::logic_error (a bug in this library, not in the caller).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aropuf {

namespace detail {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assertion(const char* expr, const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace aropuf

#define ARO_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::aropuf::detail::throw_requirement(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define ARO_ASSERT(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) ::aropuf::detail::throw_assertion(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
