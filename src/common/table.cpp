#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace aropuf {

void Table::set_header(std::vector<std::string> header) {
  ARO_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  ARO_REQUIRE(header_.empty() || row.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (const std::size_t w : widths) total += w;

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell;
      if (i + 1 < widths.size()) os << " | ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace aropuf
