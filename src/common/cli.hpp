// Shared command-line and environment handling for tools and benches.
//
// Every binary in this repo used to hand-roll its own argv loop and call
// std::getenv at point of use, which let flag spellings and the README drift
// apart.  This module centralizes both:
//
//  * cli::Parser — a small typed flag parser.  Flags are declared once with a
//    destination pointer, a value placeholder, and a help line; the parser
//    accepts both "--name value" and "--name=value", generates --help output,
//    range-checks numeric values, and (in strict mode) rejects unknown flags
//    so the caller can exit with code 2.  Benches run in allow-unknown mode
//    so they stay drop-in under harnesses that append their own flags.
//
//  * the environment registry — the single list of AROPUF_*/ARO_* variables
//    the codebase reads, each with a one-line doc.  All call sites go through
//    cli::env_value(), which only accepts registered names (a typo'd lookup
//    is a logic error, caught by ARO_ASSERT) and treats an empty value as
//    unset.  cli::env_help() renders the registry for --help output so the
//    docs cannot diverge from the code.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace aropuf::cli {

enum class ParseStatus {
  kOk,    ///< all arguments consumed; run the program
  kHelp,  ///< --help was given and usage was printed; exit 0
  kError, ///< bad/unknown flag; diagnostics were printed; exit 2
};

class Parser {
 public:
  /// `program` is the argv[0] name used in usage/diagnostics; `summary` is a
  /// one-line description printed at the top of --help.
  Parser(std::string program, std::string summary);

  // -- flag declarations ----------------------------------------------------
  // Each returns *this so declarations can chain.  `name` must include the
  // leading dashes ("--chips").  Numeric overloads reject values below
  // `min_value` with a diagnostic naming the flag.

  Parser& flag(const std::string& name, bool* out, const std::string& help);
  Parser& opt_int(const std::string& name, int* out, const std::string& value_name,
                  const std::string& help, int min_value);
  Parser& opt_uint64(const std::string& name, std::uint64_t* out,
                     const std::string& value_name, const std::string& help);
  Parser& opt_double(const std::string& name, double* out, const std::string& value_name,
                     const std::string& help, double min_value);
  Parser& opt_string(const std::string& name, std::string* out,
                     const std::string& value_name, const std::string& help);
  /// Escape hatch for values with bespoke grammar (e.g. "--shard k/N" or
  /// checkpoint lists).  `parse` returns false to reject the value; on
  /// rejection the parser emits "invalid value for <name>".
  Parser& opt_custom(const std::string& name, const std::string& value_name,
                     const std::string& help,
                     std::function<bool(const std::string&)> parse);

  /// Marks the most recently declared flag as hidden: it still parses but is
  /// omitted from --help (internal worker-mode plumbing).
  Parser& hidden();

  /// In allow-unknown mode unrecognized arguments are skipped instead of
  /// being an error.  Benches use this to stay drop-in under flag-appending
  /// harnesses; tools stay strict.
  Parser& allow_unknown();

  /// Appends the environment-variable registry to --help output.
  Parser& with_env_help();

  /// Parses argv.  kHelp/kError have already printed to stdout/stderr
  /// respectively; the caller just maps them to exit codes 0/2.
  [[nodiscard]] ParseStatus parse(int argc, char** argv);

  void print_usage(std::FILE* to) const;

 private:
  struct Option {
    std::string name;
    std::string value_name;  ///< empty for boolean flags
    std::string help;
    bool is_hidden = false;
    std::function<bool(const std::string& value, std::string* error)> apply;
  };

  Parser& add(Option option);
  [[nodiscard]] const Option* find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  bool allow_unknown_ = false;
  bool env_help_ = false;
};

// -- environment registry ---------------------------------------------------

struct EnvVar {
  const char* name;
  const char* doc;
};

/// Every environment variable the codebase reads, with a one-line doc.
[[nodiscard]] const std::vector<EnvVar>& env_vars();

/// Returns the value of a *registered* environment variable, or nullptr when
/// it is unset or set to the empty string.  Unregistered names are a logic
/// error (ARO_ASSERT) so new env reads must be added to the registry.
[[nodiscard]] const char* env_value(const char* name);

/// Renders the registry as an indented block for --help output.
[[nodiscard]] std::string env_help();

}  // namespace aropuf::cli
