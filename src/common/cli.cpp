#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/check.hpp"

namespace aropuf::cli {
namespace {

bool parse_int_value(const std::string& text, long long* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_uint64_value(const std::string& text, unsigned long long* out) {
  if (text.empty() || text[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double_value(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Parser::Parser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Parser& Parser::add(Option option) {
  ARO_ASSERT(option.name.rfind("--", 0) == 0, "flag names must start with --");
  ARO_ASSERT(find(option.name) == nullptr, "duplicate flag declaration");
  options_.push_back(std::move(option));
  return *this;
}

Parser& Parser::flag(const std::string& name, bool* out, const std::string& help) {
  Option o;
  o.name = name;
  o.help = help;
  o.apply = [out](const std::string&, std::string*) {
    *out = true;
    return true;
  };
  return add(std::move(o));
}

Parser& Parser::opt_int(const std::string& name, int* out, const std::string& value_name,
                        const std::string& help, int min_value) {
  Option o;
  o.name = name;
  o.value_name = value_name;
  o.help = help;
  o.apply = [out, min_value](const std::string& value, std::string* error) {
    long long v = 0;
    if (!parse_int_value(value, &v) || v < min_value ||
        v > std::numeric_limits<int>::max()) {
      *error = "expected an integer >= " + std::to_string(min_value);
      return false;
    }
    *out = static_cast<int>(v);
    return true;
  };
  return add(std::move(o));
}

Parser& Parser::opt_uint64(const std::string& name, std::uint64_t* out,
                           const std::string& value_name, const std::string& help) {
  Option o;
  o.name = name;
  o.value_name = value_name;
  o.help = help;
  o.apply = [out](const std::string& value, std::string* error) {
    unsigned long long v = 0;
    if (!parse_uint64_value(value, &v)) {
      *error = "expected an unsigned integer";
      return false;
    }
    *out = static_cast<std::uint64_t>(v);
    return true;
  };
  return add(std::move(o));
}

Parser& Parser::opt_double(const std::string& name, double* out,
                           const std::string& value_name, const std::string& help,
                           double min_value) {
  Option o;
  o.name = name;
  o.value_name = value_name;
  o.help = help;
  o.apply = [out, min_value](const std::string& value, std::string* error) {
    double v = 0.0;
    if (!parse_double_value(value, &v) || v < min_value) {
      *error = "expected a number >= " + std::to_string(min_value);
      return false;
    }
    *out = v;
    return true;
  };
  return add(std::move(o));
}

Parser& Parser::opt_string(const std::string& name, std::string* out,
                           const std::string& value_name, const std::string& help) {
  Option o;
  o.name = name;
  o.value_name = value_name;
  o.help = help;
  o.apply = [out](const std::string& value, std::string*) {
    *out = value;
    return true;
  };
  return add(std::move(o));
}

Parser& Parser::opt_custom(const std::string& name, const std::string& value_name,
                           const std::string& help,
                           std::function<bool(const std::string&)> parse) {
  Option o;
  o.name = name;
  o.value_name = value_name;
  o.help = help;
  o.apply = [parse = std::move(parse)](const std::string& value, std::string*) {
    return parse(value);
  };
  return add(std::move(o));
}

Parser& Parser::hidden() {
  ARO_ASSERT(!options_.empty(), "hidden() needs a preceding flag declaration");
  options_.back().is_hidden = true;
  return *this;
}

Parser& Parser::allow_unknown() {
  allow_unknown_ = true;
  return *this;
}

Parser& Parser::with_env_help() {
  env_help_ = true;
  return *this;
}

const Parser::Option* Parser::find(const std::string& name) const {
  for (const Option& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

ParseStatus Parser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return ParseStatus::kHelp;
    }

    std::string name = arg;
    std::string inline_value;
    bool has_inline_value = false;
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
    }

    const Option* option = find(name);
    if (option == nullptr) {
      if (allow_unknown_) continue;  // drop-in mode: harness-owned flags pass through
      std::fprintf(stderr, "%s: unknown option %s\n", program_.c_str(), arg.c_str());
      print_usage(stderr);
      return ParseStatus::kError;
    }

    std::string value;
    if (!option->value_name.empty()) {
      if (has_inline_value) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: %s requires a value\n", program_.c_str(),
                     option->name.c_str());
        return ParseStatus::kError;
      }
    } else if (has_inline_value) {
      std::fprintf(stderr, "%s: %s does not take a value\n", program_.c_str(),
                   option->name.c_str());
      return ParseStatus::kError;
    }

    std::string error;
    if (!option->apply(value, &error)) {
      if (error.empty()) error = "invalid value";
      std::fprintf(stderr, "%s: %s '%s': %s\n", program_.c_str(), option->name.c_str(),
                   value.c_str(), error.c_str());
      return ParseStatus::kError;
    }
  }
  return ParseStatus::kOk;
}

void Parser::print_usage(std::FILE* to) const {
  std::fprintf(to, "usage: %s [options]\n", program_.c_str());
  if (!summary_.empty()) std::fprintf(to, "%s\n", summary_.c_str());
  std::fprintf(to, "\noptions:\n");
  std::size_t width = 0;
  std::vector<std::string> lefts;
  lefts.reserve(options_.size());
  for (const Option& o : options_) {
    std::string left = o.name;
    if (!o.value_name.empty()) left += " <" + o.value_name + ">";
    if (!o.is_hidden) width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }
  for (std::size_t i = 0; i < options_.size(); ++i) {
    if (options_[i].is_hidden) continue;
    std::fprintf(to, "  %-*s  %s\n", static_cast<int>(width), lefts[i].c_str(),
                 options_[i].help.c_str());
  }
  std::fprintf(to, "  %-*s  %s\n", static_cast<int>(width), "--help",
               "show this message and exit");
  if (env_help_) {
    std::fprintf(to, "\nenvironment:\n%s", env_help().c_str());
  }
}

const std::vector<EnvVar>& env_vars() {
  static const std::vector<EnvVar> vars = {
      {"AROPUF_THREADS", "worker-thread count for ParallelExecutor (1 disables the pool)"},
      {"AROPUF_KERNEL", "delay-kernel backend: reference | batched | simd"},
      {"AROPUF_MANIFEST", "write the JSON run manifest to this path"},
      {"AROPUF_LOG", "log level: trace|debug|info|warn|error|off (default warn)"},
      {"AROPUF_LOG_FORMAT", "log format: text | json"},
      {"AROPUF_TRACE", "write a Chrome-trace span file to this path"},
      {"AROPUF_PROF", "on | off — perf_event counter + resource profiling (default off)"},
      {"AROPUF_PROF_RESOURCE", "write the resource timeline JSONL to this path"},
      {"AROPUF_PROF_INTERVAL_MS", "resource-sampler cadence in milliseconds (default 250)"},
      {"AROPUF_PROF_FORCE_FALLBACK", "force the rusage fallback path (degraded-mode tests)"},
      {"ARO_CSV_DIR", "directory for bench CSV output (and the manifest fallback)"},
  };
  return vars;
}

const char* env_value(const char* name) {
  const auto& vars = env_vars();
  const bool registered =
      std::any_of(vars.begin(), vars.end(),
                  [name](const EnvVar& v) { return std::strcmp(v.name, name) == 0; });
  ARO_ASSERT(registered, "environment variable read without a registry entry");
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return nullptr;
  return value;
}

std::string env_help() {
  const auto& vars = env_vars();
  std::size_t width = 0;
  for (const EnvVar& v : vars) width = std::max(width, std::strlen(v.name));
  std::string out;
  for (const EnvVar& v : vars) {
    out += "  ";
    out += v.name;
    out.append(width - std::strlen(v.name), ' ');
    out += "  ";
    out += v.doc;
    out += "\n";
  }
  return out;
}

}  // namespace aropuf::cli
