#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.hpp"

namespace aropuf {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

RunningStats RunningStats::from_moments(std::size_t n, double mean, double m2, double min,
                                        double max) noexcept {
  RunningStats s;
  if (n == 0) return s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  ARO_REQUIRE(hi > lo, "histogram range must be non-empty");
  ARO_REQUIRE(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  ARO_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_width() const noexcept {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const {
  ARO_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

double Histogram::fraction(std::size_t bin) const {
  ARO_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::vector<std::string> Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::vector<std::string> lines;
  lines.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width)));
    std::string line(bar_len, '#');
    lines.push_back(std::move(line));
  }
  return lines;
}

double percentile(std::span<const double> samples, double p) {
  ARO_REQUIRE(!samples.empty(), "percentile of empty sample set");
  ARO_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  ARO_REQUIRE(k <= n, "binomial coefficient requires k <= n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  ARO_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  ARO_REQUIRE(k <= n, "binomial pmf requires k <= n");
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_tail_greater(std::uint64_t n, std::uint64_t k, double p) {
  ARO_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  if (k >= n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Sum from the smaller side for accuracy.  The tail P[X > k] is summed
  // directly when it is the short side; otherwise compute 1 - P[X <= k].
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) >= mean) {
    // Right tail is small: sum upward with early exit once terms vanish.
    double total = 0.0;
    for (std::uint64_t i = k + 1; i <= n; ++i) {
      const double term = binomial_pmf(n, i, p);
      total += term;
      if (term < total * 1e-18 && term > 0.0) break;
      if (term == 0.0 && total > 0.0) break;
    }
    return std::min(total, 1.0);
  }
  // Left side is the short one: 1 - P[X <= k].
  double cdf = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) cdf += binomial_pmf(n, i, p);
  return std::clamp(1.0 - cdf, 0.0, 1.0);
}

}  // namespace aropuf
