// RoPuf — one PUF instance on one die: the RO array, its pairing, the
// measurement machinery, and the aging state.
//
// A population study constructs many RoPuf objects from one RngFabric (one
// child fabric per die) and compares their responses; a lifetime study ages
// each instance with age_years() and re-evaluates.
//
// Both the conventional RO-PUF and the ARO-PUF are RoPuf objects — the
// behavioural difference is entirely in the PufConfig (pairing + stress
// profile), mirroring the paper's claim that the ARO design changes usage
// and layout discipline, not the oscillator itself.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "circuit/delay_kernel.hpp"
#include "circuit/measurement.hpp"
#include "circuit/operating_point.hpp"
#include "circuit/ring_oscillator.hpp"
#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "device/aging.hpp"
#include "device/technology.hpp"
#include "puf/puf_config.hpp"

namespace aropuf {

class RoPuf {
 public:
  /// Builds the die: draws every device's variation from `fabric`'s streams.
  /// Two RoPuf objects built from fabrics with different seeds model two
  /// different chips of the same design.
  RoPuf(const TechnologyParams& tech, PufConfig config, RngFabric fabric);

  /// Measured response (counter-based, with noise).  `eval_index`
  /// distinguishes repeated evaluations: the same index replays the same
  /// noise (reproducibility); increment it to model re-measurement.
  [[nodiscard]] BitVector evaluate(OperatingPoint op, std::uint64_t eval_index = 0) const;

  /// Idealized response from true frequencies (no measurement noise).
  [[nodiscard]] BitVector noiseless_response(OperatingPoint op) const;

  /// Per-pair signed frequency differences f_a − f_b in Hz (analysis hook
  /// for the E1 bench and the entropy study).
  [[nodiscard]] std::vector<double> pair_frequency_differences(OperatingPoint op) const;

  /// Frequencies of all ROs at `op` including accumulated aging, evaluated
  /// through the selected delay backend (one batched kernel pass, or the
  /// per-RO reference walk under DelayBackend::kReference).  frequencies[i]
  /// is bit-identical to oscillators()[i].frequency(op) on every backend.
  [[nodiscard]] std::vector<double> ro_frequencies(OperatingPoint op) const;

  /// Same with aging ignored (enrollment-time / fresh silicon);
  /// frequencies[i] == oscillators()[i].fresh_frequency(op).
  [[nodiscard]] std::vector<double> fresh_ro_frequencies(OperatingPoint op) const;

  /// Advances the device lifetime by `y` years under the configured profile.
  void age_years(double y);

  /// Advances by an explicit (profile, duration) phase — burn-in studies and
  /// ablations with mixed usage.
  void age(const StressProfile& profile, Seconds duration);

  /// Returns this chip to fresh silicon (replays of the same die).
  void reset_aging();

  [[nodiscard]] const PufConfig& config() const noexcept { return config_; }
  [[nodiscard]] const TechnologyParams& technology() const noexcept { return *tech_; }
  [[nodiscard]] const std::vector<RingOscillator>& oscillators() const noexcept { return ros_; }
  [[nodiscard]] const std::vector<std::pair<int, int>>& pairs() const noexcept { return pairs_; }
  [[nodiscard]] std::size_t response_bits() const noexcept { return pairs_.size(); }
  [[nodiscard]] OperatingPoint nominal_op() const {
    return OperatingPoint{tech_->vdd_nominal, tech_->temp_nominal};
  }

 private:
  std::shared_ptr<const TechnologyParams> tech_;
  PufConfig config_;
  RngFabric fabric_;
  AgingModel aging_;
  FrequencyCounter counter_;
  std::vector<RingOscillator> ros_;
  std::vector<std::pair<int, int>> pairs_;
  /// SoA snapshot of the (immutable) device parameters for the batched delay
  /// kernel; built once at construction, reused by every evaluation.
  RoArraySoA soa_;
};

/// Builds a population of `count` chips of the same design, each with an
/// independent die (global shift, spatial field, mismatch) derived from
/// `master_fabric`.
[[nodiscard]] std::vector<RoPuf> make_population(const TechnologyParams& tech,
                                                 const PufConfig& config, int count,
                                                 const RngFabric& master_fabric);

}  // namespace aropuf
