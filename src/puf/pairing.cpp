#include "puf/pairing.hpp"

#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace aropuf {

const char* to_string(PairingStrategy s) {
  switch (s) {
    case PairingStrategy::kAdjacentDedicated:
      return "adjacent-dedicated";
    case PairingStrategy::kDistantDedicated:
      return "distant-dedicated";
    case PairingStrategy::kChainNeighbor:
      return "chain-neighbor";
    case PairingStrategy::kRandomChallenge:
      return "random-challenge";
  }
  return "unknown";
}

std::size_t pairing_bits(PairingStrategy s, int num_ros) {
  ARO_REQUIRE(num_ros >= 2, "pairing needs at least two ROs");
  switch (s) {
    case PairingStrategy::kAdjacentDedicated:
    case PairingStrategy::kDistantDedicated:
    case PairingStrategy::kRandomChallenge:
      return static_cast<std::size_t>(num_ros / 2);
    case PairingStrategy::kChainNeighbor:
      return static_cast<std::size_t>(num_ros - 1);
  }
  return 0;
}

std::vector<std::pair<int, int>> make_pairs(PairingStrategy s, int num_ros,
                                            std::uint64_t seed) {
  ARO_REQUIRE(num_ros >= 2, "pairing needs at least two ROs");
  std::vector<std::pair<int, int>> pairs;
  switch (s) {
    case PairingStrategy::kAdjacentDedicated: {
      ARO_REQUIRE(num_ros % 2 == 0, "dedicated pairing needs an even RO count");
      pairs.reserve(static_cast<std::size_t>(num_ros / 2));
      for (int i = 0; i + 1 < num_ros; i += 2) pairs.emplace_back(i, i + 1);
      break;
    }
    case PairingStrategy::kDistantDedicated: {
      ARO_REQUIRE(num_ros % 2 == 0, "dedicated pairing needs an even RO count");
      const int half = num_ros / 2;
      pairs.reserve(static_cast<std::size_t>(half));
      for (int i = 0; i < half; ++i) pairs.emplace_back(i, i + half);
      break;
    }
    case PairingStrategy::kChainNeighbor: {
      pairs.reserve(static_cast<std::size_t>(num_ros - 1));
      for (int i = 0; i + 1 < num_ros; ++i) pairs.emplace_back(i, i + 1);
      break;
    }
    case PairingStrategy::kRandomChallenge: {
      ARO_REQUIRE(num_ros % 2 == 0, "random matching needs an even RO count");
      std::vector<int> order(static_cast<std::size_t>(num_ros));
      std::iota(order.begin(), order.end(), 0);
      Xoshiro256 rng(seed);
      // Fisher-Yates, then consecutive elements form the matching.
      for (std::size_t i = order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(rng.bounded(i));
        std::swap(order[i - 1], order[j]);
      }
      pairs.reserve(static_cast<std::size_t>(num_ros / 2));
      for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
        pairs.emplace_back(order[i], order[i + 1]);
      }
      break;
    }
  }
  ARO_ASSERT(pairs.size() == pairing_bits(s, num_ros), "pairing size mismatch");
  return pairs;
}

}  // namespace aropuf
