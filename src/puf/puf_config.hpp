// PUF instance configuration: array geometry, measurement window, pairing
// strategy, and lifetime stress profile.
//
// The two designs the paper compares are two configurations of the same
// machinery:
//
//   PufConfig::conventional()  — distant pairing, ROs enabled for the whole
//                                lifetime (oscillating, accumulating NBTI at
//                                ~50 % duty and HCI continuously);
//   PufConfig::aro()           — adjacent pairing, enable/power gating so
//                                stress accrues only during evaluations,
//                                with NBTI recovery in the idle state.
//
// Every field is independently overridable, which is what the E8 ablation
// bench exploits (gating alone, pairing alone, recovery alone).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "device/stress.hpp"
#include "puf/pairing.hpp"

namespace aropuf {

enum class PufDesign { kConventional, kAro, kCustom };

[[nodiscard]] const char* to_string(PufDesign d);

struct PufConfig {
  PufDesign design = PufDesign::kCustom;
  std::string label = "custom";

  /// Number of ring oscillators in the array (even; placed row-major on a
  /// grid of `array_width` columns).
  int num_ros = 256;
  /// Stages per RO (odd; stage 0 is the NAND enable stage).
  int stages = 13;
  int array_width = 16;

  /// Gate time of one frequency measurement.
  Seconds measurement_window = 20e-6;

  PairingStrategy pairing = PairingStrategy::kAdjacentDedicated;
  /// Seed for kRandomChallenge pairing (ignored otherwise).
  std::uint64_t challenge_seed = 0;

  /// How the ROs are stressed over the device lifetime.
  StressProfile lifetime_profile = StressProfile::aro_gated(20.0, 10e-3);

  /// Response length in bits under the configured pairing.
  [[nodiscard]] std::size_t response_bits() const {
    return pairing_bits(pairing, num_ros);
  }

  void validate() const;

  /// The paper's conventional RO-PUF baseline.
  static PufConfig conventional(int num_ros = 256, int stages = 13);

  /// The paper's aging-resistant ARO-PUF.  Default usage: 20 key
  /// evaluations per day, ~3 ms of oscillation each (one full-array
  /// measurement pass: 128 pairs x 20 us window) — the reference usage
  /// profile behind the 10-year reliability numbers.
  static PufConfig aro(int num_ros = 256, int stages = 13);
};

}  // namespace aropuf
