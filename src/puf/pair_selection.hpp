// Enrollment-time maximum-margin pair selection.
//
// Instead of a fixed pairing, each response bit draws on a *group* of k
// physically adjacent ROs; enrollment measures the group and publishes (as
// helper data) the pair with the largest frequency margin.  A bit backed by
// a wide margin survives noise, environment, and differential aging far
// longer — at the cost of k/2x more ROs per bit.  This is the classic
// reliability enhancement the paper's related-work discusses; the E13 bench
// quantifies it against (and combined with) the ARO design's gating.
//
// The selection indices are public: they reveal the *ordering margin*
// structure but, like all helper data here, not the response values.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/operating_point.hpp"
#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "puf/ro_puf.hpp"

namespace aropuf {

/// Chosen RO index pairs, one per group (public helper data).
struct SelectedPairs {
  int group_size = 0;
  std::vector<std::pair<int, int>> pairs;

  [[nodiscard]] std::size_t response_bits() const { return pairs.size(); }
};

/// Partitions the chip's array into consecutive groups of `group_size` ROs
/// and selects, per group, the pair with the widest measured count margin.
/// `repeats` measurements per RO are averaged to keep noise from steering
/// the choice.  Requires group_size >= 2 and num_ros % group_size == 0.
[[nodiscard]] SelectedPairs select_max_margin_pairs(const RoPuf& chip, int group_size,
                                                    OperatingPoint op, Xoshiro256& noise_rng,
                                                    int repeats = 3);

/// Response readout with an explicit pair table.
[[nodiscard]] BitVector evaluate_with_pairs(const RoPuf& chip, const SelectedPairs& selection,
                                            OperatingPoint op, Xoshiro256& noise_rng);

}  // namespace aropuf
