// Pairing strategies: which two ROs produce each response bit.
//
// The strategy is one of the two levers separating the ARO-PUF from the
// conventional design (the other is the stress profile):
//
//  * kAdjacentDedicated — (2i, 2i+1): each bit comes from two physically
//    adjacent ROs, so spatially-smooth systematic variation cancels.  The
//    ARO-PUF layout discipline; inter-chip HD ≈ 50 %.
//  * kDistantDedicated — (i, i + n/2): pairs span half the array, picking up
//    the die-independent layout systematics.  The conventional baseline;
//    inter-chip HD ≈ 45 %.
//  * kChainNeighbor — (i, i+1), overlapping: n−1 bits from n ROs but with
//    strong inter-bit correlation (used in the entropy study).
//  * kRandomChallenge — a challenge-seeded random perfect matching; models
//    challenge-response usage rather than fixed key generation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace aropuf {

enum class PairingStrategy {
  kAdjacentDedicated,
  kDistantDedicated,
  kChainNeighbor,
  kRandomChallenge,
};

/// Human-readable strategy name (for reports).
[[nodiscard]] const char* to_string(PairingStrategy s);

/// Number of response bits the strategy yields for `num_ros` oscillators.
[[nodiscard]] std::size_t pairing_bits(PairingStrategy s, int num_ros);

/// Builds the index pairs.  `seed` is used only by kRandomChallenge.
[[nodiscard]] std::vector<std::pair<int, int>> make_pairs(PairingStrategy s, int num_ros,
                                                          std::uint64_t seed = 0);

}  // namespace aropuf
