#include "puf/pair_selection.hpp"

#include <cmath>

#include "circuit/measurement.hpp"
#include "common/check.hpp"

namespace aropuf {

SelectedPairs select_max_margin_pairs(const RoPuf& chip, int group_size, OperatingPoint op,
                                      Xoshiro256& noise_rng, int repeats) {
  ARO_REQUIRE(group_size >= 2, "groups need at least two ROs");
  ARO_REQUIRE(repeats >= 1, "need at least one measurement per RO");
  const int n = static_cast<int>(chip.oscillators().size());
  ARO_REQUIRE(n % group_size == 0, "RO count must be a multiple of the group size");

  const FrequencyCounter counter(chip.technology(), chip.config().measurement_window);
  SelectedPairs selection;
  selection.group_size = group_size;
  selection.pairs.reserve(static_cast<std::size_t>(n / group_size));

  std::vector<double> mean_count(static_cast<std::size_t>(group_size));
  for (int base = 0; base < n; base += group_size) {
    for (int i = 0; i < group_size; ++i) {
      double total = 0.0;
      for (int r = 0; r < repeats; ++r) {
        total += static_cast<double>(
            counter.measure(chip.oscillators()[static_cast<std::size_t>(base + i)], op,
                            noise_rng));
      }
      mean_count[static_cast<std::size_t>(i)] = total / repeats;
    }
    std::pair<int, int> best{base, base + 1};
    double best_margin = -1.0;
    for (int i = 0; i < group_size; ++i) {
      for (int j = i + 1; j < group_size; ++j) {
        const double margin = std::fabs(mean_count[static_cast<std::size_t>(i)] -
                                        mean_count[static_cast<std::size_t>(j)]);
        if (margin > best_margin) {
          best_margin = margin;
          best = {base + i, base + j};
        }
      }
    }
    selection.pairs.push_back(best);
  }
  return selection;
}

BitVector evaluate_with_pairs(const RoPuf& chip, const SelectedPairs& selection,
                              OperatingPoint op, Xoshiro256& noise_rng) {
  ARO_REQUIRE(!selection.pairs.empty(), "empty pair selection");
  const auto n = static_cast<int>(chip.oscillators().size());
  const FrequencyCounter counter(chip.technology(), chip.config().measurement_window);
  BitVector response(selection.pairs.size());
  for (std::size_t b = 0; b < selection.pairs.size(); ++b) {
    const auto [ia, ib] = selection.pairs[b];
    ARO_REQUIRE(ia >= 0 && ia < n && ib >= 0 && ib < n && ia != ib,
                "pair indices out of range");
    const auto ca = counter.measure(chip.oscillators()[static_cast<std::size_t>(ia)], op,
                                    noise_rng);
    const auto cb = counter.measure(chip.oscillators()[static_cast<std::size_t>(ib)], op,
                                    noise_rng);
    response.set(b, compare_counts(ca, cb));
  }
  return response;
}

}  // namespace aropuf
