#include "puf/ro_puf.hpp"

#include <optional>

#include "common/check.hpp"
#include "sim/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "variation/process_variation.hpp"

namespace aropuf {

namespace {

/// One relaxed add per full-array evaluation (never per bit or per RO).
telemetry::Counter& evaluations_counter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::global().counter("puf.evaluations");
  return c;
}

}  // namespace

RoPuf::RoPuf(const TechnologyParams& tech, PufConfig config, RngFabric fabric)
    : tech_(std::make_shared<TechnologyParams>(tech)),
      config_(std::move(config)),
      fabric_(fabric),
      aging_(*tech_),
      counter_(*tech_, config_.measurement_window) {
  tech_->validate();
  config_.validate();
  const DieVariation die(*tech_, fabric_.derive("die-variation"));
  ros_.reserve(static_cast<std::size_t>(config_.num_ros));
  for (int i = 0; i < config_.num_ros; ++i) {
    const Position pos{static_cast<double>(i % config_.array_width),
                       static_cast<double>(i / config_.array_width)};
    Xoshiro256 device_rng = fabric_.stream("devices", static_cast<std::uint64_t>(i));
    ros_.emplace_back(*tech_, config_.stages, pos, die, device_rng);
  }
  pairs_ = make_pairs(config_.pairing, config_.num_ros, config_.challenge_seed);
  soa_ = RoArraySoA::from_oscillators(ros_);
}

std::vector<double> RoPuf::ro_frequencies(OperatingPoint op) const {
  std::vector<double> freqs(ros_.size());
  if (delay_backend() == DelayBackend::kReference) {
    for (std::size_t i = 0; i < ros_.size(); ++i) freqs[i] = ros_[i].frequency(op);
    return freqs;
  }
  std::vector<AgingShifts> shifts;
  shifts.reserve(ros_.size());
  for (const auto& ro : ros_) shifts.push_back(ro.aging_shifts());
  compute_frequencies(soa_, *tech_, op, shifts, freqs);
  return freqs;
}

std::vector<double> RoPuf::fresh_ro_frequencies(OperatingPoint op) const {
  std::vector<double> freqs(ros_.size());
  if (delay_backend() == DelayBackend::kReference) {
    for (std::size_t i = 0; i < ros_.size(); ++i) freqs[i] = ros_[i].fresh_frequency(op);
    return freqs;
  }
  const std::vector<AgingShifts> shifts(ros_.size());  // all-zero: fresh silicon
  compute_frequencies(soa_, *tech_, op, shifts, freqs);
  return freqs;
}

BitVector RoPuf::evaluate(OperatingPoint op, std::uint64_t eval_index) const {
  evaluations_counter().add(1);
  const std::vector<double> freqs = ro_frequencies(op);
  BitVector response(pairs_.size());
  for (std::size_t b = 0; b < pairs_.size(); ++b) {
    Xoshiro256 noise_rng = fabric_.stream("noise", eval_index, b);
    const auto [ia, ib] = pairs_[b];
    const std::uint64_t ca =
        counter_.measure_frequency(freqs[static_cast<std::size_t>(ia)], noise_rng);
    const std::uint64_t cb =
        counter_.measure_frequency(freqs[static_cast<std::size_t>(ib)], noise_rng);
    response.set(b, compare_counts(ca, cb));
  }
  return response;
}

BitVector RoPuf::noiseless_response(OperatingPoint op) const {
  const std::vector<double> freqs = ro_frequencies(op);
  BitVector response(pairs_.size());
  for (std::size_t b = 0; b < pairs_.size(); ++b) {
    const auto [ia, ib] = pairs_[b];
    response.set(b, freqs[static_cast<std::size_t>(ia)] > freqs[static_cast<std::size_t>(ib)]);
  }
  return response;
}

std::vector<double> RoPuf::pair_frequency_differences(OperatingPoint op) const {
  const std::vector<double> freqs = ro_frequencies(op);
  std::vector<double> diffs;
  diffs.reserve(pairs_.size());
  for (const auto& [ia, ib] : pairs_) {
    diffs.push_back(freqs[static_cast<std::size_t>(ia)] - freqs[static_cast<std::size_t>(ib)]);
  }
  return diffs;
}

void RoPuf::age_years(double y) {
  ARO_REQUIRE(y >= 0.0, "years must be non-negative");
  age(config_.lifetime_profile, years(y));
}

void RoPuf::age(const StressProfile& profile, Seconds duration) {
  if (delay_backend() == DelayBackend::kReference) {
    for (auto& ro : ros_) ro.apply_stress(aging_, profile, duration);
    return;
  }
  // One batched kernel pass yields every RO's current frequency at the
  // stress condition; each RO then advances with its own value — the same
  // number apply_stress(aging, profile, duration) would compute itself.
  const std::vector<double> freqs =
      ro_frequencies(OperatingPoint{tech_->vdd_nominal, profile.stress_temperature});
  for (std::size_t i = 0; i < ros_.size(); ++i) {
    ros_[i].apply_stress(aging_, profile, duration, freqs[i]);
  }
}

void RoPuf::reset_aging() {
  for (auto& ro : ros_) ro.reset_aging();
}

std::vector<RoPuf> make_population(const TechnologyParams& tech, const PufConfig& config,
                                   int count, const RngFabric& master_fabric) {
  ARO_REQUIRE(count >= 1, "population must have at least one chip");
  // Dies are independent (chip i draws only from the "chip"/i child fabric),
  // so construction parallelizes; staging through optionals sidesteps the
  // missing default constructor while keeping chips in index order.
  std::vector<std::optional<RoPuf>> staged(static_cast<std::size_t>(count));
  parallel_for_chips(staged.size(), [&](std::size_t i) {
    staged[i].emplace(tech, config, master_fabric.child("chip", static_cast<std::uint64_t>(i)));
  });
  std::vector<RoPuf> chips;
  chips.reserve(staged.size());
  for (auto& chip : staged) chips.push_back(std::move(*chip));
  return chips;
}

}  // namespace aropuf
