// Stability screening ("dark-bit masking").
//
// At enrollment, each response bit is measured repeatedly across
// environmental corners; bits that ever disagree with the nominal golden
// value are marked unstable and excluded from key material.  The mask is
// public helper data (it reveals which *positions* are noisy, not their
// values).  Masking attacks the measurement-noise and environmental error
// floor — it cannot see future aging — so it composes with, rather than
// replaces, the ARO design's gating: the E10 bench quantifies both.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/operating_point.hpp"
#include "common/bitvector.hpp"
#include "puf/ro_puf.hpp"

namespace aropuf {

struct ScreeningConfig {
  /// Re-measurements per operating point.
  int repeats = 5;
  /// Corners screened in addition to the nominal point.
  std::vector<OperatingPoint> corners;
  /// First eval index reserved for screening reads (so later evaluations
  /// don't replay screening noise).
  std::uint64_t base_eval_index = 1000;

  /// Nominal-only screening (noise floor screening).
  static ScreeningConfig nominal_only(int repeats = 5);

  /// Industrial screening: nominal + cold/hot + low/high VDD corners.
  static ScreeningConfig full_corners(const TechnologyParams& tech, int repeats = 3);

  void validate() const;
};

struct StabilityMask {
  /// Bit i set = position i was stable through screening (keep it).
  BitVector keep;

  [[nodiscard]] std::size_t stable_count() const { return keep.popcount(); }
  [[nodiscard]] double stable_fraction() const { return keep.ones_fraction(); }
};

/// Screens `chip` around its current aging state and returns the mask.
/// Deterministic for a given (chip, config).
[[nodiscard]] StabilityMask screen_stability(const RoPuf& chip, const ScreeningConfig& config);

/// Compacts `response` to only the positions the mask keeps.
[[nodiscard]] BitVector apply_mask(const BitVector& response, const StabilityMask& mask);

}  // namespace aropuf
