#include "puf/puf_config.hpp"

#include "common/check.hpp"

namespace aropuf {

const char* to_string(PufDesign d) {
  switch (d) {
    case PufDesign::kConventional:
      return "conventional RO-PUF";
    case PufDesign::kAro:
      return "ARO-PUF";
    case PufDesign::kCustom:
      return "custom";
  }
  return "unknown";
}

void PufConfig::validate() const {
  ARO_REQUIRE(num_ros >= 2 && num_ros % 2 == 0, "RO count must be even and >= 2");
  ARO_REQUIRE(stages >= 3 && stages % 2 == 1, "stage count must be odd and >= 3");
  ARO_REQUIRE(array_width >= 1, "array width must be positive");
  ARO_REQUIRE(measurement_window > 0.0, "measurement window must be positive");
  lifetime_profile.validate();
}

PufConfig PufConfig::conventional(int num_ros, int stages) {
  PufConfig c;
  c.design = PufDesign::kConventional;
  c.label = "conventional";
  c.num_ros = num_ros;
  c.stages = stages;
  c.pairing = PairingStrategy::kDistantDedicated;
  c.lifetime_profile = StressProfile::conventional_always_on();
  c.validate();
  return c;
}

PufConfig PufConfig::aro(int num_ros, int stages) {
  PufConfig c;
  c.design = PufDesign::kAro;
  c.label = "ARO";
  c.num_ros = num_ros;
  c.stages = stages;
  c.pairing = PairingStrategy::kAdjacentDedicated;
  // One key evaluation measures all 128 pairs at a 20 us window each:
  // ~10 ms of oscillation per evaluation (measurement plus repeats), 20 evaluations per day.
  c.lifetime_profile = StressProfile::aro_gated(20.0, 10e-3);
  c.validate();
  return c;
}

}  // namespace aropuf
