#include "puf/masking.hpp"

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

ScreeningConfig ScreeningConfig::nominal_only(int repeats) {
  ScreeningConfig c;
  c.repeats = repeats;
  return c;
}

ScreeningConfig ScreeningConfig::full_corners(const TechnologyParams& tech, int repeats) {
  ScreeningConfig c;
  c.repeats = repeats;
  c.corners = {
      OperatingPoint{tech.vdd_nominal, celsius(-40.0)},
      OperatingPoint{tech.vdd_nominal, celsius(125.0)},
      OperatingPoint{tech.vdd_nominal * 0.9, tech.temp_nominal},
      OperatingPoint{tech.vdd_nominal * 1.1, tech.temp_nominal},
  };
  return c;
}

void ScreeningConfig::validate() const {
  ARO_REQUIRE(repeats >= 1, "screening needs at least one repeat");
  for (const auto& op : corners) {
    ARO_REQUIRE(op.vdd > 0.0 && op.temp > 0.0, "screening corner out of domain");
  }
}

StabilityMask screen_stability(const RoPuf& chip, const ScreeningConfig& config) {
  config.validate();
  const OperatingPoint nominal = chip.nominal_op();
  const BitVector golden = chip.evaluate(nominal, config.base_eval_index);

  StabilityMask mask;
  mask.keep = BitVector(golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) mask.keep.set(i, true);

  std::uint64_t eval = config.base_eval_index + 1;
  auto screen_at = [&](const OperatingPoint& op) {
    for (int r = 0; r < config.repeats; ++r) {
      const BitVector reading = chip.evaluate(op, eval++);
      for (std::size_t i = 0; i < golden.size(); ++i) {
        if (reading.get(i) != golden.get(i)) mask.keep.set(i, false);
      }
    }
  };
  screen_at(nominal);
  for (const auto& corner : config.corners) screen_at(corner);
  return mask;
}

BitVector apply_mask(const BitVector& response, const StabilityMask& mask) {
  ARO_REQUIRE(response.size() == mask.keep.size(), "mask length mismatch");
  BitVector out;
  for (std::size_t i = 0; i < response.size(); ++i) {
    if (mask.keep.get(i)) out.push_back(response.get(i));
  }
  return out;
}

}  // namespace aropuf
