// Stress profiles and accumulated stress state.
//
// A StressProfile describes *how* a ring oscillator is used over its
// lifetime — the single design lever that separates the conventional RO-PUF
// from the ARO-PUF:
//
//  * conventional: ROs are enabled whenever the chip is powered, so they
//    oscillate for the whole lifetime (AC NBTI at ~50 % duty, continuous HCI
//    switching);
//  * ARO: ROs are enable/power gated and only stressed during key
//    evaluations (minutes per year), and the idle state parks internal nodes
//    so PMOS gates see no negative bias and interrupted stress *recovers*.
//
// A StressState is the integrated result: effective NBTI stress seconds and
// accumulated switching cycles, which the NBTI/HCI models turn into Vth
// shifts.
#pragma once

#include <string>

#include "common/units.hpp"

namespace aropuf {

struct StressProfile {
  std::string name;
  /// Fraction of wall-clock lifetime during which the RO oscillates.
  double oscillation_fraction = 1.0;
  /// Fraction of wall-clock lifetime during which a PMOS gate is under
  /// negative bias (0.5 while oscillating: the node toggles).
  double nbti_duty = 0.5;
  /// Whether the idle state permits NBTI relaxation (ARO enable gating).
  bool recovery_enabled = true;
  /// Die temperature while stress accrues.
  Kelvin stress_temperature = celsius(55.0);

  /// Conventional RO-PUF: oscillating whenever powered, no recovery benefit
  /// beyond the intrinsic AC behaviour.
  static StressProfile conventional_always_on();

  /// Ablation baseline: ROs powered but enable held static when idle — no
  /// oscillation (no HCI) but half the PMOS devices sit under DC bias, and
  /// no relaxation phases exist for them.
  static StressProfile static_enabled_idle();

  /// ARO-PUF gated profile: stressed only during evaluations.
  /// `evaluations_per_day` runs of `eval_duration` each.
  static StressProfile aro_gated(double evaluations_per_day, Seconds eval_duration);

  void validate() const;
};

/// Integrated stress of one RO (shared by all its devices; per-device
/// stochastic factors live on the Transistor).  The NBTI/HCI fields are in
/// *nominal-temperature-equivalent* units: AgingModel::accumulate folds the
/// phase's temperature acceleration in, so mixed-temperature missions add
/// exactly (see NbtiModel::temperature_weight).
struct StressState {
  /// Wall-clock lifetime represented by this state.
  Seconds elapsed = 0.0;
  /// Recovery/duty-weighted NBTI stress, nominal-equivalent seconds.
  Seconds nbti_effective = 0.0;
  /// Accumulated oscillation cycles, nominal-equivalent (HCI driver).
  double switching_cycles = 0.0;
};

}  // namespace aropuf
