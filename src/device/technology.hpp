// Technology parameter sets for the analytical transistor/circuit models.
//
// The ARO-PUF paper evaluates on a 90 nm commercial process in HSPICE; we
// substitute calibrated analytical models.  Every constant a model consumes
// lives here, so an experiment is fully described by (TechnologyParams,
// design, seed).  Factories provide a calibrated 90 nm set (the paper's
// node) plus 65/45 nm variants for scaling studies.
//
// Calibration anchors (see DESIGN.md §5):
//  * nominal 13-stage RO frequency in the hundreds of MHz;
//  * local Vth mismatch sigma ≈ 15 mV (Pelgrom, minimum-size devices);
//  * 10 years of DC NBTI stress at 55 °C ⇒ ≈ 50 mV |Vth_p| shift;
//  * HCI after 10 years of continuous ~500 MHz switching ⇒ ≈ 15-20 mV.
#pragma once

#include <string>

#include "common/units.hpp"

namespace aropuf {

struct TechnologyParams {
  std::string name;

  // --- Supply / thermal operating point -----------------------------------
  Volts vdd_nominal = 1.2;
  Kelvin temp_nominal = celsius(25.0);

  // --- Transistor DC parameters (alpha-power law) --------------------------
  /// Zero-bias threshold magnitudes (fresh, nominal corner).
  Volts vth_n = 0.35;
  Volts vth_p = 0.38;
  /// Velocity-saturation index of the alpha-power-law delay model.
  double alpha = 1.3;
  /// Stage-delay prefactor: tau = delay_k * vdd / (vdd - vth)^alpha.
  /// Units: s * V^(alpha-1); calibrated for the target nominal frequency.
  double delay_k = 0.0;
  /// NAND enable stage is slower than an inverter stage (series stack).
  double nand_delay_factor = 1.35;

  // --- Temperature behaviour ------------------------------------------------
  /// |Vth| reduction per kelvin above temp_nominal (positive number).
  double vth_tempco = 0.8e-3;
  /// Relative device-to-device spread of vth_tempco (drives T-induced flips).
  double vth_tempco_mismatch_rel = 0.05;
  /// Mobility exponent: delay_k scales with (T / temp_nominal)^mobility_exp.
  double mobility_temp_exp = 1.5;

  // --- Process variation -----------------------------------------------------
  /// Local (white, per-device) Vth mismatch sigma.
  Volts sigma_vth_local = 15e-3;
  /// Inter-die (global) Vth shift sigma, fully correlated within a die.
  Volts sigma_vth_global = 20e-3;
  /// Sigma of the within-die spatially correlated Vth component.
  Volts sigma_vth_spatial = 8e-3;
  /// Correlation length of the spatial component, in RO-pitch units.
  double spatial_correlation_length = 12.0;
  /// Amplitude of the layout-systematic frequency pattern shared by all dies
  /// (IR-drop gradient, litho systematics), expressed as an equivalent
  /// per-stage Vth offset at full array span.  Distant pairings pick this up
  /// (inter-chip HD < 50 %); adjacent pairings cancel it.
  Volts layout_systematic_amplitude = 6e-3;
  /// Wavelength of the smooth layout ripple, in RO-pitch units (matched to
  /// the default 16-wide array so distant pairs straddle half a period).
  double layout_ripple_wavelength = 16.0;

  // --- NBTI (reaction-diffusion long-term form) -----------------------------
  /// Shift after 1 s of effective stress at temp_nominal:
  /// dVth = nbti_a * exp(-(Ea/k)(1/T - 1/T_nom)) * (t_eff / 1 s)^n.
  /// 2.3 mV reproduces ~80 mV after 10 years of DC-equivalent stress at 55 C.
  double nbti_a = 2.3e-3;
  /// Effective activation energy (eV).
  double nbti_ea = 0.13;
  /// Time exponent n (classic RD value 1/6).
  double nbti_n = 1.0 / 6.0;
  /// Fraction of interrupted stress that recovers (AC/relaxation benefit).
  double nbti_recovery_fraction = 0.35;
  /// Device-to-device relative spread of the NBTI shift (Poisson trap
  /// statistics of minimum-size devices); the source of *differential*
  /// aging inside an RO pair.
  double nbti_sigma_rel = 0.52;

  // --- HCI (lucky-electron, switching-count driven) -------------------------
  /// Shift at 1e15 switching events at temp_nominal:
  /// dVth = hci_b * exp(-(Ea/k)(1/T - 1/T_nom)) * (N_switch / 1e15)^m.
  /// 2.0 mV gives ~25 mV after 10 years of continuous ~1.2 GHz oscillation.
  double hci_b = 2.0e-3;
  double hci_ea = -0.05;  // HCI worsens slightly at low T; negative Ea.
  double hci_m = 0.45;
  double hci_sigma_rel = 0.45;

  // --- Measurement noise ------------------------------------------------------
  /// Relative cycle-to-cycle thermal jitter of one RO period.
  double jitter_cycle_rel = 2e-3;
  /// Relative low-frequency (flicker / supply) noise per evaluation.
  double noise_lowfreq_rel = 1.2e-4;

  // --- Area (for the ECC / key-footprint analysis of Table E7) ----------------
  /// One two-input NAND gate equivalent (GE), in um^2.
  double area_ge_um2 = 3.1;
  /// One RO cell: stages + enable NAND + output mux leg, in GE.
  double area_ro_cell_ge = 22.0;
  /// Counter bit (TFF + glue), in GE; counters are width `counter_bits`.
  double area_counter_bit_ge = 7.0;
  int counter_bits = 16;

  /// Throws std::invalid_argument if any parameter is out of its physical
  /// domain (e.g. vth >= vdd, negative sigmas).
  void validate() const;

  /// Nominal (variation-free, fresh, T0) frequency of an n-stage RO; used by
  /// calibration tests and for choosing measurement windows.
  [[nodiscard]] Hertz nominal_ro_frequency(int stages) const;

  // --- Factories ---------------------------------------------------------------
  /// The paper's node: 90 nm bulk CMOS, 1.2 V.
  static TechnologyParams cmos90();
  /// 65 nm, 1.1 V (scaling study).
  static TechnologyParams cmos65();
  /// 45 nm, 1.0 V (scaling study).
  static TechnologyParams cmos45();
};

}  // namespace aropuf
