#include "device/hci.hpp"

#include <cmath>

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

HciModel::HciModel(const TechnologyParams& tech)
    : b_(tech.hci_b), ea_(tech.hci_ea), m_(tech.hci_m), t_nominal_(tech.temp_nominal) {
  tech.validate();
}

double HciModel::temperature_weight(Kelvin temp) const {
  ARO_REQUIRE(temp > 0.0, "temperature must be in kelvin");
  return std::exp(-(ea_ / (constants::k_boltzmann_ev * m_)) * (1.0 / temp - 1.0 / t_nominal_));
}

Volts HciModel::delta_vth_weighted(double weighted_cycles) const {
  ARO_REQUIRE(weighted_cycles >= 0.0, "switching cycles must be non-negative");
  if (weighted_cycles == 0.0) return 0.0;
  return b_ * std::pow(weighted_cycles / kReferenceCycles, m_);
}

Volts HciModel::delta_vth(double switching_cycles, Kelvin temp) const {
  ARO_REQUIRE(switching_cycles >= 0.0, "switching cycles must be non-negative");
  ARO_REQUIRE(temp > 0.0, "temperature must be in kelvin");
  if (switching_cycles == 0.0) return 0.0;
  const double arrhenius =
      std::exp(-(ea_ / constants::k_boltzmann_ev) * (1.0 / temp - 1.0 / t_nominal_));
  return b_ * arrhenius * std::pow(switching_cycles / kReferenceCycles, m_);
}

}  // namespace aropuf
