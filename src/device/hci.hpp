// Hot Carrier Injection — lucky-electron, switching-count-driven model.
//
//   dVth(N) = B * exp(-(Ea/k) * (1/T - 1/T_nom)) * (N / 1e15)^m,   m ≈ 0.45
//
// HCI damage accrues per switching event, so a conventional RO-PUF that
// oscillates for its entire lifetime accumulates ~1e17 cycles while the
// gated ARO-PUF accumulates only the cycles of its evaluation windows —
// a second, independent reason differential aging collapses in the ARO
// design.  Ea is slightly negative (HCI worsens at low temperature).
#pragma once

#include "common/units.hpp"

namespace aropuf {

struct TechnologyParams;

class HciModel {
 public:
  explicit HciModel(const TechnologyParams& tech);

  /// Deterministic |Vth| shift after `switching_cycles` transitions at die
  /// temperature `temp`.
  [[nodiscard]] Volts delta_vth(double switching_cycles, Kelvin temp) const;

  /// Temperature weight w(T): cycles at T count as w(T) * N nominal-
  /// temperature cycles (dVth = B * (w N / 1e15)^m), making mixed-
  /// temperature accumulation additive.
  [[nodiscard]] double temperature_weight(Kelvin temp) const;

  /// Shift for nominal-equivalent switching cycles.
  [[nodiscard]] Volts delta_vth_weighted(double weighted_cycles) const;

 private:
  static constexpr double kReferenceCycles = 1e15;

  double b_;
  double ea_;
  double m_;
  Kelvin t_nominal_;
};

}  // namespace aropuf
