// AgingModel — facade combining NBTI and HCI over a stress profile.
//
// The lifetime simulator advances each RO's StressState through this class;
// the circuit model then queries the deterministic shifts and scales them by
// each transistor's stochastic sensitivity.
#pragma once

#include "common/units.hpp"
#include "device/hci.hpp"
#include "device/nbti.hpp"
#include "device/stress.hpp"

namespace aropuf {

struct TechnologyParams;

/// Deterministic (population-mean) Vth shifts for one RO's stress history.
struct AgingShifts {
  Volts nbti = 0.0;  ///< applies to PMOS devices
  Volts hci = 0.0;   ///< applies to NMOS devices
};

class AgingModel {
 public:
  explicit AgingModel(const TechnologyParams& tech);

  /// Extends `state` by `duration` wall-clock seconds of use under `profile`,
  /// for an RO whose oscillation frequency while active is `f_osc`.
  /// Stress is stored in *nominal-temperature-equivalent* units (the
  /// profile's stress temperature is folded in via the models' temperature
  /// weights), so phases at different temperatures accumulate exactly.
  [[nodiscard]] StressState accumulate(const StressState& state, const StressProfile& profile,
                                       Seconds duration, Hertz f_osc) const;

  /// Deterministic shifts for an accumulated (nominal-equivalent) state.
  [[nodiscard]] AgingShifts shifts(const StressState& state) const;

  [[nodiscard]] const NbtiModel& nbti() const noexcept { return nbti_; }
  [[nodiscard]] const HciModel& hci() const noexcept { return hci_; }

 private:
  NbtiModel nbti_;
  HciModel hci_;
};

}  // namespace aropuf
