#include "device/stress.hpp"

#include "common/check.hpp"

namespace aropuf {

void StressProfile::validate() const {
  ARO_REQUIRE(oscillation_fraction >= 0.0 && oscillation_fraction <= 1.0,
              "oscillation fraction must be in [0, 1]");
  ARO_REQUIRE(nbti_duty >= 0.0 && nbti_duty <= 1.0, "NBTI duty must be in [0, 1]");
  ARO_REQUIRE(stress_temperature > 0.0, "stress temperature must be in kelvin");
}

StressProfile StressProfile::conventional_always_on() {
  StressProfile p;
  p.name = "conventional-always-on";
  p.oscillation_fraction = 1.0;
  p.nbti_duty = 0.5;
  // While oscillating, the relaxation half-cycles do recover; modelled via
  // the recovery term of the NBTI model.
  p.recovery_enabled = true;
  return p;
}

StressProfile StressProfile::static_enabled_idle() {
  StressProfile p;
  p.name = "static-enabled-idle";
  p.oscillation_fraction = 0.0;
  // Internal nodes freeze: statistically half the PMOS devices are under DC
  // bias with no relaxation phase.  The per-pair average duty is 0.5 but
  // without recovery, which is worse than the oscillating case.
  p.nbti_duty = 0.5;
  p.recovery_enabled = false;
  return p;
}

StressProfile StressProfile::aro_gated(double evaluations_per_day, Seconds eval_duration) {
  ARO_REQUIRE(evaluations_per_day >= 0.0, "evaluation rate must be non-negative");
  ARO_REQUIRE(eval_duration >= 0.0, "evaluation duration must be non-negative");
  StressProfile p;
  p.name = "aro-gated";
  const double active_fraction = evaluations_per_day * eval_duration / 86400.0;
  p.oscillation_fraction = active_fraction > 1.0 ? 1.0 : active_fraction;
  p.nbti_duty = 0.5 * p.oscillation_fraction;
  p.recovery_enabled = true;
  return p;
}

}  // namespace aropuf
