// Negative Bias Temperature Instability — long-term reaction-diffusion form.
//
//   dVth(t) = A * exp(-(Ea/k) * (1/T - 1/T_nom)) * (t_eff / 1 s)^n,  n ≈ 1/6
//
// The Arrhenius factor is *relative to the technology's nominal
// temperature*, so A is directly the shift after 1 s of effective stress at
// T_nom — which makes calibration transparent (A ~ 1.4 mV reproduces the
// published ~50 mV after 10 years of DC-equivalent stress at 55 °C).
//
// where t_eff is the duty- and recovery-weighted effective stress time:
//
//   t_eff = t * D * (1 - r * (1 - D))        when relaxation phases exist
//   t_eff = t * D                            when stress is uninterrupted
//
// D is the stress duty factor and r the recovery fraction.  For D = 0.5
// (oscillating RO) this reproduces the classic AC/DC NBTI ratio of ~0.85 in
// Vth after the 1/6 power; for the ARO-PUF's tiny duty (1e-4 or less) the
// shift collapses by the sixth root of the duty — the physical mechanism
// behind the paper's 32 % → 7.7 % flip-rate reduction.
#pragma once

#include "common/units.hpp"

namespace aropuf {

struct TechnologyParams;

class NbtiModel {
 public:
  explicit NbtiModel(const TechnologyParams& tech);

  /// Duty/recovery-weighted effective stress seconds for `elapsed` wall-clock
  /// seconds at duty `duty`.
  [[nodiscard]] Seconds effective_stress(Seconds elapsed, double duty,
                                         bool recovery_enabled) const;

  /// Deterministic |Vth| shift for the given effective stress at temperature
  /// `temp` (per-device stochastic factors are applied by the caller).
  [[nodiscard]] Volts delta_vth(Seconds effective_stress_seconds, Kelvin temp) const;

  /// Temperature weight w(T) such that stress at T for t seconds equals
  /// stress at T_nominal for w(T)*t seconds:  dVth = A * (w(T) t_eff)^n.
  /// Lets multi-temperature lifetimes accumulate *additively* in
  /// nominal-equivalent seconds (exact for the power-law model).
  [[nodiscard]] double temperature_weight(Kelvin temp) const;

  /// Shift for nominal-equivalent effective seconds (see temperature_weight).
  [[nodiscard]] Volts delta_vth_weighted(Seconds weighted_effective_seconds) const;

  /// Inverse of delta_vth in time: effective stress seconds needed to reach
  /// `shift` at `temp`.  Used by calibration tests.
  [[nodiscard]] Seconds effective_stress_for_shift(Volts shift, Kelvin temp) const;

 private:
  double a_;
  double ea_;
  double n_;
  double recovery_fraction_;
  Kelvin t_nominal_;
};

}  // namespace aropuf
