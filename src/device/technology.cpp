#include "device/technology.hpp"

#include <cmath>

#include "common/check.hpp"

namespace aropuf {

void TechnologyParams::validate() const {
  ARO_REQUIRE(vdd_nominal > 0.0, "vdd must be positive");
  ARO_REQUIRE(vth_n > 0.0 && vth_n < vdd_nominal, "vth_n must lie in (0, vdd)");
  ARO_REQUIRE(vth_p > 0.0 && vth_p < vdd_nominal, "vth_p must lie in (0, vdd)");
  ARO_REQUIRE(alpha >= 1.0 && alpha <= 2.0, "alpha-power exponent must be in [1, 2]");
  ARO_REQUIRE(delay_k > 0.0, "delay_k must be positive");
  ARO_REQUIRE(nand_delay_factor >= 1.0, "NAND stage cannot be faster than an inverter");
  ARO_REQUIRE(temp_nominal > 0.0, "temperature must be in kelvin (> 0)");
  ARO_REQUIRE(sigma_vth_local >= 0.0 && sigma_vth_global >= 0.0 && sigma_vth_spatial >= 0.0,
              "variation sigmas must be non-negative");
  ARO_REQUIRE(spatial_correlation_length > 0.0, "correlation length must be positive");
  ARO_REQUIRE(layout_ripple_wavelength > 0.0, "ripple wavelength must be positive");
  ARO_REQUIRE(nbti_a >= 0.0 && hci_b >= 0.0, "aging prefactors must be non-negative");
  ARO_REQUIRE(nbti_n > 0.0 && nbti_n < 1.0, "NBTI time exponent must be in (0, 1)");
  ARO_REQUIRE(nbti_recovery_fraction >= 0.0 && nbti_recovery_fraction < 1.0,
              "recovery fraction must be in [0, 1)");
  ARO_REQUIRE(hci_m > 0.0 && hci_m < 1.0, "HCI exponent must be in (0, 1)");
  ARO_REQUIRE(nbti_sigma_rel >= 0.0 && hci_sigma_rel >= 0.0,
              "aging spreads must be non-negative");
  ARO_REQUIRE(jitter_cycle_rel >= 0.0 && noise_lowfreq_rel >= 0.0,
              "noise parameters must be non-negative");
  ARO_REQUIRE(counter_bits > 0 && counter_bits <= 32, "counter width must be in (0, 32]");
  ARO_REQUIRE(area_ge_um2 > 0.0 && area_ro_cell_ge > 0.0 && area_counter_bit_ge > 0.0,
              "area parameters must be positive");
}

Hertz TechnologyParams::nominal_ro_frequency(int stages) const {
  ARO_REQUIRE(stages >= 3 && stages % 2 == 1, "RO needs an odd stage count >= 3");
  const double tau_n = delay_k * vdd_nominal / std::pow(vdd_nominal - vth_n, alpha);
  const double tau_p = delay_k * vdd_nominal / std::pow(vdd_nominal - vth_p, alpha);
  const double tau_stage = 0.5 * (tau_n + tau_p);
  // One stage carries the NAND enable; the rest are inverters.
  const double period =
      2.0 * (static_cast<double>(stages - 1) * tau_stage + nand_delay_factor * tau_stage);
  return 1.0 / period;
}

TechnologyParams TechnologyParams::cmos90() {
  TechnologyParams t;
  t.name = "cmos90";
  t.vdd_nominal = 1.2;
  t.vth_n = 0.35;
  t.vth_p = 0.38;
  t.alpha = 1.3;
  // Calibrated for ~28 ps per inverter stage at nominal corner: a 13-stage RO
  // oscillates near 1.3 GHz before division; the measured macro output is
  // typically divided, which only rescales counts.
  t.delay_k = 20.5e-12;
  t.validate();
  return t;
}

TechnologyParams TechnologyParams::cmos65() {
  TechnologyParams t = cmos90();
  t.name = "cmos65";
  t.vdd_nominal = 1.1;
  t.vth_n = 0.32;
  t.vth_p = 0.35;
  t.delay_k = 14.0e-12;
  t.sigma_vth_local = 18e-3;
  t.sigma_vth_global = 24e-3;
  t.sigma_vth_spatial = 10e-3;
  t.nbti_a = 2.6e-3;  // thinner oxide, higher field: slightly faster BTI
  t.hci_b = 2.3e-3;
  t.area_ge_um2 = 1.6;
  t.validate();
  return t;
}

TechnologyParams TechnologyParams::cmos45() {
  TechnologyParams t = cmos90();
  t.name = "cmos45";
  t.vdd_nominal = 1.0;
  t.vth_n = 0.30;
  t.vth_p = 0.33;
  t.delay_k = 9.5e-12;
  t.sigma_vth_local = 22e-3;
  t.sigma_vth_global = 28e-3;
  t.sigma_vth_spatial = 12e-3;
  t.nbti_a = 3.0e-3;
  t.hci_b = 2.7e-3;
  t.area_ge_um2 = 0.8;
  t.validate();
  return t;
}

}  // namespace aropuf
