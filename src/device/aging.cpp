#include "device/aging.hpp"

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

AgingModel::AgingModel(const TechnologyParams& tech) : nbti_(tech), hci_(tech) {}

StressState AgingModel::accumulate(const StressState& state, const StressProfile& profile,
                                   Seconds duration, Hertz f_osc) const {
  ARO_REQUIRE(duration >= 0.0, "duration must be non-negative");
  ARO_REQUIRE(f_osc >= 0.0, "oscillation frequency must be non-negative");
  profile.validate();
  StressState next = state;
  next.elapsed += duration;
  next.nbti_effective +=
      nbti_.temperature_weight(profile.stress_temperature) *
      nbti_.effective_stress(duration, profile.nbti_duty, profile.recovery_enabled);
  next.switching_cycles += hci_.temperature_weight(profile.stress_temperature) * f_osc *
                           duration * profile.oscillation_fraction;
  return next;
}

AgingShifts AgingModel::shifts(const StressState& state) const {
  AgingShifts s;
  s.nbti = nbti_.delta_vth_weighted(state.nbti_effective);
  s.hci = hci_.delta_vth_weighted(state.switching_cycles);
  return s;
}

}  // namespace aropuf
