#include "device/nbti.hpp"

#include <cmath>

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

NbtiModel::NbtiModel(const TechnologyParams& tech)
    : a_(tech.nbti_a),
      ea_(tech.nbti_ea),
      n_(tech.nbti_n),
      recovery_fraction_(tech.nbti_recovery_fraction),
      t_nominal_(tech.temp_nominal) {
  tech.validate();
}

Seconds NbtiModel::effective_stress(Seconds elapsed, double duty,
                                    bool recovery_enabled) const {
  ARO_REQUIRE(elapsed >= 0.0, "elapsed time must be non-negative");
  ARO_REQUIRE(duty >= 0.0 && duty <= 1.0, "duty must be in [0, 1]");
  if (!recovery_enabled || duty >= 1.0) return elapsed * duty;
  // Relaxation during the (1 - duty) fraction recovers part of the damage.
  return elapsed * duty * (1.0 - recovery_fraction_ * (1.0 - duty));
}

Volts NbtiModel::delta_vth(Seconds effective_stress_seconds, Kelvin temp) const {
  ARO_REQUIRE(effective_stress_seconds >= 0.0, "stress time must be non-negative");
  ARO_REQUIRE(temp > 0.0, "temperature must be in kelvin");
  if (effective_stress_seconds == 0.0) return 0.0;
  const double arrhenius =
      std::exp(-(ea_ / constants::k_boltzmann_ev) * (1.0 / temp - 1.0 / t_nominal_));
  return a_ * arrhenius * std::pow(effective_stress_seconds, n_);
}

double NbtiModel::temperature_weight(Kelvin temp) const {
  ARO_REQUIRE(temp > 0.0, "temperature must be in kelvin");
  // arrhenius^(1/n): folding the temperature factor inside the power law.
  return std::exp(-(ea_ / (constants::k_boltzmann_ev * n_)) * (1.0 / temp - 1.0 / t_nominal_));
}

Volts NbtiModel::delta_vth_weighted(Seconds weighted_effective_seconds) const {
  ARO_REQUIRE(weighted_effective_seconds >= 0.0, "stress time must be non-negative");
  if (weighted_effective_seconds == 0.0) return 0.0;
  return a_ * std::pow(weighted_effective_seconds, n_);
}

Seconds NbtiModel::effective_stress_for_shift(Volts shift, Kelvin temp) const {
  ARO_REQUIRE(shift >= 0.0, "shift must be non-negative");
  ARO_REQUIRE(temp > 0.0, "temperature must be in kelvin");
  if (shift == 0.0) return 0.0;
  const double arrhenius =
      std::exp(-(ea_ / constants::k_boltzmann_ev) * (1.0 / temp - 1.0 / t_nominal_));
  ARO_ASSERT(a_ > 0.0, "inverting a zero-amplitude NBTI model");
  return std::pow(shift / (a_ * arrhenius), 1.0 / n_);
}

}  // namespace aropuf
