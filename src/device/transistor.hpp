// Per-transistor state: threshold voltage with process variation, its
// temperature coefficient, and the device's individual aging sensitivities.
//
// Deterministic aging magnitudes (from NbtiModel / HciModel applied to the
// RO's shared StressState) are scaled per device by `nbti_sensitivity` /
// `hci_sensitivity`, which encode the Poisson-trap stochastic component of
// BTI/HCI — the physical origin of *differential* aging within an RO pair.
#pragma once

#include "common/units.hpp"

namespace aropuf {

enum class DeviceType { kNmos, kPmos };

/// Effective |Vth| of one device: fresh value, thermal shift, and the
/// device's share of the deterministic aging magnitude.
///
/// This free function is the *single* definition of the per-device Vth
/// composition: `Transistor::vth` (the per-RO reference path) and the
/// batched delay kernel (`circuit/delay_kernel.hpp`) both call it, so the
/// two paths execute the same floating-point operations in the same order
/// and stay bit-identical (see DESIGN.md "Performance model").
///
/// @param vth_fresh    fresh |Vth| at the nominal temperature
/// @param tempco       |Vth| reduction per kelvin above nominal
/// @param dtemp        `t - t_nominal` in kelvin
/// @param sensitivity  this device's stochastic aging multiplier
/// @param shift        deterministic aging shift for the device's mechanism
[[nodiscard]] inline Volts effective_vth(Volts vth_fresh, double tempco, Kelvin dtemp,
                                         double sensitivity, Volts shift) noexcept {
  return (vth_fresh - tempco * dtemp) + sensitivity * shift;
}

struct Transistor {
  DeviceType type = DeviceType::kNmos;
  /// Fresh |Vth| at the nominal temperature, including all process-variation
  /// components (global + spatial + local + layout-systematic).
  Volts vth_fresh = 0.0;
  /// |Vth| reduction per kelvin above nominal (device-specific; mismatch in
  /// this coefficient drives temperature-induced bit flips).
  double vth_tempco = 0.0;
  /// Multiplier on the deterministic NBTI shift (1.0 = nominal device).
  double nbti_sensitivity = 1.0;
  /// Multiplier on the deterministic HCI shift.
  double hci_sensitivity = 1.0;

  /// Effective |Vth| under temperature `t` given the deterministic aging
  /// magnitudes computed for this device's stress history.  NBTI applies to
  /// PMOS, HCI to NMOS (dominant mechanisms at the 90 nm node).
  [[nodiscard]] Volts vth(Kelvin t, Kelvin t_nominal, Volts nbti_shift,
                          Volts hci_shift) const noexcept {
    return (type == DeviceType::kPmos)
               ? effective_vth(vth_fresh, vth_tempco, t - t_nominal, nbti_sensitivity, nbti_shift)
               : effective_vth(vth_fresh, vth_tempco, t - t_nominal, hci_sensitivity, hci_shift);
  }
};

}  // namespace aropuf
