#include "auth/lru_cache.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace aropuf {

RecordCache::RecordCache(std::size_t capacity, std::size_t shard_count) : capacity_(capacity) {
  ARO_REQUIRE(capacity > 0, "cache capacity must be positive");
  if (shard_count == 0) shard_count = 16;
  shard_count = std::min(shard_count, capacity);
  per_shard_capacity_ = (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards_.push_back(std::make_unique<Shard>());
}

RecordCache::Shard& RecordCache::shard_for(DeviceId id) {
  // SplitMix the id before taking the residue so sequential or strided
  // device ids still spread across shards.
  const std::uint64_t mixed = SplitMix64(id).next();
  return *shards_[static_cast<std::size_t>(mixed % shards_.size())];
}

std::shared_ptr<const RecordCache::Entry> RecordCache::find(DeviceId id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void RecordCache::insert(DeviceId id, std::shared_ptr<const Entry> entry) {
  ARO_REQUIRE(entry != nullptr, "cannot cache a null record");
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->second = std::move(entry);
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  if (shard.order.size() >= per_shard_capacity_) {
    shard.index.erase(shard.order.back().first);
    shard.order.pop_back();
  }
  shard.order.emplace_front(id, std::move(entry));
  shard.index.emplace(id, shard.order.begin());
}

}  // namespace aropuf
