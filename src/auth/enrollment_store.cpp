#include "auth/enrollment_store.hpp"

#include "common/check.hpp"

namespace aropuf {

void EnrollmentStore::put(DeviceId /*id*/, const EnrollmentRecord& /*record*/) {
  ARO_REQUIRE(false, "enrollment store is read-only");
}

MemoryEnrollmentStore::MemoryEnrollmentStore(std::size_t response_bits, std::size_t helper_bits)
    : response_bits_(response_bits), helper_bits_(helper_bits), layout_adopted_(true) {
  ARO_REQUIRE(response_bits + helper_bits > 0, "record layout must carry some bits");
}

std::optional<RecordView> MemoryEnrollmentStore::find(DeviceId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  RecordView view;
  view.response = it->second.response.empty() ? nullptr : it->second.response.data();
  view.helper = it->second.helper.empty() ? nullptr : it->second.helper.data();
  view.tag = it->second.tag.data();
  return view;
}

void MemoryEnrollmentStore::put(DeviceId id, const EnrollmentRecord& record) {
  ARO_REQUIRE(record.response.size() + record.helper.size() > 0,
              "enrollment record must carry some bits");
  if (!layout_adopted_) {
    response_bits_ = record.response.size();
    helper_bits_ = record.helper.size();
    layout_adopted_ = true;
  }
  ARO_REQUIRE(record.response.size() == response_bits_,
              "response length mismatch");
  ARO_REQUIRE(record.helper.size() == helper_bits_,
              "helper-data length mismatch");
  Stored stored;
  stored.response = record.response.to_bytes();
  stored.helper = record.helper.to_bytes();
  stored.tag = record.tag;
  records_[id] = std::move(stored);
}

}  // namespace aropuf
