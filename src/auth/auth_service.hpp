// E15 — the fleet-scale enrollment/verification service.
//
// This module turns the paper's end-use (key material from an aging-
// resistant RO array) into a production workload: enroll millions of
// simulated devices into a sharded ARPS store, then drive a concurrent
// verification hot path (lookup -> threshold match or fuzzy-extractor
// reproduce -> HMAC compare) and measure auth/sec, tail latency, and the
// measured FAR/FRR operating point.
//
// Determinism contract (same as the Monte Carlo engine): every response and
// every request derives from its own named RngFabric sub-stream keyed by
// device/request index, so shard decomposition and thread count never change
// a single bit of the store or a single accept/reject decision.  The
// workload proves it by hashing the per-request decision vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "auth/authenticator.hpp"
#include "auth/store_binary.hpp"
#include "common/bitvector.hpp"
#include "keygen/sha256.hpp"

namespace aropuf {

/// How fleet device responses are produced.
enum class FleetModel : std::uint32_t {
  /// I.i.d. fair-coin responses per device with Bernoulli read noise — the
  /// statistical model behind the FAR analysis, cheap enough for 10^6+
  /// devices (the fleet-scale load generator).
  kSynthetic = 0,
  /// Full RoPuf circuit simulation (ARO pairing, cmos90) — paper-faithful,
  /// used at small scale in tests and demos.
  kSim = 1,
};

/// Identity of a simulated fleet: everything needed to regenerate any
/// device's enrollment or field response bit-exactly.
struct FleetConfig {
  /// Number of enrolled devices.
  std::uint64_t devices = 1000;
  /// Master seed; every device stream derives from it.
  std::uint64_t seed = 2014;
  /// Bits per enrollment response.
  std::uint32_t response_bits = 128;
  /// Response model.
  FleetModel model = FleetModel::kSynthetic;
};

/// Verifier key for a fleet, derived deterministically from the master seed
/// so shard builders and verifiers stamp/check identical binding tags.
[[nodiscard]] Authenticator::VerifierKey fleet_verifier_key(std::uint64_t seed);

/// DeviceId of device `index` (a SplitMix-derived 64-bit handle; scattered,
/// not sequential, so the sorted store index and the shard merge are
/// exercised for real).
[[nodiscard]] DeviceId fleet_device_id(const FleetConfig& fleet, std::uint64_t index);

/// The golden enrollment response of device `index`.
[[nodiscard]] BitVector fleet_enrollment_response(const FleetConfig& fleet, std::uint64_t index);

/// A field re-read of device `index`: the enrollment response with read
/// noise applied.  `eval_index` distinguishes repeated reads; `noise` is the
/// per-bit flip probability (ignored by kSim, which has its own measurement
/// noise model).
[[nodiscard]] BitVector fleet_field_response(const FleetConfig& fleet, std::uint64_t index,
                                             std::uint64_t eval_index, double noise);

/// ARPS header parameters describing this fleet's store.
[[nodiscard]] AuthStoreParams fleet_store_params(const FleetConfig& fleet);

/// Contiguous device-index range [first, last) owned by shard `shard_index`
/// of `shard_count` (even split, remainder to the leading shards).
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> fleet_shard_range(
    std::uint64_t devices, std::size_t shard_index, std::size_t shard_count);

/// Builds shard `shard_index` of the fleet's enrollment store and writes it
/// to `out_path` (id-sorted ARPS file).  Device construction parallelizes
/// over the global executor.  Returns the number of devices written.
std::uint64_t build_fleet_shard(const FleetConfig& fleet, std::size_t shard_index,
                                std::size_t shard_count, const std::string& out_path);

/// Shape of the verification request stream.
struct WorkloadConfig {
  /// Total verification requests.
  std::uint64_t requests = 100000;
  /// Fraction of requests presenting an impostor (random) response.
  double impostor_fraction = 0.1;
  /// Per-bit flip probability for genuine re-reads.
  double noise = 0.02;
  /// Fraction of the fleet forming the hot set (>= 1 device).
  double hot_fraction = 0.01;
  /// Probability a request targets the hot set (traffic skew).
  double hot_probability = 0.9;
  /// Seed of the request stream (independent of the fleet seed).
  std::uint64_t workload_seed = 7;
};

/// Measured outcome of one workload run.
struct WorkloadStats {
  /// Requests served.
  std::uint64_t requests = 0;
  /// Requests accepted.
  std::uint64_t accepted = 0;
  /// Genuine requests issued / rejected (false rejects).
  std::uint64_t genuine = 0;
  /// Genuine requests rejected.
  std::uint64_t false_rejects = 0;
  /// Impostor requests issued.
  std::uint64_t impostors = 0;
  /// Impostor requests accepted (false accepts).
  std::uint64_t false_accepts = 0;
  /// Wall-clock seconds for the whole request stream.
  double wall_seconds = 0.0;
  /// Requests per second.
  double auth_per_sec = 0.0;
  /// Median per-request verify latency, microseconds.
  double p50_us = 0.0;
  /// 99th-percentile per-request verify latency, microseconds.
  double p99_us = 0.0;
  /// Measured false-accept rate (false_accepts / impostors; 0 when none).
  double far_measured = 0.0;
  /// Measured false-reject rate (false_rejects / genuine; 0 when none).
  double frr_measured = 0.0;
  /// Cache hits observed during the run (0 without a cache).
  std::uint64_t cache_hits = 0;
  /// Cache misses observed during the run (0 without a cache).
  std::uint64_t cache_misses = 0;
  /// SHA-256 over the per-request accept/reject byte vector, in request
  /// order — the bit-identity witness across thread counts and cache modes.
  Sha256::Digest decisions_digest{};
};

/// Drives `cfg.requests` verifications against `auth` on the global
/// executor.  Per-request decisions depend only on (fleet, cfg), never on
/// thread count or cache state; latency and throughput of course do.
[[nodiscard]] WorkloadStats run_verify_workload(const Authenticator& auth,
                                                const FleetConfig& fleet,
                                                const WorkloadConfig& cfg);

}  // namespace aropuf
