#include "auth/auth_service.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "puf/ro_puf.hpp"
#include "sim/parallel.hpp"

namespace aropuf {

namespace {

/// Fills `bits` bits from 64-bit engine draws (LSB-first, matching the
/// packed layout) — one draw per word instead of one Bernoulli per bit.
BitVector random_bits(Xoshiro256& rng, std::uint32_t bits) {
  std::vector<std::uint8_t> bytes((bits + 7) / 8, 0);
  for (std::size_t off = 0; off < bytes.size(); off += 8) {
    const std::uint64_t word = rng();
    const std::size_t n = std::min<std::size_t>(8, bytes.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      bytes[off + i] = static_cast<std::uint8_t>((word >> (8 * i)) & 0xff);
    }
  }
  return BitVector::from_bytes(bytes.data(), bits);
}

RoPuf make_sim_chip(const FleetConfig& fleet, std::uint64_t index) {
  return RoPuf(TechnologyParams::cmos90(),
               PufConfig::aro(static_cast<int>(2 * fleet.response_bits)),
               RngFabric(fleet.seed).child("chip", index));
}

double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

}  // namespace

Authenticator::VerifierKey fleet_verifier_key(std::uint64_t seed) {
  static constexpr char kLabel[] = "aropuf-verifier-key";
  std::vector<std::uint8_t> material;
  material.reserve(sizeof kLabel - 1 + 8);
  material.insert(material.end(), reinterpret_cast<const std::uint8_t*>(kLabel),
                  reinterpret_cast<const std::uint8_t*>(kLabel) + sizeof kLabel - 1);
  for (int i = 0; i < 8; ++i) material.push_back(static_cast<std::uint8_t>((seed >> (8 * i)) & 0xff));
  return Sha256::hash(material);
}

DeviceId fleet_device_id(const FleetConfig& fleet, std::uint64_t index) {
  return RngFabric(fleet.seed).derive("auth-device-id", index);
}

BitVector fleet_enrollment_response(const FleetConfig& fleet, std::uint64_t index) {
  ARO_REQUIRE(fleet.response_bits > 0, "fleet responses must have bits");
  if (fleet.model == FleetModel::kSim) {
    const RoPuf chip = make_sim_chip(fleet, index);
    return chip.evaluate(chip.nominal_op(), 0);
  }
  Xoshiro256 rng = RngFabric(fleet.seed).stream("auth-response", index);
  return random_bits(rng, fleet.response_bits);
}

BitVector fleet_field_response(const FleetConfig& fleet, std::uint64_t index,
                               std::uint64_t eval_index, double noise) {
  ARO_REQUIRE(noise >= 0.0 && noise < 0.5, "read noise must be in [0, 0.5)");
  if (fleet.model == FleetModel::kSim) {
    const RoPuf chip = make_sim_chip(fleet, index);
    return chip.evaluate(chip.nominal_op(), eval_index);
  }
  BitVector response = fleet_enrollment_response(fleet, index);
  if (noise > 0.0) {
    Xoshiro256 rng = RngFabric(fleet.seed).stream("auth-noise", index, eval_index);
    for (std::size_t i = 0; i < response.size(); ++i) {
      if (rng.bernoulli(noise)) response.flip(i);
    }
  }
  return response;
}

AuthStoreParams fleet_store_params(const FleetConfig& fleet) {
  AuthStoreParams params;
  params.response_bits = fleet.response_bits;
  params.helper_bits = 0;
  params.model = static_cast<std::uint32_t>(fleet.model);
  params.fleet_seed = fleet.seed;
  return params;
}

std::pair<std::uint64_t, std::uint64_t> fleet_shard_range(std::uint64_t devices,
                                                          std::size_t shard_index,
                                                          std::size_t shard_count) {
  ARO_REQUIRE(shard_count > 0, "shard count must be positive");
  ARO_REQUIRE(shard_index < shard_count, "shard index out of range");
  const std::uint64_t base = devices / shard_count;
  const std::uint64_t extra = devices % shard_count;
  const std::uint64_t first =
      shard_index * base + std::min<std::uint64_t>(shard_index, extra);
  const std::uint64_t count = base + (shard_index < extra ? 1 : 0);
  return {first, first + count};
}

std::uint64_t build_fleet_shard(const FleetConfig& fleet, std::size_t shard_index,
                                std::size_t shard_count, const std::string& out_path) {
  ARO_REQUIRE(fleet.devices > 0, "fleet must have devices");
  const auto [first, last] = fleet_shard_range(fleet.devices, shard_index, shard_count);
  const auto count = static_cast<std::size_t>(last - first);
  const Authenticator::VerifierKey key = fleet_verifier_key(fleet.seed);

  std::vector<std::pair<DeviceId, EnrollmentRecord>> records(count);
  parallel_for_chips(count, [&](std::size_t j) {
    const std::uint64_t index = first + j;
    const DeviceId id = fleet_device_id(fleet, index);
    EnrollmentRecord record;
    record.response = fleet_enrollment_response(fleet, index);
    const std::vector<std::uint8_t> packed = record.response.to_bytes();
    record.tag = record_binding_tag(key, id, fleet.response_bits, 0, packed.data(), nullptr);
    records[j] = {id, std::move(record)};
  });
  write_enrollment_store(out_path, fleet_store_params(fleet), std::move(records));
  return count;
}

WorkloadStats run_verify_workload(const Authenticator& auth, const FleetConfig& fleet,
                                  const WorkloadConfig& cfg) {
  ARO_REQUIRE(cfg.requests > 0, "workload needs requests");
  ARO_REQUIRE(fleet.devices > 0, "fleet must have devices");
  ARO_REQUIRE(cfg.impostor_fraction >= 0.0 && cfg.impostor_fraction <= 1.0,
              "impostor fraction must be in [0, 1]");
  ARO_REQUIRE(cfg.hot_fraction > 0.0 && cfg.hot_fraction <= 1.0,
              "hot fraction must be in (0, 1]");
  ARO_REQUIRE(cfg.hot_probability >= 0.0 && cfg.hot_probability <= 1.0,
              "hot probability must be in [0, 1]");

  const auto hot_devices = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cfg.hot_fraction * static_cast<double>(fleet.devices)));
  const auto n = static_cast<std::size_t>(cfg.requests);
  std::vector<std::uint8_t> decisions(n, 0);
  std::vector<std::uint8_t> impostor(n, 0);
  std::vector<double> latency_us(n, 0.0);
  const RngFabric workload(cfg.workload_seed);

  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  parallel_for_chips(n, [&](std::size_t r) {
    // Every request draws from its own sub-stream and writes its own slots,
    // so decisions are bit-identical at any thread count.
    Xoshiro256 rng = workload.stream("auth-req", r);
    const bool hot = rng.bernoulli(cfg.hot_probability);
    const std::uint64_t index = hot ? rng.bounded(hot_devices) : rng.bounded(fleet.devices);
    const bool is_impostor = rng.bernoulli(cfg.impostor_fraction);
    BitVector claim;
    if (is_impostor) {
      claim = random_bits(rng, fleet.response_bits);  // inter-chip model: i.i.d. fair coin
    } else {
      claim = fleet_field_response(fleet, index, r, cfg.noise);
    }
    const DeviceId id = fleet_device_id(fleet, index);
    const auto start = Clock::now();
    const auto result = auth.verify(id, claim);
    const auto stop = Clock::now();
    ARO_ASSERT(result.has_value(), "workload targeted an unenrolled device");
    decisions[r] = result->accepted ? 1 : 0;
    impostor[r] = is_impostor ? 1 : 0;
    latency_us[r] =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(stop - start)
            .count();
  });
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - wall_start)
          .count();

  // Serial, index-ordered reduction.
  WorkloadStats stats;
  stats.requests = cfg.requests;
  for (std::size_t r = 0; r < n; ++r) {
    stats.accepted += decisions[r];
    if (impostor[r] != 0) {
      ++stats.impostors;
      stats.false_accepts += decisions[r];
    } else {
      ++stats.genuine;
      stats.false_rejects += decisions[r] == 0 ? 1 : 0;
    }
  }
  stats.wall_seconds = wall_seconds;
  stats.auth_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(cfg.requests) / wall_seconds : 0.0;
  stats.p50_us = percentile(latency_us, 0.50);
  stats.p99_us = percentile(latency_us, 0.99);
  if (stats.impostors > 0) {
    stats.far_measured =
        static_cast<double>(stats.false_accepts) / static_cast<double>(stats.impostors);
  }
  if (stats.genuine > 0) {
    stats.frr_measured =
        static_cast<double>(stats.false_rejects) / static_cast<double>(stats.genuine);
  }
  if (const RecordCache* cache = auth.cache()) {
    stats.cache_hits = cache->hits();
    stats.cache_misses = cache->misses();
  }
  stats.decisions_digest = Sha256::hash(decisions);
  return stats;
}

}  // namespace aropuf
