// Pluggable verifier-side enrollment storage behind the Authenticator.
//
// The pre-E15 Authenticator owned a private unordered_map<string, BitVector>;
// that shape cannot reach fleet scale (no persistence, no zero-copy load, no
// sharded build) and string keys allocate on every lookup.  The redesigned
// API splits storage from matching policy: Authenticator talks to an
// EnrollmentStore, device identity is a fixed-width 64-bit DeviceId, and
// records carry packed response/helper bits plus an HMAC binding tag so a
// store file can be integrity-checked record by record.
//
// Two backends implement the interface:
//   * MemoryEnrollmentStore — mutable in-memory map (tests, small demos,
//     incremental enrollment);
//   * BinaryEnrollmentStore (store_binary.hpp) — read-only mmap-ed ARPS
//     container for millions of devices.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"

namespace aropuf {

/// Fixed-width device handle used across the authentication service.
/// Replaces the std::string keys of the old Authenticator API: 64-bit ids
/// sort, hash, and pack into the binary store index without allocation.
using DeviceId = std::uint64_t;

/// Size of the HMAC-SHA256 binding tag stored with every enrollment record.
inline constexpr std::size_t kRecordTagBytes = 32;

/// Owned enrollment material for one device, as handed to put().
struct EnrollmentRecord {
  /// Enrollment response bits (empty in key-mode stores).
  BitVector response;
  /// Fuzzy-extractor helper data (empty in threshold-mode stores).
  BitVector helper;
  /// HMAC-SHA256 binding tag; semantics depend on the mode (see
  /// Authenticator: record-integrity tag in threshold mode, key-confirmation
  /// tag in key mode).
  std::array<std::uint8_t, kRecordTagBytes> tag{};
};

/// Zero-copy view of one stored record.  Pointers stay valid until the
/// owning store is mutated or destroyed; bit lengths come from the store
/// (response_bits() / helper_bits(), packed LSB-first as BitVector::to_bytes).
struct RecordView {
  /// Packed response bits, ceil(response_bits / 8) bytes (null when 0 bits).
  const std::uint8_t* response = nullptr;
  /// Packed helper-data bits, ceil(helper_bits / 8) bytes (null when 0 bits).
  const std::uint8_t* helper = nullptr;
  /// Binding tag, kRecordTagBytes bytes.
  const std::uint8_t* tag = nullptr;
};

/// Storage interface behind Authenticator.  A store is homogeneous: every
/// record carries response_bits() response bits and helper_bits() helper
/// bits, so lookups return raw views and the hot path never allocates.
class EnrollmentStore {
 public:
  virtual ~EnrollmentStore() = default;

  /// Number of enrolled devices.
  [[nodiscard]] virtual std::size_t device_count() const = 0;

  /// Bits per enrollment response (0 for key-mode stores).
  [[nodiscard]] virtual std::size_t response_bits() const = 0;

  /// Bits of fuzzy-extractor helper data per record (0 in threshold mode).
  [[nodiscard]] virtual std::size_t helper_bits() const = 0;

  /// Looks a device up; std::nullopt when it has no enrollment on file.
  [[nodiscard]] virtual std::optional<RecordView> find(DeviceId id) const = 0;

  /// Whether put() is supported (false for the read-only binary backend).
  [[nodiscard]] virtual bool is_mutable() const { return false; }

  /// Inserts or replaces a record.  Throws std::invalid_argument on
  /// read-only stores and on records whose bit lengths disagree with the
  /// store's adopted layout.
  virtual void put(DeviceId id, const EnrollmentRecord& record);

  /// Convenience: true when the device has an enrollment on file.
  [[nodiscard]] bool contains(DeviceId id) const { return find(id).has_value(); }
};

/// Mutable in-memory backend.  The record layout (response/helper bit
/// widths) is adopted from the first put() and enforced afterwards, which
/// preserves the old Authenticator's "any response length" ergonomics while
/// keeping the store homogeneous.
class MemoryEnrollmentStore final : public EnrollmentStore {
 public:
  /// Creates an empty store; the layout is adopted on first put().
  MemoryEnrollmentStore() = default;

  /// Creates an empty store with a fixed record layout.
  MemoryEnrollmentStore(std::size_t response_bits, std::size_t helper_bits);

  [[nodiscard]] std::size_t device_count() const override { return records_.size(); }
  [[nodiscard]] std::size_t response_bits() const override { return response_bits_; }
  [[nodiscard]] std::size_t helper_bits() const override { return helper_bits_; }
  [[nodiscard]] std::optional<RecordView> find(DeviceId id) const override;
  [[nodiscard]] bool is_mutable() const override { return true; }
  void put(DeviceId id, const EnrollmentRecord& record) override;

 private:
  struct Stored {
    std::vector<std::uint8_t> response;
    std::vector<std::uint8_t> helper;
    std::array<std::uint8_t, kRecordTagBytes> tag{};
  };

  std::unordered_map<DeviceId, Stored> records_;
  std::size_t response_bits_ = 0;
  std::size_t helper_bits_ = 0;
  bool layout_adopted_ = false;
};

}  // namespace aropuf
