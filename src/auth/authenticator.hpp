// Lightweight PUF authentication: verifier-side CRP database and
// threshold matching, with aging-aware threshold policy.
//
// The key-generation flow (keygen/) gives exact keys; many deployments
// instead authenticate by *approximate* response matching: the verifier
// stores enrollment responses, the device answers a challenge, and the
// verifier accepts when the Hamming distance is below a threshold.  The
// threshold must sit between the intra-chip error tail (false rejects) and
// the inter-chip distance tail (false accepts) — and the intra-chip tail
// *moves* as the device ages, which is exactly the failure mode the
// ARO-PUF prevents.  E13 quantifies the authentication lifetime of both
// designs under a fixed-threshold policy and under re-enrollment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"

namespace aropuf {

struct AuthPolicy {
  /// Accept when fractional HD to the enrolled response is <= threshold.
  double accept_threshold = 0.20;

  void validate() const;

  /// False-accept probability of this threshold for an `n`-bit response
  /// against a *different* chip (inter-chip HD ~ Bin(n, 0.5)).
  [[nodiscard]] double false_accept_probability(std::size_t response_bits) const;

  /// Threshold placed to bound the false-accept rate at `target_far` for
  /// `response_bits`-bit responses (largest threshold meeting the bound).
  static AuthPolicy for_false_accept_rate(std::size_t response_bits, double target_far);
};

struct AuthResult {
  bool accepted = false;
  double fractional_distance = 1.0;
  /// Margin to the threshold (positive = accepted with room to spare).
  double margin = 0.0;
};

/// Verifier-side database: enrolled responses per device id.
class Authenticator {
 public:
  explicit Authenticator(AuthPolicy policy);

  [[nodiscard]] const AuthPolicy& policy() const noexcept { return policy_; }

  /// Registers (or refreshes) a device's enrollment response.
  void enroll(const std::string& device_id, BitVector response);

  /// True if the device has an enrollment on file.
  [[nodiscard]] bool knows(const std::string& device_id) const;

  /// Number of enrolled devices.
  [[nodiscard]] std::size_t enrolled_count() const noexcept { return db_.size(); }

  /// Verifies a response claim; std::nullopt when the device is unknown.
  [[nodiscard]] std::optional<AuthResult> verify(const std::string& device_id,
                                                 const BitVector& response) const;

  /// Re-enrollment hygiene: returns true when the device authenticated but
  /// with less than `refresh_margin` of threshold headroom — the moment to
  /// refresh its stored response before aging drifts it out of reach.
  [[nodiscard]] bool needs_refresh(const AuthResult& result, double refresh_margin) const;

 private:
  AuthPolicy policy_;
  std::unordered_map<std::string, BitVector> db_;
};

}  // namespace aropuf
