// PUF authentication service: threshold matching and key confirmation over a
// pluggable enrollment store, with aging-aware threshold policy.
//
// The key-generation flow (keygen/) gives exact keys; many deployments
// instead authenticate by *approximate* response matching: the verifier
// stores enrollment responses, the device answers a challenge, and the
// verifier accepts when the Hamming distance is below a threshold.  The
// threshold must sit between the intra-chip error tail (false rejects) and
// the inter-chip distance tail (false accepts) — and the intra-chip tail
// *moves* as the device ages, which is exactly the failure mode the
// ARO-PUF prevents.  E13 quantifies the authentication lifetime of both
// designs under a fixed-threshold policy and under re-enrollment.
//
// API (since the E15 service redesign): devices are 64-bit DeviceId handles
// and storage lives behind EnrollmentStore (enrollment_store.hpp), so the
// same verifier code runs against the in-memory map and the mmap-ed
// million-device ARPS store (store_binary.hpp).  The old string-keyed
// methods survive one release as a deprecated shim that hashes the name to a
// DeviceId.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "auth/enrollment_store.hpp"
#include "auth/lru_cache.hpp"
#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "keygen/fuzzy_extractor.hpp"

namespace aropuf {

/// Threshold-matching policy: accept/reject rule plus its analytic FAR.
struct AuthPolicy {
  /// Accept when fractional HD to the enrolled response is <= threshold.
  double accept_threshold = 0.20;

  /// Throws std::invalid_argument unless the threshold lies in (0, 0.5).
  void validate() const;

  /// False-accept probability of this threshold for an `n`-bit response
  /// against a *different* chip (inter-chip HD ~ Bin(n, 0.5)).
  [[nodiscard]] double false_accept_probability(std::size_t response_bits) const;

  /// Threshold placed to bound the false-accept rate at `target_far` for
  /// `response_bits`-bit responses (largest threshold meeting the bound;
  /// exact-match-only is the floor).  Throws std::invalid_argument when the
  /// target is not in (0, 0.5), when the response is shorter than two bits,
  /// or when even exact match cannot meet the target — never a silent
  /// degenerate threshold.
  static AuthPolicy for_false_accept_rate(std::size_t response_bits, double target_far);
};

/// Outcome of one threshold-matching verification.
struct AuthResult {
  /// True when the claim matched within the policy threshold.
  bool accepted = false;
  /// Fractional Hamming distance between claim and enrollment.
  double fractional_distance = 1.0;
  /// Margin to the threshold (positive = accepted with room to spare).
  double margin = 0.0;
};

/// Outcome of one key-confirmation verification (fuzzy-extractor mode).
struct KeyAuthResult {
  /// True when the reconstructed key matched the enrolled confirmation tag.
  bool accepted = false;
  /// True when the error-correcting decode itself succeeded; false means the
  /// response had drifted beyond the code's correction capability.
  bool decoded = false;
};

/// Verifier: matching policy + enrollment store + optional hot-device cache.
class Authenticator {
 public:
  /// Key material for record-binding HMAC tags.
  using VerifierKey = std::array<std::uint8_t, 32>;

  /// Verifier over an existing store.  `key` authenticates stored records:
  /// enroll() stamps each record with HMAC(key, id || layout || payload) and
  /// verify() re-checks the stamp before trusting store bytes.
  Authenticator(AuthPolicy policy, std::shared_ptr<EnrollmentStore> store, VerifierKey key);

  /// Verifier over an existing store with an all-zero verifier key.
  Authenticator(AuthPolicy policy, std::shared_ptr<EnrollmentStore> store);

  /// Verifier over a fresh in-memory store (the pre-redesign default).
  explicit Authenticator(AuthPolicy policy);

  /// The matching policy.
  [[nodiscard]] const AuthPolicy& policy() const noexcept { return policy_; }

  /// The backing store.
  [[nodiscard]] const EnrollmentStore& store() const noexcept { return *store_; }

  /// Registers (or refreshes) a device's enrollment response, stamping the
  /// record with this verifier's binding tag.  Requires a mutable store.
  void enroll(DeviceId id, BitVector response);

  /// Key-mode enrollment: runs the fuzzy extractor on the golden response
  /// and stores helper data plus a key-confirmation tag — the raw response
  /// and the key itself are never stored.  Requires a mutable store.
  void enroll_key(DeviceId id, const FuzzyExtractor& extractor, const BitVector& golden_response,
                  Xoshiro256& rng);

  /// True if the device has an enrollment on file.
  [[nodiscard]] bool knows(DeviceId id) const { return store_->contains(id); }

  /// Number of enrolled devices.
  [[nodiscard]] std::size_t enrolled_count() const { return store_->device_count(); }

  /// Verifies a response claim by threshold matching; std::nullopt when the
  /// device is unknown.  Cold lookups re-check the record's binding tag and
  /// throw AuthStoreError(kTagMismatch) on corrupted store bytes.
  [[nodiscard]] std::optional<AuthResult> verify(DeviceId id, const BitVector& response) const;

  /// Verifies a response claim by fuzzy-extractor key confirmation:
  /// reconstructs the key through the stored helper data and compares its
  /// confirmation tag.  std::nullopt when the device is unknown.
  [[nodiscard]] std::optional<KeyAuthResult> verify_key(DeviceId id,
                                                        const FuzzyExtractor& extractor,
                                                        const BitVector& response) const;

  /// Re-enrollment hygiene: returns true when the device authenticated but
  /// with less than `refresh_margin` of threshold headroom — the moment to
  /// refresh its stored response before aging drifts it out of reach.
  [[nodiscard]] bool needs_refresh(const AuthResult& result, double refresh_margin) const;

  /// Attaches a hot-device LRU cache of `capacity` records (0 detaches).
  /// Cached records were tag-checked on first load; the cache memoizes the
  /// record only, so decisions are identical with or without it.
  void set_cache(std::size_t capacity);

  /// The attached cache, or nullptr (for hit/miss reporting).
  [[nodiscard]] const RecordCache* cache() const noexcept { return cache_.get(); }

  /// Deprecated string-keyed shim (one release): hashes the name with
  /// device_id_from_name() and forwards.
  [[deprecated("use DeviceId keys; names are hashed via device_id_from_name()")]]
  void enroll(const std::string& device_name, BitVector response);

  /// Deprecated string-keyed shim (one release).
  [[deprecated("use DeviceId keys; names are hashed via device_id_from_name()")]]
  [[nodiscard]] bool knows(const std::string& device_name) const;

  /// Deprecated string-keyed shim (one release).
  [[deprecated("use DeviceId keys; names are hashed via device_id_from_name()")]]
  [[nodiscard]] std::optional<AuthResult> verify(const std::string& device_name,
                                                 const BitVector& response) const;

  /// Mapping the deprecated shim applies to legacy string keys: FNV-1a 64
  /// over the name's bytes.  Stable across releases so migrating callers can
  /// translate existing databases.
  [[nodiscard]] static DeviceId device_id_from_name(const std::string& device_name);

 private:
  [[nodiscard]] std::shared_ptr<const RecordCache::Entry> load_record(DeviceId id,
                                                                      RecordView view) const;

  AuthPolicy policy_;
  std::shared_ptr<EnrollmentStore> store_;
  VerifierKey key_{};
  // verify() is logically const; the cache is internally synchronized.
  mutable std::unique_ptr<RecordCache> cache_;
};

/// Binding tag enroll() stamps on a record and verify() re-checks:
/// HMAC-SHA256(verifier_key, id || response_bits || helper_bits ||
/// packed_response || packed_helper).  Exposed so out-of-process store
/// builders (the sharded fleet build) can stamp records identically.
[[nodiscard]] std::array<std::uint8_t, kRecordTagBytes> record_binding_tag(
    const Authenticator::VerifierKey& key, DeviceId id, std::uint32_t response_bits,
    std::uint32_t helper_bits, const std::uint8_t* response_bytes,
    const std::uint8_t* helper_bytes);

/// Key-confirmation tag for key-mode records: HMAC-SHA256(device_key,
/// "aropuf-key-confirm" || id).  Stored at enrollment; recomputed from the
/// reconstructed key at verification.
[[nodiscard]] std::array<std::uint8_t, kRecordTagBytes> key_confirmation_tag(
    const Sha256::Digest& device_key, DeviceId id);

}  // namespace aropuf
