#include "auth/authenticator.hpp"

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "auth/store_binary.hpp"
#include "common/check.hpp"
#include "common/statistics.hpp"
#include "keygen/hmac.hpp"

namespace aropuf {

namespace {

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

/// Constant-time tag comparison: no early exit on the first differing byte.
bool tag_equal(const std::uint8_t* a, const std::uint8_t* b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < kRecordTagBytes; ++i) diff |= static_cast<unsigned>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace

void AuthPolicy::validate() const {
  ARO_REQUIRE(accept_threshold > 0.0 && accept_threshold < 0.5,
              "accept threshold must be in (0, 0.5)");
}

double AuthPolicy::false_accept_probability(std::size_t response_bits) const {
  validate();
  ARO_REQUIRE(response_bits >= 1, "response must have bits");
  // A different chip's response is i.i.d. fair coin vs ours: accept iff
  // HD <= threshold * n, i.e. P[Bin(n, 1/2) <= floor(t n)].
  const auto n = static_cast<std::uint64_t>(response_bits);
  const auto limit = static_cast<std::uint64_t>(std::floor(
      accept_threshold * static_cast<double>(response_bits)));
  return 1.0 - binomial_tail_greater(n, limit, 0.5);
}

AuthPolicy AuthPolicy::for_false_accept_rate(std::size_t response_bits, double target_far) {
  ARO_REQUIRE(response_bits >= 2, "response must have at least 2 bits");
  ARO_REQUIRE(target_far > 0.0 && target_far < 0.5, "target FAR must be in (0, 0.5)");
  // Candidate thresholds (k + 0.5)/n accept HD <= k; FAR is monotone in k.
  // k = 0 (exact match only, FAR = 2^-n) is the floor: when even that misses
  // the target, there is no valid policy and we say so instead of returning
  // a degenerate threshold.
  std::optional<AuthPolicy> best;
  for (std::size_t k = 0; 2 * k + 1 < response_bits; ++k) {
    AuthPolicy candidate;
    candidate.accept_threshold =
        (static_cast<double>(k) + 0.5) / static_cast<double>(response_bits);
    if (candidate.false_accept_probability(response_bits) <= target_far) {
      best = candidate;
    } else {
      break;
    }
  }
  ARO_REQUIRE(best.has_value(), "response too short to meet the FAR target even at exact match");
  best->validate();
  return *best;
}

std::array<std::uint8_t, kRecordTagBytes> record_binding_tag(
    const Authenticator::VerifierKey& key, DeviceId id, std::uint32_t response_bits,
    std::uint32_t helper_bits, const std::uint8_t* response_bytes,
    const std::uint8_t* helper_bytes) {
  const std::size_t response_len = (response_bits + 7) / 8;
  const std::size_t helper_len = (helper_bits + 7) / 8;
  std::vector<std::uint8_t> message;
  message.reserve(16 + response_len + helper_len);
  append_u64le(message, id);
  append_u32le(message, response_bits);
  append_u32le(message, helper_bits);
  if (response_len > 0) message.insert(message.end(), response_bytes, response_bytes + response_len);
  if (helper_len > 0) message.insert(message.end(), helper_bytes, helper_bytes + helper_len);
  return hmac_sha256(key, message);
}

std::array<std::uint8_t, kRecordTagBytes> key_confirmation_tag(const Sha256::Digest& device_key,
                                                               DeviceId id) {
  static constexpr char kLabel[] = "aropuf-key-confirm";
  std::vector<std::uint8_t> message;
  message.reserve(sizeof kLabel - 1 + 8);
  message.insert(message.end(), reinterpret_cast<const std::uint8_t*>(kLabel),
                 reinterpret_cast<const std::uint8_t*>(kLabel) + sizeof kLabel - 1);
  append_u64le(message, id);
  return hmac_sha256(device_key, message);
}

Authenticator::Authenticator(AuthPolicy policy, std::shared_ptr<EnrollmentStore> store,
                             VerifierKey key)
    : policy_(policy), store_(std::move(store)), key_(key) {
  policy_.validate();
  ARO_REQUIRE(store_ != nullptr, "authenticator needs a store");
}

Authenticator::Authenticator(AuthPolicy policy, std::shared_ptr<EnrollmentStore> store)
    : Authenticator(policy, std::move(store), VerifierKey{}) {}

Authenticator::Authenticator(AuthPolicy policy)
    : Authenticator(policy, std::make_shared<MemoryEnrollmentStore>(), VerifierKey{}) {}

void Authenticator::enroll(DeviceId id, BitVector response) {
  ARO_REQUIRE(!response.empty(), "enrollment response must be non-empty");
  EnrollmentRecord record;
  record.response = std::move(response);
  const std::vector<std::uint8_t> packed = record.response.to_bytes();
  record.tag = record_binding_tag(key_, id, static_cast<std::uint32_t>(record.response.size()),
                                  0, packed.data(), nullptr);
  store_->put(id, record);
}

void Authenticator::enroll_key(DeviceId id, const FuzzyExtractor& extractor,
                               const BitVector& golden_response, Xoshiro256& rng) {
  const Enrollment enrollment = extractor.enroll(golden_response, rng);
  EnrollmentRecord record;
  record.helper = enrollment.helper_data;
  record.tag = key_confirmation_tag(enrollment.key, id);
  store_->put(id, record);
}

std::shared_ptr<const RecordCache::Entry> Authenticator::load_record(DeviceId id,
                                                                     RecordView view) const {
  const std::uint32_t response_bits = static_cast<std::uint32_t>(store_->response_bits());
  const std::uint32_t helper_bits = static_cast<std::uint32_t>(store_->helper_bits());
  if (response_bits > 0) {
    // Re-check the binding tag before trusting store bytes (key-mode records
    // carry a key-confirmation tag instead, checked in verify_key).
    const auto expected =
        record_binding_tag(key_, id, response_bits, helper_bits, view.response, view.helper);
    if (!tag_equal(expected.data(), view.tag)) {
      throw AuthStoreError(AuthStoreErrc::kTagMismatch,
                           "record binding tag mismatch for device " + std::to_string(id));
    }
  }
  auto entry = std::make_shared<RecordCache::Entry>();
  if (response_bits > 0) entry->response = BitVector::from_bytes(view.response, response_bits);
  if (helper_bits > 0) entry->helper = BitVector::from_bytes(view.helper, helper_bits);
  return entry;
}

std::optional<AuthResult> Authenticator::verify(DeviceId id, const BitVector& response) const {
  const std::size_t bits = store_->response_bits();
  ARO_REQUIRE(bits > 0, "store holds no enrollment responses (key-mode store)");
  ARO_REQUIRE(response.size() == bits, "response length mismatch");

  std::size_t distance = 0;
  if (cache_ != nullptr) {
    if (const auto cached = cache_->find(id)) {
      distance = hamming_distance(cached->response, response);
    } else {
      const auto view = store_->find(id);
      if (!view) return std::nullopt;
      const auto entry = load_record(id, *view);
      distance = hamming_distance(entry->response, response);
      cache_->insert(id, entry);
    }
  } else {
    const auto view = store_->find(id);
    if (!view) return std::nullopt;
    const std::uint32_t response_bits = static_cast<std::uint32_t>(bits);
    const auto expected = record_binding_tag(
        key_, id, response_bits, static_cast<std::uint32_t>(store_->helper_bits()),
        view->response, view->helper);
    if (!tag_equal(expected.data(), view->tag)) {
      throw AuthStoreError(AuthStoreErrc::kTagMismatch,
                           "record binding tag mismatch for device " + std::to_string(id));
    }
    distance = hamming_distance_packed(response, view->response, bits);
  }

  AuthResult result;
  result.fractional_distance = static_cast<double>(distance) / static_cast<double>(bits);
  result.accepted = result.fractional_distance <= policy_.accept_threshold;
  result.margin = policy_.accept_threshold - result.fractional_distance;
  return result;
}

std::optional<KeyAuthResult> Authenticator::verify_key(DeviceId id,
                                                       const FuzzyExtractor& extractor,
                                                       const BitVector& response) const {
  const std::size_t helper_bits = store_->helper_bits();
  ARO_REQUIRE(helper_bits > 0, "store holds no helper data (threshold-mode store)");
  const auto view = store_->find(id);
  if (!view) return std::nullopt;
  const BitVector helper = BitVector::from_bytes(view->helper, helper_bits);
  KeyAuthResult result;
  const auto key = extractor.reconstruct(response, helper);
  if (!key) return result;  // drifted beyond the code's correction capability
  result.decoded = true;
  const auto expected = key_confirmation_tag(*key, id);
  result.accepted = tag_equal(expected.data(), view->tag);
  return result;
}

bool Authenticator::needs_refresh(const AuthResult& result, double refresh_margin) const {
  ARO_REQUIRE(refresh_margin >= 0.0, "refresh margin must be non-negative");
  return result.accepted && result.margin < refresh_margin;
}

void Authenticator::set_cache(std::size_t capacity) {
  cache_ = capacity > 0 ? std::make_unique<RecordCache>(capacity) : nullptr;
}

DeviceId Authenticator::device_id_from_name(const std::string& device_name) {
  ARO_REQUIRE(!device_name.empty(), "device id must be non-empty");
  // FNV-1a 64: stable, documented mapping for legacy string keys.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : device_name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void Authenticator::enroll(const std::string& device_name, BitVector response) {
  enroll(device_id_from_name(device_name), std::move(response));
}

bool Authenticator::knows(const std::string& device_name) const {
  return knows(device_id_from_name(device_name));
}

std::optional<AuthResult> Authenticator::verify(const std::string& device_name,
                                                const BitVector& response) const {
  return verify(device_id_from_name(device_name), response);
}

}  // namespace aropuf
