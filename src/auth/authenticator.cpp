#include "auth/authenticator.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/statistics.hpp"

namespace aropuf {

void AuthPolicy::validate() const {
  ARO_REQUIRE(accept_threshold > 0.0 && accept_threshold < 0.5,
              "accept threshold must be in (0, 0.5)");
}

double AuthPolicy::false_accept_probability(std::size_t response_bits) const {
  validate();
  ARO_REQUIRE(response_bits >= 1, "response must have bits");
  // A different chip's response is i.i.d. fair coin vs ours: accept iff
  // HD <= threshold * n, i.e. P[Bin(n, 1/2) <= floor(t n)].
  const auto n = static_cast<std::uint64_t>(response_bits);
  const auto limit = static_cast<std::uint64_t>(std::floor(
      accept_threshold * static_cast<double>(response_bits)));
  return 1.0 - binomial_tail_greater(n, limit, 0.5);
}

AuthPolicy AuthPolicy::for_false_accept_rate(std::size_t response_bits, double target_far) {
  ARO_REQUIRE(response_bits >= 8, "response too short for thresholding");
  ARO_REQUIRE(target_far > 0.0 && target_far < 1.0, "target FAR must be in (0, 1)");
  AuthPolicy best;
  best.accept_threshold = 1.0 / static_cast<double>(response_bits);
  for (std::size_t k = 1; k * 2 < response_bits; ++k) {
    AuthPolicy candidate;
    candidate.accept_threshold =
        (static_cast<double>(k) + 0.5) / static_cast<double>(response_bits);
    if (candidate.false_accept_probability(response_bits) <= target_far) {
      best = candidate;
    } else {
      break;  // FAR is monotone in the threshold
    }
  }
  best.validate();
  return best;
}

Authenticator::Authenticator(AuthPolicy policy) : policy_(policy) { policy_.validate(); }

void Authenticator::enroll(const std::string& device_id, BitVector response) {
  ARO_REQUIRE(!device_id.empty(), "device id must be non-empty");
  ARO_REQUIRE(!response.empty(), "enrollment response must be non-empty");
  db_[device_id] = std::move(response);
}

bool Authenticator::knows(const std::string& device_id) const {
  return db_.find(device_id) != db_.end();
}

std::optional<AuthResult> Authenticator::verify(const std::string& device_id,
                                                const BitVector& response) const {
  const auto it = db_.find(device_id);
  if (it == db_.end()) return std::nullopt;
  ARO_REQUIRE(response.size() == it->second.size(), "response length mismatch");
  AuthResult result;
  result.fractional_distance = fractional_hamming_distance(it->second, response);
  result.accepted = result.fractional_distance <= policy_.accept_threshold;
  result.margin = policy_.accept_threshold - result.fractional_distance;
  return result;
}

bool Authenticator::needs_refresh(const AuthResult& result, double refresh_margin) const {
  ARO_REQUIRE(refresh_margin >= 0.0, "refresh margin must be non-negative");
  return result.accepted && result.margin < refresh_margin;
}

}  // namespace aropuf
