// Hot-device record cache for the verification hot path.
//
// A fleet workload is heavily skewed: a small set of chatty devices
// dominates the request stream.  A store lookup costs a binary search over
// the mmap-ed index plus an HMAC record-integrity check; caching the decoded,
// already-verified record skips both.  The cache never changes accept/reject
// decisions — it only memoizes the record — so workload results stay
// bit-identical with the cache on or off, at any thread count.
//
// Concurrency: the map is split into shards, each guarded by its own mutex,
// so verifier threads rarely contend.  Hit/miss counters are relaxed atomics
// (they are reporting-only and may vary run to run with thread interleaving;
// decisions never do).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "auth/enrollment_store.hpp"
#include "common/bitvector.hpp"

namespace aropuf {

/// Sharded LRU cache of decoded enrollment records, keyed by DeviceId.
class RecordCache {
 public:
  /// A decoded, integrity-verified enrollment record.
  struct Entry {
    /// Enrollment response bits (empty in key-mode stores).
    BitVector response;
    /// Fuzzy-extractor helper data (empty in threshold-mode stores).
    BitVector helper;
  };

  /// Creates a cache holding up to `capacity` records spread over
  /// `shard_count` independently locked shards (0 picks a default).
  explicit RecordCache(std::size_t capacity, std::size_t shard_count = 0);

  /// Looks a device up, refreshing its recency on a hit.  Returns nullptr on
  /// a miss.  Thread-safe.
  [[nodiscard]] std::shared_ptr<const Entry> find(DeviceId id);

  /// Inserts (or refreshes) a record, evicting the least-recently-used entry
  /// of the target shard when it is full.  Thread-safe.
  void insert(DeviceId id, std::shared_ptr<const Entry> entry);

  /// Total record capacity across all shards.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Lookups served from the cache so far (reporting only).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

  /// Lookups that fell through to the store so far (reporting only).
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.  The map points into the list.
    std::list<std::pair<DeviceId, std::shared_ptr<const Entry>>> order;
    std::unordered_map<DeviceId,
                       std::list<std::pair<DeviceId, std::shared_ptr<const Entry>>>::iterator>
        index;
  };

  [[nodiscard]] Shard& shard_for(DeviceId id);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace aropuf
