#include "auth/store_binary.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define AROPUF_AUTHSTORE_MMAP 1
#endif

namespace aropuf {

namespace {

constexpr std::size_t kHeaderBytes = 40;
constexpr std::uint16_t kVersion = 1;
constexpr char kMagic[4] = {'A', 'R', 'P', 'S'};
// Upper bound on per-record bit widths: generous for any plausible PUF
// response or helper payload, small enough that stride arithmetic cannot
// overflow even with adversarial headers.
constexpr std::uint32_t kMaxBits = 1u << 20;

std::uint16_t load_u16le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t load_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t load_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void append_u16le(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

[[noreturn]] void fail(AuthStoreErrc code, const std::string& what) {
  throw AuthStoreError(code, what);
}

std::string encode_header(const AuthStoreParams& params, std::uint64_t device_count) {
  std::string out;
  out.reserve(kHeaderBytes);
  out.append(kMagic, sizeof kMagic);
  append_u16le(out, kVersion);
  append_u16le(out, 0);  // reserved
  append_u64le(out, device_count);
  append_u32le(out, params.response_bits);
  append_u32le(out, params.helper_bits);
  append_u32le(out, static_cast<std::uint32_t>(kRecordTagBytes));
  append_u32le(out, params.model);
  append_u64le(out, params.fleet_seed);
  return out;
}

bool same_params(const AuthStoreParams& a, const AuthStoreParams& b) {
  return a.response_bits == b.response_bits && a.helper_bits == b.helper_bits &&
         a.model == b.model && a.fleet_seed == b.fleet_seed;
}

}  // namespace

const char* to_string(AuthStoreErrc code) {
  switch (code) {
    case AuthStoreErrc::kTruncated: return "truncated";
    case AuthStoreErrc::kBadMagic: return "bad-magic";
    case AuthStoreErrc::kUnsupportedVersion: return "unsupported-version";
    case AuthStoreErrc::kReservedNonzero: return "reserved-nonzero";
    case AuthStoreErrc::kBadHeader: return "bad-header";
    case AuthStoreErrc::kSizeMismatch: return "size-mismatch";
    case AuthStoreErrc::kUnsortedIndex: return "unsorted-index";
    case AuthStoreErrc::kDuplicateDevice: return "duplicate-device";
    case AuthStoreErrc::kTagMismatch: return "tag-mismatch";
    case AuthStoreErrc::kIoError: return "io-error";
  }
  return "unknown";
}

void BinaryEnrollmentStore::validate() {
  if (size_ < kHeaderBytes) fail(AuthStoreErrc::kTruncated, "ARPS header truncated");
  if (std::memcmp(data_, kMagic, sizeof kMagic) != 0) {
    fail(AuthStoreErrc::kBadMagic, "not an ARPS enrollment store");
  }
  const std::uint16_t version = load_u16le(data_ + 4);
  if (version != kVersion) {
    fail(AuthStoreErrc::kUnsupportedVersion,
         "unsupported ARPS version " + std::to_string(version));
  }
  if (load_u16le(data_ + 6) != 0) {
    fail(AuthStoreErrc::kReservedNonzero, "reserved header field is non-zero");
  }
  const std::uint64_t count = load_u64le(data_ + 8);
  params_.response_bits = load_u32le(data_ + 16);
  params_.helper_bits = load_u32le(data_ + 20);
  const std::uint32_t tag_bytes = load_u32le(data_ + 24);
  params_.model = load_u32le(data_ + 28);
  params_.fleet_seed = load_u64le(data_ + 32);

  if (tag_bytes != kRecordTagBytes) {
    fail(AuthStoreErrc::kBadHeader, "unexpected tag size " + std::to_string(tag_bytes));
  }
  if (params_.response_bits > kMaxBits || params_.helper_bits > kMaxBits) {
    fail(AuthStoreErrc::kBadHeader, "per-record bit width out of range");
  }
  if (params_.response_bits == 0 && params_.helper_bits == 0) {
    fail(AuthStoreErrc::kBadHeader, "record layout carries no bits");
  }

  response_bytes_ = (params_.response_bits + 7) / 8;
  helper_bytes_ = (params_.helper_bits + 7) / 8;
  record_stride_ = response_bytes_ + helper_bytes_ + kRecordTagBytes;
  const std::uint64_t per_device = 8 + static_cast<std::uint64_t>(record_stride_);
  const std::uint64_t avail = size_ - kHeaderBytes;
  // Division first so the multiply below cannot overflow on a hostile count.
  if (count > avail / per_device) {
    fail(AuthStoreErrc::kTruncated, "declared device count exceeds file size");
  }
  if (count * per_device != avail) {
    fail(AuthStoreErrc::kSizeMismatch, "trailing bytes after the last record");
  }
  device_count_ = static_cast<std::size_t>(count);
  index_ = data_ + kHeaderBytes;
  records_ = index_ + 8 * device_count_;

  DeviceId prev = 0;
  for (std::size_t i = 0; i < device_count_; ++i) {
    const DeviceId id = load_u64le(index_ + 8 * i);
    if (i > 0 && id <= prev) {
      fail(AuthStoreErrc::kUnsortedIndex, "device index is not strictly increasing");
    }
    prev = id;
  }
}

std::unique_ptr<BinaryEnrollmentStore> BinaryEnrollmentStore::parse(std::string bytes) {
  std::unique_ptr<BinaryEnrollmentStore> store(new BinaryEnrollmentStore());
  store->owned_ = std::move(bytes);
  store->data_ = reinterpret_cast<const std::uint8_t*>(store->owned_.data());
  store->size_ = store->owned_.size();
  store->validate();
  return store;
}

std::unique_ptr<BinaryEnrollmentStore> BinaryEnrollmentStore::open(const std::string& path) {
#if AROPUF_AUTHSTORE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(AuthStoreErrc::kIoError, "cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(AuthStoreErrc::kIoError, "cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    fail(AuthStoreErrc::kTruncated, "ARPS header truncated");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) fail(AuthStoreErrc::kIoError, "cannot mmap " + path);
  std::unique_ptr<BinaryEnrollmentStore> store(new BinaryEnrollmentStore());
  store->map_ = map;
  store->data_ = static_cast<const std::uint8_t*>(map);
  store->size_ = size;
  try {
    store->validate();
  } catch (...) {
    // The destructor unmaps; rethrow the typed error.
    throw;
  }
  return store;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(AuthStoreErrc::kIoError, "cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) fail(AuthStoreErrc::kIoError, "cannot read " + path);
  return parse(std::move(bytes));
#endif
}

BinaryEnrollmentStore::~BinaryEnrollmentStore() {
#if AROPUF_AUTHSTORE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

std::optional<RecordView> BinaryEnrollmentStore::find(DeviceId id) const {
  std::size_t lo = 0;
  std::size_t hi = device_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const DeviceId probe = load_u64le(index_ + 8 * mid);
    if (probe == id) return record_at(mid);
    if (probe < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

DeviceId BinaryEnrollmentStore::device_id_at(std::size_t i) const {
  ARO_REQUIRE(i < device_count_, "device index out of range");
  return load_u64le(index_ + 8 * i);
}

RecordView BinaryEnrollmentStore::record_at(std::size_t i) const {
  ARO_REQUIRE(i < device_count_, "device index out of range");
  const std::uint8_t* base = records_ + i * record_stride_;
  RecordView view;
  view.response = response_bytes_ > 0 ? base : nullptr;
  view.helper = helper_bytes_ > 0 ? base + response_bytes_ : nullptr;
  view.tag = base + response_bytes_ + helper_bytes_;
  return view;
}

std::string encode_enrollment_store(const AuthStoreParams& params,
                                    std::vector<std::pair<DeviceId, EnrollmentRecord>> records) {
  ARO_REQUIRE(params.response_bits <= kMaxBits && params.helper_bits <= kMaxBits,
              "per-record bit width out of range");
  ARO_REQUIRE(params.response_bits + params.helper_bits > 0,
              "record layout must carry some bits");
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].first == records[i - 1].first) {
      fail(AuthStoreErrc::kDuplicateDevice,
           "device " + std::to_string(records[i].first) + " enrolled twice");
    }
  }
  const std::size_t response_bytes = (params.response_bits + 7) / 8;
  const std::size_t helper_bytes = (params.helper_bits + 7) / 8;
  const std::size_t stride = response_bytes + helper_bytes + kRecordTagBytes;

  std::string out = encode_header(params, records.size());
  out.reserve(kHeaderBytes + records.size() * (8 + stride));
  for (const auto& [id, record] : records) append_u64le(out, id);
  for (const auto& [id, record] : records) {
    ARO_REQUIRE(record.response.size() == params.response_bits, "response length mismatch");
    ARO_REQUIRE(record.helper.size() == params.helper_bits, "helper-data length mismatch");
    const std::vector<std::uint8_t> response = record.response.to_bytes();
    const std::vector<std::uint8_t> helper = record.helper.to_bytes();
    out.append(reinterpret_cast<const char*>(response.data()), response.size());
    out.append(reinterpret_cast<const char*>(helper.data()), helper.size());
    out.append(reinterpret_cast<const char*>(record.tag.data()), record.tag.size());
  }
  return out;
}

void write_enrollment_store(const std::string& path, const AuthStoreParams& params,
                            std::vector<std::pair<DeviceId, EnrollmentRecord>> records) {
  const std::string image = encode_enrollment_store(params, std::move(records));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(AuthStoreErrc::kIoError, "cannot create " + path);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out.good()) fail(AuthStoreErrc::kIoError, "short write to " + path);
}

std::uint64_t merge_enrollment_stores(const std::vector<std::string>& shard_paths,
                                      const std::string& out_path) {
  ARO_REQUIRE(!shard_paths.empty(), "merge needs at least one shard");
  std::vector<std::unique_ptr<BinaryEnrollmentStore>> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) shards.push_back(BinaryEnrollmentStore::open(path));
  const AuthStoreParams params = shards.front()->params();
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!same_params(shards[s]->params(), params)) {
      fail(AuthStoreErrc::kBadHeader,
           "shard " + shard_paths[s] + " disagrees on store parameters");
    }
    total += shards[s]->device_count();
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) fail(AuthStoreErrc::kIoError, "cannot create " + out_path);
  const std::string header = encode_header(params, total);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  // Pass 1: merged, strictly-increasing device index.  Pass 2: the records
  // in the same order.  Each pass is an independent K-way cursor walk, so the
  // merge streams without holding any shard's payload in memory.
  const auto for_each_merged = [&](const auto& emit) {
    std::vector<std::size_t> cursor(shards.size(), 0);
    bool have_prev = false;
    DeviceId prev = 0;
    for (;;) {
      std::size_t winner = shards.size();
      DeviceId best = 0;
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (cursor[s] >= shards[s]->device_count()) continue;
        const DeviceId id = shards[s]->device_id_at(cursor[s]);
        if (winner == shards.size() || id < best) {
          winner = s;
          best = id;
        }
      }
      if (winner == shards.size()) break;
      if (have_prev && best == prev) {
        fail(AuthStoreErrc::kDuplicateDevice,
             "device " + std::to_string(best) + " appears in two shards");
      }
      have_prev = true;
      prev = best;
      emit(*shards[winner], cursor[winner]);
      ++cursor[winner];
    }
  };

  for_each_merged([&](const BinaryEnrollmentStore& shard, std::size_t i) {
    std::string id_bytes;
    append_u64le(id_bytes, shard.device_id_at(i));
    out.write(id_bytes.data(), static_cast<std::streamsize>(id_bytes.size()));
  });
  const std::size_t response_bytes = (params.response_bits + 7) / 8;
  const std::size_t helper_bytes = (params.helper_bits + 7) / 8;
  for_each_merged([&](const BinaryEnrollmentStore& shard, std::size_t i) {
    const RecordView view = shard.record_at(i);
    if (response_bytes > 0) {
      out.write(reinterpret_cast<const char*>(view.response),
                static_cast<std::streamsize>(response_bytes));
    }
    if (helper_bytes > 0) {
      out.write(reinterpret_cast<const char*>(view.helper),
                static_cast<std::streamsize>(helper_bytes));
    }
    out.write(reinterpret_cast<const char*>(view.tag),
              static_cast<std::streamsize>(kRecordTagBytes));
  });
  out.flush();
  if (!out.good()) fail(AuthStoreErrc::kIoError, "short write to " + out_path);
  return total;
}

}  // namespace aropuf
