// ARPS — the compact binary enrollment store behind the fleet-scale
// authentication service.
//
// Same engineering discipline as the ARPB shard transport
// (telemetry/binfmt.hpp): a little-endian, versioned, length-checked
// container that an untrusting reader can validate in one bounded pass and
// then serve zero-copy.  The verification hot path does a binary search over
// the sorted device index and compares packed response bits straight out of
// the mapping — no allocation, no deserialization.
//
// Layout, version 1 (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "ARPS"
//   4       2     version (currently 1)
//   6       2     reserved, must be zero
//   8       8     device_count N
//   16      4     response_bits R       (bits per enrollment response)
//   20      4     helper_bits H         (bits of helper data per record)
//   24      4     tag_bytes             (must be kRecordTagBytes)
//   28      4     model                 (FleetModel provenance, advisory)
//   32      8     fleet_seed            (build provenance, advisory)
//   40      8*N   device index: strictly increasing DeviceId values
//   40+8*N  S*N   records, S = ceil(R/8) + ceil(H/8) + tag_bytes, in index
//                 order: packed response bits, packed helper bits, tag
//
// The file ends exactly after the last record; trailing bytes are an error.
// Decoding failures carry a typed AuthStoreErrc so callers (and the fuzz
// harness) can distinguish "malformed input" from programming errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "auth/enrollment_store.hpp"

namespace aropuf {

/// Why a byte buffer was rejected as an ARPS enrollment store.
enum class AuthStoreErrc {
  kTruncated = 1,        ///< input ends before the header or index completes
  kBadMagic,             ///< leading bytes are not "ARPS"
  kUnsupportedVersion,   ///< version field is not 1
  kReservedNonzero,      ///< a reserved field carries non-zero bits
  kBadHeader,            ///< header fields are out of range or inconsistent
  kSizeMismatch,         ///< file size disagrees with the declared counts
  kUnsortedIndex,        ///< device index is not strictly increasing
  kDuplicateDevice,      ///< the same DeviceId appears in two merge inputs
  kTagMismatch,          ///< record binding tag failed verification
  kIoError,              ///< the underlying file could not be read or written
};

/// Human-readable name for an AuthStoreErrc (stable, for logs and tests).
[[nodiscard]] const char* to_string(AuthStoreErrc code);

/// Exception carrying a typed reason for an enrollment-store failure.
class AuthStoreError : public std::runtime_error {
 public:
  /// Builds an error with machine-readable code and human-readable context.
  AuthStoreError(AuthStoreErrc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  /// The typed failure reason.
  [[nodiscard]] AuthStoreErrc code() const noexcept { return code_; }

 private:
  AuthStoreErrc code_;
};

/// Header parameters of an ARPS store (everything except the per-device
/// payload).  Shard builders fill one in; readers expose the decoded copy.
struct AuthStoreParams {
  /// Bits per enrollment response (0 for key-mode stores).
  std::uint32_t response_bits = 0;
  /// Bits of fuzzy-extractor helper data per record (0 in threshold mode).
  std::uint32_t helper_bits = 0;
  /// Response-model provenance (FleetModel numeric value); advisory.
  std::uint32_t model = 0;
  /// Master seed the fleet was built from; advisory provenance.
  std::uint64_t fleet_seed = 0;
};

/// Read-only mmap-backed ARPS store.  open() maps the file (POSIX) or reads
/// it into memory (elsewhere); parse() adopts an in-memory buffer, which is
/// what the fuzz harness and the round-trip tests drive.  All validation
/// happens before the constructor returns: a constructed store is well-formed
/// by invariant and find()/record_at() only do bounds-free arithmetic.
class BinaryEnrollmentStore final : public EnrollmentStore {
 public:
  /// Maps and validates a store file.  Throws AuthStoreError on malformed
  /// input or I/O failure.
  [[nodiscard]] static std::unique_ptr<BinaryEnrollmentStore> open(const std::string& path);

  /// Validates and adopts an in-memory image.  Throws AuthStoreError on
  /// malformed input.
  [[nodiscard]] static std::unique_ptr<BinaryEnrollmentStore> parse(std::string bytes);

  ~BinaryEnrollmentStore() override;

  BinaryEnrollmentStore(const BinaryEnrollmentStore&) = delete;
  BinaryEnrollmentStore& operator=(const BinaryEnrollmentStore&) = delete;

  [[nodiscard]] std::size_t device_count() const override { return device_count_; }
  [[nodiscard]] std::size_t response_bits() const override { return params_.response_bits; }
  [[nodiscard]] std::size_t helper_bits() const override { return params_.helper_bits; }
  [[nodiscard]] std::optional<RecordView> find(DeviceId id) const override;

  /// Decoded header parameters.
  [[nodiscard]] const AuthStoreParams& params() const noexcept { return params_; }

  /// The i-th DeviceId in index order (i < device_count()).
  [[nodiscard]] DeviceId device_id_at(std::size_t i) const;

  /// The i-th record in index order (i < device_count()).
  [[nodiscard]] RecordView record_at(std::size_t i) const;

 private:
  BinaryEnrollmentStore() = default;

  /// Validates the image at data_/size_ and fills the decoded fields.
  void validate();

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;       // non-null when mmap-backed
  std::string owned_;         // backing bytes when parse()-adopted
  AuthStoreParams params_;
  std::size_t device_count_ = 0;
  std::size_t response_bytes_ = 0;
  std::size_t helper_bytes_ = 0;
  std::size_t record_stride_ = 0;
  const std::uint8_t* index_ = nullptr;    // device-id array
  const std::uint8_t* records_ = nullptr;  // first record
};

/// Encodes records into an ARPS image.  Records are sorted by DeviceId; every
/// record's bit lengths must match `params`.  Throws std::invalid_argument on
/// layout violations and AuthStoreError(kDuplicateDevice) on repeated ids.
[[nodiscard]] std::string encode_enrollment_store(
    const AuthStoreParams& params, std::vector<std::pair<DeviceId, EnrollmentRecord>> records);

/// encode_enrollment_store + atomic-ish write to `path` (throws
/// AuthStoreError(kIoError) when the file cannot be written).
void write_enrollment_store(const std::string& path, const AuthStoreParams& params,
                            std::vector<std::pair<DeviceId, EnrollmentRecord>> records);

/// Deterministically merges shard stores into one: validates that all shards
/// share the same header parameters, k-way merges their sorted indices, and
/// streams records to `out_path` in global id order.  Returns the merged
/// device count.  Throws AuthStoreError on malformed shards, mismatched
/// parameters (kBadHeader), duplicate ids (kDuplicateDevice), or I/O failure.
std::uint64_t merge_enrollment_stores(const std::vector<std::string>& shard_paths,
                                      const std::string& out_path);

}  // namespace aropuf
