#include "sim/experiment_config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace aropuf {

namespace {

const char* pairing_name(PairingStrategy s) { return to_string(s); }

PairingStrategy pairing_from_name(const std::string& name) {
  if (name == "adjacent-dedicated") return PairingStrategy::kAdjacentDedicated;
  if (name == "distant-dedicated") return PairingStrategy::kDistantDedicated;
  if (name == "chain-neighbor") return PairingStrategy::kChainNeighbor;
  if (name == "random-challenge") return PairingStrategy::kRandomChallenge;
  throw std::invalid_argument("unknown pairing strategy: " + name);
}

}  // namespace

JsonValue to_json(const TechnologyParams& t) {
  JsonValue::Object o;
  o["name"] = t.name;
  o["vdd_nominal"] = t.vdd_nominal;
  o["temp_nominal"] = t.temp_nominal;
  o["vth_n"] = t.vth_n;
  o["vth_p"] = t.vth_p;
  o["alpha"] = t.alpha;
  o["delay_k"] = t.delay_k;
  o["nand_delay_factor"] = t.nand_delay_factor;
  o["vth_tempco"] = t.vth_tempco;
  o["vth_tempco_mismatch_rel"] = t.vth_tempco_mismatch_rel;
  o["mobility_temp_exp"] = t.mobility_temp_exp;
  o["sigma_vth_local"] = t.sigma_vth_local;
  o["sigma_vth_global"] = t.sigma_vth_global;
  o["sigma_vth_spatial"] = t.sigma_vth_spatial;
  o["spatial_correlation_length"] = t.spatial_correlation_length;
  o["layout_systematic_amplitude"] = t.layout_systematic_amplitude;
  o["layout_ripple_wavelength"] = t.layout_ripple_wavelength;
  o["nbti_a"] = t.nbti_a;
  o["nbti_ea"] = t.nbti_ea;
  o["nbti_n"] = t.nbti_n;
  o["nbti_recovery_fraction"] = t.nbti_recovery_fraction;
  o["nbti_sigma_rel"] = t.nbti_sigma_rel;
  o["hci_b"] = t.hci_b;
  o["hci_ea"] = t.hci_ea;
  o["hci_m"] = t.hci_m;
  o["hci_sigma_rel"] = t.hci_sigma_rel;
  o["jitter_cycle_rel"] = t.jitter_cycle_rel;
  o["noise_lowfreq_rel"] = t.noise_lowfreq_rel;
  o["area_ge_um2"] = t.area_ge_um2;
  o["area_ro_cell_ge"] = t.area_ro_cell_ge;
  o["area_counter_bit_ge"] = t.area_counter_bit_ge;
  o["counter_bits"] = t.counter_bits;
  return JsonValue(std::move(o));
}

TechnologyParams technology_from_json(const JsonValue& v) {
  // Named-node base keeps configs short: {"name": "cmos65"} is complete,
  // and any further key overrides that node's calibrated value.
  const std::string name = v.string_or("name", "cmos90");
  TechnologyParams t;
  if (name == "cmos90") {
    t = TechnologyParams::cmos90();
  } else if (name == "cmos65") {
    t = TechnologyParams::cmos65();
  } else if (name == "cmos45") {
    t = TechnologyParams::cmos45();
  } else {
    t = TechnologyParams::cmos90();
    t.name = name;
  }
  t.vdd_nominal = v.number_or("vdd_nominal", t.vdd_nominal);
  t.temp_nominal = v.number_or("temp_nominal", t.temp_nominal);
  t.vth_n = v.number_or("vth_n", t.vth_n);
  t.vth_p = v.number_or("vth_p", t.vth_p);
  t.alpha = v.number_or("alpha", t.alpha);
  t.delay_k = v.number_or("delay_k", t.delay_k);
  t.nand_delay_factor = v.number_or("nand_delay_factor", t.nand_delay_factor);
  t.vth_tempco = v.number_or("vth_tempco", t.vth_tempco);
  t.vth_tempco_mismatch_rel =
      v.number_or("vth_tempco_mismatch_rel", t.vth_tempco_mismatch_rel);
  t.mobility_temp_exp = v.number_or("mobility_temp_exp", t.mobility_temp_exp);
  t.sigma_vth_local = v.number_or("sigma_vth_local", t.sigma_vth_local);
  t.sigma_vth_global = v.number_or("sigma_vth_global", t.sigma_vth_global);
  t.sigma_vth_spatial = v.number_or("sigma_vth_spatial", t.sigma_vth_spatial);
  t.spatial_correlation_length =
      v.number_or("spatial_correlation_length", t.spatial_correlation_length);
  t.layout_systematic_amplitude =
      v.number_or("layout_systematic_amplitude", t.layout_systematic_amplitude);
  t.layout_ripple_wavelength =
      v.number_or("layout_ripple_wavelength", t.layout_ripple_wavelength);
  t.nbti_a = v.number_or("nbti_a", t.nbti_a);
  t.nbti_ea = v.number_or("nbti_ea", t.nbti_ea);
  t.nbti_n = v.number_or("nbti_n", t.nbti_n);
  t.nbti_recovery_fraction = v.number_or("nbti_recovery_fraction", t.nbti_recovery_fraction);
  t.nbti_sigma_rel = v.number_or("nbti_sigma_rel", t.nbti_sigma_rel);
  t.hci_b = v.number_or("hci_b", t.hci_b);
  t.hci_ea = v.number_or("hci_ea", t.hci_ea);
  t.hci_m = v.number_or("hci_m", t.hci_m);
  t.hci_sigma_rel = v.number_or("hci_sigma_rel", t.hci_sigma_rel);
  t.jitter_cycle_rel = v.number_or("jitter_cycle_rel", t.jitter_cycle_rel);
  t.noise_lowfreq_rel = v.number_or("noise_lowfreq_rel", t.noise_lowfreq_rel);
  t.area_ge_um2 = v.number_or("area_ge_um2", t.area_ge_um2);
  t.area_ro_cell_ge = v.number_or("area_ro_cell_ge", t.area_ro_cell_ge);
  t.area_counter_bit_ge = v.number_or("area_counter_bit_ge", t.area_counter_bit_ge);
  t.counter_bits = static_cast<int>(v.number_or("counter_bits", t.counter_bits));
  t.validate();
  return t;
}

JsonValue to_json(const StressProfile& p) {
  JsonValue::Object o;
  o["name"] = p.name;
  o["oscillation_fraction"] = p.oscillation_fraction;
  o["nbti_duty"] = p.nbti_duty;
  o["recovery_enabled"] = p.recovery_enabled;
  o["stress_temperature"] = p.stress_temperature;
  return JsonValue(std::move(o));
}

StressProfile stress_profile_from_json(const JsonValue& v) {
  StressProfile p = StressProfile::conventional_always_on();
  p.name = v.string_or("name", p.name);
  p.oscillation_fraction = v.number_or("oscillation_fraction", p.oscillation_fraction);
  p.nbti_duty = v.number_or("nbti_duty", p.nbti_duty);
  p.recovery_enabled = v.bool_or("recovery_enabled", p.recovery_enabled);
  p.stress_temperature = v.number_or("stress_temperature", p.stress_temperature);
  p.validate();
  return p;
}

JsonValue to_json(const PufConfig& c) {
  JsonValue::Object o;
  o["design"] = std::string(to_string(c.design));
  o["label"] = c.label;
  o["num_ros"] = c.num_ros;
  o["stages"] = c.stages;
  o["array_width"] = c.array_width;
  o["measurement_window"] = c.measurement_window;
  o["pairing"] = std::string(pairing_name(c.pairing));
  o["challenge_seed"] = static_cast<double>(c.challenge_seed);
  o["lifetime_profile"] = to_json(c.lifetime_profile);
  return JsonValue(std::move(o));
}

PufConfig puf_config_from_json(const JsonValue& v) {
  // Base design selects the factory; explicit keys override.
  const std::string design = v.string_or("design", "ARO-PUF");
  PufConfig c;
  if (design == "conventional RO-PUF") {
    c = PufConfig::conventional();
  } else if (design == "ARO-PUF") {
    c = PufConfig::aro();
  } else {
    c.design = PufDesign::kCustom;
  }
  c.label = v.string_or("label", c.label);
  c.num_ros = static_cast<int>(v.number_or("num_ros", c.num_ros));
  c.stages = static_cast<int>(v.number_or("stages", c.stages));
  c.array_width = static_cast<int>(v.number_or("array_width", c.array_width));
  c.measurement_window = v.number_or("measurement_window", c.measurement_window);
  if (v.contains("pairing")) c.pairing = pairing_from_name(v.at("pairing").as_string());
  c.challenge_seed = static_cast<std::uint64_t>(v.number_or("challenge_seed", 0.0));
  if (v.contains("lifetime_profile")) {
    c.lifetime_profile = stress_profile_from_json(v.at("lifetime_profile"));
  }
  c.validate();
  return c;
}

JsonValue to_json(const PopulationConfig& pop) {
  JsonValue::Object o;
  o["technology"] = to_json(pop.tech);
  o["chips"] = pop.chips;
  o["seed"] = static_cast<double>(pop.seed);
  return JsonValue(std::move(o));
}

PopulationConfig population_from_json(const JsonValue& v) {
  PopulationConfig pop;
  if (v.contains("technology")) pop.tech = technology_from_json(v.at("technology"));
  pop.chips = static_cast<int>(v.number_or("chips", pop.chips));
  pop.seed = static_cast<std::uint64_t>(v.number_or("seed", static_cast<double>(pop.seed)));
  ARO_REQUIRE(pop.chips >= 1, "population must have at least one chip");
  return pop;
}

PopulationConfig load_population_config(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return population_from_json(JsonValue::parse(buffer.str()));
}

void save_population_config(const PopulationConfig& pop, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) throw std::runtime_error("cannot open config file for writing: " + path);
  out << to_json(pop).dump(2) << '\n';
}

}  // namespace aropuf
