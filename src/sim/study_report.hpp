// Derived reporting over a merged study aggregate — shared by every
// orchestrator front end (tools/aropuf_shard locally, tools/aropuf_fleet over
// TCP).  Both tools must emit the identical study section and apply the
// identical --check-single verification, so the logic lives here rather than
// in either tool.
#pragma once

#include <string>

#include "common/json.hpp"
#include "sim/shard_study.hpp"
#include "telemetry/aggregate.hpp"

namespace aropuf {

/// Builds the derived study section (headline numbers + the ECC/area
/// comparison at each design's p90 provisioning BER) from the merged
/// results.  Purely a function of the merged statistics, so it is identical
/// for every shard decomposition — and for every transport (files or TCP).
[[nodiscard]] JsonValue build_study_section(const JsonValue& merged, const ShardStudyConfig& cfg);

/// --check-single: re-runs the full population as one in-process shard and
/// compares the decomposition-invariant sections ("results", "config") of
/// `merged` against it byte for byte.  The single-process aggregate is built
/// under the same RawSeriesPolicy as the merged one so the comparison stays
/// exact (kKeep embeds values on both sides; kDrop omits them on both
/// sides).  Prints progress and any first-divergence context to
/// stdout/stderr; returns true on match.  Resets process-wide telemetry
/// state (run record + metrics) as a side effect.
[[nodiscard]] bool check_merged_against_single(const ShardStudyConfig& cfg,
                                               const std::string& run_name,
                                               const JsonValue& merged,
                                               telemetry::RawSeriesPolicy policy);

}  // namespace aropuf
