// CSV export for experiment results.
//
// Bench binaries print human tables; setting ARO_CSV_DIR makes them also
// drop machine-readable CSVs there so figures can be replotted without
// parsing ASCII art.  Fields are quoted per RFC 4180 when they contain
// separators, quotes, or newlines.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace aropuf {

class CsvWriter {
 public:
  /// Opens (truncates) `path`.  An open failure is logged at error level and
  /// latches ok() to false instead of throwing, so drivers surface it as a
  /// non-zero exit through close() rather than an abort.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; every call must carry the same number of fields as the
  /// first row written.  A stream failure (disk full, closed descriptor) is
  /// logged at error level once and latches ok() to false — the run keeps
  /// going, but close() reports the loss so drivers can exit non-zero.
  void write_row(const std::vector<std::string>& fields);

  /// Flushes and returns whether every row landed on disk.  Idempotent.
  bool close();

  /// False once any write or flush has failed.
  [[nodiscard]] bool ok() const noexcept { return !failed_; }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// RFC 4180 quoting of one field.
  [[nodiscard]] static std::string escape(const std::string& field);

  /// If the ARO_CSV_DIR environment variable is set, returns a writer for
  /// `<dir>/<name>.csv`; otherwise nullopt (benches skip CSV output).
  [[nodiscard]] static std::optional<CsvWriter> for_bench(const std::string& name);

 private:
  void note_failure(const char* what);

  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
  std::size_t columns_ = 0;
  bool failed_ = false;
};

}  // namespace aropuf
