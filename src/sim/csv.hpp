// CSV export for experiment results.
//
// Bench binaries print human tables; setting ARO_CSV_DIR makes them also
// drop machine-readable CSVs there so figures can be replotted without
// parsing ASCII art.  Fields are quoted per RFC 4180 when they contain
// separators, quotes, or newlines.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace aropuf {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; every call must carry the same number of fields as the
  /// first row written.
  void write_row(const std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// RFC 4180 quoting of one field.
  [[nodiscard]] static std::string escape(const std::string& field);

  /// If the ARO_CSV_DIR environment variable is set, returns a writer for
  /// `<dir>/<name>.csv`; otherwise nullopt (benches skip CSV output).
  [[nodiscard]] static std::optional<CsvWriter> for_bench(const std::string& name);

 private:
  std::ofstream out_;
  std::size_t rows_ = 0;
  std::size_t columns_ = 0;
};

}  // namespace aropuf
