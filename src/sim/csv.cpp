#include "sim/csv.hpp"

#include "common/check.hpp"
#include "common/cli.hpp"
#include "telemetry/log.hpp"

namespace aropuf {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path, std::ios::trunc) {
  if (!out_.is_open()) note_failure("cannot open CSV output file");
}

void CsvWriter::note_failure(const char* what) {
  if (failed_) return;  // log the first failure only; the flag stays latched
  failed_ = true;
  ARO_LOG_ERROR("csv", what, {"path", JsonValue(path_)},
                {"rows_written", JsonValue(static_cast<std::uint64_t>(rows_))});
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  ARO_REQUIRE(!fields.empty(), "CSV row must have at least one field");
  if (rows_ == 0) {
    columns_ = fields.size();
  } else {
    ARO_REQUIRE(fields.size() == columns_, "CSV rows must have a consistent width");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  if (!out_) note_failure("CSV row write failed");
  ++rows_;
}

bool CsvWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) note_failure("CSV flush failed");
    out_.close();
    if (out_.fail()) note_failure("CSV close failed");
  }
  return !failed_;
}

std::optional<CsvWriter> CsvWriter::for_bench(const std::string& name) {
  const char* dir = cli::env_value("ARO_CSV_DIR");
  if (dir == nullptr) return std::nullopt;
  return CsvWriter(std::string(dir) + "/" + name + ".csv");
}

}  // namespace aropuf
