#include "sim/csv.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/check.hpp"

namespace aropuf {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_.is_open()) {
    throw std::runtime_error("cannot open CSV output file: " + path);
  }
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  ARO_REQUIRE(!fields.empty(), "CSV row must have at least one field");
  if (rows_ == 0) {
    columns_ = fields.size();
  } else {
    ARO_REQUIRE(fields.size() == columns_, "CSV rows must have a consistent width");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::optional<CsvWriter> CsvWriter::for_bench(const std::string& name) {
  const char* dir = std::getenv("ARO_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return CsvWriter(std::string(dir) + "/" + name + ".csv");
}

}  // namespace aropuf
