#include "sim/study_report.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace aropuf {

JsonValue build_study_section(const JsonValue& merged, const ShardStudyConfig& cfg) {
  JsonValue::Object study;
  const double final_year = cfg.checkpoints.back();
  char year_buf[32];
  std::snprintf(year_buf, sizeof year_buf, "%g", final_year);
  study["final_year"] = JsonValue(final_year);

  const JsonValue& samples = merged.at("results").at("samples");
  const JsonValue& tallies = merged.at("results").at("tallies");

  double p90_ber[2] = {0.0, 0.0};
  const char* design_keys[2] = {"conventional", "aro"};
  JsonValue::Object designs;
  for (int d = 0; d < 2; ++d) {
    const std::string key = design_keys[d];
    JsonValue::Object entry;
    const std::string e2_name = "e2." + key + ".flip_percent.y" + year_buf;
    if (samples.contains(e2_name)) {
      const JsonValue& s = samples.at(e2_name);
      BerStats ber;
      ber.mean = s.number_or("mean", 0.0) / 100.0;
      ber.stddev = s.number_or("stddev", 0.0) / 100.0;
      ber.max = s.number_or("max", 0.0) / 100.0;
      p90_ber[d] = std::max(0.0, ber.p90());
      entry["eol_flip_percent_mean"] = JsonValue(s.number_or("mean", 0.0));
      entry["eol_flip_percent_max"] = JsonValue(s.number_or("max", 0.0));
      entry["eol_ber_p90"] = JsonValue(p90_ber[d]);
    }
    const std::string e3_name = "e3." + key + ".pair_hd";
    if (tallies.contains(e3_name)) {
      const JsonValue& t = tallies.at(e3_name);
      entry["uniqueness_percent"] = JsonValue(t.number_or("mean", 0.0) * 100.0);
      entry["uniqueness_stddev_percent"] = JsonValue(t.number_or("stddev", 0.0) * 100.0);
    }
    const std::string uniform_name = "e3." + key + ".uniformity";
    if (samples.contains(uniform_name)) {
      entry["uniformity_mean"] = JsonValue(samples.at(uniform_name).number_or("mean", 0.0));
    }
    designs[key] = JsonValue(std::move(entry));
  }
  study["designs"] = JsonValue(std::move(designs));

  // ECC/area comparison at the merged p90 BERs (paper's E7 on study data).
  JsonValue::Object ecc;
  try {
    const CodeSearchConstraints constraints;
    const EccComparison cmp =
        run_ecc_comparison(cfg.pop.tech, p90_ber[0], p90_ber[1], constraints);
    const auto scheme_json = [](const CodeSearchResult& r) {
      JsonValue::Object s;
      s["repetition"] = JsonValue(r.scheme.repetition);
      s["bch_m"] = JsonValue(r.scheme.bch_m);
      s["bch_t"] = JsonValue(r.scheme.bch_t);
      s["raw_bits"] = JsonValue(static_cast<std::uint64_t>(r.scheme.raw_bits()));
      s["area_ge"] = JsonValue(r.area.total_ge());
      s["key_failure"] = JsonValue(r.key_failure);
      return JsonValue(std::move(s));
    };
    ecc["status"] = JsonValue("ok");
    ecc["conventional"] = scheme_json(cmp.conventional);
    ecc["aro"] = scheme_json(cmp.aro);
    ecc["area_ratio"] = JsonValue(cmp.area_ratio());
  } catch (const std::exception& e) {
    ecc["status"] = JsonValue("failed");
    ecc["error"] = JsonValue(std::string(e.what()));
  }
  study["ecc"] = JsonValue(std::move(ecc));
  return JsonValue(std::move(study));
}

bool check_merged_against_single(const ShardStudyConfig& cfg, const std::string& run_name,
                                 const JsonValue& merged, telemetry::RawSeriesPolicy policy) {
  std::printf("check-single: running the full population in-process...\n");
  std::fflush(stdout);

  telemetry::reset_run_record();
  telemetry::MetricsRegistry::global().reset();
  telemetry::MetricsRegistry::global().set_shard_index(0);
  const ShardStudyResult result = run_shard_study(cfg, 0, 1);
  telemetry::set_runtime_field("shard", study_shard_descriptor(cfg, 0, 1));
  telemetry::set_runtime_field("results", study_results_to_json(result));
  JsonValue doc = telemetry::build_manifest(run_name, study_config_json(cfg));

  std::vector<telemetry::ShardManifest> single_set;
  single_set.push_back(telemetry::wrap_shard_manifest(std::move(doc), "<single>"));
  const telemetry::AggregateResult single =
      telemetry::aggregate_shards(std::move(single_set), policy);

  bool ok = true;
  for (const char* section : {"results", "config"}) {
    const std::string a = merged.at(section).dump();
    const std::string b = single.manifest.at(section).dump();
    if (a != b) {
      ok = false;
      std::fprintf(stderr,
                   "check-single: section '%s' differs between the sharded and the "
                   "single-process run\n",
                   section);
      // Locate the first divergence so the failure is actionable.
      std::size_t at = 0;
      while (at < a.size() && at < b.size() && a[at] == b[at]) ++at;
      const std::size_t lo = at > 60 ? at - 60 : 0;
      std::fprintf(stderr,
                   "  first divergence at byte %zu:\n    sharded: ...%.120s\n    single:  ...%.120s\n",
                   at, a.substr(lo, 120).c_str(), b.substr(lo, 120).c_str());
    }
  }
  if (ok) std::printf("check-single: merged statistics are bit-identical\n");
  return ok;
}

}  // namespace aropuf
