// JSON (de)serialization of experiment configurations.
//
// A study is fully described by (TechnologyParams, PufConfig,
// PopulationConfig); these bindings let studies live in checked-in config
// files.  Serialization is total (every field), deserialization is
// default-tolerant (missing keys keep the in-code defaults) but
// type-strict, and every load ends in validate().
#pragma once

#include <string>

#include "common/json.hpp"
#include "puf/puf_config.hpp"
#include "sim/scenarios.hpp"

namespace aropuf {

[[nodiscard]] JsonValue to_json(const TechnologyParams& tech);
[[nodiscard]] TechnologyParams technology_from_json(const JsonValue& v);

[[nodiscard]] JsonValue to_json(const StressProfile& profile);
[[nodiscard]] StressProfile stress_profile_from_json(const JsonValue& v);

[[nodiscard]] JsonValue to_json(const PufConfig& config);
[[nodiscard]] PufConfig puf_config_from_json(const JsonValue& v);

[[nodiscard]] JsonValue to_json(const PopulationConfig& pop);
[[nodiscard]] PopulationConfig population_from_json(const JsonValue& v);

/// Reads a PopulationConfig (with embedded technology) from a JSON file.
[[nodiscard]] PopulationConfig load_population_config(const std::string& path);

/// Writes a PopulationConfig to a JSON file (pretty-printed).
void save_population_config(const PopulationConfig& pop, const std::string& path);

}  // namespace aropuf
