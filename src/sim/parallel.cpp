#include "sim/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/cli.hpp"
#include "telemetry/log.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aropuf {

namespace {

/// True while the current thread is executing inside a parallel_for task;
/// nested calls detect this and run inline to avoid deadlocking the pool.
thread_local bool tls_inside_task = false;

/// Engine instruments, resolved once (registry lookups take a lock; the
/// references are stable for the life of the process).  Counters are relaxed
/// atomics; the histograms shard per worker thread, so recording a chunk
/// time or queue wait never contends.
struct PoolTelemetry {
  telemetry::Counter& jobs;
  telemetry::Counter& chunks;
  telemetry::Counter& indices;
  telemetry::ShardedHistogram& chunk_ms;
  telemetry::ShardedHistogram& queue_wait_us;

  static PoolTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static PoolTelemetry t{
        reg.counter("parallel.jobs"),
        reg.counter("parallel.chunks"),
        reg.counter("parallel.indices"),
        reg.histogram("parallel.chunk_ms", 0.0, 50.0, 50),
        reg.histogram("parallel.queue_wait_us", 0.0, 1000.0, 50),
    };
    return t;
  }
};

int clamp_threads(int threads) {
  if (threads < 1) threads = 1;
  // More threads than indices never helps, but a generous ceiling keeps the
  // knob honest on big machines while bounding accidental "AROPUF_THREADS=1e9".
  constexpr int kMaxThreads = 256;
  return threads > kMaxThreads ? kMaxThreads : threads;
}

}  // namespace

int default_thread_count() {
  if (const char* env = cli::env_value("AROPUF_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return clamp_threads(static_cast<int>(parsed));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return clamp_threads(hw == 0 ? 1 : static_cast<int>(hw));
}

struct ParallelExecutor::Impl {
  explicit Impl(int threads) : thread_count(clamp_threads(threads)) {
    workers.reserve(static_cast<std::size_t>(thread_count - 1));
    for (int t = 0; t < thread_count - 1; ++t) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& w : workers) w.join();
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || generation != seen_generation; });
        if (stopping) return;
        seen_generation = generation;
      }
      // Dispatch latency: time from job submission to this worker picking it
      // up.  A fat tail here means workers are parked too deep (or the OS is
      // oversubscribed), not that the work itself is slow.
      const std::uint64_t submitted = job_submit_us.load(std::memory_order_acquire);
      PoolTelemetry::get().queue_wait_us.record(
          static_cast<double>(telemetry::steady_now_us() - submitted));
      run_chunks();
      if (active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }

  /// Claims chunks from the shared cursor until the index space (or the job,
  /// after an exception) is exhausted.  Runs on workers and the caller alike.
  void run_chunks() {
    tls_inside_task = true;
    PoolTelemetry& telem = PoolTelemetry::get();
    for (;;) {
      if (job_failed.load(std::memory_order_acquire)) break;
      const std::size_t begin = next_index.fetch_add(chunk_size, std::memory_order_relaxed);
      if (begin >= job_n) break;
      const std::size_t end = begin + chunk_size < job_n ? begin + chunk_size : job_n;
      telem.chunks.add(1);
      const std::uint64_t chunk_start_us = telemetry::steady_now_us();
      const telemetry::TraceScope span(
          "chunk", "parallel",
          {{"begin", JsonValue(static_cast<std::uint64_t>(begin))},
           {"end", JsonValue(static_cast<std::uint64_t>(end))}});
      try {
        for (std::size_t i = begin; i < end; ++i) (*job_fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(exception_mutex);
          if (!job_exception) job_exception = std::current_exception();
        }
        job_failed.store(true, std::memory_order_release);
        break;
      }
      telem.chunk_ms.record(
          static_cast<double>(telemetry::steady_now_us() - chunk_start_us) / 1000.0);
    }
    tls_inside_task = false;
  }

  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    // Nested (inline) calls are not separate jobs; count only top-level ones.
    if (!tls_inside_task) {
      PoolTelemetry& telem = PoolTelemetry::get();
      telem.jobs.add(1);
      telem.indices.add(n);
    }
    if (thread_count == 1 || tls_inside_task || n == 1) {
      // Serial fallback: AROPUF_THREADS=1, nested call, or trivial span.
      // Exceptions propagate naturally from the caller's own frame.
      const bool was_inside = tls_inside_task;
      tls_inside_task = true;
      try {
        for (std::size_t i = 0; i < n; ++i) fn(i);
      } catch (...) {
        tls_inside_task = was_inside;
        throw;
      }
      tls_inside_task = was_inside;
      return;
    }

    // One job at a time; a second caller thread queues behind this mutex.
    std::lock_guard<std::mutex> job_lock(job_mutex);
    const telemetry::TraceScope job_span(
        "parallel_for", "parallel",
        {{"n", JsonValue(static_cast<std::uint64_t>(n))},
         {"threads", JsonValue(thread_count)}});
    job_fn = &fn;
    job_n = n;
    // ~4 chunks per thread balances scheduling overhead against tail latency
    // from uneven per-index cost (aging a chip is much slower than hashing).
    const std::size_t target_chunks = static_cast<std::size_t>(thread_count) * 4;
    chunk_size = n / target_chunks > 0 ? n / target_chunks : 1;
    next_index.store(0, std::memory_order_relaxed);
    job_failed.store(false, std::memory_order_relaxed);
    job_exception = nullptr;
    job_submit_us.store(telemetry::steady_now_us(), std::memory_order_release);
    active_workers.store(thread_count - 1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++generation;
    }
    work_cv.notify_all();

    run_chunks();  // the calling thread pulls chunks too

    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return active_workers.load(std::memory_order_acquire) == 0; });
    }
    job_fn = nullptr;
    if (job_exception) std::rethrow_exception(job_exception);
  }

  const int thread_count;
  std::vector<std::thread> workers;

  // Job hand-off (guarded by `mutex` for the generation/stop signal).
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  bool stopping = false;
  std::atomic<int> active_workers{0};

  // Current job (valid while generation is live; serialized by job_mutex).
  std::mutex job_mutex;
  const std::function<void(std::size_t)>* job_fn = nullptr;
  std::size_t job_n = 0;
  std::size_t chunk_size = 1;
  std::atomic<std::uint64_t> job_submit_us{0};
  std::atomic<std::size_t> next_index{0};
  std::atomic<bool> job_failed{false};
  std::mutex exception_mutex;
  std::exception_ptr job_exception;
};

ParallelExecutor::ParallelExecutor(int threads)
    : impl_(std::make_unique<Impl>(threads > 0 ? threads : default_thread_count())) {}

ParallelExecutor::~ParallelExecutor() = default;

int ParallelExecutor::thread_count() const noexcept { return impl_->thread_count; }

void ParallelExecutor::parallel_for(std::size_t n,
                                    const std::function<void(std::size_t)>& fn) {
  impl_->parallel_for(n, fn);
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ParallelExecutor> g_global_executor;

}  // namespace

namespace {

/// The global pool's size is provenance: manifests record it, and the log
/// line answers "how many workers actually ran" without attaching a tracer.
void announce_global_pool(int threads) {
  telemetry::set_runtime_field("threads", JsonValue(threads));
  ARO_LOG_DEBUG("parallel", "global executor ready", {"threads", JsonValue(threads)});
}

}  // namespace

ParallelExecutor& ParallelExecutor::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_executor) {
    g_global_executor = std::make_unique<ParallelExecutor>();
    announce_global_pool(g_global_executor->thread_count());
  }
  return *g_global_executor;
}

void ParallelExecutor::set_global_thread_count(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_executor = std::make_unique<ParallelExecutor>(threads);
  announce_global_pool(g_global_executor->thread_count());
}

void parallel_for_chips(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ParallelExecutor::global().parallel_for(n, fn);
}

}  // namespace aropuf
