#include "sim/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace aropuf {

namespace {

/// True while the current thread is executing inside a parallel_for task;
/// nested calls detect this and run inline to avoid deadlocking the pool.
thread_local bool tls_inside_task = false;

int clamp_threads(int threads) {
  if (threads < 1) threads = 1;
  // More threads than indices never helps, but a generous ceiling keeps the
  // knob honest on big machines while bounding accidental "AROPUF_THREADS=1e9".
  constexpr int kMaxThreads = 256;
  return threads > kMaxThreads ? kMaxThreads : threads;
}

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("AROPUF_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return clamp_threads(static_cast<int>(parsed));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return clamp_threads(hw == 0 ? 1 : static_cast<int>(hw));
}

struct ParallelExecutor::Impl {
  explicit Impl(int threads) : thread_count(clamp_threads(threads)) {
    workers.reserve(static_cast<std::size_t>(thread_count - 1));
    for (int t = 0; t < thread_count - 1; ++t) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& w : workers) w.join();
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || generation != seen_generation; });
        if (stopping) return;
        seen_generation = generation;
      }
      run_chunks();
      if (active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }

  /// Claims chunks from the shared cursor until the index space (or the job,
  /// after an exception) is exhausted.  Runs on workers and the caller alike.
  void run_chunks() {
    tls_inside_task = true;
    for (;;) {
      if (job_failed.load(std::memory_order_acquire)) break;
      const std::size_t begin = next_index.fetch_add(chunk_size, std::memory_order_relaxed);
      if (begin >= job_n) break;
      const std::size_t end = begin + chunk_size < job_n ? begin + chunk_size : job_n;
      try {
        for (std::size_t i = begin; i < end; ++i) (*job_fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(exception_mutex);
          if (!job_exception) job_exception = std::current_exception();
        }
        job_failed.store(true, std::memory_order_release);
        break;
      }
    }
    tls_inside_task = false;
  }

  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (thread_count == 1 || tls_inside_task || n == 1) {
      // Serial fallback: AROPUF_THREADS=1, nested call, or trivial span.
      // Exceptions propagate naturally from the caller's own frame.
      const bool was_inside = tls_inside_task;
      tls_inside_task = true;
      try {
        for (std::size_t i = 0; i < n; ++i) fn(i);
      } catch (...) {
        tls_inside_task = was_inside;
        throw;
      }
      tls_inside_task = was_inside;
      return;
    }

    // One job at a time; a second caller thread queues behind this mutex.
    std::lock_guard<std::mutex> job_lock(job_mutex);
    job_fn = &fn;
    job_n = n;
    // ~4 chunks per thread balances scheduling overhead against tail latency
    // from uneven per-index cost (aging a chip is much slower than hashing).
    const std::size_t target_chunks = static_cast<std::size_t>(thread_count) * 4;
    chunk_size = n / target_chunks > 0 ? n / target_chunks : 1;
    next_index.store(0, std::memory_order_relaxed);
    job_failed.store(false, std::memory_order_relaxed);
    job_exception = nullptr;
    active_workers.store(thread_count - 1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++generation;
    }
    work_cv.notify_all();

    run_chunks();  // the calling thread pulls chunks too

    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return active_workers.load(std::memory_order_acquire) == 0; });
    }
    job_fn = nullptr;
    if (job_exception) std::rethrow_exception(job_exception);
  }

  const int thread_count;
  std::vector<std::thread> workers;

  // Job hand-off (guarded by `mutex` for the generation/stop signal).
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  bool stopping = false;
  std::atomic<int> active_workers{0};

  // Current job (valid while generation is live; serialized by job_mutex).
  std::mutex job_mutex;
  const std::function<void(std::size_t)>* job_fn = nullptr;
  std::size_t job_n = 0;
  std::size_t chunk_size = 1;
  std::atomic<std::size_t> next_index{0};
  std::atomic<bool> job_failed{false};
  std::mutex exception_mutex;
  std::exception_ptr job_exception;
};

ParallelExecutor::ParallelExecutor(int threads)
    : impl_(std::make_unique<Impl>(threads > 0 ? threads : default_thread_count())) {}

ParallelExecutor::~ParallelExecutor() = default;

int ParallelExecutor::thread_count() const noexcept { return impl_->thread_count; }

void ParallelExecutor::parallel_for(std::size_t n,
                                    const std::function<void(std::size_t)>& fn) {
  impl_->parallel_for(n, fn);
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ParallelExecutor> g_global_executor;

}  // namespace

ParallelExecutor& ParallelExecutor::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_executor) g_global_executor = std::make_unique<ParallelExecutor>();
  return *g_global_executor;
}

void ParallelExecutor::set_global_thread_count(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_executor = std::make_unique<ParallelExecutor>(threads);
}

void parallel_for_chips(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ParallelExecutor::global().parallel_for(n, fn);
}

}  // namespace aropuf
