// Sharded E2+E3 population study: the workload behind tools/aropuf_shard.
//
// A statistical study over a large chip population (Wilde-style RO-PUF
// security analysis at 10k chips) splits into S seed-range shards, each run
// by an independent worker process.  This module defines what one shard
// computes and — critically — how the per-shard payloads recombine without
// losing bit-identity with a single-process run:
//
//  * Per-chip quantities (E2 flip percentages per aging checkpoint, E3
//    uniformity) ship as SampleSeries: the raw per-chip doubles, tagged with
//    the shard's global chip offset.  The aggregator concatenates them in
//    chip order and re-reduces serially — the identical floating-point
//    accumulation a single process performs.  JSON round-trips doubles
//    exactly (%.17g), so no precision is lost in transit.
//
//  * Pairwise quantities (E3 inter-chip Hamming distance over all
//    k(k-1)/2 pairs) would be prohibitively large as raw samples, so they
//    ship as PairTally: exact integer sufficient statistics (count, sum of
//    bit-HDs, sum of squares, min, max, integer histogram bins) over a range
//    of the flattened pair space.  Integer sums are associative, so any
//    shard decomposition merges to exactly the single-process tally.
//
// Chips are identified by their global index: chip i is always the die drawn
// from RngFabric(seed).child("chip", i), so shard boundaries never change
// which silicon is simulated (the same guarantee make_population gives).
// Every shard builds all N golden responses for the pair study (O(N) work)
// but only owns the pair range it tallies (the O(N^2) part that matters).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "sim/scenarios.hpp"
#include "telemetry/binfmt.hpp"

namespace aropuf {

inline constexpr int kShardStudySchemaVersion = 1;

/// Configuration of the whole study (identical across shards; echoed into
/// every shard manifest so the aggregator can detect mismatches).
struct ShardStudyConfig {
  PopulationConfig pop;                              ///< chips = TOTAL population
  std::vector<double> checkpoints = {1.0, 2.0, 5.0, 10.0};  ///< aging years (E2)
};

/// Per-chip doubles for chips [offset, offset + values.size()) of `total`.
struct SampleSeries {
  std::string name;
  std::size_t offset = 0;
  std::size_t total = 0;
  double hist_lo = 0.0;
  double hist_hi = 1.0;
  std::size_t hist_bins = 50;
  std::vector<double> values;
};

/// Exact integer tally over pair-space indices [offset, offset + count).
/// Raw values are integers in [0, denom] (bit Hamming distances); derived
/// statistics divide by `denom` to land in fractional-HD units.
struct PairTally {
  std::string name;
  std::size_t offset = 0;
  std::size_t total = 0;  ///< size of the full pair space
  std::uint64_t denom = 1;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t sum_sq = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> bins;  ///< histogram over value/denom in [0, 1]
};

struct ShardStudyResult {
  std::size_t chip_lo = 0;
  std::size_t chip_hi = 0;
  std::vector<SampleSeries> samples;
  std::vector<PairTally> tallies;
};

/// Progress hook: (stage label, work units done, work units total).
using StudyProgressFn = std::function<void(const std::string&, std::int64_t, std::int64_t)>;

/// Balanced contiguous split of `count` items over `shards`: returns shard
/// `index`'s [lo, hi).  Ranges of all shards exactly tile [0, count).
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(std::size_t count,
                                                              std::size_t index,
                                                              std::size_t shards);

/// Runs shard `index` of `count` shards: both designs' E2 aging series over
/// the shard's chip range plus the E3 uniqueness tally over the shard's pair
/// range.  Results are bit-identical for any (count, threads) decomposition
/// once aggregated.  `progress` (optional) is invoked at milestones.
[[nodiscard]] ShardStudyResult run_shard_study(const ShardStudyConfig& cfg, std::size_t index,
                                               std::size_t count,
                                               const StudyProgressFn& progress = {});

/// The study payload embedded in a shard manifest under "results".  With
/// `include_values` false (the binary transport), sample series carry their
/// headers only — the values travel out of band as packed doubles (see
/// study_series_binary), which is what makes million-chip manifests cheap to
/// parse.
[[nodiscard]] JsonValue study_results_to_json(const ShardStudyResult& result,
                                              bool include_values = true);

/// The out-of-band value payload for the binary transport: one BinarySeries
/// per sample series, values moved (not copied) out of `result`.
[[nodiscard]] std::vector<telemetry::BinarySeries> study_series_binary(ShardStudyResult&& result);

/// Config echo for shard manifests: identical across shards by construction,
/// so any difference the aggregator sees is a real provenance conflict.
[[nodiscard]] JsonValue study_config_json(const ShardStudyConfig& cfg);

/// The "shard" descriptor embedded in every shard manifest: coordinates plus
/// the global chip range this shard owns.
[[nodiscard]] JsonValue study_shard_descriptor(const ShardStudyConfig& cfg, int index, int count);

/// Runs shard `index` end to end and serializes its manifest to bytes —
/// ARPB container bytes when `binary`, the pretty-printed JSON document
/// otherwise.  These are the exact bytes a file-writing worker would have
/// put on disk, which is what lets fleet workers (net/worker via
/// tools/aropuf_fleet) stream results over TCP and still merge
/// bit-identically to a single-process run.  Resets process-wide telemetry
/// state first (run record + metrics), so each call produces an honest
/// per-shard manifest even when one process serves many jobs back to back.
/// Throws on study failure.
[[nodiscard]] std::string run_shard_job(const ShardStudyConfig& cfg, int index, int count,
                                        const std::string& run_name, bool binary,
                                        const StudyProgressFn& progress = {});

}  // namespace aropuf
