#include "sim/scenarios.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "metrics/reliability.hpp"
#include "metrics/uniformity.hpp"
#include "puf/masking.hpp"
#include "puf/ro_puf.hpp"
#include "sim/parallel.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aropuf {

namespace {

std::vector<RoPuf> build_population(const PopulationConfig& pop, const PufConfig& puf) {
  const telemetry::TraceScope span("build_population", "scenario",
                                   {{"chips", JsonValue(pop.chips)}});
  telemetry::MetricsRegistry::global().counter("sim.chips_simulated").add(
      static_cast<std::uint64_t>(pop.chips));
  const RngFabric fabric(pop.seed);
  return make_population(pop.tech, puf, pop.chips, fabric);
}

/// Evaluation indices: 0 is reserved for the golden (enrollment) read; later
/// reads use distinct indices so their noise draws are independent.
constexpr std::uint64_t kGoldenEval = 0;

/// Enrolls every chip's golden response in parallel (each chip touches only
/// its own slot and its own RNG streams).
std::vector<BitVector> enroll_golden(const std::vector<RoPuf>& chips, OperatingPoint op) {
  const telemetry::TraceScope span("enroll_golden", "scenario",
                                   {{"chips", JsonValue(static_cast<std::uint64_t>(chips.size()))}});
  return parallel_map_chips(chips.size(),
                            [&](std::size_t c) { return chips[c].evaluate(op, kGoldenEval); });
}

}  // namespace

FrequencySeries run_frequency_degradation(const PopulationConfig& pop, const PufConfig& puf,
                                          std::span<const double> checkpoints) {
  ARO_REQUIRE(!checkpoints.empty(), "need at least one checkpoint");
  const telemetry::StageTimer stage("E1.frequency_degradation[" + puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);

  FrequencySeries series;
  series.label = puf.label;
  const auto fresh = parallel_map_chips(chips.size(),
                                        [&](std::size_t c) { return chips[c].fresh_ro_frequencies(op); });
  double previous_years = 0.0;
  for (const double y : checkpoints) {
    ARO_REQUIRE(y >= previous_years, "checkpoints must be non-decreasing");
    const telemetry::TraceScope span("checkpoint", "scenario", {{"years", JsonValue(y)}});
    // Each chip ages itself and reports its per-RO shifts; the reduction runs
    // serially in (chip, RO) order so the mean is bit-identical to a serial
    // run at any thread count.
    const auto shifts = parallel_map_chips(chips.size(), [&](std::size_t c) {
      chips[c].age_years(y - previous_years);
      std::vector<double> s = chips[c].ro_frequencies(op);
      for (std::size_t r = 0; r < s.size(); ++r) {
        s[r] = (fresh[c][r] - s[r]) / fresh[c][r] * 100.0;
      }
      return s;
    });
    RunningStats shift;
    for (const auto& chip_shifts : shifts) {
      for (const double s : chip_shifts) shift.add(s);
    }
    previous_years = y;
    series.years.push_back(y);
    series.mean_freq_shift_percent.push_back(shift.mean());
  }
  return series;
}

namespace {

/// Shared E2-style checkpoint walk: ages every chip to each checkpoint in
/// parallel, compares against its golden response, and reduces the per-chip
/// flip percentages in chip order (bit-identical at any thread count).
template <typename Series>
void run_flip_checkpoints(std::vector<RoPuf>& chips, const std::vector<BitVector>& golden,
                          OperatingPoint op, std::span<const double> checkpoints,
                          Series& series) {
  double previous_years = 0.0;
  std::uint64_t eval_index = 1;
  for (const double y : checkpoints) {
    ARO_REQUIRE(y >= previous_years, "checkpoints must be non-decreasing");
    const telemetry::TraceScope span("checkpoint", "scenario", {{"years", JsonValue(y)}});
    const auto flip_percent = parallel_map_chips(chips.size(), [&](std::size_t c) {
      chips[c].age_years(y - previous_years);
      return fractional_hamming_distance(golden[c], chips[c].evaluate(op, eval_index)) * 100.0;
    });
    RunningStats flips;
    for (const double f : flip_percent) flips.add(f);
    previous_years = y;
    ++eval_index;
    series.years.push_back(y);
    series.mean_flip_percent.push_back(flips.mean());
    series.max_flip_percent.push_back(flips.max());
  }
}

}  // namespace

AgingSeries run_aging_series(const PopulationConfig& pop, const PufConfig& puf,
                             std::span<const double> checkpoints) {
  ARO_REQUIRE(!checkpoints.empty(), "need at least one checkpoint");
  const telemetry::StageTimer stage("E2.aging_series[" + puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);

  const std::vector<BitVector> golden = enroll_golden(chips, op);

  AgingSeries series;
  series.label = puf.label;
  run_flip_checkpoints(chips, golden, op, checkpoints, series);
  return series;
}

AgingSeries run_aging_series_with_burnin(const PopulationConfig& pop, const PufConfig& puf,
                                         const StressProfile& burnin_profile,
                                         Seconds burnin_duration,
                                         std::span<const double> checkpoints) {
  ARO_REQUIRE(!checkpoints.empty(), "need at least one checkpoint");
  ARO_REQUIRE(burnin_duration >= 0.0, "burn-in duration must be non-negative");
  const telemetry::StageTimer stage("E8.aging_series_burnin[" + puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);

  const auto golden = parallel_map_chips(chips.size(), [&](std::size_t c) {
    chips[c].age(burnin_profile, burnin_duration);
    return chips[c].evaluate(op, kGoldenEval);
  });

  AgingSeries series;
  series.label = puf.label + " +burn-in";
  run_flip_checkpoints(chips, golden, op, checkpoints, series);
  return series;
}

Seconds MissionProfile::cycle_duration() const {
  Seconds total = 0.0;
  for (const auto& phase : cycle) total += phase.duration;
  return total;
}

void MissionProfile::validate() const {
  ARO_REQUIRE(!cycle.empty(), "mission needs at least one phase");
  for (const auto& phase : cycle) {
    phase.profile.validate();
    ARO_REQUIRE(phase.duration > 0.0, "mission phases need positive durations");
  }
}

MissionProfile MissionProfile::automotive(bool gated) {
  MissionProfile m;
  m.name = gated ? "automotive-gated" : "automotive-always-on";

  MissionPhase driving;
  driving.duration = 2.0 * 3600.0;
  driving.profile = gated ? StressProfile::aro_gated(20.0, 10e-3)
                          : StressProfile::conventional_always_on();
  driving.profile.stress_temperature = celsius(85.0);
  driving.profile.name = "engine-on";

  MissionPhase parked;
  parked.duration = 22.0 * 3600.0;
  parked.profile = gated ? StressProfile::aro_gated(0.0, 0.0)
                         : StressProfile::conventional_always_on();
  parked.profile.stress_temperature = celsius(15.0);
  parked.profile.name = "parked";

  m.cycle = {driving, parked};
  m.validate();
  return m;
}

MissionResult run_mission(const PopulationConfig& pop, const PufConfig& puf,
                          const MissionProfile& mission,
                          std::span<const double> year_checkpoints) {
  mission.validate();
  ARO_REQUIRE(!year_checkpoints.empty(), "need at least one checkpoint");
  const telemetry::StageTimer stage("E14.mission[" + mission.name + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);

  const std::vector<BitVector> golden = enroll_golden(chips, op);

  MissionResult result;
  result.label = puf.label + " @ " + mission.name;
  // Cycles are daily-scale and lifetimes are years: advancing phase-by-phase
  // for every cycle would be millions of steps.  The aging state is additive
  // in (effective stress seconds, cycles), so we apply each phase once per
  // checkpoint interval with its total accumulated duration — exact for the
  // power-law models used here up to the documented stress-temperature
  // piecewise approximation.
  double previous_years = 0.0;
  std::uint64_t eval_index = 1;
  for (const double y : year_checkpoints) {
    ARO_REQUIRE(y >= previous_years, "checkpoints must be non-decreasing");
    const telemetry::TraceScope span("checkpoint", "scenario", {{"years", JsonValue(y)}});
    const Seconds interval = years(y - previous_years);
    const double cycles_in_interval = interval / mission.cycle_duration();
    const auto flip_percent = parallel_map_chips(chips.size(), [&](std::size_t c) {
      for (const auto& phase : mission.cycle) {
        chips[c].age(phase.profile, phase.duration * cycles_in_interval);
      }
      return fractional_hamming_distance(golden[c], chips[c].evaluate(op, eval_index)) * 100.0;
    });
    RunningStats flips;
    for (const double f : flip_percent) flips.add(f);
    previous_years = y;
    ++eval_index;
    result.years.push_back(y);
    result.mean_flip_percent.push_back(flips.mean());
    result.max_flip_percent.push_back(flips.max());
  }
  return result;
}

MaskingStudyResult run_masking_study(const PopulationConfig& pop, const PufConfig& puf,
                                     bool full_corners, int screening_repeats, double years) {
  ARO_REQUIRE(years >= 0.0, "years must be non-negative");
  const telemetry::StageTimer stage("E10.masking_study[" + puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);
  const ScreeningConfig screening = full_corners
                                        ? ScreeningConfig::full_corners(pop.tech,
                                                                        screening_repeats)
                                        : ScreeningConfig::nominal_only(screening_repeats);

  struct ChipOutcome {
    double stable_fraction = 0.0;
    double raw_ber = 0.0;
    double masked_ber = 0.0;
    bool has_masked = false;
  };
  const auto outcomes = parallel_map_chips(chips.size(), [&](std::size_t c) {
    auto& chip = chips[c];
    const StabilityMask mask = screen_stability(chip, screening);
    const BitVector golden = chip.evaluate(op, kGoldenEval);
    chip.age_years(years);
    const BitVector aged = chip.evaluate(op, 1);
    ChipOutcome out;
    out.stable_fraction = mask.stable_fraction();
    out.raw_ber = fractional_hamming_distance(golden, aged);
    if (mask.stable_count() > 0) {
      out.masked_ber =
          fractional_hamming_distance(apply_mask(golden, mask), apply_mask(aged, mask));
      out.has_masked = true;
    }
    return out;
  });

  RunningStats stable;
  RunningStats raw_ber;
  RunningStats masked_ber;
  for (const auto& out : outcomes) {
    stable.add(out.stable_fraction);
    raw_ber.add(out.raw_ber);
    if (out.has_masked) masked_ber.add(out.masked_ber);
  }
  MaskingStudyResult result;
  result.stable_fraction = stable.mean();
  result.unmasked_ber = raw_ber.mean();
  result.masked_ber = masked_ber.mean();
  return result;
}

UniquenessExperimentResult run_uniqueness(const PopulationConfig& pop, const PufConfig& puf) {
  const telemetry::StageTimer stage("E3.uniqueness[" + puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);

  const std::vector<BitVector> responses = enroll_golden(chips, op);

  UniquenessExperimentResult result;
  result.label = puf.label;
  result.uniqueness = compute_uniqueness(responses);
  result.uniformity = uniformity_stats(responses);
  result.aliasing = bit_aliasing_stats(responses);
  return result;
}

namespace {

std::vector<SweepPoint> run_environment_sweep(const PopulationConfig& pop, const PufConfig& puf,
                                              std::span<const double> points,
                                              bool sweep_temperature) {
  ARO_REQUIRE(!points.empty(), "need at least one sweep point");
  const telemetry::StageTimer stage(
      std::string(sweep_temperature ? "E5.temperature_sweep[" : "E6.voltage_sweep[") +
      puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint nominal = nominal_operating_point(pop.tech);

  const std::vector<BitVector> golden = enroll_golden(chips, nominal);

  std::vector<SweepPoint> sweep;
  sweep.reserve(points.size());
  std::uint64_t eval_index = 1;
  for (const double value : points) {
    const telemetry::TraceScope span("sweep_point", "scenario", {{"value", JsonValue(value)}});
    OperatingPoint op = nominal;
    if (sweep_temperature) {
      op.temp = celsius(value);
    } else {
      op.vdd = value;
    }
    const auto ber_percent = parallel_map_chips(chips.size(), [&](std::size_t c) {
      const BitVector response = chips[c].evaluate(op, eval_index);
      return fractional_hamming_distance(golden[c], response) * 100.0;
    });
    RunningStats ber;
    for (const double b : ber_percent) ber.add(b);
    ++eval_index;
    sweep.push_back(SweepPoint{value, ber.mean(), ber.max()});
  }
  return sweep;
}

}  // namespace

std::vector<SweepPoint> run_temperature_sweep(const PopulationConfig& pop, const PufConfig& puf,
                                              std::span<const double> celsius_points) {
  return run_environment_sweep(pop, puf, celsius_points, /*sweep_temperature=*/true);
}

std::vector<SweepPoint> run_voltage_sweep(const PopulationConfig& pop, const PufConfig& puf,
                                          std::span<const double> vdd_points) {
  return run_environment_sweep(pop, puf, vdd_points, /*sweep_temperature=*/false);
}

BerStats measure_eol_ber(const PopulationConfig& pop, const PufConfig& puf,
                         double years_of_use) {
  ARO_REQUIRE(years_of_use >= 0.0, "years must be non-negative");
  const telemetry::StageTimer stage("eol_ber[" + puf.label + "]");
  auto chips = build_population(pop, puf);
  const OperatingPoint op = nominal_operating_point(pop.tech);
  const auto chip_ber = parallel_map_chips(chips.size(), [&](std::size_t c) {
    auto& chip = chips[c];
    const BitVector golden = chip.evaluate(op, kGoldenEval);
    chip.age_years(years_of_use);
    const BitVector aged = chip.evaluate(op, 1);
    return fractional_hamming_distance(golden, aged);
  });
  RunningStats ber;
  for (const double b : chip_ber) ber.add(b);
  return BerStats{ber.mean(), ber.stddev(), ber.max()};
}

EccComparison run_ecc_comparison(const TechnologyParams& tech, double conventional_ber,
                                 double aro_ber, const CodeSearchConstraints& constraints) {
  const telemetry::StageTimer stage("E7.ecc_comparison");
  EccComparison cmp;
  cmp.conventional_ber = conventional_ber;
  cmp.aro_ber = aro_ber;
  const auto conv = find_min_area_scheme(tech, conventional_ber, constraints);
  const auto aro = find_min_area_scheme(tech, aro_ber, constraints);
  if (!conv.has_value()) {
    throw std::runtime_error("no ECC scheme meets the target for the conventional BER");
  }
  if (!aro.has_value()) {
    throw std::runtime_error("no ECC scheme meets the target for the ARO BER");
  }
  cmp.conventional = *conv;
  cmp.aro = *aro;
  return cmp;
}

EccComparison run_ecc_comparison_from_simulation(const PopulationConfig& pop,
                                                 const CodeSearchConstraints& constraints,
                                                 double years) {
  const BerStats ber_conv = measure_eol_ber(pop, PufConfig::conventional(), years);
  const BerStats ber_aro = measure_eol_ber(pop, PufConfig::aro(), years);
  return run_ecc_comparison(pop.tech, ber_conv.p90(), ber_aro.p90(), constraints);
}

}  // namespace aropuf
