// ParallelExecutor — the Monte Carlo execution engine behind the scenario
// loops (E1..E14), uniqueness, and the ECC code search.
//
// Chips in a population study are embarrassingly parallel, so the engine is a
// persistent thread pool with chunked dynamic scheduling: workers claim chunks
// of the index space from a shared atomic cursor, which load-balances uneven
// work (e.g. uniqueness rows of shrinking length) the same way work stealing
// does, without per-task queues.
//
// Determinism is non-negotiable (see DESIGN.md and common/rng.hpp): every
// result must be bit-identical at any thread count.  The engine guarantees
// this by construction, not by luck:
//   * each index's work draws only from its own RngFabric sub-streams and
//     mutates only its own slot, so per-index values never depend on
//     execution order; and
//   * callers reduce per-index results serially in index order (see
//     parallel_map_chips), so floating-point accumulation order is fixed.
//
// Thread count resolution order: explicit constructor argument, else the
// AROPUF_THREADS environment variable, else std::thread::hardware_concurrency.
// AROPUF_THREADS=1 disables the pool entirely — every task runs inline on the
// calling thread, which is also the fallback for nested parallel_for calls.
//
// Exceptions thrown by tasks are captured (first one wins), remaining chunks
// are abandoned, and the exception is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace aropuf {

class ParallelExecutor {
 public:
  /// `threads` <= 0 selects default_thread_count().  A count of 1 never
  /// spawns workers: parallel_for degenerates to a serial loop.
  explicit ParallelExecutor(int threads = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] int thread_count() const noexcept;

  /// Runs fn(i) for every i in [0, n), distributing chunks over the pool
  /// (the calling thread participates).  Blocks until all indices complete
  /// or a task throws; the first exception is rethrown here.  Nested calls
  /// from inside a task run serially inline.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The process-wide executor used by the scenario engine.  Created lazily
  /// with default_thread_count(); replaced by set_global_thread_count().
  [[nodiscard]] static ParallelExecutor& global();

  /// Replaces the global pool with one of `threads` threads (<= 0 resets to
  /// the default).  Used by the bench binaries' --threads flag and the
  /// determinism tests.  Not safe concurrently with running parallel_for.
  static void set_global_thread_count(int threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Thread count implied by the environment: AROPUF_THREADS when set to a
/// positive integer, otherwise std::thread::hardware_concurrency() (>= 1).
[[nodiscard]] int default_thread_count();

/// Convenience entry point used by the Monte Carlo loops:
/// ParallelExecutor::global().parallel_for(n, fn).
void parallel_for_chips(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Computes fn(i) for every index into an index-ordered vector.  The caller
/// reduces the vector serially in index order, which keeps floating-point
/// accumulation bit-identical at any thread count.
template <typename F>
[[nodiscard]] auto parallel_map_chips(std::size_t n, F&& fn) {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<T> out(n);
  parallel_for_chips(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace aropuf
