// Canned experiment scenarios — the shared engine behind the bench binaries
// (bench/bench_e1 .. e9), the calibration tests, and the examples.
//
// Each function is a pure Monte Carlo routine: (config, seed) → results.
// Bench binaries format the results as the paper's tables; calibration
// tests assert the headline bands on the same numbers.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/statistics.hpp"
#include "device/technology.hpp"
#include "ecc/code_search.hpp"
#include "metrics/uniqueness.hpp"
#include "puf/puf_config.hpp"

namespace aropuf {

/// Shared Monte Carlo population setup.
struct PopulationConfig {
  TechnologyParams tech = TechnologyParams::cmos90();
  int chips = 40;
  std::uint64_t seed = 2014;
};

// --- E1: frequency degradation over time -----------------------------------

struct FrequencySeries {
  std::string label;
  std::vector<double> years;
  /// Mean relative frequency degradation (%) across all ROs and chips.
  std::vector<double> mean_freq_shift_percent;
};

[[nodiscard]] FrequencySeries run_frequency_degradation(const PopulationConfig& pop,
                                                        const PufConfig& puf,
                                                        std::span<const double> checkpoints);

// --- E2: bit flips vs years of aging ----------------------------------------

struct AgingSeries {
  std::string label;
  std::vector<double> years;
  std::vector<double> mean_flip_percent;  ///< mean over chips
  std::vector<double> max_flip_percent;   ///< worst chip
};

[[nodiscard]] AgingSeries run_aging_series(const PopulationConfig& pop, const PufConfig& puf,
                                           std::span<const double> checkpoints);

/// Burn-in variant: chips are pre-aged under `burnin_profile` for
/// `burnin_duration` *before* the golden response is enrolled.  The t^(1/6)
/// NBTI law front-loads damage, so spending the steep early segment before
/// enrollment stabilizes the remaining lifetime (the paper's future-work
/// direction; quantified in the E8 ablation).
[[nodiscard]] AgingSeries run_aging_series_with_burnin(const PopulationConfig& pop,
                                                       const PufConfig& puf,
                                                       const StressProfile& burnin_profile,
                                                       Seconds burnin_duration,
                                                       std::span<const double> checkpoints);

// --- E3/E4: uniqueness, uniformity, bit-aliasing -----------------------------

struct UniquenessExperimentResult {
  std::string label;
  UniquenessResult uniqueness;
  RunningStats uniformity;       ///< per-chip ones-fraction
  RunningStats aliasing;         ///< per-bit-position ones-fraction over chips
};

[[nodiscard]] UniquenessExperimentResult run_uniqueness(const PopulationConfig& pop,
                                                        const PufConfig& puf);

// --- E5/E6: environment sweeps ----------------------------------------------

struct SweepPoint {
  double value = 0.0;             ///< swept quantity (°C or V)
  double mean_ber_percent = 0.0;  ///< vs. the nominal-corner golden response
  double max_ber_percent = 0.0;
};

[[nodiscard]] std::vector<SweepPoint> run_temperature_sweep(const PopulationConfig& pop,
                                                            const PufConfig& puf,
                                                            std::span<const double> celsius_points);

[[nodiscard]] std::vector<SweepPoint> run_voltage_sweep(const PopulationConfig& pop,
                                                        const PufConfig& puf,
                                                        std::span<const double> vdd_points);

// --- E7: ECC / area comparison ------------------------------------------------

struct EccComparison {
  CodeSearchResult conventional;
  CodeSearchResult aro;
  double conventional_ber = 0.0;
  double aro_ber = 0.0;
  /// Total-area ratio conventional / ARO (the paper's ~24x).
  [[nodiscard]] double area_ratio() const {
    return conventional.area.total_ge() / aro.area.total_ge();
  }
};

/// Runs the min-area code search for both designs at the given raw BERs.
/// Throws std::runtime_error if either search fails.
[[nodiscard]] EccComparison run_ecc_comparison(const TechnologyParams& tech,
                                               double conventional_ber, double aro_ber,
                                               const CodeSearchConstraints& constraints);

/// Convenience: measures both designs' 10-year BER with the standard
/// populations, then runs the comparison at each design's 90th-percentile
/// chip BER — the provisioning point when the worst 10 % of chips are
/// binned out at manufacturing test, the standard yield assumption for PUF
/// key macros and the regime where the paper's ~24x Table-E7 ratio lives.
[[nodiscard]] EccComparison run_ecc_comparison_from_simulation(
    const PopulationConfig& pop, const CodeSearchConstraints& constraints, double years = 10.0);

/// End-of-life per-chip flip-fraction statistics for one design.
// --- E14: mission profiles -----------------------------------------------------

/// One phase of a mission: a stress profile applied for a duration.
struct MissionPhase {
  StressProfile profile;
  Seconds duration = 0.0;
};

/// A repeating sequence of phases (e.g. automotive: cold mornings, hot
/// engine-on hours, parked nights), cycled until the requested lifetime.
struct MissionProfile {
  std::string name;
  std::vector<MissionPhase> cycle;

  [[nodiscard]] Seconds cycle_duration() const;
  void validate() const;

  /// Automotive-flavoured mission for a given design's usage style:
  /// 2 h/day of 85 C engine-on operation, 22 h/day parked at 15 C.
  /// `gated` selects whether the PUF is enable-gated (ARO) or always on.
  static MissionProfile automotive(bool gated);
};

struct MissionResult {
  std::string label;
  std::vector<double> years;
  std::vector<double> mean_flip_percent;
  std::vector<double> max_flip_percent;
};

/// Ages the population through repeated mission cycles, evaluating flips at
/// each checkpoint (golden enrolled fresh, nominal corner).
[[nodiscard]] MissionResult run_mission(const PopulationConfig& pop, const PufConfig& puf,
                                        const MissionProfile& mission,
                                        std::span<const double> year_checkpoints);

// --- E10: stability screening (dark-bit masking) -----------------------------

struct MaskingStudyResult {
  /// Mean fraction of bits surviving screening.
  double stable_fraction = 0.0;
  /// Mean end-of-life BER on the raw (unmasked) response.
  double unmasked_ber = 0.0;
  /// Mean end-of-life BER restricted to screened-stable bits.
  double masked_ber = 0.0;
};

/// Screens each chip at enrollment with `screening_repeats` nominal-corner
/// re-reads (plus hot/cold/low/high-VDD corners when `full_corners`), then
/// ages `years` and compares masked vs unmasked error rates.
[[nodiscard]] MaskingStudyResult run_masking_study(const PopulationConfig& pop,
                                                   const PufConfig& puf, bool full_corners,
                                                   int screening_repeats, double years);

struct BerStats {
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
  /// Gaussian 90th percentile: mean + 1.282 sigma (provisioning BER with
  /// 10 % test-time yield binning).
  [[nodiscard]] double p90() const { return mean + 1.282 * stddev; }
  /// Gaussian 95th percentile (no-binning provisioning).
  [[nodiscard]] double p95() const { return mean + 1.645 * stddev; }
};

[[nodiscard]] BerStats measure_eol_ber(const PopulationConfig& pop, const PufConfig& puf,
                                       double years_of_use);

}  // namespace aropuf
