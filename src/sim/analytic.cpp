#include "sim/analytic.hpp"

#include <cmath>

#include "common/check.hpp"
#include "device/aging.hpp"

namespace aropuf {

double analytic_flip_probability(double sigma_disturbance, double sigma_margin) {
  ARO_REQUIRE(sigma_disturbance >= 0.0, "sigma must be non-negative");
  ARO_REQUIRE(sigma_margin > 0.0, "margin sigma must be positive");
  return std::atan(sigma_disturbance / sigma_margin) / M_PI;
}

double analytic_interchip_hd(double sigma_systematic, double sigma_random) {
  ARO_REQUIRE(sigma_systematic >= 0.0, "sigma must be non-negative");
  ARO_REQUIRE(sigma_random > 0.0, "random sigma must be positive");
  const double s2 = sigma_systematic * sigma_systematic;
  const double rho = s2 / (s2 + sigma_random * sigma_random);
  return std::acos(rho) / M_PI;
}

double analytic_pair_margin_sigma(const TechnologyParams& tech, int stages) {
  ARO_REQUIRE(stages >= 3, "RO needs stages");
  tech.validate();
  // 2 devices per stage; a pair doubles the variance of the RO means.
  const double devices = 2.0 * static_cast<double>(stages);
  return tech.sigma_vth_local * std::sqrt(2.0 / devices);
}

double analytic_aging_disturbance_sigma(const TechnologyParams& tech, int stages,
                                        const StressProfile& profile, double years_of_use) {
  ARO_REQUIRE(stages >= 3, "RO needs stages");
  ARO_REQUIRE(years_of_use >= 0.0, "years must be non-negative");
  profile.validate();
  const AgingModel aging(tech);
  StressState state;
  state = aging.accumulate(state, profile, years(years_of_use),
                           tech.nominal_ro_frequency(stages));
  const AgingShifts shifts = aging.shifts(state);
  // NBTI applies per PMOS (one per stage); a pair's differential is the
  // difference of two per-RO means of `stages` i.i.d. sensitivities.  HCI
  // contributes the analogous NMOS term.
  const double per_ro = std::sqrt(2.0 / static_cast<double>(stages));
  const double nbti = shifts.nbti * tech.nbti_sigma_rel * per_ro;
  const double hci = shifts.hci * tech.hci_sigma_rel * per_ro;
  return std::sqrt(nbti * nbti + hci * hci);
}

double analytic_aging_flip_probability(const TechnologyParams& tech, const PufConfig& config,
                                       double years_of_use) {
  config.validate();
  // The delay model averages rising and falling edges, so a PMOS-only
  // (NBTI) or NMOS-only (HCI) shift carries half weight relative to a
  // whole-device Vth change — the local-mismatch margin below includes both
  // edges, so scale the disturbance by 0.5.
  const double sigma_margin = analytic_pair_margin_sigma(tech, config.stages);
  const double sigma_aging =
      0.5 * analytic_aging_disturbance_sigma(tech, config.stages, config.lifetime_profile,
                                             years_of_use);
  return analytic_flip_probability(sigma_aging, sigma_margin);
}

}  // namespace aropuf
