#include "sim/shard_study.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "circuit/operating_point.hpp"
#include "common/check.hpp"
#include "common/statistics.hpp"
#include "puf/ro_puf.hpp"
#include "sim/parallel.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aropuf {

namespace {

/// E3 pair work is reported in chunks so the HUD sees movement inside the
/// O(N^2) stage; chunking never changes the tally (integer sums commute).
constexpr std::size_t kPairChunks = 8;

/// The two designs under study, keyed for series names.
std::vector<std::pair<std::string, PufConfig>> study_designs() {
  return {{"conventional", PufConfig::conventional()}, {"aro", PufConfig::aro()}};
}

std::string format_year(double y) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", y);
  return buf;
}

/// Builds the shard's chips as the same dies a full-population build would
/// produce: chip i always draws from fabric.child("chip", i).
std::vector<RoPuf> build_chip_range(const PopulationConfig& pop, const PufConfig& puf,
                                    std::size_t lo, std::size_t hi) {
  const telemetry::TraceScope span(
      "build_chip_range", "shard",
      {{"lo", JsonValue(static_cast<std::uint64_t>(lo))},
       {"hi", JsonValue(static_cast<std::uint64_t>(hi))}});
  telemetry::MetricsRegistry::global().counter("study.chips_built").add(hi - lo);
  const RngFabric fabric(pop.seed);
  std::vector<std::optional<RoPuf>> staged(hi - lo);
  parallel_for_chips(staged.size(), [&](std::size_t i) {
    staged[i].emplace(pop.tech, puf, fabric.child("chip", static_cast<std::uint64_t>(lo + i)));
  });
  std::vector<RoPuf> chips;
  chips.reserve(staged.size());
  for (auto& chip : staged) chips.push_back(std::move(*chip));
  return chips;
}

/// Golden (fresh, eval 0) responses of the WHOLE population — the pair study
/// needs every chip's response regardless of which pair range this shard
/// owns.  Chips are built, evaluated, and dropped one at a time.
std::vector<BitVector> all_golden_responses(const PopulationConfig& pop, const PufConfig& puf) {
  const telemetry::TraceScope span("all_golden_responses", "shard",
                                   {{"chips", JsonValue(pop.chips)}});
  const OperatingPoint op = nominal_operating_point(pop.tech);
  const RngFabric fabric(pop.seed);
  return parallel_map_chips(static_cast<std::size_t>(pop.chips), [&](std::size_t i) {
    const RoPuf chip(pop.tech, puf, fabric.child("chip", static_cast<std::uint64_t>(i)));
    return chip.evaluate(op, /*eval_index=*/0);
  });
}

}  // namespace

std::pair<std::size_t, std::size_t> shard_range(std::size_t count, std::size_t index,
                                                std::size_t shards) {
  ARO_REQUIRE(shards >= 1 && index < shards, "shard index out of range");
  const std::size_t base = count / shards;
  const std::size_t rem = count % shards;
  const std::size_t lo = index * base + std::min(index, rem);
  const std::size_t hi = lo + base + (index < rem ? 1 : 0);
  return {lo, hi};
}

ShardStudyResult run_shard_study(const ShardStudyConfig& cfg, std::size_t index,
                                 std::size_t count, const StudyProgressFn& progress) {
  ARO_REQUIRE(cfg.pop.chips >= 2, "study needs at least two chips");
  ARO_REQUIRE(!cfg.checkpoints.empty(), "study needs at least one aging checkpoint");
  const auto chips_total = static_cast<std::size_t>(cfg.pop.chips);
  const auto [chip_lo, chip_hi] = shard_range(chips_total, index, count);
  const std::size_t pairs_total = chips_total * (chips_total - 1) / 2;
  const auto [pair_lo, pair_hi] = shard_range(pairs_total, index, count);

  const auto designs = study_designs();
  // Work units for progress reporting: per design, one unit per E2 build +
  // one per checkpoint, then one per E3 response build + one per pair chunk.
  const std::int64_t units_total = static_cast<std::int64_t>(
      designs.size() * (1 + cfg.checkpoints.size() + 1 + kPairChunks));
  std::int64_t units_done = 0;
  const auto report = [&](const std::string& stage) {
    if (progress) progress(stage, units_done, units_total);
  };

  telemetry::MetricsRegistry::global().gauge("study.shard_chips").set(
      static_cast<double>(chip_hi - chip_lo));
  telemetry::MetricsRegistry::global().gauge("study.shard_pairs").set(
      static_cast<double>(pair_hi - pair_lo));

  ShardStudyResult result;
  result.chip_lo = chip_lo;
  result.chip_hi = chip_hi;
  const OperatingPoint op = nominal_operating_point(cfg.pop.tech);

  for (const auto& [key, puf] : designs) {
    // --- E2: aging flip series over the shard's chip range ----------------
    {
      const telemetry::StageTimer stage("shard.e2[" + key + "]");
      auto chips = build_chip_range(cfg.pop, puf, chip_lo, chip_hi);
      const auto golden = parallel_map_chips(
          chips.size(), [&](std::size_t c) { return chips[c].evaluate(op, /*eval_index=*/0); });
      ++units_done;
      report("e2." + key + ".build");

      // Mirrors run_flip_checkpoints: incremental aging, eval index 1.. per
      // checkpoint, per-chip flip percent.  The per-chip values depend only
      // on the chip's own RNG streams, never on shard or thread layout.
      double previous_years = 0.0;
      std::uint64_t eval_index = 1;
      for (const double y : cfg.checkpoints) {
        ARO_REQUIRE(y >= previous_years, "checkpoints must be non-decreasing");
        const auto flip_percent = parallel_map_chips(chips.size(), [&](std::size_t c) {
          chips[c].age_years(y - previous_years);
          return fractional_hamming_distance(golden[c], chips[c].evaluate(op, eval_index)) *
                 100.0;
        });
        previous_years = y;
        ++eval_index;
        SampleSeries series;
        series.name = "e2." + key + ".flip_percent.y" + format_year(y);
        series.offset = chip_lo;
        series.total = chips_total;
        series.hist_lo = 0.0;
        series.hist_hi = 100.0;
        series.hist_bins = 50;
        series.values = flip_percent;
        result.samples.push_back(std::move(series));
        ++units_done;
        report("e2." + key + ".y" + format_year(y));
      }
    }

    // --- E3: uniqueness tally over the shard's pair range -----------------
    {
      const telemetry::StageTimer stage("shard.e3[" + key + "]");
      const std::vector<BitVector> responses = all_golden_responses(cfg.pop, puf);
      ++units_done;
      report("e3." + key + ".responses");

      const std::size_t bits = responses.front().size();

      // Uniformity is per-chip: only the shard's own chips, as samples.
      SampleSeries uniformity;
      uniformity.name = "e3." + key + ".uniformity";
      uniformity.offset = chip_lo;
      uniformity.total = chips_total;
      uniformity.hist_lo = 0.0;
      uniformity.hist_hi = 1.0;
      uniformity.hist_bins = 50;
      uniformity.values.reserve(chip_hi - chip_lo);
      for (std::size_t c = chip_lo; c < chip_hi; ++c) {
        uniformity.values.push_back(responses[c].ones_fraction());
      }
      result.samples.push_back(std::move(uniformity));

      // Flattened pair index k -> (row, col), the same lexicographic order
      // compute_uniqueness uses; the shard owns k in [pair_lo, pair_hi).
      std::vector<std::size_t> row_offset(chips_total);
      for (std::size_t i = 0, k = 0; i < chips_total; ++i) {
        row_offset[i] = k;
        k += chips_total - 1 - i;
      }

      PairTally tally;
      tally.name = "e3." + key + ".pair_hd";
      tally.offset = pair_lo;
      tally.total = pairs_total;
      tally.denom = bits;
      tally.bins.assign(50, 0);
      Histogram hist(0.0, 1.0, tally.bins.size());  // compute_uniqueness's binning
      bool first_value = true;
      const std::size_t owned = pair_hi - pair_lo;
      for (std::size_t chunk = 0; chunk < kPairChunks; ++chunk) {
        const auto [c_lo, c_hi] = shard_range(owned, chunk, kPairChunks);
        const auto hds = parallel_map_chips(c_hi - c_lo, [&](std::size_t t) {
          const std::size_t k = pair_lo + c_lo + t;
          const auto row = static_cast<std::size_t>(
              std::distance(row_offset.begin(),
                            std::upper_bound(row_offset.begin(), row_offset.end(), k)) -
              1);
          const std::size_t col = row + 1 + (k - row_offset[row]);
          return static_cast<std::uint64_t>(hamming_distance(responses[row], responses[col]));
        });
        for (const std::uint64_t hd : hds) {
          ++tally.count;
          tally.sum += hd;
          tally.sum_sq += hd * hd;
          if (first_value) {
            tally.min = hd;
            tally.max = hd;
            first_value = false;
          } else {
            tally.min = std::min(tally.min, hd);
            tally.max = std::max(tally.max, hd);
          }
          hist.add(static_cast<double>(hd) / static_cast<double>(bits));
        }
        ++units_done;
        report("e3." + key + ".pairs");
      }
      for (std::size_t b = 0; b < tally.bins.size(); ++b) {
        tally.bins[b] = hist.count(b);
      }
      telemetry::MetricsRegistry::global().counter("study.pair_hds").add(tally.count);
      result.tallies.push_back(std::move(tally));
    }
  }
  return result;
}

JsonValue study_results_to_json(const ShardStudyResult& result, bool include_values) {
  JsonValue::Object samples;
  for (const SampleSeries& s : result.samples) {
    JsonValue::Object obj;
    obj["offset"] = JsonValue(static_cast<std::uint64_t>(s.offset));
    obj["total"] = JsonValue(static_cast<std::uint64_t>(s.total));
    obj["hist_lo"] = JsonValue(s.hist_lo);
    obj["hist_hi"] = JsonValue(s.hist_hi);
    obj["hist_bins"] = JsonValue(static_cast<std::uint64_t>(s.hist_bins));
    if (include_values) {
      JsonValue::Array values;
      values.reserve(s.values.size());
      for (const double v : s.values) values.emplace_back(v);
      obj["values"] = JsonValue(std::move(values));
    }
    samples[s.name] = JsonValue(std::move(obj));
  }
  JsonValue::Object tallies;
  for (const PairTally& t : result.tallies) {
    JsonValue::Object obj;
    obj["offset"] = JsonValue(static_cast<std::uint64_t>(t.offset));
    obj["total"] = JsonValue(static_cast<std::uint64_t>(t.total));
    obj["denom"] = JsonValue(t.denom);
    obj["count"] = JsonValue(t.count);
    obj["sum"] = JsonValue(t.sum);
    obj["sum_sq"] = JsonValue(t.sum_sq);
    obj["min"] = JsonValue(t.min);
    obj["max"] = JsonValue(t.max);
    obj["hist_lo"] = JsonValue(0.0);
    obj["hist_hi"] = JsonValue(1.0);
    JsonValue::Array bins;
    bins.reserve(t.bins.size());
    for (const std::uint64_t b : t.bins) bins.emplace_back(b);
    obj["bins"] = JsonValue(std::move(bins));
    tallies[t.name] = JsonValue(std::move(obj));
  }
  JsonValue::Object root;
  root["samples"] = JsonValue(std::move(samples));
  root["tallies"] = JsonValue(std::move(tallies));
  return JsonValue(std::move(root));
}

std::vector<telemetry::BinarySeries> study_series_binary(ShardStudyResult&& result) {
  std::vector<telemetry::BinarySeries> out;
  out.reserve(result.samples.size());
  for (SampleSeries& s : result.samples) {
    telemetry::BinarySeries b;
    b.name = std::move(s.name);
    b.offset = static_cast<std::uint64_t>(s.offset);
    b.total = static_cast<std::uint64_t>(s.total);
    b.hist_lo = s.hist_lo;
    b.hist_hi = s.hist_hi;
    b.hist_bins = static_cast<std::uint32_t>(s.hist_bins);
    b.values = std::move(s.values);
    out.push_back(std::move(b));
  }
  return out;
}

JsonValue study_config_json(const ShardStudyConfig& cfg) {
  JsonValue::Object config;
  config["study_schema"] = JsonValue(kShardStudySchemaVersion);
  config["chips"] = JsonValue(cfg.pop.chips);
  config["seed"] = JsonValue(cfg.pop.seed);
  config["technology"] = JsonValue(cfg.pop.tech.name);
  JsonValue::Array checkpoints;
  for (const double y : cfg.checkpoints) checkpoints.emplace_back(y);
  config["checkpoints"] = JsonValue(std::move(checkpoints));
  JsonValue::Array designs;
  for (const auto& [key, puf] : study_designs()) designs.emplace_back(key);
  config["designs"] = JsonValue(std::move(designs));
  return JsonValue(std::move(config));
}

JsonValue study_shard_descriptor(const ShardStudyConfig& cfg, int index, int count) {
  const auto [lo, hi] =
      shard_range(static_cast<std::size_t>(cfg.pop.chips), static_cast<std::size_t>(index),
                  static_cast<std::size_t>(count));
  JsonValue::Object shard;
  shard["index"] = JsonValue(index);
  shard["count"] = JsonValue(count);
  shard["chip_lo"] = JsonValue(static_cast<std::uint64_t>(lo));
  shard["chip_hi"] = JsonValue(static_cast<std::uint64_t>(hi));
  return JsonValue(std::move(shard));
}

std::string run_shard_job(const ShardStudyConfig& cfg, int index, int count,
                          const std::string& run_name, bool binary,
                          const StudyProgressFn& progress) {
  telemetry::reset_run_record();
  telemetry::MetricsRegistry::global().reset();
  telemetry::MetricsRegistry::global().set_shard_index(index);

  ShardStudyResult result = run_shard_study(cfg, static_cast<std::size_t>(index),
                                            static_cast<std::size_t>(count), progress);
  telemetry::set_runtime_field("shard", study_shard_descriptor(cfg, index, count));
  // Binary transport: the manifest document carries series headers only; the
  // doubles travel as packed payload blocks.  The metadata JSON must be built
  // BEFORE study_series_binary moves the values out of `result`.
  telemetry::set_runtime_field("results",
                               study_results_to_json(result, /*include_values=*/!binary));
  JsonValue doc = telemetry::build_manifest(run_name, study_config_json(cfg));
  if (binary) {
    return telemetry::encode_shard_manifest(doc, study_series_binary(std::move(result)));
  }
  // Match write_manifest byte for byte (pretty print + trailing newline) so a
  // streamed JSON result equals the file a disk-writing worker produces.
  return doc.dump(/*indent=*/2) + '\n';
}

}  // namespace aropuf
