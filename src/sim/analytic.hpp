// Closed-form companions to the Monte Carlo experiments.
//
// Two exact results for Gaussian comparison channels underpin the
// calibration (DESIGN.md §5); exposing them lets tests cross-validate the
// simulator against theory and lets users size designs without running MC:
//
//  * flip probability under additive disturbance: a bit decided by
//    sign(d0), d0 ~ N(0, σ0²), flips under an independent disturbance
//    a ~ N(0, σa²) with probability  P = atan(σa/σ0) / π.
//  * inter-chip HD under shared bias: two chips' bits come from
//    sign(μ + σ z) with common μ ~ N(0, σsys²); the expected disagreement
//    is  arccos(ρ)/π  with  ρ = σsys² / (σsys² + σ²).
//
// The moments themselves (σ0, σa, σsys) follow from the technology
// parameters; helpers below assemble the leading-order terms used in the
// calibration notes.
#pragma once

#include "device/technology.hpp"
#include "puf/puf_config.hpp"

namespace aropuf {

/// P[sign(d0 + a) != sign(d0)] for independent zero-mean Gaussians.
[[nodiscard]] double analytic_flip_probability(double sigma_disturbance, double sigma_margin);

/// Expected inter-chip fractional HD when each bit carries a shared
/// (die-independent) bias of sigma `sigma_systematic` on top of per-die
/// randomness `sigma_random`.
[[nodiscard]] double analytic_interchip_hd(double sigma_systematic, double sigma_random);

/// Leading-order sigma of a pair's Vth-equivalent margin from local
/// mismatch: sigma_local * sqrt(2 / devices_per_ro).
[[nodiscard]] double analytic_pair_margin_sigma(const TechnologyParams& tech, int stages);

/// Leading-order sigma of the differential NBTI disturbance after
/// `years_of_use` under `profile` (per-pair, Vth-equivalent): the
/// deterministic shift times sigma_rel * sqrt(2 / pmos_per_ro).
[[nodiscard]] double analytic_aging_disturbance_sigma(const TechnologyParams& tech, int stages,
                                                      const StressProfile& profile,
                                                      double years_of_use);

/// Convenience: predicted 10-year-style flip probability for a design,
/// from the two sigmas above (noise excluded; PMOS sensitivity factor 0.5
/// folded in since NBTI acts on the rising edge only).
[[nodiscard]] double analytic_aging_flip_probability(const TechnologyParams& tech,
                                                     const PufConfig& config,
                                                     double years_of_use);

}  // namespace aropuf
