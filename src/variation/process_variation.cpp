#include "variation/process_variation.hpp"

#include <cmath>

namespace aropuf {

DieVariation::DieVariation(const TechnologyParams& tech, std::uint64_t die_seed)
    : tech_(&tech),
      global_([&] {
        Xoshiro256 rng(SplitMix64(die_seed ^ 0x676c6f62616cULL /* "global" */).next());
        return rng.gaussian(0.0, tech.sigma_vth_global);
      }()),
      field_(tech.sigma_vth_spatial, tech.spatial_correlation_length, die_seed) {
  tech.validate();
}

Volts DieVariation::systematic_offset(Position p) const noexcept {
  const double amp = tech_->layout_systematic_amplitude;
  if (amp == 0.0) return 0.0;
  const double wavelength = tech_->layout_ripple_wavelength;
  // Smooth, die-independent pattern: a supply IR-drop gradient down the
  // columns plus litho ripples along both axes.  Component weights are
  // calibrated (see DESIGN.md §5) so that the conventional distant pairing
  // (which spans half the array in y) picks up an equivalent ~0.45 sigma of
  // systematic bias (inter-chip HD ≈ 45 %), while adjacent pairs (delta-x of
  // one pitch) see only the gentle x ripple (inter-chip HD ≈ 49.7 %).
  constexpr double kGradientY = 0.02;   // per pitch
  constexpr double kRippleY = 0.32;
  constexpr double kRippleX = 0.05;
  const double ripple_y = kRippleY * std::sin(2.0 * M_PI * p.y / wavelength + 0.9);
  const double ripple_x = kRippleX * std::sin(2.0 * M_PI * p.x / (0.67 * wavelength) + 1.3);
  return amp * (kGradientY * p.y + ripple_y + ripple_x);
}

}  // namespace aropuf
