#include "variation/spatial_field.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace aropuf {

namespace {
// Anchors within this many correlation lengths contribute to a point.
constexpr std::int64_t kKernelRadiusCells = 3;
}  // namespace

SpatialField::SpatialField(double sigma, double correlation_length, std::uint64_t seed)
    : sigma_(sigma), lambda_(correlation_length), seed_(seed) {
  ARO_REQUIRE(sigma >= 0.0, "field sigma must be non-negative");
  ARO_REQUIRE(correlation_length > 0.0, "correlation length must be positive");
}

double SpatialField::anchor(std::int64_t ix, std::int64_t iy) const noexcept {
  // Hash the cell coordinates into two uniforms, then Box-Muller.  The +large
  // offsets keep ix/iy non-negative distinct patterns for negative cells.
  const auto ux = static_cast<std::uint64_t>(ix + (1LL << 32));
  const auto uy = static_cast<std::uint64_t>(iy + (1LL << 32));
  SplitMix64 h(seed_ ^ (ux * 0x9e3779b97f4a7c15ULL) ^ (uy * 0xc2b2ae3d27d4eb4fULL));
  const double u1 = (static_cast<double>(h.next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double SpatialField::operator()(Position p) const noexcept {
  if (sigma_ == 0.0) return 0.0;
  const double gx = p.x / lambda_;
  const double gy = p.y / lambda_;
  const auto cx = static_cast<std::int64_t>(std::floor(gx));
  const auto cy = static_cast<std::int64_t>(std::floor(gy));

  double weighted = 0.0;
  double weight_sq = 0.0;
  for (std::int64_t ix = cx - kKernelRadiusCells; ix <= cx + kKernelRadiusCells; ++ix) {
    for (std::int64_t iy = cy - kKernelRadiusCells; iy <= cy + kKernelRadiusCells; ++iy) {
      const double dx = gx - static_cast<double>(ix);
      const double dy = gy - static_cast<double>(iy);
      const double d2 = dx * dx + dy * dy;
      const double w = std::exp(-0.5 * d2);
      weighted += w * anchor(ix, iy);
      weight_sq += w * w;
    }
  }
  // Normalizing by sqrt(sum w^2) makes the marginal exactly N(0, sigma^2)
  // regardless of where p falls relative to the anchor grid.
  return sigma_ * weighted / std::sqrt(weight_sq);
}

}  // namespace aropuf
