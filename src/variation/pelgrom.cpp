#include "variation/pelgrom.hpp"

#include <cmath>

#include "common/check.hpp"

namespace aropuf {

Volts PelgromModel::sigma_vth(double width_um, double length_um) const {
  ARO_REQUIRE(width_um > 0.0 && length_um > 0.0, "device dimensions must be positive");
  ARO_REQUIRE(a_vt_mv_um > 0.0, "Pelgrom coefficient must be positive");
  return a_vt_mv_um * 1e-3 / std::sqrt(width_um * length_um);
}

double PelgromModel::upsizing_for_sigma_reduction(double factor) {
  ARO_REQUIRE(factor >= 1.0, "sigma reduction factor must be >= 1");
  return factor * factor;
}

}  // namespace aropuf
