// Pelgrom mismatch law: sigma(dVth) = A_vt / sqrt(W * L).
//
// Used to derive the local mismatch sigma for non-minimum-size devices (the
// paper's ROs use minimum-size inverters to maximize entropy; the upsizing
// sweep in the ablation bench uses this law to trade area for stability).
#pragma once

#include "common/units.hpp"

namespace aropuf {

struct PelgromModel {
  /// Technology mismatch coefficient, in mV·um (≈ 4.5 mV·um at 90 nm).
  double a_vt_mv_um = 4.5;

  /// Local Vth mismatch sigma (volts) for a W×L device (micrometres).
  [[nodiscard]] Volts sigma_vth(double width_um, double length_um) const;

  /// Width multiplier needed to shrink the mismatch sigma by `factor`
  /// relative to the W×L baseline (area grows with factor^2).
  [[nodiscard]] static double upsizing_for_sigma_reduction(double factor);
};

}  // namespace aropuf
