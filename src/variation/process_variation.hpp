// Composition of all Vth variation components for one die.
//
//   Vth(device) = Vth_nom
//               + global(die)            — inter-die shift, N(0, σ_global)
//               + spatial(x, y | die)    — within-die correlated field
//               + systematic(x, y)       — layout pattern SHARED by all dies
//               + local(device)          — white mismatch, N(0, σ_local)
//
// The systematic component is the reproduction's model for why conventional
// (distant-pair) RO-PUFs show inter-chip HD below 50 %: IR-drop gradients and
// litho systematics repeat on every die, so a pair spanning the array is
// biased the same way on every chip.  Adjacent pairs (the ARO-PUF layout
// discipline) see only its spatial derivative, which is negligible at one
// RO pitch.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "device/technology.hpp"
#include "variation/spatial_field.hpp"

namespace aropuf {

class DieVariation {
 public:
  /// `die_seed` identifies the die; dies with different seeds have
  /// independent global shifts and spatial fields.  The systematic pattern
  /// depends only on `tech`.
  DieVariation(const TechnologyParams& tech, std::uint64_t die_seed);

  /// Inter-die Vth shift (same for every device on the die).
  [[nodiscard]] Volts global_offset() const noexcept { return global_; }

  /// Within-die correlated component at `p` (die-specific).
  [[nodiscard]] Volts spatial_offset(Position p) const noexcept { return field_(p); }

  /// Layout-systematic component at `p` (identical on all dies).
  [[nodiscard]] Volts systematic_offset(Position p) const noexcept;

  /// Draws one device's white local mismatch from `rng`.
  [[nodiscard]] Volts local_sample(Xoshiro256& rng) const noexcept {
    return rng.gaussian(0.0, tech_->sigma_vth_local);
  }

  /// The three position-dependent (device-independent) components combined:
  /// global + spatial + systematic.  All devices of one RO share a position,
  /// so callers hoist this per RO and add local_sample() per device; the sum
  /// keeps total_offset()'s left-to-right association, so the hoist is
  /// bit-identical.
  [[nodiscard]] Volts static_offset(Position p) const noexcept {
    return global_ + spatial_offset(p) + systematic_offset(p);
  }

  /// All four components combined for a device at `p`.
  [[nodiscard]] Volts total_offset(Position p, Xoshiro256& local_rng) const noexcept {
    return static_offset(p) + local_sample(local_rng);
  }

 private:
  const TechnologyParams* tech_;
  Volts global_;
  SpatialField field_;
};

}  // namespace aropuf
