// Spatially correlated Gaussian random field over die coordinates.
//
// Within-die process variation is not white: neighbouring devices share
// lithography/anneal history, so their Vth offsets are correlated with a
// characteristic length of tens of microns.  The field is synthesised as a
// kernel-weighted sum of i.i.d. anchors on a coarse grid (spacing = the
// correlation length); weights use a Gaussian kernel and are normalized so
// the marginal at every point is N(0, sigma^2).
//
// Anchors are derived lazily by hashing (seed, ix, iy), so the field is a
// pure function of (seed, position): no storage, fully deterministic, and
// two dies with different seeds get independent fields.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace aropuf {

/// Die-local coordinates in RO-pitch units.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

class SpatialField {
 public:
  /// `sigma` — marginal standard deviation at every point;
  /// `correlation_length` — distance (same units as Position) at which
  /// correlation decays to ~0.45;
  /// `seed` — identity of this die's field.
  SpatialField(double sigma, double correlation_length, std::uint64_t seed);

  /// Field value at `p`; marginally N(0, sigma^2).
  [[nodiscard]] double operator()(Position p) const noexcept;

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] double correlation_length() const noexcept { return lambda_; }

 private:
  /// Deterministic standard-normal anchor value at grid cell (ix, iy).
  [[nodiscard]] double anchor(std::int64_t ix, std::int64_t iy) const noexcept;

  double sigma_;
  double lambda_;
  std::uint64_t seed_;
};

}  // namespace aropuf
