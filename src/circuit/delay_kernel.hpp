// Batched structure-of-arrays delay/aging kernel — the vectorizable hot path
// under every E1–E14 Monte Carlo experiment.
//
// The reference path (RingOscillator::frequency) walks one RO at a time
// through DelayModel, paying one mobility pow() per *edge* and touching
// devices through the array-of-structs Stage layout.  This kernel evaluates
// ALL ring oscillators of a chip in one pass over contiguous per-device
// arrays (fresh Vth, temperature coefficient, aging sensitivity), with the
// operating-point-dependent prefactor hoisted out of the loop — halving the
// libm pow() count, the dominant cost — and a memory layout the compiler can
// auto-vectorize.  An explicit AVX2 path (cmake option AROPUF_SIMD, runtime
// CPU dispatch, scalar fallback) vectorizes the Vth/overdrive assembly.
//
// Bit-identity contract (enforced by tests/circuit/delay_kernel_test.cpp and
// tests/sim/kernel_equivalence_test.cpp): every backend — reference, batched,
// and SIMD — produces the SAME bits for every frequency, so pair comparisons
// see the exact same values and every experiment result is independent of the
// selected backend.  This holds by construction:
//  * all three paths call the same inline per-element helpers
//    (effective_vth, alpha_power_edge_delay) with the same association;
//  * hoisted subexpressions (edge_scale, dtemp) preserve the historical
//    association, so hoisting changes cost, not bits;
//  * the per-RO stage reduction stays serial in stage order;
//  * the AVX2 path uses only exactly-rounded element-wise operations
//    (sub/mul/add/div/max) plus lane-wise scalar libm pow — and the build
//    never enables FMA, so no path contracts a mul+add into a differently
//    rounded fused op.
//
// Backend selection: AROPUF_KERNEL=reference|batched|simd environment
// variable, or set_delay_backend() (benches/tests).  Default: simd when
// compiled in and the CPU supports AVX2, else batched.
#pragma once

#include <span>
#include <vector>

#include "circuit/operating_point.hpp"
#include "circuit/ring_oscillator.hpp"
#include "common/units.hpp"
#include "device/aging.hpp"

namespace aropuf {

struct TechnologyParams;

/// Which implementation evaluates RO frequencies (see file comment).
enum class DelayBackend {
  kReference,  ///< historical per-RO DelayModel walk (the comparison baseline)
  kBatched,    ///< SoA one-pass kernel, compiler auto-vectorization
  kSimd,       ///< explicit AVX2 kernel (falls back to kBatched if unavailable)
};

/// Human-readable backend name ("reference" / "batched" / "simd").
[[nodiscard]] const char* to_string(DelayBackend backend) noexcept;

/// The currently selected backend.  Resolution order: set_delay_backend()
/// override, else the AROPUF_KERNEL environment variable, else the best
/// available (simd when compiled + CPU-supported, otherwise batched).
[[nodiscard]] DelayBackend delay_backend() noexcept;

/// Selects the backend for subsequent frequency evaluations and returns the
/// *effective* backend: requesting kSimd without AVX2 support degrades to
/// kBatched.  Used by tests and the bench binaries; not intended to be
/// called concurrently with running evaluations.
DelayBackend set_delay_backend(DelayBackend backend) noexcept;

/// Drops any set_delay_backend() override and re-resolves from the
/// environment (AROPUF_KERNEL) / hardware default.
void reset_delay_backend() noexcept;

/// True when the AVX2 kernel was compiled in (cmake -DAROPUF_SIMD=ON and a
/// compiler that accepts -mavx2).
[[nodiscard]] bool simd_compiled() noexcept;

/// True when the AVX2 kernel is compiled in AND this CPU executes AVX2.
[[nodiscard]] bool simd_available() noexcept;

/// Structure-of-arrays snapshot of every device parameter the delay kernel
/// reads, flattened as index = ro * stages + stage.  Device parameters are
/// immutable after construction (aging state lives per-RO in AgingShifts),
/// so a chip builds this once and reuses it for every evaluation.
struct RoArraySoA {
  int num_ros = 0;
  int stages = 0;

  // PMOS (rising edge, carries the NBTI shift):
  std::vector<double> vth_p_fresh;  ///< fresh |Vth_p| incl. process variation
  std::vector<double> tempco_p;     ///< |Vth_p| tempco (V/K)
  std::vector<double> nbti_sens;    ///< stochastic NBTI multiplier
  // NMOS (falling edge, carries the HCI shift):
  std::vector<double> vth_n_fresh;  ///< fresh |Vth_n| incl. process variation
  std::vector<double> tempco_n;     ///< |Vth_n| tempco (V/K)
  std::vector<double> hci_sens;     ///< stochastic HCI multiplier

  /// Flattens `ros` (all with identical stage counts) into the SoA layout.
  [[nodiscard]] static RoArraySoA from_oscillators(std::span<const RingOscillator> ros);

  /// Total device pairs (= num_ros * stages).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(num_ros) * static_cast<std::size_t>(stages);
  }
};

/// Evaluates the oscillation frequency of every RO in `soa` at `op` with the
/// given per-RO aging shifts, writing `frequencies[ro]`.  Dispatches to the
/// batched or SIMD implementation per delay_backend() (a kReference selection
/// is honoured by the *callers* — RoPuf — which walk the per-RO path instead;
/// this entry point itself then uses the batched implementation).
///
/// @param soa          device-parameter snapshot (see RoArraySoA)
/// @param tech         technology the ROs were built from
/// @param op           supply/temperature evaluation corner
/// @param shifts       per-RO deterministic aging shifts, size == num_ros
///                     (pass all-zero shifts for fresh-silicon frequencies)
/// @param frequencies  output span, size == num_ros
void compute_frequencies(const RoArraySoA& soa, const TechnologyParams& tech, OperatingPoint op,
                         std::span<const AgingShifts> shifts, std::span<double> frequencies);

namespace detail {
/// Scalar/auto-vectorized batched implementation (always available).
void frequencies_batched(const RoArraySoA& soa, const TechnologyParams& tech, OperatingPoint op,
                         std::span<const AgingShifts> shifts, std::span<double> frequencies);
#if defined(AROPUF_SIMD_ENABLED)
/// Explicit AVX2 implementation (delay_kernel_avx2.cpp, compiled -mavx2).
void frequencies_avx2(const RoArraySoA& soa, const TechnologyParams& tech, OperatingPoint op,
                      std::span<const AgingShifts> shifts, std::span<double> frequencies);
#endif
}  // namespace detail

}  // namespace aropuf
