#include "circuit/ring_oscillator.hpp"

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

namespace {

// `static_offset` is the die's position-dependent (global + spatial +
// systematic) Vth component, hoisted by the caller: all 2*stages devices of
// an RO share one position, and the spatially correlated field is by far the
// most expensive variation component to evaluate (a 7x7 anchor convolution),
// so evaluating it once per RO instead of once per device cuts chip
// construction cost by an order of magnitude without changing a single bit
// (the per-device sum  static + local  keeps the historical association).
Transistor make_device(DeviceType type, const TechnologyParams& tech, Volts static_offset,
                       const DieVariation& die, Xoshiro256& rng) {
  Transistor t;
  t.type = type;
  const Volts nominal = (type == DeviceType::kPmos) ? tech.vth_p : tech.vth_n;
  t.vth_fresh = nominal + (static_offset + die.local_sample(rng));
  t.vth_tempco = tech.vth_tempco * (1.0 + tech.vth_tempco_mismatch_rel * rng.gaussian());
  // Stochastic aging sensitivities: log-normal-ish via clamped Gaussian so a
  // device can age much more than nominal but never "un-age".
  const double nbti_g = 1.0 + tech.nbti_sigma_rel * rng.gaussian();
  const double hci_g = 1.0 + tech.hci_sigma_rel * rng.gaussian();
  t.nbti_sensitivity = nbti_g > 0.05 ? nbti_g : 0.05;
  t.hci_sensitivity = hci_g > 0.05 ? hci_g : 0.05;
  return t;
}

}  // namespace

RingOscillator::RingOscillator(const TechnologyParams& tech, int num_stages, Position pos,
                               const DieVariation& die, Xoshiro256& rng)
    : tech_(&tech), delay_(tech), pos_(pos) {
  ARO_REQUIRE(num_stages >= 3 && num_stages % 2 == 1,
              "ring oscillator needs an odd stage count >= 3");
  stages_.reserve(static_cast<std::size_t>(num_stages));
  const Volts static_offset = die.static_offset(pos);
  for (int s = 0; s < num_stages; ++s) {
    Stage stage;
    stage.pmos = make_device(DeviceType::kPmos, tech, static_offset, die, rng);
    stage.nmos = make_device(DeviceType::kNmos, tech, static_offset, die, rng);
    stages_.push_back(stage);
  }
}

Hertz RingOscillator::frequency_with_shifts(OperatingPoint op, const AgingShifts& shifts) const {
  Seconds half_period = 0.0;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const double topology = (s == 0) ? tech_->nand_delay_factor : 1.0;
    half_period += delay_.stage_delay(stages_[s].pmos, stages_[s].nmos, op, shifts, topology);
  }
  ARO_ASSERT(half_period > 0.0, "non-positive RO period");
  return 1.0 / (2.0 * half_period);
}

Hertz RingOscillator::frequency(OperatingPoint op) const {
  return frequency_with_shifts(op, shifts_);
}

Hertz RingOscillator::fresh_frequency(OperatingPoint op) const {
  return frequency_with_shifts(op, AgingShifts{});
}

void RingOscillator::apply_stress(const AgingModel& aging, const StressProfile& profile,
                                  Seconds duration) {
  // Cycles accrue at the RO's own current frequency at the stress condition.
  const Hertz f_osc =
      frequency(OperatingPoint{tech_->vdd_nominal, profile.stress_temperature});
  apply_stress(aging, profile, duration, f_osc);
}

void RingOscillator::apply_stress(const AgingModel& aging, const StressProfile& profile,
                                  Seconds duration, Hertz f_osc) {
  profile.validate();
  stress_ = aging.accumulate(stress_, profile, duration, f_osc);
  shifts_ = aging.shifts(stress_);
}

void RingOscillator::reset_aging() {
  stress_ = StressState{};
  shifts_ = AgingShifts{};
}

}  // namespace aropuf
