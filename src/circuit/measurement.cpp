#include "circuit/measurement.hpp"

#include <cmath>

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

FrequencyCounter::FrequencyCounter(const TechnologyParams& tech, Seconds window)
    : tech_(&tech), window_(window) {
  tech.validate();
  ARO_REQUIRE(window > 0.0, "measurement window must be positive");
  max_count_ = (1ULL << tech.counter_bits) - 1ULL;
}

std::uint64_t FrequencyCounter::measure(const RingOscillator& ro, OperatingPoint op,
                                        Xoshiro256& noise_rng) const {
  return measure_frequency(ro.frequency(op), noise_rng);
}

std::uint64_t FrequencyCounter::measure_frequency(Hertz f, Xoshiro256& noise_rng) const {
  // Low-frequency noise shifts the whole window's effective frequency.
  const double f_noisy = f * (1.0 + tech_->noise_lowfreq_rel * noise_rng.gaussian());
  const double expected = f_noisy * window_;
  // Accumulated thermal jitter over N cycles adds sqrt(N)-scaled count noise.
  const double jitter_sigma = tech_->jitter_cycle_rel * std::sqrt(std::max(expected, 0.0));
  const double with_jitter = expected + jitter_sigma * noise_rng.gaussian();
  if (with_jitter <= 0.0) return 0;
  const auto count = static_cast<std::uint64_t>(std::llround(with_jitter));
  return count > max_count_ ? max_count_ : count;
}

}  // namespace aropuf
