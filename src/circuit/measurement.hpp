// Counter-based frequency measurement and pairwise comparison.
//
// Real RO-PUFs do not read out frequency; they count rising edges in a fixed
// window and compare counts.  Two noise mechanisms are modelled:
//
//  * accumulated cycle-to-cycle thermal jitter — count error sigma grows as
//    sqrt(N) * jitter_cycle_rel;
//  * low-frequency (flicker / supply) noise — a per-evaluation relative
//    frequency error, the dominant term for practical windows.
//
// Counts saturate at the counter width (a real failure mode when the window
// is mis-sized for the technology; tests exercise it).
#pragma once

#include <cstdint>

#include "circuit/operating_point.hpp"
#include "circuit/ring_oscillator.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace aropuf {

class FrequencyCounter {
 public:
  /// `window` — gate time of one measurement.
  FrequencyCounter(const TechnologyParams& tech, Seconds window);

  /// One noisy measurement of `ro` at `op`; draws noise from `noise_rng`.
  [[nodiscard]] std::uint64_t measure(const RingOscillator& ro, OperatingPoint op,
                                      Xoshiro256& noise_rng) const;

  /// One noisy measurement given an already-computed oscillation frequency
  /// `f` — the batched-kernel entry point (RoPuf evaluates all frequencies
  /// in one delay-kernel pass, then feeds them through here).  Draws the
  /// same two Gaussians in the same order as measure(ro, ...), so for
  /// f == ro.frequency(op) the two overloads are bit-identical.
  [[nodiscard]] std::uint64_t measure_frequency(Hertz f, Xoshiro256& noise_rng) const;

  /// Noise-free expected count for frequency `f` (before saturation).
  [[nodiscard]] double expected_count(Hertz f) const noexcept { return f * window_; }

  /// Largest representable count (counter saturation value).
  [[nodiscard]] std::uint64_t max_count() const noexcept { return max_count_; }

  [[nodiscard]] Seconds window() const noexcept { return window_; }

 private:
  const TechnologyParams* tech_;
  Seconds window_;
  std::uint64_t max_count_;
};

/// Response-bit convention used throughout the library: the bit is 1 when
/// the first RO of the pair is strictly faster (ties resolve to 0).
[[nodiscard]] inline bool compare_counts(std::uint64_t count_a, std::uint64_t count_b) noexcept {
  return count_a > count_b;
}

}  // namespace aropuf
