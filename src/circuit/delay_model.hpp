// Alpha-power-law stage delay.
//
//   tau_edge = K(T) * V_DD / (V_DD - Vth_eff)^alpha
//   K(T)     = delay_k * (T / T_nom)^mobility_exp        (mobility degradation)
//
// The rising edge is set by the PMOS (its Vth carries the NBTI shift), the
// falling edge by the NMOS (HCI shift); a stage's delay is the average of
// the two edges.  This captures exactly the sensitivities that decide PUF
// bits: dVth from variation or aging slows the oscillator monotonically,
// temperature acts through both Vth and mobility (with the realistic
// partial cancellation), and reduced V_DD amplifies Vth differences.
//
// The per-edge arithmetic is factored into free inline helpers
// (edge_scale / alpha_power_edge_delay) shared with the batched SoA kernel
// in circuit/delay_kernel.hpp, so the reference per-RO path and the batched
// path execute the same floating-point operations in the same order — the
// foundation of the bit-identity guarantee (DESIGN.md "Performance model").
#pragma once

#include <algorithm>
#include <cmath>

#include "circuit/operating_point.hpp"
#include "common/units.hpp"
#include "device/aging.hpp"
#include "device/technology.hpp"
#include "device/transistor.hpp"

namespace aropuf {

/// Below this gate overdrive (V_DD - Vth) the alpha-power model is outside
/// its validity region (near/sub-threshold); clamping keeps low-V_DD sweeps
/// well-defined while preserving monotonicity.  Every delay path — the
/// reference per-RO path, the batched kernel, and the explicit SIMD kernel —
/// applies this same floor (regression-tested in
/// tests/circuit/delay_kernel_test.cpp).
inline constexpr double kMinOverdrive = 0.05;

/// Operating-point-dependent prefactor of one edge delay:
/// `delay_k * (T/T_nom)^mobility_exp * V_DD`.  Pure in (tech, op), so callers
/// evaluating many devices at one operating point hoist it out of the loop;
/// the association `(delay_k * mobility) * vdd` matches the historical
/// expression exactly, keeping hoisted and unhoisted callers bit-identical.
[[nodiscard]] inline double edge_scale(const TechnologyParams& tech, OperatingPoint op) {
  const double mobility_factor = std::pow(op.temp / tech.temp_nominal, tech.mobility_temp_exp);
  return tech.delay_k * mobility_factor * op.vdd;
}

/// Delay of one edge with precomputed `scale` (see edge_scale): clamps the
/// overdrive to kMinOverdrive and applies the alpha-power law.
/// Shared by DelayModel::edge_delay and the batched kernels.
[[nodiscard]] inline Seconds alpha_power_edge_delay(double scale, Volts vth, Volts vdd,
                                                    double alpha) noexcept {
  const double overdrive = std::max(vdd - vth, kMinOverdrive);
  return scale / std::pow(overdrive, alpha);
}

class DelayModel {
 public:
  explicit DelayModel(const TechnologyParams& tech);

  /// Delay of one inverting stage built from `pmos`/`nmos`, at operating
  /// point `op`, with the RO's deterministic aging shifts `shifts`.
  /// `topology_factor` is 1.0 for an inverter, > 1 for the NAND enable stage.
  [[nodiscard]] Seconds stage_delay(const Transistor& pmos, const Transistor& nmos,
                                    OperatingPoint op, const AgingShifts& shifts,
                                    double topology_factor = 1.0) const;

  /// Delay of one edge driven by a device with effective threshold `vth`.
  [[nodiscard]] Seconds edge_delay(Volts vth, OperatingPoint op) const;

  [[nodiscard]] const TechnologyParams& technology() const noexcept { return *tech_; }

 private:
  const TechnologyParams* tech_;
};

}  // namespace aropuf
