// Alpha-power-law stage delay.
//
//   tau_edge = K(T) * V_DD / (V_DD - Vth_eff)^alpha
//   K(T)     = delay_k * (T / T_nom)^mobility_exp        (mobility degradation)
//
// The rising edge is set by the PMOS (its Vth carries the NBTI shift), the
// falling edge by the NMOS (HCI shift); a stage's delay is the average of
// the two edges.  This captures exactly the sensitivities that decide PUF
// bits: dVth from variation or aging slows the oscillator monotonically,
// temperature acts through both Vth and mobility (with the realistic
// partial cancellation), and reduced V_DD amplifies Vth differences.
#pragma once

#include "circuit/operating_point.hpp"
#include "common/units.hpp"
#include "device/aging.hpp"
#include "device/transistor.hpp"

namespace aropuf {

struct TechnologyParams;

class DelayModel {
 public:
  explicit DelayModel(const TechnologyParams& tech);

  /// Delay of one inverting stage built from `pmos`/`nmos`, at operating
  /// point `op`, with the RO's deterministic aging shifts `shifts`.
  /// `topology_factor` is 1.0 for an inverter, > 1 for the NAND enable stage.
  [[nodiscard]] Seconds stage_delay(const Transistor& pmos, const Transistor& nmos,
                                    OperatingPoint op, const AgingShifts& shifts,
                                    double topology_factor = 1.0) const;

  /// Delay of one edge driven by a device with effective threshold `vth`.
  [[nodiscard]] Seconds edge_delay(Volts vth, OperatingPoint op) const;

  [[nodiscard]] const TechnologyParams& technology() const noexcept { return *tech_; }

 private:
  const TechnologyParams* tech_;
};

}  // namespace aropuf
