#include "circuit/delay_model.hpp"

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf {

OperatingPoint nominal_operating_point(const TechnologyParams& tech) {
  return OperatingPoint{tech.vdd_nominal, tech.temp_nominal};
}

DelayModel::DelayModel(const TechnologyParams& tech) : tech_(&tech) { tech.validate(); }

Seconds DelayModel::edge_delay(Volts vth, OperatingPoint op) const {
  ARO_REQUIRE(op.vdd > 0.0, "vdd must be positive");
  ARO_REQUIRE(op.temp > 0.0, "temperature must be in kelvin");
  return alpha_power_edge_delay(edge_scale(*tech_, op), vth, op.vdd, tech_->alpha);
}

Seconds DelayModel::stage_delay(const Transistor& pmos, const Transistor& nmos,
                                OperatingPoint op, const AgingShifts& shifts,
                                double topology_factor) const {
  ARO_REQUIRE(topology_factor >= 1.0, "topology factor must be >= 1");
  ARO_ASSERT(pmos.type == DeviceType::kPmos && nmos.type == DeviceType::kNmos,
             "stage devices passed in the wrong order");
  const Volts vth_p = pmos.vth(op.temp, tech_->temp_nominal, shifts.nbti, shifts.hci);
  const Volts vth_n = nmos.vth(op.temp, tech_->temp_nominal, shifts.nbti, shifts.hci);
  const Seconds rise = edge_delay(vth_p, op);
  const Seconds fall = edge_delay(vth_n, op);
  return topology_factor * 0.5 * (rise + fall);
}

}  // namespace aropuf
