// Explicit AVX2 lane of the batched delay kernel (see delay_kernel.hpp).
//
// Compiled with -mavx2 ONLY when the AROPUF_SIMD cmake option is on and the
// compiler accepts the flag; callers dispatch at runtime via
// __builtin_cpu_supports, so a binary built with this TU still runs (on the
// batched path) on CPUs without AVX2.
//
// Bit-identity discipline: every vector operation used here (sub/mul/add/
// div/max) is an exactly-rounded IEEE-754 element-wise operation, i.e. it
// produces the same bits as the corresponding scalar op in the batched
// kernel.  pow has no exactly-rounded vector form, so it is applied
// lane-wise through the SAME scalar libm call the other paths use.  The
// build deliberately does NOT enable FMA (no -mfma, no fused intrinsics):
// the baseline x86-64 target of the scalar TUs cannot contract mul+add, so
// this TU must not either.
#include "circuit/delay_kernel.hpp"

#if defined(AROPUF_SIMD_ENABLED) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

#include "common/check.hpp"
#include "device/technology.hpp"

namespace aropuf::detail {

namespace {

/// Lane-wise scalar pow; the only per-element step without an
/// exactly-rounded vector equivalent.
inline __m256d pow_lanes(__m256d base, double exponent) noexcept {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, base);
  lanes[0] = std::pow(lanes[0], exponent);
  lanes[1] = std::pow(lanes[1], exponent);
  lanes[2] = std::pow(lanes[2], exponent);
  lanes[3] = std::pow(lanes[3], exponent);
  return _mm256_load_pd(lanes);
}

/// Four edge delays: scale / max(vdd - vth, kMinOverdrive)^alpha.
inline __m256d edge_delays(__m256d scale, __m256d vth, __m256d vdd, __m256d min_overdrive,
                           double alpha) noexcept {
  const __m256d overdrive = _mm256_max_pd(_mm256_sub_pd(vdd, vth), min_overdrive);
  return _mm256_div_pd(scale, pow_lanes(overdrive, alpha));
}

/// Four effective Vth values: (vth_fresh - tempco * dtemp) + sens * shift.
inline __m256d effective_vth_lanes(const double* vth_fresh, const double* tempco, __m256d dtemp,
                                   const double* sens, __m256d shift) noexcept {
  const __m256d thermal =
      _mm256_sub_pd(_mm256_loadu_pd(vth_fresh), _mm256_mul_pd(_mm256_loadu_pd(tempco), dtemp));
  return _mm256_add_pd(thermal, _mm256_mul_pd(_mm256_loadu_pd(sens), shift));
}

}  // namespace

void frequencies_avx2(const RoArraySoA& soa, const TechnologyParams& tech, OperatingPoint op,
                      std::span<const AgingShifts> shifts, std::span<double> frequencies) {
  ARO_REQUIRE(op.vdd > 0.0, "vdd must be positive");
  ARO_REQUIRE(op.temp > 0.0, "temperature must be in kelvin");
  ARO_REQUIRE(shifts.size() == static_cast<std::size_t>(soa.num_ros),
              "need one AgingShifts per RO");
  ARO_REQUIRE(frequencies.size() == static_cast<std::size_t>(soa.num_ros),
              "output span must have one slot per RO");
  const double dtemp = op.temp - tech.temp_nominal;
  const double scale = edge_scale(tech, op);
  const double alpha = tech.alpha;
  const double nand_half = tech.nand_delay_factor * 0.5;
  const __m256d dtemp_v = _mm256_set1_pd(dtemp);
  const __m256d scale_v = _mm256_set1_pd(scale);
  const __m256d vdd_v = _mm256_set1_pd(op.vdd);
  const __m256d min_od_v = _mm256_set1_pd(kMinOverdrive);
  const auto stages = static_cast<std::size_t>(soa.stages);
  const std::size_t simd_stages = stages - stages % 4;

  for (std::size_t ro = 0; ro < static_cast<std::size_t>(soa.num_ros); ++ro) {
    const double nbti_shift = shifts[ro].nbti;
    const double hci_shift = shifts[ro].hci;
    const __m256d nbti_v = _mm256_set1_pd(nbti_shift);
    const __m256d hci_v = _mm256_set1_pd(hci_shift);
    const std::size_t base = ro * stages;
    // The reduction stays serial in stage order (lane extraction below), so
    // accumulation order — and therefore every bit — matches the batched
    // and reference paths.
    double half_period = 0.0;
    for (std::size_t s = 0; s < simd_stages; s += 4) {
      const std::size_t i = base + s;
      const __m256d vth_p = effective_vth_lanes(&soa.vth_p_fresh[i], &soa.tempco_p[i], dtemp_v,
                                                &soa.nbti_sens[i], nbti_v);
      const __m256d vth_n = effective_vth_lanes(&soa.vth_n_fresh[i], &soa.tempco_n[i], dtemp_v,
                                                &soa.hci_sens[i], hci_v);
      const __m256d rise = edge_delays(scale_v, vth_p, vdd_v, min_od_v, alpha);
      const __m256d fall = edge_delays(scale_v, vth_n, vdd_v, min_od_v, alpha);
      alignas(32) double rise_plus_fall[4];
      _mm256_store_pd(rise_plus_fall, _mm256_add_pd(rise, fall));
      for (std::size_t lane = 0; lane < 4; ++lane) {
        const double topology_half = (s + lane == 0) ? nand_half : 0.5;
        half_period += topology_half * rise_plus_fall[lane];
      }
    }
    for (std::size_t s = simd_stages; s < stages; ++s) {
      const std::size_t i = base + s;
      const Volts vth_p =
          effective_vth(soa.vth_p_fresh[i], soa.tempco_p[i], dtemp, soa.nbti_sens[i], nbti_shift);
      const Volts vth_n =
          effective_vth(soa.vth_n_fresh[i], soa.tempco_n[i], dtemp, soa.hci_sens[i], hci_shift);
      const Seconds rise = alpha_power_edge_delay(scale, vth_p, op.vdd, alpha);
      const Seconds fall = alpha_power_edge_delay(scale, vth_n, op.vdd, alpha);
      const double topology_half = (s == 0) ? nand_half : 0.5;
      half_period += topology_half * (rise + fall);
    }
    ARO_ASSERT(half_period > 0.0, "non-positive RO period");
    frequencies[ro] = 1.0 / (2.0 * half_period);
  }
}

}  // namespace aropuf::detail

#endif  // AROPUF_SIMD_ENABLED && __AVX2__
