#include "circuit/delay_kernel.hpp"

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "device/technology.hpp"
#include "telemetry/log.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"

namespace aropuf {

namespace {

/// kSimd requests degrade to kBatched when the AVX2 kernel is absent, so the
/// stored backend is always executable.
DelayBackend clamp_to_available(DelayBackend backend) noexcept {
  if (backend == DelayBackend::kSimd && !simd_available()) return DelayBackend::kBatched;
  return backend;
}

/// Provenance: run manifests must name the backend that *actually* computed
/// the numbers, not the one that was requested.
void announce_backend(DelayBackend backend) {
  telemetry::set_runtime_field("kernel_backend", JsonValue(to_string(backend)));
  ARO_LOG_DEBUG("kernel", "delay kernel backend selected",
                {"backend", JsonValue(to_string(backend))});
}

/// AROPUF_KERNEL=reference|batched|simd, else the best available backend.
DelayBackend backend_from_environment() noexcept {
  if (const char* env = cli::env_value("AROPUF_KERNEL")) {
    if (std::strcmp(env, "reference") == 0) return DelayBackend::kReference;
    if (std::strcmp(env, "batched") == 0) return DelayBackend::kBatched;
    if (std::strcmp(env, "simd") == 0) return clamp_to_available(DelayBackend::kSimd);
  }
  return clamp_to_available(DelayBackend::kSimd);
}

std::atomic<DelayBackend>& backend_state() noexcept {
  static std::atomic<DelayBackend> state{backend_from_environment()};
  return state;
}

/// Batch-granular kernel instruments: two relaxed adds per compute call
/// (never per RO — a batch covers a whole chip's array).
struct KernelTelemetry {
  telemetry::Counter& batches;
  telemetry::Counter& ro_evals;

  static KernelTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static KernelTelemetry t{reg.counter("kernel.batches"), reg.counter("kernel.ro_evals")};
    return t;
  }
};

}  // namespace

const char* to_string(DelayBackend backend) noexcept {
  switch (backend) {
    case DelayBackend::kReference: return "reference";
    case DelayBackend::kBatched: return "batched";
    case DelayBackend::kSimd: return "simd";
  }
  return "unknown";
}

DelayBackend delay_backend() noexcept { return backend_state().load(std::memory_order_relaxed); }

DelayBackend set_delay_backend(DelayBackend backend) noexcept {
  const DelayBackend effective = clamp_to_available(backend);
  backend_state().store(effective, std::memory_order_relaxed);
  announce_backend(effective);
  return effective;
}

void reset_delay_backend() noexcept {
  const DelayBackend effective = backend_from_environment();
  backend_state().store(effective, std::memory_order_relaxed);
  announce_backend(effective);
}

bool simd_compiled() noexcept {
#if defined(AROPUF_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

bool simd_available() noexcept {
#if defined(AROPUF_SIMD_ENABLED)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

RoArraySoA RoArraySoA::from_oscillators(std::span<const RingOscillator> ros) {
  RoArraySoA soa;
  if (ros.empty()) return soa;
  soa.num_ros = static_cast<int>(ros.size());
  soa.stages = ros.front().num_stages();
  const std::size_t n = soa.size();
  soa.vth_p_fresh.reserve(n);
  soa.tempco_p.reserve(n);
  soa.nbti_sens.reserve(n);
  soa.vth_n_fresh.reserve(n);
  soa.tempco_n.reserve(n);
  soa.hci_sens.reserve(n);
  for (const RingOscillator& ro : ros) {
    ARO_REQUIRE(ro.num_stages() == soa.stages,
                "all ROs in a batched array must have the same stage count");
    for (const RingOscillator::Stage& stage : ro.stages()) {
      soa.vth_p_fresh.push_back(stage.pmos.vth_fresh);
      soa.tempco_p.push_back(stage.pmos.vth_tempco);
      soa.nbti_sens.push_back(stage.pmos.nbti_sensitivity);
      soa.vth_n_fresh.push_back(stage.nmos.vth_fresh);
      soa.tempco_n.push_back(stage.nmos.vth_tempco);
      soa.hci_sens.push_back(stage.nmos.hci_sensitivity);
    }
  }
  return soa;
}

namespace detail {

void frequencies_batched(const RoArraySoA& soa, const TechnologyParams& tech, OperatingPoint op,
                         std::span<const AgingShifts> shifts, std::span<double> frequencies) {
  ARO_REQUIRE(op.vdd > 0.0, "vdd must be positive");
  ARO_REQUIRE(op.temp > 0.0, "temperature must be in kelvin");
  ARO_REQUIRE(shifts.size() == static_cast<std::size_t>(soa.num_ros),
              "need one AgingShifts per RO");
  ARO_REQUIRE(frequencies.size() == static_cast<std::size_t>(soa.num_ros),
              "output span must have one slot per RO");
  // Hoisted once per (tech, op): same association as the per-edge reference
  // expression, so hoisting changes cost, not bits.
  const double dtemp = op.temp - tech.temp_nominal;
  const double scale = edge_scale(tech, op);
  const double alpha = tech.alpha;
  const double nand_half = tech.nand_delay_factor * 0.5;
  const auto stages = static_cast<std::size_t>(soa.stages);
  for (std::size_t ro = 0; ro < static_cast<std::size_t>(soa.num_ros); ++ro) {
    const double nbti_shift = shifts[ro].nbti;
    const double hci_shift = shifts[ro].hci;
    const std::size_t base = ro * stages;
    // Serial stage-order reduction: keeps floating-point accumulation order
    // identical to the reference path (RingOscillator::frequency_with_shifts).
    double half_period = 0.0;
    for (std::size_t s = 0; s < stages; ++s) {
      const std::size_t i = base + s;
      const Volts vth_p =
          effective_vth(soa.vth_p_fresh[i], soa.tempco_p[i], dtemp, soa.nbti_sens[i], nbti_shift);
      const Volts vth_n =
          effective_vth(soa.vth_n_fresh[i], soa.tempco_n[i], dtemp, soa.hci_sens[i], hci_shift);
      const Seconds rise = alpha_power_edge_delay(scale, vth_p, op.vdd, alpha);
      const Seconds fall = alpha_power_edge_delay(scale, vth_n, op.vdd, alpha);
      const double topology_half = (s == 0) ? nand_half : 0.5;
      half_period += topology_half * (rise + fall);
    }
    ARO_ASSERT(half_period > 0.0, "non-positive RO period");
    frequencies[ro] = 1.0 / (2.0 * half_period);
  }
}

}  // namespace detail

void compute_frequencies(const RoArraySoA& soa, const TechnologyParams& tech, OperatingPoint op,
                         std::span<const AgingShifts> shifts, std::span<double> frequencies) {
  {
    KernelTelemetry& telem = KernelTelemetry::get();
    telem.batches.add(1);
    telem.ro_evals.add(static_cast<std::uint64_t>(soa.num_ros));
    // The manifest field must reflect the backend that ran, so register it
    // on the first batch of every run-record generation (later
    // set_delay_backend calls keep it current).  Re-checking the generation
    // matters when one process produces many manifests — fleet workers and
    // --no-fork shard runs reset the run record between jobs, and a
    // process-lifetime announce would leave every manifest after the first
    // at "unknown".  Racing threads at a generation edge re-announce the
    // same value, which is harmless.
    static std::atomic<std::uint64_t> announced_generation{0};
    const std::uint64_t generation = telemetry::run_record_generation();
    if (announced_generation.load(std::memory_order_relaxed) != generation) {
      announce_backend(delay_backend());
      announced_generation.store(generation, std::memory_order_relaxed);
    }
  }
#if defined(AROPUF_SIMD_ENABLED)
  if (delay_backend() == DelayBackend::kSimd && simd_available()) {
    detail::frequencies_avx2(soa, tech, op, shifts, frequencies);
    return;
  }
#endif
  detail::frequencies_batched(soa, tech, op, shifts, frequencies);
}

}  // namespace aropuf
