// Supply voltage / temperature pair at which a circuit is evaluated.
#pragma once

#include "common/units.hpp"

namespace aropuf {

struct OperatingPoint {
  Volts vdd = 1.2;
  Kelvin temp = celsius(25.0);
};

struct TechnologyParams;

/// The technology's nominal corner.
[[nodiscard]] OperatingPoint nominal_operating_point(const TechnologyParams& tech);

}  // namespace aropuf
