// Supply voltage / temperature pair at which a circuit is evaluated.
#pragma once

#include "common/units.hpp"

namespace aropuf {

/// Environmental corner for one evaluation.  Every frequency/delay entry
/// point (DelayModel, RingOscillator, the batched delay kernel, RoPuf)
/// takes one of these; sweeping it is how the E5/E6 reliability studies
/// move the environment.
struct OperatingPoint {
  Volts vdd = 1.2;             ///< supply voltage
  Kelvin temp = celsius(25.0); ///< junction temperature
};

struct TechnologyParams;

/// The technology's nominal corner.
[[nodiscard]] OperatingPoint nominal_operating_point(const TechnologyParams& tech);

}  // namespace aropuf
