// Ring oscillator: an odd chain of inverting stages plus a NAND enable stage.
//
// Each stage owns a PMOS/NMOS pair whose fresh Vth includes all process-
// variation components; the RO tracks one shared StressState (its devices
// see the same usage) while each device keeps its own stochastic aging
// sensitivity.  Frequency is 1 / (2 * sum of stage delays) — the quantity
// whose pairwise comparison produces PUF response bits.
#pragma once

#include <vector>

#include "circuit/delay_model.hpp"
#include "circuit/operating_point.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "device/aging.hpp"
#include "device/stress.hpp"
#include "device/transistor.hpp"
#include "variation/process_variation.hpp"

namespace aropuf {

class RingOscillator {
 public:
  struct Stage {
    Transistor pmos;
    Transistor nmos;
  };

  /// Builds an RO of `num_stages` inverting stages (stage 0 is the NAND
  /// enable stage) at die position `pos`, drawing per-device variation from
  /// `die` and `rng`.
  RingOscillator(const TechnologyParams& tech, int num_stages, Position pos,
                 const DieVariation& die, Xoshiro256& rng);

  /// Oscillation frequency at `op` including all accumulated aging.
  [[nodiscard]] Hertz frequency(OperatingPoint op) const;

  /// Frequency with aging ignored (enrollment-time / fresh silicon).
  [[nodiscard]] Hertz fresh_frequency(OperatingPoint op) const;

  /// Advances this RO's life by `duration` wall-clock seconds under `profile`.
  /// Oscillation cycles for HCI accrue at the RO's own (current) frequency.
  void apply_stress(const AgingModel& aging, const StressProfile& profile, Seconds duration);

  /// Same, with the RO's oscillation frequency at the stress condition
  /// supplied by the caller — the batched-aging entry point: RoPuf computes
  /// all of a chip's frequencies in one delay-kernel pass, then advances
  /// every RO's stress state with its own value.  Passing the frequency this
  /// RO would compute itself makes the overload bit-identical to
  /// apply_stress(aging, profile, duration).
  void apply_stress(const AgingModel& aging, const StressProfile& profile, Seconds duration,
                    Hertz f_osc);

  /// Discards all accumulated aging (used to replay alternative lifetimes of
  /// the same silicon in ablation studies).
  void reset_aging();

  [[nodiscard]] const StressState& stress() const noexcept { return stress_; }
  [[nodiscard]] const AgingShifts& aging_shifts() const noexcept { return shifts_; }
  [[nodiscard]] Position position() const noexcept { return pos_; }
  [[nodiscard]] int num_stages() const noexcept { return static_cast<int>(stages_.size()); }
  [[nodiscard]] const std::vector<Stage>& stages() const noexcept { return stages_; }

 private:
  [[nodiscard]] Hertz frequency_with_shifts(OperatingPoint op, const AgingShifts& shifts) const;

  const TechnologyParams* tech_;
  DelayModel delay_;
  std::vector<Stage> stages_;
  Position pos_;
  /// Nominal-temperature-equivalent accumulated stress: phases at different
  /// temperatures (mission profiles) add exactly — AgingModel folds each
  /// phase's Arrhenius acceleration in at accumulation time.
  StressState stress_{};
  AgingShifts shifts_{};
};

}  // namespace aropuf
