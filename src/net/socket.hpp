// Minimal TCP primitives for the fleet transport (POSIX sockets).
//
// Deliberately thin: blocking sockets plus poll()-based readiness is all the
// coordinator's single-threaded event loop needs, and every byte that crosses
// a socket goes through net/frame.hpp — no protocol logic lives here.
// Failures throw std::runtime_error with errno text; orderly peer close
// surfaces as a zero-byte recv, never an exception, so disconnects route
// through the coordinator's reassignment path rather than its error path.
//
// Platform: POSIX only.  On _WIN32 the header still compiles (so targets that
// merely link aropuf_net build everywhere) but aropuf_net_available() is
// false and every entry point throws; tools print a clear message instead of
// half-working.  The sharded single-host path (tools/aropuf_shard.cpp) is the
// supported Windows story.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace aropuf::net {

/// True when this build carries a working TCP transport.
[[nodiscard]] bool net_available() noexcept;

/// Movable owner of one connected TCP socket.
class Socket {
 public:
  /// An invalid (unconnected) socket; valid() is false.
  Socket() = default;
  /// Adopts an already-connected file descriptor.
  explicit Socket(int fd) : fd_(fd) {}
  /// Closes the descriptor if still owned.
  ~Socket();
  /// Transfers ownership; `other` becomes invalid.
  Socket(Socket&& other) noexcept;
  /// Transfers ownership, closing any descriptor previously held.
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// True while an open descriptor is owned.
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// The raw descriptor (for poll()); -1 when invalid.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Sends the whole buffer (looping over short writes).  Throws
  /// std::runtime_error when the peer is gone or the socket errors.
  void send_all(const void* data, std::size_t size);
  /// Convenience overload sending a whole string.
  void send_all(const std::string& bytes) { send_all(bytes.data(), bytes.size()); }

  /// Receives whatever is available, up to `size` bytes.  Returns 0 on
  /// orderly peer close; throws std::runtime_error on socket errors.
  [[nodiscard]] std::size_t recv_some(void* buf, std::size_t size);

  /// Waits up to `timeout_ms` for readability.  Returns false on timeout.
  [[nodiscard]] bool wait_readable(int timeout_ms);

  /// Closes the descriptor now (idempotent); valid() becomes false.
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Connects to host:port with a bounded wait.  Throws std::runtime_error on
/// resolution or connection failure.
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port,
                                 double timeout_s);

/// Listening TCP endpoint bound to the loopback-reachable wildcard address.
class Listener {
 public:
  /// Binds and listens on `port` (0 = kernel-assigned ephemeral port, read it
  /// back via port()).  Throws std::runtime_error on failure.
  [[nodiscard]] static Listener listen_on(std::uint16_t port);

  /// An invalid (unbound) listener; valid() is false.
  Listener() = default;
  /// Closes the listening descriptor if still owned.
  ~Listener();
  /// Transfers ownership; `other` becomes invalid.
  Listener(Listener&& other) noexcept;
  /// Transfers ownership, closing any descriptor previously held.
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// True while an open listening descriptor is owned.
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// The raw descriptor (for poll()); -1 when invalid.
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// The actually bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one pending connection.  Throws std::runtime_error on failure;
  /// call only after the fd polled readable.
  [[nodiscard]] Socket accept_connection();

  /// Closes the listening descriptor now (idempotent).
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace aropuf::net
