// ARPF framed messages: the wire protocol of the fleet coordinator/worker
// pair (tools/aropuf_fleet.cpp).
//
// A fleet run moves two kinds of payload over TCP: small JSON control
// documents (job assignment, heartbeats, errors) and whole shard-manifest
// containers coming back from workers (the same bytes aropuf_shard workers
// write to disk — ARPB binary or JSON text, sniffed downstream).  Both ride
// in length-prefixed frames so a stream reader never guesses at message
// boundaries.
//
// Frame layout (all integers little-endian; DESIGN.md §11 is the normative
// spec this header implements — keep them in lockstep):
//
//   offset  size  field
//   0       4     magic "ARPF"
//   4       2     protocol version (currently 1)
//   6       1     message type (FrameType, 1..7)
//   7       1     reserved, must be zero
//   8       4     payload length N
//   12      N     payload bytes
//
// Payload rules by type: HELLO/JOB/HEARTBEAT/ERROR/METRICS carry a UTF-8 JSON
// object (≤ kMaxControlPayload); BYE carries an empty payload; RESULT carries
// an opaque shard-manifest container (≤ kMaxResultPayload) that is NOT parsed at
// this layer.  The decoder is a bounds-checked incremental parser over
// untrusted bytes: it validates every header field before trusting the
// declared length, never lets a length drive an allocation beyond the cap,
// and reports every defect as a typed FrameError — never UB.  A short buffer
// is not an error ("need more bytes"), which is what lets one decoder
// instance sit on a socket and absorb arbitrary packetization.
//
// Versioning: readers accept exactly the versions they know (same policy as
// the ARPB container).  New optional content goes into the JSON payloads,
// which tolerate unknown keys; the 12-byte prefix is law.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

/// TCP fleet transport: ARPF framing, socket primitives, and the
/// coordinator/worker protocol loops (normative spec: DESIGN.md §11).
namespace aropuf::net {

/// First four bytes of every frame; anything else fails fast as kBadMagic.
inline constexpr char kFrameMagic[4] = {'A', 'R', 'P', 'F'};
/// Wire protocol version this build speaks (exact-match policy, see above).
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Fixed header size: magic + version + type + reserved + payload length.
inline constexpr std::size_t kFrameHeaderSize = 12;
/// Control payloads are small JSON documents; anything bigger is hostile.
inline constexpr std::uint32_t kMaxControlPayload = 1u << 20;  // 1 MiB
/// RESULT carries a whole shard manifest; sized for million-chip series.
inline constexpr std::uint32_t kMaxResultPayload = 1u << 30;  // 1 GiB

/// Message types.  Values are wire bytes — never renumber, only append.
enum class FrameType : std::uint8_t {
  kHello = 1,      ///< worker → coordinator: introduce + protocol handshake
  kJob = 2,        ///< coordinator → worker: one shard-job assignment
  kHeartbeat = 3,  ///< worker → coordinator: liveness + stage progress
  kResult = 4,     ///< worker → coordinator: completed shard manifest bytes
  kError = 5,      ///< either direction: structured failure report
  kBye = 6,        ///< either direction: orderly shutdown of the connection
  kMetrics = 7,    ///< worker → coordinator: metrics snapshot + trace spans
};

/// Human-readable name for a frame type ("HELLO", ...; "?" when unknown).
[[nodiscard]] const char* frame_type_name(FrameType type);

/// Typed decode failure codes — the fuzz harness treats FrameError as the one
/// acceptable outcome on garbage input; anything else is a finding.
enum class FrameErrc {
  kBadMagic,            ///< first four bytes are not "ARPF"
  kUnsupportedVersion,  ///< version field is not one this reader knows
  kBadType,             ///< type byte outside FrameType's defined values
  kReservedNonzero,     ///< reserved header byte must be zero
  kOversizedPayload,    ///< declared length exceeds the per-type cap
  kBadPayload,          ///< payload violates the type's schema (not JSON, ...)
};

/// Stable token for a failure code ("bad-magic", ...), used in what() text.
[[nodiscard]] const char* frame_errc_name(FrameErrc code);

/// The one exception the frame layer throws: a typed decode/encode rejection.
class FrameError : public std::runtime_error {
 public:
  /// Builds the what() string as "<errc-name>: <detail>".
  FrameError(FrameErrc code, const std::string& what)
      : std::runtime_error(std::string(frame_errc_name(code)) + ": " + what), code_(code) {}
  /// The machine-readable failure category.
  [[nodiscard]] FrameErrc code() const { return code_; }

 private:
  FrameErrc code_;
};

/// One decoded frame: the type byte plus the raw payload bytes (owned).
struct Frame {
  FrameType type = FrameType::kBye;  ///< validated message type
  std::string payload;               ///< raw payload bytes (may be binary)
};

/// Serializes one frame (header + payload).  Throws FrameError
/// (kOversizedPayload) when the payload exceeds the cap for `type`.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame decoder over an untrusted byte stream.  feed() appends
/// whatever arrived; next() pops the earliest complete frame.  The header of
/// a partially buffered frame is validated as soon as its 12 bytes exist, so
/// a poisoned stream fails fast instead of waiting for a length that will
/// never arrive.
class FrameDecoder {
 public:
  /// Appends raw bytes from the transport.
  void feed(const char* data, std::size_t size);
  /// Convenience overload over a string_view of transport bytes.
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the earliest complete frame into *frame and returns true; returns
  /// false when more bytes are needed.  Throws FrameError when the buffered
  /// prefix is not a valid frame — the stream is poisoned and the connection
  /// must be dropped (no resynchronization is attempted).
  bool next(Frame* frame);

  /// Bytes currently buffered (partial frame residue).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Parses a control frame's payload as a JSON object.  Throws FrameError
/// (kBadPayload) on malformed JSON, a non-object root, or a RESULT frame
/// (whose payload is opaque container bytes, never JSON at this layer).
[[nodiscard]] JsonValue frame_payload_json(const Frame& frame);

// --- typed control messages -------------------------------------------------
//
// Thin JSON codecs for the control payloads.  Unknown keys are ignored on
// decode (forward compatibility); missing required keys throw FrameError
// (kBadPayload).  DESIGN.md §11 lists every field normatively.

/// HELLO: the worker's opening message after connecting.
struct HelloMsg {
  std::uint16_t protocol = kProtocolVersion;  ///< worker's protocol version
  std::string worker;                         ///< display name ("host:pid")
  int threads = 0;                            ///< worker thread setting (0 = default)
  /// Worker wall clock at send time (0 = not reported).  First clock-offset
  /// sample for the coordinator's skew estimator (DESIGN.md §11.8).
  std::int64_t ts_unix_ms = 0;
};

/// JOB: one shard assignment.  Carries the full study parameterization so a
/// worker needs no out-of-band configuration (the same property aropuf_shard
/// worker argv has: the job is reproducible from the message alone).
struct JobMsg {
  int shard = 0;                    ///< shard index to run
  int shards = 1;                   ///< total shard count
  int chips = 0;                    ///< total chip population
  std::uint64_t seed = 0;           ///< master RNG seed
  std::vector<double> checkpoints;  ///< aging years, non-decreasing
  std::string run;                  ///< run name echoed into the manifest
  std::string format;               ///< "binary" or "json" result transport
  int attempt = 1;                  ///< 1-based dispatch attempt (telemetry)
  /// Trace context (optional; empty = untraced).  The coordinator stamps its
  /// run-wide trace id and a parent-span label ("dispatch/<shard>#<attempt>")
  /// so worker spans land under the fleet timeline.  Workers that predate
  /// these keys ignore them (unknown-key tolerance).
  std::string trace_id;     ///< fleet-wide trace identifier (hex token)
  std::string parent_span;  ///< coordinator-side parent-span label
};

/// ERROR: structured failure report.  `code` is a stable machine-readable
/// token (DESIGN.md §11.5); `message` is for humans.
struct ErrorMsg {
  std::string code;     ///< stable token: "version-mismatch", "bad-frame", "job-failed"
  std::string message;  ///< free-form human-readable detail
  int shard = -1;       ///< affected shard, or -1 when not job-specific
};

/// METRICS: one worker observability snapshot (DESIGN.md §11.8).  Sent right
/// after HELLO, after every finished job, and periodically while a job runs;
/// always advisory — a coordinator may ignore it, losing one never stalls a
/// run.  `metrics` is the worker's metrics-registry snapshot (the same
/// document shape the run manifest embeds); `spans` are drained Chrome "X"
/// trace events on the worker's steady-clock base, rebased by the receiver
/// via `trace_epoch_unix_ms` plus its clock-offset estimate.
struct MetricsMsg {
  std::int64_t ts_unix_ms = 0;      ///< worker wall clock at snapshot time
  std::int64_t seq = 0;             ///< 0-based snapshot counter per connection
  double trace_epoch_unix_ms = 0.0; ///< worker wall clock at its steady-clock zero
  int jobs_done = 0;                ///< jobs this worker has completed so far
  int jobs_in_flight = 0;           ///< jobs currently running (0 or 1)
  JsonValue metrics;                ///< metrics-registry snapshot (JSON object)
  JsonValue::Array spans;           ///< drained trace events (may be empty)
};

/// Encodes a HELLO payload as a JSON object.
[[nodiscard]] JsonValue hello_to_json(const HelloMsg& msg);
/// Decodes a HELLO payload; throws FrameError (kBadPayload) on schema violation.
[[nodiscard]] HelloMsg hello_from_json(const JsonValue& doc);

/// Encodes a JOB payload as a JSON object.
[[nodiscard]] JsonValue job_to_json(const JobMsg& msg);
/// Decodes a JOB payload; throws FrameError (kBadPayload) on schema violation
/// (out-of-range shard index, non-positive chips, empty checkpoints, ...).
[[nodiscard]] JobMsg job_from_json(const JsonValue& doc);

/// Encodes an ERROR payload as a JSON object.
[[nodiscard]] JsonValue error_to_json(const ErrorMsg& msg);
/// Decodes an ERROR payload; throws FrameError (kBadPayload) on schema violation.
[[nodiscard]] ErrorMsg error_from_json(const JsonValue& doc);

/// Encodes a METRICS payload as a JSON object.
[[nodiscard]] JsonValue metrics_to_json(const MetricsMsg& msg);
/// Decodes a METRICS payload; throws FrameError (kBadPayload) on schema
/// violation (non-positive timestamp, negative counters, non-object
/// `metrics`, non-array `spans`, ...).
[[nodiscard]] MetricsMsg metrics_from_json(const JsonValue& doc);

/// Convenience encoders: typed message → framed bytes ready for the socket.
[[nodiscard]] std::string encode_hello(const HelloMsg& msg);
[[nodiscard]] std::string encode_job(const JobMsg& msg);
[[nodiscard]] std::string encode_error(const ErrorMsg& msg);
[[nodiscard]] std::string encode_metrics(const MetricsMsg& msg);
[[nodiscard]] std::string encode_bye();

}  // namespace aropuf::net
