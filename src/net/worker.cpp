#include "net/worker.hpp"

#include <chrono>
#include <exception>

#include "net/socket.hpp"
#include "telemetry/log.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace aropuf::net {

namespace {

std::int64_t now_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string default_worker_name(const WorkerConfig& config) {
  if (!config.name.empty()) return config.name;
#if !defined(_WIN32)
  return config.host + ":worker." + std::to_string(::getpid());
#else
  return config.host + ":worker";
#endif
}

/// Sends one HEARTBEAT frame carrying the standard heartbeat schema (the
/// same document shape the on-disk progress JSONL uses, so one validator
/// covers both).  Send failures are swallowed: progress is advisory and a
/// dead socket will surface on the next blocking read anyway.
void send_heartbeat(Socket& socket, int shard, const std::string& stage, std::int64_t done,
                    std::int64_t total, std::int64_t start_ms) {
  telemetry::Heartbeat beat;
  beat.ts_unix_ms = now_unix_ms();
  beat.shard = shard;
  beat.stage = stage;
  beat.done = done;
  beat.total = total;
  beat.elapsed_ms = static_cast<double>(beat.ts_unix_ms - start_ms);
  try {
    socket.send_all(
        encode_frame(FrameType::kHeartbeat, telemetry::heartbeat_to_json(beat).dump()));
  } catch (const std::exception&) {
  }
}

/// Sends one METRICS frame: registry snapshot plus every trace span buffered
/// since the previous send.  Advisory like heartbeats — failures are
/// swallowed, the socket's real state surfaces on the next blocking read.
void send_metrics(Socket& socket, std::int64_t seq, int jobs_done, int jobs_in_flight) {
  MetricsMsg msg;
  msg.ts_unix_ms = now_unix_ms();
  msg.seq = seq;
  msg.trace_epoch_unix_ms = telemetry::trace_epoch_unix_ms();
  msg.jobs_done = jobs_done;
  msg.jobs_in_flight = jobs_in_flight;
  msg.metrics = telemetry::MetricsRegistry::global().snapshot_json();
  msg.spans = telemetry::drain_trace_events();
  try {
    socket.send_all(encode_metrics(msg));
  } catch (const std::exception&) {
  }
}

}  // namespace

WorkerExit run_worker(const WorkerConfig& config, const JobRunner& runner) {
  const std::string worker_name = default_worker_name(config);
  // Observability plane: spans must exist to ship, so open a buffer-only
  // session when the operator did not request a trace file of their own.
  if (!telemetry::trace_enabled()) telemetry::start_trace_buffered();
  telemetry::set_trace_process_label("worker " + worker_name);
  telemetry::set_trace_thread_label("worker main");

  Socket socket;
  try {
    const telemetry::TraceScope span("fleet.connect", "fleet",
                                     {{"host", JsonValue(config.host)}});
    socket = tcp_connect(config.host, config.port, config.connect_timeout_s);
    socket.send_all(
        encode_hello({kProtocolVersion, worker_name, config.threads, now_unix_ms()}));
  } catch (const std::exception& e) {
    ARO_LOG_ERROR("fleet", "worker cannot reach coordinator",
                  {"host", JsonValue(config.host)},
                  {"error", JsonValue(std::string(e.what()))});
    return WorkerExit::kLost;
  }

  // Snapshot counters: seq orders frames per connection; the initial send
  // right after HELLO carries the connect span, so even a worker that dies
  // on its first job has contributed to the merged timeline.
  std::int64_t metrics_seq = 0;
  int jobs_done = 0;
  std::uint64_t last_metrics_us = telemetry::steady_now_us();
  send_metrics(socket, metrics_seq++, jobs_done, 0);

  FrameDecoder decoder;
  bool ran_a_job = false;
  char buf[64 * 1024];
  while (true) {
    Frame frame;
    bool have_frame = false;
    try {
      while (!(have_frame = decoder.next(&frame))) {
        const std::size_t n = socket.recv_some(buf, sizeof buf);
        if (n == 0) {
          ARO_LOG_WARN("fleet", "coordinator closed the connection");
          return WorkerExit::kLost;
        }
        decoder.feed(buf, n);
      }
    } catch (const FrameError& e) {
      ARO_LOG_ERROR("fleet", "protocol violation from coordinator",
                    {"error", JsonValue(std::string(e.what()))});
      return WorkerExit::kProtocol;
    } catch (const std::exception& e) {
      ARO_LOG_ERROR("fleet", "connection lost", {"error", JsonValue(std::string(e.what()))});
      return WorkerExit::kLost;
    }

    switch (frame.type) {
      case FrameType::kJob: {
        JobMsg job;
        try {
          job = job_from_json(frame_payload_json(frame));
        } catch (const FrameError& e) {
          ARO_LOG_ERROR("fleet", "malformed JOB frame",
                        {"error", JsonValue(std::string(e.what()))});
          return WorkerExit::kProtocol;
        }
        if (config.abort_first_job && !ran_a_job) {
          // Test hook: die like a SIGKILLed worker — hard close, no farewell.
          socket.close();
          return WorkerExit::kAborted;
        }
        ran_a_job = true;
        telemetry::MetricsRegistry::global().counter("fleet.jobs_run").add(1);
        const std::int64_t start_ms = now_unix_ms();
        std::string result;
        bool failed = false;
        std::string failure;
        {
          // The job span closes before the post-job METRICS send below, so
          // the frame that announces the finished job also carries its span.
          const telemetry::TraceScope span("fleet.job", "fleet",
                                           {{"shard", JsonValue(job.shard)},
                                            {"attempt", JsonValue(job.attempt)},
                                            {"trace_id", JsonValue(job.trace_id)},
                                            {"parent", JsonValue(job.parent_span)}});
          try {
            result = runner(job, [&](const std::string& stage, std::int64_t done,
                                     std::int64_t total) {
              send_heartbeat(socket, job.shard, stage, done, total, start_ms);
              // Periodic snapshot, time-gated so tight progress loops never
              // flood the coordinator with registry dumps.
              const std::uint64_t now_us = telemetry::steady_now_us();
              if (config.metrics_interval_s > 0 &&
                  static_cast<double>(now_us - last_metrics_us) >=
                      config.metrics_interval_s * 1e6) {
                last_metrics_us = now_us;
                send_metrics(socket, metrics_seq++, jobs_done, 1);
              }
            });
          } catch (const std::exception& e) {
            failed = true;
            failure = e.what();
          }
        }
        if (failed) {
          ARO_LOG_ERROR("fleet", "shard job failed", {"shard", JsonValue(job.shard)},
                        {"error", JsonValue(failure)});
          try {
            socket.send_all(encode_error({"job-failed", failure, job.shard}));
          } catch (const std::exception&) {
            return WorkerExit::kLost;
          }
          send_metrics(socket, metrics_seq++, jobs_done, 0);
          break;
        }
        try {
          socket.send_all(encode_frame(FrameType::kResult, result));
        } catch (const std::exception& e) {
          ARO_LOG_ERROR("fleet", "result send failed", {"shard", JsonValue(job.shard)},
                        {"error", JsonValue(std::string(e.what()))});
          return WorkerExit::kLost;
        }
        ++jobs_done;
        last_metrics_us = telemetry::steady_now_us();
        send_metrics(socket, metrics_seq++, jobs_done, 0);
        break;
      }
      case FrameType::kBye:
        ARO_LOG_INFO("fleet", "dismissed by coordinator");
        return WorkerExit::kBye;
      case FrameType::kError: {
        ErrorMsg err;
        try {
          err = error_from_json(frame_payload_json(frame));
        } catch (const FrameError&) {
          return WorkerExit::kProtocol;
        }
        ARO_LOG_ERROR("fleet", "coordinator reported error", {"code", JsonValue(err.code)},
                      {"message", JsonValue(err.message)});
        if (err.code == "version-mismatch") return WorkerExit::kProtocol;
        break;  // advisory; keep serving
      }
      case FrameType::kHello:
      case FrameType::kHeartbeat:
      case FrameType::kResult:
      case FrameType::kMetrics:
        ARO_LOG_ERROR("fleet", "unexpected frame from coordinator",
                      {"type", JsonValue(std::string(frame_type_name(frame.type)))});
        return WorkerExit::kProtocol;
    }
  }
}

}  // namespace aropuf::net
