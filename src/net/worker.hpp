// Fleet worker: connects to a coordinator, runs assigned shard jobs, and
// frames the resulting shard-manifest containers back.
//
// The transport loop lives here; the *work* is injected as a JobRunner
// callback so this module never depends on the simulation layers —
// tools/aropuf_fleet.cpp wires in sim/shard_study's in-process job runner,
// and the loopback tests wire in stubs.  Heartbeats ride the same connection:
// the runner's progress hook is forwarded as HEARTBEAT frames, which is what
// feeds the coordinator's liveness timeout while a long shard computes.
//
// State machine (DESIGN.md §11.4): connect → send HELLO → loop { wait frame;
// JOB → run + RESULT; BYE → exit 0 }.  A job that throws is reported as an
// ERROR frame (code "job-failed") and the worker stays available — the
// coordinator owns the retry decision.  A lost connection ends the worker
// with a nonzero status; restarting it is the operator's (or supervisor's)
// choice, the coordinator has already reassigned the job either way.
//
// Observability (DESIGN.md §11.8): the worker ships METRICS frames — a
// metrics-registry snapshot plus drained trace spans — right after HELLO,
// after every finished job, and at most every metrics_interval_s while a job
// runs.  When no trace session is active the worker starts a buffer-only one
// so its spans exist to ship; with AROPUF_TRACE set, shipped spans are
// drained out of the local file (the merged fleet timeline is the artifact).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/frame.hpp"

namespace aropuf::net {

/// Connection parameters for one worker process.
struct WorkerConfig {
  std::string host;              ///< coordinator host
  std::uint16_t port = 0;        ///< coordinator port
  double connect_timeout_s = 10; ///< bound on the initial TCP connect
  std::string name;              ///< HELLO display name ("" = host:pid)
  int threads = 0;               ///< echoed in HELLO (informational)
  /// Minimum seconds between periodic METRICS snapshots while a job runs
  /// (snapshots after HELLO and after every finished job are unconditional).
  double metrics_interval_s = 2.0;
  /// Test hook: abort the connection (no RESULT, no ERROR, hard close) on
  /// the worker's first assigned job — simulates a worker killed mid-job so
  /// e2e tests can drive the coordinator's reassignment path
  /// deterministically.  Never set outside tests.
  bool abort_first_job = false;
};

/// Runs one job: returns the serialized shard-manifest container (ARPB bytes
/// for format "binary", JSON text for "json").  The progress hook's
/// (stage, done, total) triples become HEARTBEAT frames.  Throwing reports
/// the job as failed.
using JobRunner = std::function<std::string(
    const JobMsg& job,
    const std::function<void(const std::string& stage, std::int64_t done, std::int64_t total)>&
        progress)>;

/// Exit statuses of run_worker (also the aropuf_fleet worker-mode exit code).
enum class WorkerExit {
  kBye = 0,        ///< coordinator sent BYE: clean shutdown
  kLost = 1,       ///< connection failed or was cut
  kProtocol = 2,   ///< coordinator violated the protocol (incl. version mismatch)
  kAborted = 3,    ///< abort_first_job test hook fired
};

/// Blocks until the coordinator dismisses this worker (BYE) or the
/// connection dies.  Connection-level failures are returned, not thrown.
[[nodiscard]] WorkerExit run_worker(const WorkerConfig& config, const JobRunner& runner);

}  // namespace aropuf::net
