// Fleet observability view: the coordinator-side fold of everything the
// wire reports about a run — METRICS snapshots, heartbeats, lifecycle
// events, and drained trace spans — into one queryable model.
//
// The coordinator callbacks feed one FleetView instance (all calls on the
// coordinator's own thread, so there is no locking here); at any point the
// view can render:
//
//  * a merged Chrome trace — every worker's spans rebased from its local
//    steady clock onto the coordinator's wall clock via the per-worker
//    trace epoch plus the clock-offset estimate, stamped with synthetic
//    per-process pids and process_name/thread_name metadata, sorted so
//    timestamps are monotonic (merged_trace_json());
//  * a machine-readable fleet_metrics.json snapshot (schema
//    "aropuf-fleet-metrics" v1): per-worker utilization, job accounting
//    that sums to the shard plan even across reassignment, clock offsets,
//    the last metrics-registry snapshot per worker, and the retry/
//    reassignment history (fleet_metrics_json());
//  * a Prometheus text-exposition rendering of the same counters
//    (prometheus_text());
//  * per-worker rows for the live TTY HUD (workers()).
//
// Clock-offset convention: offset_ms ≈ coordinator_clock − worker_clock,
// estimated as the minimum over all arrival samples of
// (coordinator receive wall time − sender's embedded wall time); the
// minimum filters queueing noise, leaving at most one one-way network
// latency of bias.  See DESIGN.md §11.8.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "telemetry/progress.hpp"

namespace aropuf::net {

/// One worker's accumulated observability state, as the coordinator saw it.
struct WorkerView {
  std::string name;           ///< HELLO display name ("host:pid")
  int pid = 0;                ///< synthetic pid in the merged trace (2 + index)
  bool connected = false;     ///< still attached at the last event
  int jobs_assigned = 0;      ///< dispatches sent to this worker
  int jobs_done = 0;          ///< RESULTs accepted (folds that succeeded)
  int failed_attempts = 0;    ///< dispatches charged back (error/disconnect/timeout)
  int busy_shard = -1;        ///< shard currently owned, or -1 when idle
  std::int64_t snapshots = 0; ///< METRICS frames received
  double clock_offset_ms = 0.0;  ///< coordinator − worker clock estimate
  bool offset_known = false;  ///< at least one offset sample arrived
  std::string last_stage;     ///< most recent heartbeat stage label
  std::int64_t stage_done = 0;   ///< heartbeat work units completed
  std::int64_t stage_total = 0;  ///< heartbeat work units owned
  double units_per_sec = 0.0; ///< work-unit rate from the last heartbeat
  double busy_ms = 0.0;       ///< summed duration of shipped fleet.job spans
  std::int64_t first_seen_unix_ms = 0;  ///< coordinator clock at connect
  std::int64_t last_seen_unix_ms = 0;   ///< coordinator clock at last signal
  std::int64_t dispatch_unix_ms = 0;    ///< coordinator clock at current dispatch
  JsonValue metrics;          ///< last metrics-registry snapshot (JSON object)
};

/// One retry/reassignment/lifecycle history entry (bounded ring, oldest
/// dropped past kFleetHistoryCap).
struct FleetHistoryEntry {
  std::int64_t ts_unix_ms = 0;  ///< coordinator clock at the event
  std::string event;            ///< "connect", "dispatch", "retry", ...
  int shard = -1;               ///< affected shard, or -1
  std::string detail;           ///< worker name or reason text
};

/// History entries kept before the oldest are dropped.
inline constexpr std::size_t kFleetHistoryCap = 1000;

/// Observability fold for one coordinator run.  Not thread-safe by design:
/// every coordinator callback fires on the coordinator's own thread.
class FleetView {
 public:
  /// @param total_jobs  shard-plan size (indices 0..total_jobs-1)
  /// @param run         run name echoed into the artifacts
  /// @param trace_id    fleet-wide trace identifier stamped on JOB frames
  /// @param start_unix_ms  coordinator wall clock at run start
  FleetView(int total_jobs, std::string run, std::string trace_id,
            std::int64_t start_unix_ms);

  /// Folds one coordinator lifecycle event (the on_event callback verbatim:
  /// "connect"/"dispatch" carry the worker name in `detail`, "retry"/"fail"
  /// carry the reason — shard ownership attributes those to the right
  /// worker).  `now_unix_ms` is the coordinator clock (injected for tests).
  void note_event(const std::string& event, int shard, const std::string& detail,
                  std::int64_t now_unix_ms);

  /// Folds one accepted RESULT (call only after the fold succeeded, so
  /// jobs_done matches the coordinator's own accounting).
  void note_result(int shard, const std::string& worker, std::int64_t now_unix_ms);

  /// Folds one progress heartbeat into the worker's stage/rate columns.
  void note_heartbeat(const telemetry::Heartbeat& beat, const std::string& worker,
                      std::int64_t now_unix_ms);

  /// Folds one METRICS snapshot: registry state, clock offset, and the
  /// carried trace spans (buffered raw; rebased at render time so late
  /// offset refinements correct earlier spans too).
  void note_metrics(const MetricsMsg& msg, const std::string& worker,
                    double clock_offset_ms, std::int64_t now_unix_ms);

  /// Adds the coordinator's own drained trace events (pid 1, offset 0).
  /// `epoch_unix_ms` is telemetry::trace_epoch_unix_ms() of this process;
  /// `label` names the process row ("coordinator").
  void add_local_events(JsonValue::Array events, double epoch_unix_ms,
                        const std::string& label);

  /// Merged Chrome trace: {"traceEvents": [...], "displayTimeUnit": "ms",
  /// "trace_id": ..., "run": ...}.  Events are offset-corrected, rebased to
  /// the earliest event (so every ts ≥ 0), and sorted by timestamp.
  [[nodiscard]] JsonValue merged_trace_json() const;

  /// fleet_metrics.json document (schema "aropuf-fleet-metrics" v1).
  [[nodiscard]] JsonValue fleet_metrics_json(std::int64_t now_unix_ms) const;

  /// Prometheus text exposition of the fleet + per-worker counters.
  [[nodiscard]] std::string prometheus_text() const;

  /// Per-worker rows in first-seen order (HUD + report rendering).
  [[nodiscard]] const std::vector<WorkerView>& workers() const { return workers_; }

  /// The fleet-wide trace id stamped on every JOB frame.
  [[nodiscard]] const std::string& trace_id() const { return trace_id_; }

  /// Shards whose RESULT was accepted so far.
  [[nodiscard]] int shards_done() const { return shards_done_; }

  /// Shards that exhausted their retry budget.
  [[nodiscard]] int shards_failed() const { return shards_failed_; }

  /// Dispatches beyond each shard's first attempt.
  [[nodiscard]] int reassignments() const { return reassignments_; }

  /// Bounded lifecycle history (retry/reassignment audit trail).
  [[nodiscard]] const std::vector<FleetHistoryEntry>& history() const { return history_; }

 private:
  struct RawSpan {
    JsonValue event;       ///< Chrome "X" event (worker steady-clock ts)
    double unix_us = 0.0;  ///< sender wall-clock µs (epoch + ts), uncorrected
    int worker = -1;       ///< worker index, or -1 for the coordinator
  };

  std::size_t worker_index(const std::string& name, std::int64_t now_unix_ms);
  void push_history(const std::string& event, int shard, const std::string& detail,
                    std::int64_t now_unix_ms);

  int total_jobs_;
  std::string run_;
  std::string trace_id_;
  std::int64_t start_unix_ms_;
  std::vector<WorkerView> workers_;
  std::map<std::string, std::size_t> index_by_name_;
  std::map<int, std::size_t> owner_by_shard_;
  std::map<int, int> dispatches_by_shard_;
  std::vector<FleetHistoryEntry> history_;
  std::vector<RawSpan> spans_;
  std::vector<double> completed_job_ms_;
  std::string coordinator_label_ = "coordinator";
  int shards_done_ = 0;
  int shards_failed_ = 0;
  int reassignments_ = 0;
};

}  // namespace aropuf::net
