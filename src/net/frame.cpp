#include "net/frame.hpp"

#include <cstring>

namespace aropuf::net {

namespace {

/// Little-endian field writers/readers: the wire is LE regardless of host.
void put_u16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(u[0] | (u[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) | (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) | (static_cast<std::uint32_t>(u[3]) << 24);
}

bool valid_type(std::uint8_t byte) {
  return byte >= static_cast<std::uint8_t>(FrameType::kHello) &&
         byte <= static_cast<std::uint8_t>(FrameType::kMetrics);
}

std::uint32_t payload_cap(FrameType type) {
  return type == FrameType::kResult ? kMaxResultPayload : kMaxControlPayload;
}

[[noreturn]] void bad_payload(const std::string& what) {
  throw FrameError(FrameErrc::kBadPayload, what);
}

/// Required-field accessors: schema violations surface as FrameError so a
/// receiver has exactly one exception type to map to a protocol error.
double require_number(const JsonValue& doc, const char* key) {
  if (!doc.contains(key) || !doc.at(key).is_number()) {
    bad_payload(std::string("missing or non-numeric field '") + key + "'");
  }
  return doc.at(key).as_number();
}

std::string require_string(const JsonValue& doc, const char* key) {
  if (!doc.contains(key) || !doc.at(key).is_string()) {
    bad_payload(std::string("missing or non-string field '") + key + "'");
  }
  return doc.at(key).as_string();
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kJob: return "JOB";
    case FrameType::kHeartbeat: return "HEARTBEAT";
    case FrameType::kResult: return "RESULT";
    case FrameType::kError: return "ERROR";
    case FrameType::kBye: return "BYE";
    case FrameType::kMetrics: return "METRICS";
  }
  return "?";
}

const char* frame_errc_name(FrameErrc code) {
  switch (code) {
    case FrameErrc::kBadMagic: return "bad_magic";
    case FrameErrc::kUnsupportedVersion: return "unsupported_version";
    case FrameErrc::kBadType: return "bad_type";
    case FrameErrc::kReservedNonzero: return "reserved_nonzero";
    case FrameErrc::kOversizedPayload: return "oversized_payload";
    case FrameErrc::kBadPayload: return "bad_payload";
  }
  return "unknown";
}

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > payload_cap(type)) {
    throw FrameError(FrameErrc::kOversizedPayload,
                     std::string(frame_type_name(type)) + " payload of " +
                         std::to_string(payload.size()) + " bytes exceeds the cap");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof kFrameMagic);
  put_u16(&out, kProtocolVersion);
  out.push_back(static_cast<char>(type));
  out.push_back('\0');  // reserved
  put_u32(&out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

bool FrameDecoder::next(Frame* frame) {
  if (buffer_.size() < kFrameHeaderSize) {
    // Validate whatever magic prefix exists so a poisoned stream fails on the
    // first bytes, not after buffering a phantom "payload".
    const std::size_t have = std::min(buffer_.size(), sizeof kFrameMagic);
    if (std::memcmp(buffer_.data(), kFrameMagic, have) != 0) {
      throw FrameError(FrameErrc::kBadMagic, "stream does not start with ARPF");
    }
    return false;
  }
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof kFrameMagic) != 0) {
    throw FrameError(FrameErrc::kBadMagic, "stream does not start with ARPF");
  }
  const std::uint16_t version = get_u16(buffer_.data() + 4);
  if (version != kProtocolVersion) {
    throw FrameError(FrameErrc::kUnsupportedVersion,
                     "protocol version " + std::to_string(version) + " (reader knows " +
                         std::to_string(kProtocolVersion) + ")");
  }
  const auto type_byte = static_cast<std::uint8_t>(buffer_[6]);
  if (!valid_type(type_byte)) {
    throw FrameError(FrameErrc::kBadType, "type byte " + std::to_string(type_byte));
  }
  if (buffer_[7] != '\0') {
    throw FrameError(FrameErrc::kReservedNonzero, "reserved byte must be zero");
  }
  const auto type = static_cast<FrameType>(type_byte);
  const std::uint32_t length = get_u32(buffer_.data() + 8);
  if (length > payload_cap(type)) {
    throw FrameError(FrameErrc::kOversizedPayload,
                     std::string(frame_type_name(type)) + " declares " + std::to_string(length) +
                         " payload bytes, over the cap");
  }
  if (buffer_.size() < kFrameHeaderSize + length) return false;
  frame->type = type;
  frame->payload.assign(buffer_, kFrameHeaderSize, length);
  buffer_.erase(0, kFrameHeaderSize + length);
  return true;
}

JsonValue frame_payload_json(const Frame& frame) {
  if (frame.type == FrameType::kResult) {
    bad_payload("RESULT payload is an opaque shard-manifest container, not JSON");
  }
  JsonValue doc;
  try {
    doc = JsonValue::parse(frame.payload);
  } catch (const std::exception& e) {
    bad_payload(std::string(frame_type_name(frame.type)) + " payload is not valid JSON: " +
                e.what());
  }
  if (!doc.is_object()) {
    bad_payload(std::string(frame_type_name(frame.type)) + " payload root must be an object");
  }
  return doc;
}

// --- typed control messages -------------------------------------------------

JsonValue hello_to_json(const HelloMsg& msg) {
  JsonValue::Object obj;
  obj["protocol"] = JsonValue(static_cast<std::uint64_t>(msg.protocol));
  obj["worker"] = JsonValue(msg.worker);
  obj["threads"] = JsonValue(msg.threads);
  if (msg.ts_unix_ms > 0) obj["ts_unix_ms"] = JsonValue(static_cast<double>(msg.ts_unix_ms));
  return JsonValue(std::move(obj));
}

HelloMsg hello_from_json(const JsonValue& doc) {
  HelloMsg msg;
  msg.protocol = static_cast<std::uint16_t>(require_number(doc, "protocol"));
  msg.worker = require_string(doc, "worker");
  msg.threads = static_cast<int>(doc.number_or("threads", 0.0));
  msg.ts_unix_ms = static_cast<std::int64_t>(doc.number_or("ts_unix_ms", 0.0));
  return msg;
}

JsonValue job_to_json(const JobMsg& msg) {
  JsonValue::Object obj;
  obj["shard"] = JsonValue(msg.shard);
  obj["shards"] = JsonValue(msg.shards);
  obj["chips"] = JsonValue(msg.chips);
  obj["seed"] = JsonValue(msg.seed);
  JsonValue::Array checkpoints;
  checkpoints.reserve(msg.checkpoints.size());
  for (const double y : msg.checkpoints) checkpoints.emplace_back(y);
  obj["checkpoints"] = JsonValue(std::move(checkpoints));
  obj["run"] = JsonValue(msg.run);
  obj["format"] = JsonValue(msg.format);
  obj["attempt"] = JsonValue(msg.attempt);
  if (!msg.trace_id.empty()) obj["trace_id"] = JsonValue(msg.trace_id);
  if (!msg.parent_span.empty()) obj["parent_span"] = JsonValue(msg.parent_span);
  return JsonValue(std::move(obj));
}

JobMsg job_from_json(const JsonValue& doc) {
  JobMsg msg;
  msg.shard = static_cast<int>(require_number(doc, "shard"));
  msg.shards = static_cast<int>(require_number(doc, "shards"));
  msg.chips = static_cast<int>(require_number(doc, "chips"));
  msg.seed = static_cast<std::uint64_t>(require_number(doc, "seed"));
  if (!doc.contains("checkpoints") || !doc.at("checkpoints").is_array()) {
    bad_payload("missing or non-array field 'checkpoints'");
  }
  for (const JsonValue& y : doc.at("checkpoints").as_array()) {
    if (!y.is_number()) bad_payload("non-numeric checkpoint");
    msg.checkpoints.push_back(y.as_number());
  }
  msg.run = require_string(doc, "run");
  msg.format = require_string(doc, "format");
  msg.attempt = static_cast<int>(doc.number_or("attempt", 1.0));
  msg.trace_id = doc.string_or("trace_id", "");
  msg.parent_span = doc.string_or("parent_span", "");
  if (msg.shards < 1 || msg.shard < 0 || msg.shard >= msg.shards || msg.chips < 2 ||
      msg.checkpoints.empty() || (msg.format != "json" && msg.format != "binary")) {
    bad_payload("JOB fields out of range");
  }
  return msg;
}

JsonValue error_to_json(const ErrorMsg& msg) {
  JsonValue::Object obj;
  obj["code"] = JsonValue(msg.code);
  obj["message"] = JsonValue(msg.message);
  obj["shard"] = JsonValue(msg.shard);
  return JsonValue(std::move(obj));
}

ErrorMsg error_from_json(const JsonValue& doc) {
  ErrorMsg msg;
  msg.code = require_string(doc, "code");
  msg.message = doc.string_or("message", "");
  msg.shard = static_cast<int>(doc.number_or("shard", -1.0));
  return msg;
}

JsonValue metrics_to_json(const MetricsMsg& msg) {
  JsonValue::Object obj;
  obj["ts_unix_ms"] = JsonValue(static_cast<double>(msg.ts_unix_ms));
  obj["seq"] = JsonValue(static_cast<double>(msg.seq));
  obj["trace_epoch_unix_ms"] = JsonValue(msg.trace_epoch_unix_ms);
  obj["jobs_done"] = JsonValue(msg.jobs_done);
  obj["jobs_in_flight"] = JsonValue(msg.jobs_in_flight);
  obj["metrics"] = msg.metrics.is_object() ? msg.metrics : JsonValue(JsonValue::Object{});
  obj["spans"] = JsonValue(msg.spans);
  return JsonValue(std::move(obj));
}

MetricsMsg metrics_from_json(const JsonValue& doc) {
  MetricsMsg msg;
  msg.ts_unix_ms = static_cast<std::int64_t>(require_number(doc, "ts_unix_ms"));
  msg.seq = static_cast<std::int64_t>(doc.number_or("seq", 0.0));
  msg.trace_epoch_unix_ms = doc.number_or("trace_epoch_unix_ms", 0.0);
  msg.jobs_done = static_cast<int>(doc.number_or("jobs_done", 0.0));
  msg.jobs_in_flight = static_cast<int>(doc.number_or("jobs_in_flight", 0.0));
  if (!doc.contains("metrics") || !doc.at("metrics").is_object()) {
    bad_payload("missing or non-object field 'metrics'");
  }
  msg.metrics = doc.at("metrics");
  if (doc.contains("spans")) {
    if (!doc.at("spans").is_array()) bad_payload("non-array field 'spans'");
    for (const JsonValue& span : doc.at("spans").as_array()) {
      if (!span.is_object()) bad_payload("non-object span entry");
      msg.spans.push_back(span);
    }
  }
  if (msg.ts_unix_ms <= 0 || msg.seq < 0 || msg.jobs_done < 0 || msg.jobs_in_flight < 0 ||
      msg.trace_epoch_unix_ms < 0.0) {
    bad_payload("METRICS fields out of range");
  }
  return msg;
}

std::string encode_hello(const HelloMsg& msg) {
  return encode_frame(FrameType::kHello, hello_to_json(msg).dump());
}

std::string encode_job(const JobMsg& msg) {
  return encode_frame(FrameType::kJob, job_to_json(msg).dump());
}

std::string encode_error(const ErrorMsg& msg) {
  return encode_frame(FrameType::kError, error_to_json(msg).dump());
}

std::string encode_metrics(const MetricsMsg& msg) {
  return encode_frame(FrameType::kMetrics, metrics_to_json(msg).dump());
}

std::string encode_bye() { return encode_frame(FrameType::kBye, ""); }

}  // namespace aropuf::net
