#include "net/fleet_view.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aropuf::net {

namespace {

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string prom_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prom_metric(std::string* out, const std::string& name, const std::string& help,
                 const std::vector<std::pair<std::string, double>>& samples) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " gauge\n";
  for (const auto& [labels, value] : samples) {
    *out += name + labels + " " + JsonValue(value).dump() + "\n";
  }
}

}  // namespace

FleetView::FleetView(int total_jobs, std::string run, std::string trace_id,
                     std::int64_t start_unix_ms)
    : total_jobs_(total_jobs),
      run_(std::move(run)),
      trace_id_(std::move(trace_id)),
      start_unix_ms_(start_unix_ms) {}

std::size_t FleetView::worker_index(const std::string& name, std::int64_t now_unix_ms) {
  const auto it = index_by_name_.find(name);
  if (it != index_by_name_.end()) {
    workers_[it->second].last_seen_unix_ms = now_unix_ms;
    return it->second;
  }
  WorkerView w;
  w.name = name;
  // Synthetic pid: the coordinator is process 1, workers 2+k in first-seen
  // order — stable across renders and independent of real host pids, which
  // can collide across machines.
  w.pid = 2 + static_cast<int>(workers_.size());
  w.connected = true;
  w.first_seen_unix_ms = now_unix_ms;
  w.last_seen_unix_ms = now_unix_ms;
  workers_.push_back(std::move(w));
  index_by_name_[name] = workers_.size() - 1;
  return workers_.size() - 1;
}

void FleetView::push_history(const std::string& event, int shard, const std::string& detail,
                             std::int64_t now_unix_ms) {
  if (history_.size() >= kFleetHistoryCap) {
    history_.erase(history_.begin());
  }
  history_.push_back({now_unix_ms, event, shard, detail});
}

void FleetView::note_event(const std::string& event, int shard, const std::string& detail,
                           std::int64_t now_unix_ms) {
  push_history(event, shard, detail, now_unix_ms);
  if (event == "connect") {
    workers_[worker_index(detail, now_unix_ms)].connected = true;
    return;
  }
  if (event == "dispatch") {
    const std::size_t w = worker_index(detail, now_unix_ms);
    WorkerView& worker = workers_[w];
    ++worker.jobs_assigned;
    worker.busy_shard = shard;
    worker.dispatch_unix_ms = now_unix_ms;
    owner_by_shard_[shard] = w;
    if (dispatches_by_shard_[shard]++ >= 1) ++reassignments_;
    return;
  }
  if (event == "retry" || event == "fail") {
    // `detail` is the reason, not the worker — the shard-ownership map set
    // at dispatch attributes the failed attempt to the right worker.
    const auto owner = owner_by_shard_.find(shard);
    if (owner != owner_by_shard_.end()) {
      WorkerView& worker = workers_[owner->second];
      ++worker.failed_attempts;
      if (worker.busy_shard == shard) worker.busy_shard = -1;
      owner_by_shard_.erase(owner);
    }
    if (event == "fail") ++shards_failed_;
    return;
  }
  if (event == "disconnect" || event == "bye") {
    // disconnect details read "<name>: <why>"; bye carries the bare name.
    std::string name = detail;
    const std::size_t sep = detail.find(": ");
    if (index_by_name_.find(name) == index_by_name_.end() && sep != std::string::npos) {
      name = detail.substr(0, sep);
    }
    const auto it = index_by_name_.find(name);
    if (it != index_by_name_.end()) workers_[it->second].connected = false;
    return;
  }
  // "timeout" and future events: history entry only; the follow-up retry or
  // fail event does the per-worker charging.
}

void FleetView::note_result(int shard, const std::string& worker, std::int64_t now_unix_ms) {
  const std::size_t w = worker_index(worker, now_unix_ms);
  WorkerView& view = workers_[w];
  ++view.jobs_done;
  if (view.busy_shard == shard) view.busy_shard = -1;
  if (view.dispatch_unix_ms > 0) {
    completed_job_ms_.push_back(static_cast<double>(now_unix_ms - view.dispatch_unix_ms));
  }
  owner_by_shard_.erase(shard);
  ++shards_done_;
}

void FleetView::note_heartbeat(const telemetry::Heartbeat& beat, const std::string& worker,
                               std::int64_t now_unix_ms) {
  WorkerView& view = workers_[worker_index(worker, now_unix_ms)];
  view.last_stage = beat.stage;
  view.stage_done = beat.done;
  view.stage_total = beat.total;
  if (beat.elapsed_ms > 0.0) {
    view.units_per_sec = static_cast<double>(beat.done) / (beat.elapsed_ms / 1000.0);
  }
}

void FleetView::note_metrics(const MetricsMsg& msg, const std::string& worker,
                             double clock_offset_ms, std::int64_t now_unix_ms) {
  const std::size_t w = worker_index(worker, now_unix_ms);
  WorkerView& view = workers_[w];
  view.clock_offset_ms = clock_offset_ms;
  view.offset_known = true;
  ++view.snapshots;
  if (msg.metrics.is_object()) view.metrics = msg.metrics;
  for (const JsonValue& span : msg.spans) {
    if (!span.is_object()) continue;
    if (span.string_or("name", "") == "fleet.job") {
      view.busy_ms += span.number_or("dur", 0.0) / 1000.0;
    }
    RawSpan raw;
    raw.unix_us = msg.trace_epoch_unix_ms * 1000.0 + span.number_or("ts", 0.0);
    raw.event = span;
    raw.worker = static_cast<int>(w);
    spans_.push_back(std::move(raw));
  }
}

void FleetView::add_local_events(JsonValue::Array events, double epoch_unix_ms,
                                 const std::string& label) {
  coordinator_label_ = label;
  for (JsonValue& span : events) {
    if (!span.is_object()) continue;
    RawSpan raw;
    raw.unix_us = epoch_unix_ms * 1000.0 + span.number_or("ts", 0.0);
    raw.event = std::move(span);
    raw.worker = -1;
    spans_.push_back(std::move(raw));
  }
}

JsonValue FleetView::merged_trace_json() const {
  struct Corrected {
    double ts_us = 0.0;
    int pid = 1;
    const JsonValue* event = nullptr;
  };
  std::vector<Corrected> corrected;
  corrected.reserve(spans_.size());
  for (const RawSpan& raw : spans_) {
    Corrected c;
    c.event = &raw.event;
    if (raw.worker >= 0) {
      const WorkerView& w = workers_[static_cast<std::size_t>(raw.worker)];
      c.pid = w.pid;
      // Rebasing happens at render time with the final offset estimate, so
      // spans shipped before the estimate settled still line up.
      c.ts_us = raw.unix_us + w.clock_offset_ms * 1000.0;
    } else {
      c.ts_us = raw.unix_us;
    }
    corrected.push_back(c);
  }
  double t0_us = 0.0;
  if (!corrected.empty()) {
    t0_us = corrected.front().ts_us;
    for (const Corrected& c : corrected) t0_us = std::min(t0_us, c.ts_us);
  }
  std::stable_sort(corrected.begin(), corrected.end(),
                   [](const Corrected& a, const Corrected& b) { return a.ts_us < b.ts_us; });

  JsonValue::Array trace_events;
  trace_events.reserve(corrected.size() + 2 * (workers_.size() + 1));
  // Naming metadata first: one process row per participant, named threads.
  std::map<std::pair<int, int>, std::string> thread_names;
  auto meta = [&trace_events](const char* kind, int pid, int tid, const std::string& name) {
    JsonValue::Object m;
    m["name"] = JsonValue(kind);
    m["ph"] = JsonValue("M");
    m["ts"] = JsonValue(0.0);
    m["pid"] = JsonValue(pid);
    m["tid"] = JsonValue(tid);
    JsonValue::Object args;
    args["name"] = JsonValue(name);
    m["args"] = JsonValue(std::move(args));
    trace_events.emplace_back(std::move(m));
  };
  meta("process_name", 1, 0, coordinator_label_);
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    meta("process_name", workers_[k].pid, 0,
         "worker[" + std::to_string(k) + "] " + workers_[k].name);
  }
  for (const Corrected& c : corrected) {
    const int tid = static_cast<int>(c.event->number_or("tid", 0.0));
    const std::string tname = c.event->string_or("tname", "");
    auto& slot = thread_names[{c.pid, tid}];
    if (slot.empty()) slot = tname.empty() ? "thread " + std::to_string(tid) : tname;
  }
  for (const auto& [key, name] : thread_names) {
    meta("thread_name", key.first, key.second, name);
  }
  for (const Corrected& c : corrected) {
    JsonValue::Object obj = c.event->as_object();
    obj.erase("tname");
    obj["pid"] = JsonValue(c.pid);
    obj["ts"] = JsonValue(std::max(0.0, c.ts_us - t0_us));
    if (!obj.count("tid")) obj["tid"] = JsonValue(0);
    trace_events.emplace_back(std::move(obj));
  }

  JsonValue::Object root;
  root["traceEvents"] = JsonValue(std::move(trace_events));
  root["displayTimeUnit"] = JsonValue("ms");
  root["trace_id"] = JsonValue(trace_id_);
  root["run"] = JsonValue(run_);
  return JsonValue(std::move(root));
}

JsonValue FleetView::fleet_metrics_json(std::int64_t now_unix_ms) const {
  const double elapsed_ms = static_cast<double>(now_unix_ms - start_unix_ms_);
  double mean_job_ms = 0.0;
  for (const double d : completed_job_ms_) mean_job_ms += d;
  if (!completed_job_ms_.empty()) mean_job_ms /= static_cast<double>(completed_job_ms_.size());
  // Straggler flag: a busy worker whose current job has run well past the
  // mean completed-job duration (2× with a 1 s floor so short smoke runs
  // never false-positive).
  const double straggle_after_ms = std::max(2.0 * mean_job_ms, 1000.0);

  JsonValue::Object root;
  root["schema"] = JsonValue("aropuf-fleet-metrics");
  root["schema_version"] = JsonValue(1);
  root["run"] = JsonValue(run_);
  root["trace_id"] = JsonValue(trace_id_);
  root["created_unix_ms"] = JsonValue(static_cast<double>(now_unix_ms));
  root["started_unix_ms"] = JsonValue(static_cast<double>(start_unix_ms_));
  root["elapsed_ms"] = JsonValue(elapsed_ms);

  JsonValue::Object shards;
  shards["total"] = JsonValue(total_jobs_);
  shards["done"] = JsonValue(shards_done_);
  shards["failed"] = JsonValue(shards_failed_);
  shards["reassigned"] = JsonValue(reassignments_);
  shards["in_flight"] = JsonValue(static_cast<int>(owner_by_shard_.size()));
  shards["queued"] = JsonValue(std::max(
      0, total_jobs_ - shards_done_ - shards_failed_ - static_cast<int>(owner_by_shard_.size())));
  root["shards"] = JsonValue(std::move(shards));

  JsonValue::Array workers;
  workers.reserve(workers_.size());
  for (const WorkerView& w : workers_) {
    JsonValue::Object obj;
    obj["name"] = JsonValue(w.name);
    obj["pid"] = JsonValue(w.pid);
    obj["connected"] = JsonValue(w.connected);
    obj["jobs_assigned"] = JsonValue(w.jobs_assigned);
    obj["jobs_done"] = JsonValue(w.jobs_done);
    obj["failed_attempts"] = JsonValue(w.failed_attempts);
    obj["busy_shard"] = JsonValue(w.busy_shard);
    obj["snapshots"] = JsonValue(static_cast<double>(w.snapshots));
    obj["clock_offset_ms"] = JsonValue(w.offset_known ? w.clock_offset_ms : 0.0);
    obj["clock_offset_known"] = JsonValue(w.offset_known);
    obj["last_stage"] = JsonValue(w.last_stage);
    obj["stage_done"] = JsonValue(static_cast<double>(w.stage_done));
    obj["stage_total"] = JsonValue(static_cast<double>(w.stage_total));
    obj["units_per_sec"] = JsonValue(w.units_per_sec);
    obj["busy_ms"] = JsonValue(w.busy_ms);
    obj["utilization"] =
        JsonValue(elapsed_ms > 0.0 ? std::min(1.0, std::max(0.0, w.busy_ms / elapsed_ms)) : 0.0);
    const double job_elapsed_ms =
        w.busy_shard >= 0 ? static_cast<double>(now_unix_ms - w.dispatch_unix_ms) : 0.0;
    obj["job_elapsed_ms"] = JsonValue(job_elapsed_ms);
    obj["straggler"] = JsonValue(w.busy_shard >= 0 && job_elapsed_ms > straggle_after_ms);
    obj["first_seen_unix_ms"] = JsonValue(static_cast<double>(w.first_seen_unix_ms));
    obj["last_seen_unix_ms"] = JsonValue(static_cast<double>(w.last_seen_unix_ms));
    obj["metrics"] = w.metrics.is_object() ? w.metrics : JsonValue(JsonValue::Object{});
    workers.emplace_back(std::move(obj));
  }
  root["workers"] = JsonValue(std::move(workers));

  JsonValue::Array history;
  history.reserve(history_.size());
  for (const FleetHistoryEntry& e : history_) {
    JsonValue::Object obj;
    obj["ts_unix_ms"] = JsonValue(static_cast<double>(e.ts_unix_ms));
    obj["event"] = JsonValue(e.event);
    obj["shard"] = JsonValue(e.shard);
    obj["detail"] = JsonValue(e.detail);
    history.emplace_back(std::move(obj));
  }
  root["history"] = JsonValue(std::move(history));
  return JsonValue(std::move(root));
}

std::string FleetView::prometheus_text() const {
  std::string out;
  prom_metric(&out, "aropuf_fleet_shards_total", "shard jobs in the plan",
              {{"", static_cast<double>(total_jobs_)}});
  prom_metric(&out, "aropuf_fleet_shards_done", "shard jobs whose result was folded",
              {{"", static_cast<double>(shards_done_)}});
  prom_metric(&out, "aropuf_fleet_shards_failed", "shard jobs that exhausted the retry budget",
              {{"", static_cast<double>(shards_failed_)}});
  prom_metric(&out, "aropuf_fleet_reassignments", "dispatches beyond each shard's first attempt",
              {{"", static_cast<double>(reassignments_)}});
  prom_metric(&out, "aropuf_fleet_workers", "workers that completed the HELLO handshake",
              {{"", static_cast<double>(workers_.size())}});

  std::vector<std::pair<std::string, double>> done, assigned, failed, offset, busy, snaps;
  for (const WorkerView& w : workers_) {
    const std::string labels = "{worker=\"" + prom_escape(w.name) + "\"}";
    done.emplace_back(labels, static_cast<double>(w.jobs_done));
    assigned.emplace_back(labels, static_cast<double>(w.jobs_assigned));
    failed.emplace_back(labels, static_cast<double>(w.failed_attempts));
    offset.emplace_back(labels, w.offset_known ? w.clock_offset_ms : 0.0);
    busy.emplace_back(labels, w.busy_ms);
    snaps.emplace_back(labels, static_cast<double>(w.snapshots));
  }
  prom_metric(&out, "aropuf_fleet_worker_jobs_done", "accepted results per worker", done);
  prom_metric(&out, "aropuf_fleet_worker_jobs_assigned", "dispatches per worker", assigned);
  prom_metric(&out, "aropuf_fleet_worker_failed_attempts",
              "dispatches charged back per worker", failed);
  prom_metric(&out, "aropuf_fleet_worker_clock_offset_ms",
              "coordinator-minus-worker clock estimate", offset);
  prom_metric(&out, "aropuf_fleet_worker_busy_ms", "summed fleet.job span duration", busy);
  prom_metric(&out, "aropuf_fleet_worker_metrics_snapshots", "METRICS frames received", snaps);

  // Hot profiling instruments ("prof.*" hardware counters / "proc.*"
  // resource gauges) from each worker's latest METRICS snapshot, exported
  // with a metric label so scrapers see fleet-wide IPC and RSS without a
  // per-instrument metric family.
  std::vector<std::pair<std::string, double>> profile;
  for (const WorkerView& w : workers_) {
    if (!w.metrics.is_object()) continue;
    for (const char* kind : {"counters", "gauges"}) {
      if (!w.metrics.contains(kind) || !w.metrics.at(kind).is_object()) continue;
      for (const auto& [name, v] : w.metrics.at(kind).as_object()) {
        if (!v.is_number()) continue;
        if (name.rfind("prof.", 0) != 0 && name.rfind("proc.", 0) != 0) continue;
        profile.emplace_back("{worker=\"" + prom_escape(w.name) + "\",metric=\"" +
                                 prom_escape(name) + "\"}",
                             v.as_number());
      }
    }
  }
  if (!profile.empty()) {
    prom_metric(&out, "aropuf_fleet_worker_profile",
                "profiling-layer counters/gauges from the last METRICS snapshot", profile);
  }
  return out;
}

}  // namespace aropuf::net
