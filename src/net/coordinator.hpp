// Fleet coordinator: dispatches seed-range shard jobs to TCP workers and
// collects their shard-manifest containers.
//
// One single-threaded poll() loop owns the listener plus every worker
// connection; all protocol state lives in this module, all policy about what
// the bytes *mean* stays with the caller:
//
//  * jobs are shard indices drawn from the same planner aropuf_shard uses
//    (a JobMsg template with the shard index filled per dispatch);
//  * a returned RESULT is handed to callbacks.on_result as raw container
//    bytes — tools/aropuf_fleet.cpp streams them into AggregateBuilder via
//    the format-agnostic decode path, so fold semantics are identical to the
//    single-host orchestrator;
//  * a worker that disconnects, times out (no frame within
//    heartbeat_timeout_s), or reports an ERROR while owning a job sends that
//    job back through the retry budget (attempts ≤ retries+1, the same
//    machinery aropuf_shard applies to crashed child processes).  A throwing
//    on_result counts as a failed attempt too: a manifest that will not fold
//    is as fatal as a worker that never answered.
//
// The worker and coordinator state machines, frame ordering rules, and error
// codes are specified normatively in DESIGN.md §11.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/frame.hpp"
#include "telemetry/progress.hpp"

namespace aropuf::net {

/// Run parameters for one coordinator instance.
struct CoordinatorConfig {
  std::uint16_t port = 0;           ///< listen port; 0 = kernel-assigned
  int jobs = 1;                     ///< total shard jobs (indices 0..jobs-1)
  int retries = 1;                  ///< extra attempts per failed job
  double heartbeat_timeout_s = 60;  ///< drop a silent busy worker (0 = never)
  double total_timeout_s = 0;       ///< abort the whole run (0 = never)
  /// Study parameters; shard/attempt/parent_span are filled per dispatch
  /// (trace_id, when set, rides every JOB unchanged — see DESIGN.md §11.8).
  JobMsg job_template;
};

/// Event hooks.  All callbacks fire on the coordinator's own thread.
struct CoordinatorCallbacks {
  /// A completed shard's manifest container bytes (ARPB or JSON text).
  /// Throwing fails this attempt and routes the job through the retry budget.
  std::function<void(int shard, std::string bytes, const std::string& worker)> on_result;
  /// A worker's progress heartbeat (same schema as the on-disk JSONL beats).
  std::function<void(const telemetry::Heartbeat& beat, const std::string& worker)> on_heartbeat;
  /// A worker's METRICS snapshot (registry state + drained trace spans).
  /// `clock_offset_ms` is the coordinator's current skew estimate for this
  /// worker (coordinator clock − worker clock, minimum over the arrival
  /// samples from HELLO/HEARTBEAT/METRICS timestamps — DESIGN.md §11.8).
  std::function<void(const MetricsMsg& msg, const std::string& worker, double clock_offset_ms)>
      on_metrics;
  /// Lifecycle narration for logs/HUD: event ∈ {"connect", "dispatch",
  /// "retry", "disconnect", "timeout", "fail", "bye"}.
  std::function<void(const std::string& event, int shard, const std::string& detail)> on_event;
};

/// Terminal accounting for one coordinator run.
struct FleetSummary {
  bool ok = false;        ///< every job completed within its retry budget
  bool timed_out = false; ///< total_timeout_s elapsed with jobs outstanding
  int jobs_done = 0;      ///< jobs whose RESULT was accepted by on_result
  int jobs_failed = 0;    ///< jobs that exhausted their retry budget
  int workers_seen = 0;    ///< connections that completed the HELLO handshake
  int reassignments = 0;   ///< dispatches beyond each job's first attempt
};

/// Runs the coordinator loop: binds in the constructor (so callers can learn
/// the ephemeral port before any worker exists), serves in run() until every
/// job lands or fails terminally, then sends BYE to the fleet.
class Coordinator {
 public:
  /// Binds the listener immediately; throws std::runtime_error when the
  /// requested port cannot be bound or this build has no TCP transport.
  Coordinator(CoordinatorConfig config, CoordinatorCallbacks callbacks);
  /// Closes the listener and every worker connection still open.
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound listen port (resolves a port-0 request).
  [[nodiscard]] std::uint16_t port() const;

  /// Blocks until the run completes.  Throws std::runtime_error only on
  /// unrecoverable transport faults (listener death); per-worker faults are
  /// absorbed into the retry budget and the summary.
  [[nodiscard]] FleetSummary run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aropuf::net
