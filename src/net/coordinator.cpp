#include "net/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <list>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#if !defined(_WIN32)
#include <poll.h>
#endif

namespace aropuf::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

std::int64_t now_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Per-connection protocol state (DESIGN.md §11.4, coordinator's view of the
/// worker):  kAwaitingHello → kIdle ⇄ kBusy → closed.
struct Connection {
  enum class State { kAwaitingHello, kIdle, kBusy };
  Socket socket;
  FrameDecoder decoder;
  State state = State::kAwaitingHello;
  std::string name = "<handshaking>";
  int shard = -1;  ///< job owned while kBusy
  Clock::time_point last_frame = Clock::now();
  /// Clock-offset estimate for this worker (coordinator − worker, ms).
  /// Every timestamped frame yields one sample (local receive time minus the
  /// sender's embedded wall clock); the minimum filters queueing delay away,
  /// so the estimate carries at most one one-way latency of bias.
  double clock_offset_ms = 0.0;
  bool offset_known = false;

  void note_remote_ts(std::int64_t remote_unix_ms) {
    if (remote_unix_ms <= 0) return;
    const double sample = static_cast<double>(now_unix_ms() - remote_unix_ms);
    if (!offset_known || sample < clock_offset_ms) clock_offset_ms = sample;
    offset_known = true;
  }
};

struct Coordinator::Impl {
  CoordinatorConfig config;
  CoordinatorCallbacks callbacks;
  Listener listener;

  // Job bookkeeping mirrors aropuf_shard's ShardState: attempts count
  // dispatches, the retry budget is `retries` extra attempts.
  enum class JobPhase { kPending, kRunning, kDone, kFailed };
  struct Job {
    JobPhase phase = JobPhase::kPending;
    int attempts = 0;
  };
  std::vector<Job> jobs;
  std::deque<int> pending;
  std::list<Connection> connections;
  FleetSummary summary;

  void event(const std::string& name, int shard, const std::string& detail) {
    if (callbacks.on_event) callbacks.on_event(name, shard, detail);
  }

  [[nodiscard]] std::size_t unfinished() const {
    std::size_t n = 0;
    for (const Job& j : jobs) {
      if (j.phase == JobPhase::kPending || j.phase == JobPhase::kRunning) ++n;
    }
    return n;
  }

  /// Sends one job to an idle worker.  A send failure marks the connection
  /// dead (caller erases it) and requeues the job.
  bool dispatch(Connection& conn, int shard) {
    JobMsg job = config.job_template;
    job.shard = shard;
    job.attempt = jobs[static_cast<std::size_t>(shard)].attempts + 1;
    // Trace context: the template's trace_id rides unchanged; the parent-span
    // label pins this specific dispatch so reassigned attempts stay distinct
    // in the merged timeline.
    if (!job.trace_id.empty()) {
      job.parent_span = "dispatch/" + std::to_string(shard) + "#" + std::to_string(job.attempt);
    }
    try {
      conn.socket.send_all(encode_job(job));
    } catch (const std::exception& e) {
      ARO_LOG_WARN("fleet", "job dispatch failed", {"worker", JsonValue(conn.name)},
                   {"error", JsonValue(std::string(e.what()))});
      return false;
    }
    Job& state = jobs[static_cast<std::size_t>(shard)];
    ++state.attempts;
    if (state.attempts > 1) ++summary.reassignments;
    state.phase = JobPhase::kRunning;
    conn.state = Connection::State::kBusy;
    conn.shard = shard;
    telemetry::MetricsRegistry::global().counter("fleet.dispatches").add(1);
    event("dispatch", shard, conn.name);
    return true;
  }

  /// Returns an in-flight job to the queue (disconnect, timeout, ERROR
  /// frame, or a fold that threw).  Exhausting the retry budget marks the
  /// job failed; the run keeps going so every other job still lands.
  void requeue_job(int shard, const std::string& why) {
    Job& job = jobs[static_cast<std::size_t>(shard)];
    if (job.phase != JobPhase::kRunning) return;
    if (job.attempts <= config.retries) {
      job.phase = JobPhase::kPending;
      pending.push_back(shard);
      telemetry::MetricsRegistry::global().counter("fleet.retries").add(1);
      event("retry", shard, why);
    } else {
      job.phase = JobPhase::kFailed;
      ++summary.jobs_failed;
      event("fail", shard, why + " (retry budget exhausted)");
    }
  }

  /// requeue_job via a connection that owns a job (clears ownership first).
  void reclaim_job(Connection& conn, const std::string& why) {
    if (conn.state != Connection::State::kBusy || conn.shard < 0) return;
    const int shard = conn.shard;
    conn.shard = -1;
    requeue_job(shard, why);
  }

  void drop_connection(std::list<Connection>::iterator it, const std::string& why) {
    event("disconnect", it->shard, it->name + ": " + why);
    reclaim_job(*it, why);
    connections.erase(it);
  }

  /// Handles every complete frame buffered on one connection.  Returns false
  /// when the connection must be dropped (protocol violation, version
  /// mismatch, BYE).
  bool drain_frames(Connection& conn) {
    Frame frame;
    while (true) {
      try {
        if (!conn.decoder.next(&frame)) return true;
      } catch (const FrameError& e) {
        // Poisoned stream: tell the peer why (best effort), then drop.
        try {
          conn.socket.send_all(encode_error({"bad-frame", e.what(), conn.shard}));
        } catch (const std::exception&) {
        }
        ARO_LOG_WARN("fleet", "protocol violation from worker",
                     {"worker", JsonValue(conn.name)},
                     {"error", JsonValue(std::string(e.what()))});
        return false;
      }
      conn.last_frame = Clock::now();
      try {
        if (!handle_frame(conn, frame)) return false;
      } catch (const FrameError& e) {
        try {
          conn.socket.send_all(encode_error({"bad-frame", e.what(), conn.shard}));
        } catch (const std::exception&) {
        }
        return false;
      }
    }
  }

  bool handle_frame(Connection& conn, Frame& frame) {
    switch (frame.type) {
      case FrameType::kHello: {
        const HelloMsg hello = hello_from_json(frame_payload_json(frame));
        if (conn.state != Connection::State::kAwaitingHello) {
          throw FrameError(FrameErrc::kBadPayload, "duplicate HELLO");
        }
        if (hello.protocol != kProtocolVersion) {
          try {
            conn.socket.send_all(encode_error(
                {"version-mismatch",
                 "coordinator speaks protocol " + std::to_string(kProtocolVersion), -1}));
          } catch (const std::exception&) {
          }
          return false;
        }
        conn.name = hello.worker;
        conn.state = Connection::State::kIdle;
        conn.note_remote_ts(hello.ts_unix_ms);
        ++summary.workers_seen;
        telemetry::MetricsRegistry::global().counter("fleet.connects").add(1);
        event("connect", -1, conn.name);
        return true;
      }
      case FrameType::kHeartbeat: {
        if (conn.state == Connection::State::kAwaitingHello) {
          throw FrameError(FrameErrc::kBadPayload, "HEARTBEAT before HELLO");
        }
        telemetry::Heartbeat beat;
        try {
          beat = telemetry::heartbeat_from_json(frame_payload_json(frame));
        } catch (const FrameError&) {
          throw;
        } catch (const std::exception& e) {
          throw FrameError(FrameErrc::kBadPayload,
                           std::string("HEARTBEAT schema: ") + e.what());
        }
        conn.note_remote_ts(beat.ts_unix_ms);
        if (callbacks.on_heartbeat) callbacks.on_heartbeat(beat, conn.name);
        return true;
      }
      case FrameType::kMetrics: {
        if (conn.state == Connection::State::kAwaitingHello) {
          throw FrameError(FrameErrc::kBadPayload, "METRICS before HELLO");
        }
        const MetricsMsg msg = metrics_from_json(frame_payload_json(frame));
        conn.note_remote_ts(msg.ts_unix_ms);
        telemetry::MetricsRegistry::global().counter("fleet.metrics_frames").add(1);
        if (callbacks.on_metrics) callbacks.on_metrics(msg, conn.name, conn.clock_offset_ms);
        return true;
      }
      case FrameType::kResult: {
        if (conn.state != Connection::State::kBusy || conn.shard < 0) {
          throw FrameError(FrameErrc::kBadPayload, "RESULT without an owned job");
        }
        const int shard = conn.shard;
        const telemetry::TraceScope span("fleet.fold", "fleet",
                                         {{"shard", JsonValue(shard)}});
        conn.state = Connection::State::kIdle;
        conn.shard = -1;
        try {
          if (callbacks.on_result) callbacks.on_result(shard, std::move(frame.payload), conn.name);
        } catch (const std::exception& e) {
          // A result that will not fold consumes this attempt, exactly like a
          // crashed aropuf_shard worker whose manifest would not parse.
          ARO_LOG_WARN("fleet", "shard result rejected", {"shard", JsonValue(shard)},
                       {"error", JsonValue(std::string(e.what()))});
          requeue_job(shard, std::string("result rejected: ") + e.what());
          return true;
        }
        jobs[static_cast<std::size_t>(shard)].phase = JobPhase::kDone;
        ++summary.jobs_done;
        telemetry::MetricsRegistry::global().counter("fleet.folds").add(1);
        return true;
      }
      case FrameType::kError: {
        const ErrorMsg err = error_from_json(frame_payload_json(frame));
        ARO_LOG_WARN("fleet", "worker reported error", {"worker", JsonValue(conn.name)},
                     {"code", JsonValue(err.code)},
                     {"message", JsonValue(err.message)});
        if (conn.state == Connection::State::kBusy) {
          const std::string why = "worker error " + err.code;
          reclaim_job(conn, why);
          conn.state = Connection::State::kIdle;
          conn.shard = -1;
        }
        return true;
      }
      case FrameType::kBye: {
        event("bye", conn.shard, conn.name);
        return false;  // orderly close; reclaim (if busy) happens in drop
      }
      case FrameType::kJob:
        throw FrameError(FrameErrc::kBadPayload, "JOB frames flow coordinator → worker only");
    }
    return false;
  }
};

Coordinator::Coordinator(CoordinatorConfig config, CoordinatorCallbacks callbacks)
    : impl_(std::make_unique<Impl>()) {
  if (config.jobs < 1) throw std::runtime_error("fleet: need at least one job");
  impl_->config = std::move(config);
  impl_->callbacks = std::move(callbacks);
  impl_->listener = Listener::listen_on(impl_->config.port);
  impl_->jobs.assign(static_cast<std::size_t>(impl_->config.jobs), {});
  for (int k = 0; k < impl_->config.jobs; ++k) impl_->pending.push_back(k);
}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

FleetSummary Coordinator::run() {
#if defined(_WIN32)
  throw std::runtime_error("net: fleet coordinator requires POSIX sockets");
#else
  Impl& impl = *impl_;
  const telemetry::TraceScope span("fleet.coordinate", "fleet",
                                   {{"jobs", JsonValue(impl.config.jobs)}});
  const Clock::time_point t0 = Clock::now();

  while (impl.unfinished() > 0) {
    if (impl.config.total_timeout_s > 0 && seconds_since(t0) > impl.config.total_timeout_s) {
      impl.summary.timed_out = true;
      break;
    }

    // Assign queued jobs to idle workers.
    for (auto it = impl.connections.begin(); it != impl.connections.end() && !impl.pending.empty();) {
      if (it->state != Connection::State::kIdle) {
        ++it;
        continue;
      }
      const int shard = impl.pending.front();
      impl.pending.pop_front();
      if (impl.dispatch(*it, shard)) {
        ++it;
      } else {
        // The send already failed, so this connection is dead: put the job
        // back at the head of the queue and cut the worker loose.
        impl.pending.push_front(shard);
        auto doomed = it++;
        impl.drop_connection(doomed, "job send failed");
      }
    }

    // poll(): listener + every connection, 100 ms tick for timeout scans.
    std::vector<struct pollfd> fds;
    fds.push_back({impl.listener.fd(), POLLIN, 0});
    std::vector<std::list<Connection>::iterator> order;
    for (auto it = impl.connections.begin(); it != impl.connections.end(); ++it) {
      fds.push_back({it->socket.fd(), POLLIN, 0});
      order.push_back(it);
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) throw std::runtime_error("fleet: poll failed");

    if (rc > 0 && (fds[0].revents & POLLIN) != 0) {
      try {
        Connection conn;
        conn.socket = impl.listener.accept_connection();
        impl.connections.push_back(std::move(conn));
      } catch (const std::exception& e) {
        ARO_LOG_WARN("fleet", "accept failed", {"error", JsonValue(std::string(e.what()))});
      }
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
      auto it = order[i];
      const short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      bool alive = true;
      std::string why = "peer closed";
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[64 * 1024];
        try {
          const std::size_t n = it->socket.recv_some(buf, sizeof buf);
          if (n == 0) {
            alive = false;
          } else {
            it->decoder.feed(buf, n);
            alive = it->decoder.buffered() <= kMaxResultPayload + kFrameHeaderSize &&
                    impl.drain_frames(*it);
            if (!alive) why = "protocol close";
          }
        } catch (const std::exception& e) {
          alive = false;
          why = e.what();
        }
      }
      if (!alive) impl.drop_connection(it, why);
    }

    // Heartbeat timeout: a busy worker that has sent nothing for too long is
    // presumed dead; its job is reassigned and the connection cut.
    if (impl.config.heartbeat_timeout_s > 0) {
      for (auto it = impl.connections.begin(); it != impl.connections.end();) {
        if (it->state == Connection::State::kBusy &&
            seconds_since(it->last_frame) > impl.config.heartbeat_timeout_s) {
          telemetry::MetricsRegistry::global().counter("fleet.heartbeat_timeouts").add(1);
          impl.event("timeout", it->shard, it->name);
          auto doomed = it++;
          impl.drop_connection(doomed, "heartbeat timeout");
        } else {
          ++it;
        }
      }
    }
  }

  // Grace drain before the BYE: a worker sends the METRICS snapshot carrying
  // its last job's trace span right AFTER that job's RESULT, so when the
  // final fold ends the loop above those frames are still in flight.  A few
  // short poll rounds pick them up — without this the merged fleet timeline
  // would always be missing the last span of every worker.
  for (int round = 0; round < 4 && !impl.connections.empty(); ++round) {
    std::vector<struct pollfd> fds;
    std::vector<std::list<Connection>::iterator> order;
    for (auto it = impl.connections.begin(); it != impl.connections.end(); ++it) {
      fds.push_back({it->socket.fd(), POLLIN, 0});
      order.push_back(it);
    }
    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc <= 0) break;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto it = order[i];
      bool alive = true;
      std::string why = "peer closed";
      char buf[64 * 1024];
      try {
        const std::size_t n = it->socket.recv_some(buf, sizeof buf);
        if (n == 0) {
          alive = false;
        } else {
          it->decoder.feed(buf, n);
          alive = impl.drain_frames(*it);
          if (!alive) why = "protocol close";
        }
      } catch (const std::exception& e) {
        alive = false;
        why = e.what();
      }
      if (!alive) impl.drop_connection(it, why);
    }
  }

  // Orderly shutdown: every surviving worker gets a BYE.
  for (Connection& conn : impl.connections) {
    try {
      conn.socket.send_all(encode_bye());
    } catch (const std::exception&) {
    }
  }
  impl.connections.clear();

  impl.summary.ok = !impl.summary.timed_out && impl.summary.jobs_failed == 0 &&
                    impl.summary.jobs_done == impl.config.jobs;
  return impl.summary;
#endif
}

}  // namespace aropuf::net
