#include "net/socket.hpp"

#include <stdexcept>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define AROPUF_NET_POSIX 1
#endif

namespace aropuf::net {

#if defined(AROPUF_NET_POSIX)

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

bool net_available() noexcept { return true; }

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE on this call, not
    // as a process-wide SIGPIPE that kills the coordinator.
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(void* buf, std::size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd_, buf, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

bool Socket::wait_readable(int timeout_ms) {
  struct pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }
    return rc > 0;
  }
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port, double timeout_s) {
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("net: cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  std::string last_error = "no addresses";
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    // Non-blocking connect bounded by poll: a dead coordinator address fails
    // in timeout_s, not in the kernel's multi-minute SYN retry budget.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc < 0 && errno == EINPROGRESS) {
      struct pollfd pfd{fd, POLLOUT, 0};
      const int prc = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
      if (prc > 0) {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        crc = err == 0 ? 0 : -1;
        if (err != 0) last_error = std::strerror(err);
      } else {
        crc = -1;
        last_error = prc == 0 ? "connection timed out" : std::strerror(errno);
      }
    } else if (crc < 0) {
      last_error = std::strerror(errno);
    }
    if (crc == 0) {
      ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("net: cannot connect to " + host + ":" + std::to_string(port) +
                           ": " + last_error);
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener Listener::listen_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("bind to port " + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("listen");
  }
  struct sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("getsockname");
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Socket Listener::accept_connection() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      fail("accept");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Socket(fd);
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // !AROPUF_NET_POSIX — stubs so targets link; every entry point throws.

namespace {
[[noreturn]] void unavailable() {
  throw std::runtime_error(
      "net: TCP transport requires POSIX sockets (unavailable on this platform); "
      "use tools/aropuf_shard for single-host sharded runs");
}
}  // namespace

bool net_available() noexcept { return false; }

Socket::~Socket() { close(); }
Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
Socket& Socket::operator=(Socket&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
void Socket::send_all(const void*, std::size_t) { unavailable(); }
std::size_t Socket::recv_some(void*, std::size_t) { unavailable(); }
bool Socket::wait_readable(int) { unavailable(); }
void Socket::close() noexcept { fd_ = -1; }

Socket tcp_connect(const std::string&, std::uint16_t, double) { unavailable(); }

Listener::~Listener() { close(); }
Listener::Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}
Listener& Listener::operator=(Listener&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  other.fd_ = -1;
  return *this;
}
Listener Listener::listen_on(std::uint16_t) { unavailable(); }
Socket Listener::accept_connection() { unavailable(); }
void Listener::close() noexcept { fd_ = -1; }

#endif  // AROPUF_NET_POSIX

}  // namespace aropuf::net
