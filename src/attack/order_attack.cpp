#include "attack/order_attack.hpp"

#include <bit>

#include "common/check.hpp"

namespace aropuf {

OrderAttack::OrderAttack(int num_ros) : n_(num_ros) {
  ARO_REQUIRE(num_ros >= 2, "attack needs at least two ROs");
  words_per_row_ = (static_cast<std::size_t>(n_) + 63) / 64;
  faster_.assign(static_cast<std::size_t>(n_) * words_per_row_, 0);
}

bool OrderAttack::reachable(int from, int to) const {
  const std::size_t row = static_cast<std::size_t>(from) * words_per_row_;
  return (faster_[row + static_cast<std::size_t>(to) / 64] >>
          (static_cast<std::size_t>(to) % 64)) &
         1ULL;
}

void OrderAttack::add_edge(int from, int to) {
  if (reachable(from, to)) return;
  // New relation: everything that can reach `from` (including `from`) is now
  // faster than everything `to` dominates (including `to`).  One pass over
  // the rows suffices because each row is already transitively closed.
  const std::size_t to_row = static_cast<std::size_t>(to) * words_per_row_;
  auto absorb = [&](int node) {
    const std::size_t row = static_cast<std::size_t>(node) * words_per_row_;
    faster_[row + static_cast<std::size_t>(to) / 64] |= 1ULL
                                                        << (static_cast<std::size_t>(to) % 64);
    for (std::size_t w = 0; w < words_per_row_; ++w) faster_[row + w] |= faster_[to_row + w];
  };
  absorb(from);
  for (int node = 0; node < n_; ++node) {
    if (node != from && reachable(node, from)) absorb(node);
  }
}

void OrderAttack::observe(int a, int b, bool a_faster) {
  ARO_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_, "RO index out of range");
  ARO_REQUIRE(a != b, "challenge must name two distinct ROs");
  ++observations_;
  const int from = a_faster ? a : b;
  const int to = a_faster ? b : a;
  // A contradictory (noisy) observation would create a cycle; discard it.
  if (reachable(to, from)) return;
  add_edge(from, to);
}

std::optional<bool> OrderAttack::predict(int a, int b) const {
  ARO_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_, "RO index out of range");
  ARO_REQUIRE(a != b, "challenge must name two distinct ROs");
  if (reachable(a, b)) return true;
  if (reachable(b, a)) return false;
  return std::nullopt;
}

double OrderAttack::coverage() const {
  std::size_t known = 0;
  for (std::size_t row = 0; row < static_cast<std::size_t>(n_); ++row) {
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      known += static_cast<std::size_t>(std::popcount(faster_[row * words_per_row_ + w]));
    }
  }
  const auto n = static_cast<double>(n_);
  return static_cast<double>(known) / (n * (n - 1.0) / 2.0);
}

}  // namespace aropuf
