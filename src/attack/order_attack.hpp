// Sort-order modeling attack on challenge-response RO-PUF usage.
//
// An RO-PUF bit is sign(f_a - f_b): the entire CRP space is determined by
// the total order of the n oscillator frequencies.  An attacker observing
// CRPs therefore learns a partial order whose transitive closure predicts
// unobserved challenges — the classic result that RO-PUFs must not be used
// as strong PUFs (Rührmair et al.), and the reason the ARO-PUF targets
// *key generation* with dedicated pairs.  The E11 bench reproduces the
// learnability curve: prediction accuracy vs observed CRPs.
//
// Implementation: a boolean reachability matrix over the n ROs, kept
// transitively closed on insertion (O(n^2 / 64) words per edge via bitset
// rows — instant at n = 256).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace aropuf {

class OrderAttack {
 public:
  /// Attack against a PUF with `num_ros` oscillators.
  explicit OrderAttack(int num_ros);

  /// Feeds one observed CRP: challenge (a, b) answered "a is faster" iff
  /// `a_faster`.  Contradictory observations (noise) are ignored rather
  /// than poisoning the closure.
  void observe(int a, int b, bool a_faster);

  /// Predicted response for challenge (a, b): true = "a faster", nullopt if
  /// the partial order does not determine it yet.
  [[nodiscard]] std::optional<bool> predict(int a, int b) const;

  /// Fraction of all n(n-1)/2 pairs currently determined.
  [[nodiscard]] double coverage() const;

  /// Number of (possibly redundant) observations fed in.
  [[nodiscard]] std::size_t observations() const noexcept { return observations_; }

  [[nodiscard]] int num_ros() const noexcept { return n_; }

 private:
  [[nodiscard]] bool reachable(int from, int to) const;
  /// Adds edge from -> to ("from is faster") and re-closes transitively.
  void add_edge(int from, int to);

  int n_;
  std::size_t words_per_row_;
  /// faster_[a] row: bit b set when a is known faster than b.
  std::vector<std::uint64_t> faster_;
  std::size_t observations_ = 0;
};

}  // namespace aropuf
