// Hardware-counter and resource profiling: the machine view under a run.
//
// Three layers, each degrading gracefully where the one below is missing:
//
//  * CounterReader — opens a Linux perf_event counter set (cycles,
//    instructions, branch-misses, cache-references/misses, task-clock) for
//    the calling process (inherit=1, so worker threads are counted) and
//    reads scaled deltas.  Where perf_event_open is forbidden
//    (perf_event_paranoid, containers without a PMU, macOS, Windows) the
//    reader still measures wall + rusage CPU time — `CounterDelta` says
//    which fields are real via `counters_valid`.
//  * CounterScope — RAII around CounterReader: on destruction it attaches
//    the delta (IPC, cache-miss rate, GHz) to the trace stream as a span
//    and records it into the sharded metrics registry ("prof.*").
//    StageTimer embeds the same reader, so stage entries in run manifests
//    grow a "counters" object whenever counters are live.
//  * ResourceSampler — a background thread polling /proc/self/statm +
//    getrusage on a configurable cadence, emitting a resource.jsonl
//    timeline (validated by scripts/validate_manifest.py --resource) and
//    Chrome counter ("C"-phase) events into the active trace session.
//
// Profiling is off unless AROPUF_PROF=on (or a path in
// AROPUF_PROF_RESOURCE starts just the sampler).  The resolved mode and —
// for the fallback path — the reason counters are unavailable are recorded
// in every run manifest's "profile" section, so a downgraded run is
// distinguishable from a never-profiled one.  DESIGN.md §12 documents the
// counter set, sampling cadence, overhead budget, and fallback matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/json.hpp"

namespace aropuf::telemetry {

/// Resolved profiling mode for this process.
enum class ProfMode {
  kOff,       ///< AROPUF_PROF unset/off: scopes measure wall/CPU only.
  kCounters,  ///< perf_event counters are live.
  kFallback,  ///< Requested but unavailable: rusage/steady-clock only.
};

[[nodiscard]] const char* prof_mode_name(ProfMode mode) noexcept;

struct ProfStatus {
  ProfMode mode = ProfMode::kOff;
  /// Why counters are unavailable ("perf_event_open(cycles) failed: ..."),
  /// empty in kOff/kCounters.
  std::string fallback_reason;
};

/// The process-wide mode, resolved once from AROPUF_PROF (+ a probe of
/// perf_event_open) on first call and cached.
[[nodiscard]] const ProfStatus& prof_status();

/// Drops the cached status and any process profile so tests can flip
/// AROPUF_PROF / AROPUF_PROF_FORCE_FALLBACK between cases.  Not for
/// production code paths.
void prof_reset_for_test();

/// Peak resident set size in KiB from getrusage.  ru_maxrss is KiB on
/// Linux but *bytes* on macOS — this helper normalizes (0 on Windows).
[[nodiscard]] long peak_rss_kib() noexcept;

/// Current resident set size in KiB from /proc/self/statm; falls back to
/// peak_rss_kib() where /proc is unavailable.
[[nodiscard]] long current_rss_kib() noexcept;

/// A counter delta between two points on one reader.  Wall/CPU fields are
/// always real; the hardware fields only when counters_valid.
struct CounterDelta {
  double wall_ms = 0.0;
  double cpu_ms = 0.0;  ///< rusage user+system CPU.
  bool counters_valid = false;
  bool cache_valid = false;   ///< cache_references/cache_misses are real.
  bool branch_valid = false;  ///< branch_misses is real.
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  double task_clock_ms = 0.0;

  /// Instructions per cycle; 0 when invalid.
  [[nodiscard]] double ipc() const noexcept;
  /// cache_misses / cache_references; 0 when invalid.
  [[nodiscard]] double cache_miss_rate() const noexcept;
  /// cycles / task-clock — the effective clock the counted work ran at.
  [[nodiscard]] double ghz() const noexcept;

  /// {"cycles": ..., "instructions": ..., "ipc": ..., ...} for manifests
  /// and trace args; hardware keys only when the matching *_valid is set.
  [[nodiscard]] JsonValue::Object to_json() const;
};

/// Opens the perf counter set at construction (a no-op unless
/// prof_status().mode == kCounters) and reads multiplex-scaled deltas.
/// Cheap to construct in kOff/kFallback: two clock reads, no syscalls
/// beyond getrusage.
class CounterReader {
 public:
  CounterReader();
  ~CounterReader();

  CounterReader(const CounterReader&) = delete;
  CounterReader& operator=(const CounterReader&) = delete;

  /// True when hardware counters were successfully opened.
  [[nodiscard]] bool counters_active() const noexcept;

  /// Delta from construction to now.  Callable repeatedly.
  [[nodiscard]] CounterDelta sample() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Records a CounterDelta into the sharded metrics registry: always
/// "prof.scopes" (counter) + "prof.scope_wall_ms" (histogram) so the
/// fallback path still produces wall-time metrics; when counters_valid
/// additionally "prof.cycles"/"prof.instructions"/... (counters, summed
/// across shards) and "prof.ipc"/"prof.cache_miss_rate"/"prof.ghz"
/// (gauges, last-write).
void record_counter_metrics(const CounterDelta& delta);

/// RAII profiling span: CounterReader + on destruction a "prof"-category
/// trace span carrying the delta as args, plus record_counter_metrics().
class CounterScope {
 public:
  explicit CounterScope(std::string name);
  ~CounterScope();

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  /// Delta so far (the destructor records its own final sample).
  [[nodiscard]] CounterDelta sample() const;

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  CounterReader reader_;
};

/// Background thread sampling process resources on a fixed cadence.
class ResourceSampler {
 public:
  struct Options {
    /// JSONL timeline path; empty = no file (trace/gauges only).
    std::string jsonl_path;
    /// Sampling cadence; clamped to >= 10 ms.
    double interval_ms = 250.0;
    /// Emit Chrome "C" counter events into the active trace session.
    bool chrome_counters = true;
  };

  explicit ResourceSampler(Options opts);
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Stops the thread (taking one final sample) and closes the file.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Samples taken so far.
  [[nodiscard]] std::size_t samples() const noexcept;

  /// False once the JSONL stream has failed (disk full, bad path) — the
  /// failure is latched, mirroring CsvWriter, so drivers can exit non-zero.
  [[nodiscard]] bool ok() const noexcept;

  /// The resolved jsonl path ("" when file output is off).
  [[nodiscard]] const std::string& path() const noexcept;

  /// The clamped sampling cadence actually in use.
  [[nodiscard]] double interval_ms() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Starts the env-driven process profile: a whole-run CounterReader, plus a
/// ResourceSampler when AROPUF_PROF=on or AROPUF_PROF_RESOURCE is set
/// (cadence from AROPUF_PROF_INTERVAL_MS).  Idempotent.  Drivers (benches,
/// aropuf_shard, aropuf_fleet) call this once after CLI parsing; library
/// code never does.
void start_process_profile();

/// Stops the process profile's sampler (final sample, file closed) and
/// freezes the whole-run counter totals.  Returns false when the resource
/// timeline failed to write.  Idempotent; safe without a prior start.
bool stop_process_profile();

/// The manifest "profile" section — always well-formed so the schema can
/// require it: {"mode", "fallback_reason", "peak_rss_kib"} plus, when the
/// process profile ran, "counters" (live or frozen whole-run totals) and
/// "sampler" ({"interval_ms", "samples", "path", "ok"}).
[[nodiscard]] JsonValue profile_manifest_section();

}  // namespace aropuf::telemetry
