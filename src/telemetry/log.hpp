// Structured, leveled logging for the aropuf library.
//
// Zero dependencies beyond common/json (field values are JsonValue, which
// already knows how to escape itself).  Design constraints, in order:
//
//  1. Tier-1 hot loops must pay nothing when a level is compiled out: the
//     ARO_LOG_* macros guard on AROPUF_LOG_COMPILE_LEVEL with `if constexpr`,
//     so a compiled-out call site emits no code at all.
//  2. A compiled-in but runtime-disabled call site costs one relaxed atomic
//     load (the level check) — no formatting, no allocation.
//  3. Emission is thread-safe: records are formatted off-lock and written to
//     the sink under a mutex, so concurrent workers never interleave lines.
//
// Runtime configuration comes from the environment:
//   AROPUF_LOG        = trace|debug|info|warn|error|off   (default: warn)
//   AROPUF_LOG_FORMAT = text|json                         (default: text)
// Programmatic set_log_level/set_log_format override the environment until
// reset_log_from_environment() re-reads it.  Text lines go to stderr by
// default (stdout carries the experiment tables); tests capture the stream
// with set_log_sink.
#pragma once

#include <initializer_list>
#include <string_view>
#include <utility>

#include "common/json.hpp"

namespace aropuf::telemetry {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

enum class LogFormat : int { kText = 0, kJson = 1 };

/// One key=value pair attached to a log record.  JsonValue gives us typed
/// values (string/number/bool) and correct JSON escaping for free.
using LogField = std::pair<std::string_view, JsonValue>;

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Parses "trace".."error"/"off"; returns fallback on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept;

/// Current runtime threshold (records below it are dropped).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

[[nodiscard]] LogFormat log_format() noexcept;
void set_log_format(LogFormat format) noexcept;

/// Re-reads AROPUF_LOG / AROPUF_LOG_FORMAT, discarding programmatic
/// overrides.  Unset or unparsable values fall back to warn / text.
void reset_log_from_environment();

/// One relaxed atomic load; the macros call this before formatting anything.
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Sink for complete, newline-free record lines.  nullptr restores the
/// default stderr sink.  Used by tests to capture output.
using LogSink = void (*)(std::string_view line);
void set_log_sink(LogSink sink) noexcept;

/// Formats and emits one record (level/component/message plus fields).
/// Callers normally go through the ARO_LOG_* macros, which add the runtime
/// level check and the compile-out guard.
void log_message(LogLevel level, std::string_view component, std::string_view message,
                 std::initializer_list<LogField> fields = {});

/// Renders a record without emitting it (the formatting backend of
/// log_message; exposed so tests can pin the wire format).
[[nodiscard]] std::string format_log_line(LogFormat format, LogLevel level,
                                          std::string_view component, std::string_view message,
                                          std::initializer_list<LogField> fields);

}  // namespace aropuf::telemetry

/// Records at levels below this constant are removed at compile time.
/// 0 keeps everything; building with -DAROPUF_LOG_COMPILE_LEVEL=5 strips
/// every ARO_LOG_* call site from the binary.
#ifndef AROPUF_LOG_COMPILE_LEVEL
#define AROPUF_LOG_COMPILE_LEVEL 0
#endif

#define ARO_LOG_AT(level_int, level_enum, component, message, ...)                      \
  do {                                                                                  \
    if constexpr ((level_int) >= AROPUF_LOG_COMPILE_LEVEL) {                            \
      if (::aropuf::telemetry::log_enabled(level_enum)) {                               \
        ::aropuf::telemetry::log_message(level_enum, component, message, {__VA_ARGS__}); \
      }                                                                                 \
    }                                                                                   \
  } while (false)

#define ARO_LOG_TRACE(component, message, ...) \
  ARO_LOG_AT(0, ::aropuf::telemetry::LogLevel::kTrace, component, message __VA_OPT__(, ) __VA_ARGS__)
#define ARO_LOG_DEBUG(component, message, ...) \
  ARO_LOG_AT(1, ::aropuf::telemetry::LogLevel::kDebug, component, message __VA_OPT__(, ) __VA_ARGS__)
#define ARO_LOG_INFO(component, message, ...) \
  ARO_LOG_AT(2, ::aropuf::telemetry::LogLevel::kInfo, component, message __VA_OPT__(, ) __VA_ARGS__)
#define ARO_LOG_WARN(component, message, ...) \
  ARO_LOG_AT(3, ::aropuf::telemetry::LogLevel::kWarn, component, message __VA_OPT__(, ) __VA_ARGS__)
#define ARO_LOG_ERROR(component, message, ...) \
  ARO_LOG_AT(4, ::aropuf::telemetry::LogLevel::kError, component, message __VA_OPT__(, ) __VA_ARGS__)
