#include "telemetry/metrics.hpp"

#include <algorithm>
#include <unordered_map>

namespace aropuf::telemetry {

namespace {

std::uint64_t next_histogram_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// One thread's private accumulation state.  Owned by the histogram; the
/// recording thread holds only a cached pointer keyed by the histogram's
/// process-unique id, so a stale cache entry (histogram destroyed) is never
/// consulted again — ids are not reused.
struct ShardedHistogram::Shard {
  explicit Shard(std::size_t bins) : counts(bins) {}

  RunningStats stats;
  std::vector<std::uint64_t> counts;

  void record(double x, double lo, double hi) noexcept {
    stats.add(x);
    const std::size_t n = counts.size();
    std::size_t bin = 0;
    if (x >= hi) {
      bin = n - 1;
    } else if (x > lo) {
      bin = static_cast<std::size_t>((x - lo) / (hi - lo) * static_cast<double>(n));
      if (bin >= n) bin = n - 1;
    }
    ++counts[bin];
  }

  void reset() noexcept {
    stats = RunningStats{};
    std::fill(counts.begin(), counts.end(), 0);
  }
};

ShardedHistogram::ShardedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins > 0 ? bins : 1), id_(next_histogram_id()) {}

ShardedHistogram::~ShardedHistogram() = default;

ShardedHistogram::Shard& ShardedHistogram::local_shard() noexcept {
  // Cache key is the histogram id, not the pointer: pointers can be reused
  // after destruction, ids cannot.
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  if (Shard*& cached = cache[id_]; cached != nullptr) return *cached;
  auto shard = std::make_unique<Shard>(bins_);
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    shards_.push_back(std::move(shard));
  }
  cache[id_] = raw;
  return *raw;
}

void ShardedHistogram::record(double x) noexcept { local_shard().record(x, lo_, hi_); }

HistogramSnapshot ShardedHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.lo = lo_;
  snap.hi = hi_;
  snap.bins.assign(bins_, 0);
  std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    snap.stats.merge(shard->stats);
    for (std::size_t b = 0; b < bins_; ++b) snap.bins[b] += shard->counts[b];
  }
  return snap;
}

void ShardedHistogram::reset() noexcept {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) shard->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

ShardedHistogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                             std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ShardedHistogram>(lo, hi, bins);
  return *slot;
}

JsonValue MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue::Object counters;
  for (const auto& [name, c] : counters_) counters[name] = JsonValue(c->value());
  JsonValue::Object gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = JsonValue(g->value());
  JsonValue::Object histograms;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot snap = h->snapshot();
    JsonValue::Object obj;
    obj["count"] = JsonValue(static_cast<std::uint64_t>(snap.stats.count()));
    obj["mean"] = JsonValue(snap.stats.mean());
    obj["stddev"] = JsonValue(snap.stats.stddev());
    obj["m2"] = JsonValue(snap.stats.m2());
    obj["min"] = JsonValue(snap.stats.count() > 0 ? snap.stats.min() : 0.0);
    obj["max"] = JsonValue(snap.stats.count() > 0 ? snap.stats.max() : 0.0);
    obj["lo"] = JsonValue(snap.lo);
    obj["hi"] = JsonValue(snap.hi);
    JsonValue::Array bins;
    bins.reserve(snap.bins.size());
    for (const std::uint64_t b : snap.bins) bins.emplace_back(b);
    obj["bins"] = JsonValue(std::move(bins));
    histograms[name] = JsonValue(std::move(obj));
  }
  JsonValue::Object root;
  root["counters"] = JsonValue(std::move(counters));
  root["gauges"] = JsonValue(std::move(gauges));
  root["histograms"] = JsonValue(std::move(histograms));
  if (const int shard = shard_index(); shard >= 0) root["shard"] = JsonValue(shard);
  return JsonValue(std::move(root));
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) entry.second->reset();
  for (const auto& entry : gauges_) entry.second->reset();
  for (const auto& entry : histograms_) entry.second->reset();
}

}  // namespace aropuf::telemetry
