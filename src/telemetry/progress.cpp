#include "telemetry/progress.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace aropuf::telemetry {

namespace {

std::int64_t now_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

JsonValue heartbeat_to_json(const Heartbeat& beat) {
  JsonValue::Object obj;
  obj["ts_unix_ms"] = JsonValue(static_cast<double>(beat.ts_unix_ms));
  obj["shard"] = JsonValue(beat.shard);
  obj["stage"] = JsonValue(beat.stage);
  obj["done"] = JsonValue(static_cast<double>(beat.done));
  obj["total"] = JsonValue(static_cast<double>(beat.total));
  obj["elapsed_ms"] = JsonValue(beat.elapsed_ms);
  return JsonValue(std::move(obj));
}

Heartbeat heartbeat_from_json(const JsonValue& line) {
  Heartbeat beat;
  beat.ts_unix_ms = static_cast<std::int64_t>(line.at("ts_unix_ms").as_number());
  beat.shard = static_cast<int>(line.at("shard").as_number());
  beat.stage = line.at("stage").as_string();
  beat.done = static_cast<std::int64_t>(line.at("done").as_number());
  beat.total = static_cast<std::int64_t>(line.at("total").as_number());
  beat.elapsed_ms = line.number_or("elapsed_ms", 0.0);
  if (beat.shard < 0 || beat.done < 0 || beat.total < 0 || beat.done > beat.total) {
    throw std::runtime_error("heartbeat fields out of range");
  }
  return beat;
}

ProgressWriter::ProgressWriter(std::string path, int shard)
    : path_(std::move(path)), shard_(shard), start_unix_ms_(now_unix_ms()) {}

bool ProgressWriter::beat(const std::string& stage, std::int64_t done, std::int64_t total) {
  if (path_.empty()) return true;
  Heartbeat beat;
  beat.ts_unix_ms = now_unix_ms();
  beat.shard = shard_;
  beat.stage = stage;
  beat.done = done;
  beat.total = total;
  beat.elapsed_ms = static_cast<double>(beat.ts_unix_ms - start_unix_ms_);
  // One line per open: std::ios::app maps to O_APPEND, so concurrent shard
  // writers interleave at line granularity, never mid-line (short writes).
  std::ofstream out(path_, std::ios::app);
  if (!out.is_open()) return false;
  out << heartbeat_to_json(beat).dump() << '\n';
  out.flush();
  return static_cast<bool>(out);
}

ProgressReader::ProgressReader(std::string path) : path_(std::move(path)) {}

std::vector<Heartbeat> ProgressReader::poll() {
  std::vector<Heartbeat> beats;
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return beats;
  in.seekg(offset_);
  if (!in.good()) return beats;
  std::string chunk((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  offset_ += static_cast<std::int64_t>(chunk.size());
  partial_ += chunk;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = partial_.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = partial_.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    try {
      beats.push_back(heartbeat_from_json(JsonValue::parse(line)));
    } catch (const std::exception&) {
      ++malformed_;  // torn or foreign line: skip, never abort the HUD
      // A writer that died mid-append leaves a torn fragment with no newline;
      // the next healthy writer's O_APPEND line lands directly behind it, so
      // the merged "line" reads "<fragment>{good beat}".  Recover the good
      // suffix — the fragment costs one malformed count, never a live beat.
      std::size_t brace = line.find('{', 1);
      while (brace != std::string::npos) {
        try {
          beats.push_back(heartbeat_from_json(JsonValue::parse(line.substr(brace))));
          break;
        } catch (const std::exception&) {
        }
        brace = line.find('{', brace + 1);
      }
    }
  }
  partial_.erase(0, start);
  return beats;
}

double EtaEstimator::eta_seconds(double done, double total, double elapsed_s) const noexcept {
  // Only the work performed THIS run carries rate information.
  const double fresh_done = done - baseline_;
  const double fresh_total = total - baseline_;
  if (!(fresh_total > 0.0) || !(fresh_done > 0.0) || !(elapsed_s > 0.0)) return -1.0;
  const double frac = fresh_done / fresh_total;
  if (frac <= 0.01) return -1.0;  // too little signal for a stable estimate
  if (frac >= 1.0) return 0.0;
  return elapsed_s * (fresh_total - fresh_done) / fresh_done;
}

}  // namespace aropuf::telemetry
