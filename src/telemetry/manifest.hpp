// Run manifests: machine-readable provenance for every scenario run.
//
// A manifest is a JSON document written next to a run's CSV output that pins
// the result to exactly what produced it: config echo, RNG seed, git sha,
// build flags, thread count, kernel backend, wall/CPU time per stage, and a
// final metrics snapshot.  The sharded-run driver on the ROADMAP merges
// shards by reading these instead of parsing logs.
//
// Two inputs feed a manifest besides the caller's config echo:
//  * runtime fields — subsystems self-report facts at the point of use
//    (the thread pool registers "threads", the delay kernel registers
//    "kernel_backend") via set_runtime_field(), keeping this module free of
//    upward dependencies;
//  * stages — StageTimer RAII scopes record wall and CPU time per named
//    stage into a process-wide log (scenario functions wrap their bodies).
//
// Drivers call finalize_run() last: it writes the manifest to the path in
// AROPUF_MANIFEST (when set), flushes the trace session (when active), and
// returns false on any write failure so main() can exit non-zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/binfmt.hpp"

namespace aropuf::telemetry {

inline constexpr const char* kManifestSchema = "aropuf-run-manifest";
inline constexpr int kManifestSchemaVersion = 1;

/// Registers (or overwrites) a runtime provenance field, e.g.
/// set_runtime_field("threads", JsonValue(8)).  Thread-safe.
void set_runtime_field(const std::string& key, JsonValue value);

/// Appends one completed stage to the process-wide stage log.
void record_stage(const std::string& name, double wall_ms, double cpu_ms);

/// Overload carrying a hardware-counter delta object ({"cycles", "ipc",
/// ...}, from CounterDelta::to_json()); empty objects are omitted from the
/// manifest's stage entries.
void record_stage(const std::string& name, double wall_ms, double cpu_ms,
                  JsonValue::Object counters);

/// Clears stages and runtime fields (tests, and orchestrators that produce
/// several per-shard manifests from one process).  Bumps the run-record
/// generation so once-per-run provenance announcers re-fire.
void reset_run_record();

/// Monotonic generation of the run record: starts at 1, incremented by every
/// reset_run_record().  Modules that register provenance lazily on first use
/// (e.g. the delay kernel's "kernel_backend" field) compare this against the
/// generation they last announced under, so a process that serves many jobs
/// back to back (fleet workers, --no-fork shard runs) re-registers into each
/// fresh record instead of leaving later manifests at "unknown".
[[nodiscard]] std::uint64_t run_record_generation() noexcept;

/// RAII wall + CPU stage timer; records into the stage log on destruction
/// and opens a trace span of the same name for the duration.
class StageTimer {
 public:
  explicit StageTimer(std::string name);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  struct Impl;
  Impl* impl_;  // raw pimpl: keeps trace.hpp out of this header
};

/// Assembles the manifest document:
///   schema/schema_version/run/created_unix_ms/git_sha/build/config/
///   runtime fields (threads, kernel_backend, ...)/stages/metrics/profile.
/// Absent runtime fields default ("threads": 0, "kernel_backend": "unknown")
/// so the document always validates against scripts/validate_manifest.py.
[[nodiscard]] JsonValue build_manifest(const std::string& run_name, JsonValue config);

/// Serializes build_manifest() to `path` (pretty-printed).  Returns false and
/// logs at error level when the file cannot be written.
bool write_manifest(const std::string& path, const std::string& run_name, JsonValue config);

/// Binary-transport twin of write_manifest for shard workers: assembles the
/// same manifest document (whose "results" runtime field must carry sample
/// headers only — no embedded value arrays) and writes it as a binfmt
/// container with `series` supplying the packed values.  Returns false and
/// logs at error level on encode or write failure.
bool write_manifest_binary(const std::string& path, const std::string& run_name,
                           JsonValue config, const std::vector<BinarySeries>& series);

/// Path requested via AROPUF_MANIFEST, or "" when unset.
[[nodiscard]] std::string manifest_path_from_env();

/// End-of-run hook for drivers: writes the manifest when AROPUF_MANIFEST is
/// set (or to `fallback_path` when non-empty), then flushes the trace
/// session.  Returns false when any requested artifact failed to write.
bool finalize_run(const std::string& run_name, JsonValue config,
                  const std::string& fallback_path = "");

}  // namespace aropuf::telemetry
