#include "telemetry/manifest.hpp"

#include <atomic>
#include <chrono>
#include <ctime>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/cli.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prof.hpp"
#include "telemetry/trace.hpp"

// Baked in by src/telemetry/CMakeLists.txt from `git rev-parse`; "unknown"
// outside a git checkout (e.g. release tarballs).
#ifndef AROPUF_GIT_SHA
#define AROPUF_GIT_SHA "unknown"
#endif
#ifndef AROPUF_BUILD_TYPE
#define AROPUF_BUILD_TYPE "unknown"
#endif

namespace aropuf::telemetry {

namespace {

struct StageRecord {
  std::string name;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  /// Hardware-counter delta ({"cycles", "ipc", ...}); empty unless the
  /// profiling layer had live counters during the stage.
  JsonValue::Object counters;
};

struct RunRecord {
  std::mutex mutex;
  std::vector<StageRecord> stages;
  JsonValue::Object runtime_fields;
  std::atomic<std::uint64_t> generation{1};
};

RunRecord& run_record() {
  static RunRecord r;
  return r;
}

bool simd_compiled_in() noexcept {
#if defined(AROPUF_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

}  // namespace

void set_runtime_field(const std::string& key, JsonValue value) {
  RunRecord& r = run_record();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.runtime_fields[key] = std::move(value);
}

void record_stage(const std::string& name, double wall_ms, double cpu_ms) {
  record_stage(name, wall_ms, cpu_ms, JsonValue::Object{});
}

void record_stage(const std::string& name, double wall_ms, double cpu_ms,
                  JsonValue::Object counters) {
  RunRecord& r = run_record();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.stages.push_back(StageRecord{name, wall_ms, cpu_ms, std::move(counters)});
}

void reset_run_record() {
  RunRecord& r = run_record();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.stages.clear();
  r.runtime_fields.clear();
  r.generation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t run_record_generation() noexcept {
  return run_record().generation.load(std::memory_order_relaxed);
}

struct StageTimer::Impl {
  std::string name;
  std::chrono::steady_clock::time_point wall_start;
  std::clock_t cpu_start;
  std::uint64_t trace_start_us;
  CounterReader counters;

  explicit Impl(std::string n)
      : name(std::move(n)),
        wall_start(std::chrono::steady_clock::now()),
        cpu_start(std::clock()),
        trace_start_us(steady_now_us()) {}
};

StageTimer::StageTimer(std::string name) : impl_(new Impl(std::move(name))) {}

StageTimer::~StageTimer() {
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - impl_->wall_start)
                             .count();
  // clock() is process CPU time: for a parallel stage cpu_ms ≈ threads ×
  // wall_ms, which is exactly the utilization signal we want per stage.
  const double cpu_ms = static_cast<double>(std::clock() - impl_->cpu_start) * 1000.0 /
                        static_cast<double>(CLOCKS_PER_SEC);
  // Counter deltas ride along wherever the profiling layer has live
  // counters: into the stage log, the metrics registry (so fleet METRICS
  // snapshots carry them), and the stage's trace span args.
  const CounterDelta delta = impl_->counters.sample();
  JsonValue::Object counters;
  if (delta.counters_valid) counters = delta.to_json();
  // In fallback mode the delta still carries wall/rusage time, so profiled
  // runs on counter-less machines keep their "prof.*" wall metrics.
  if (prof_status().mode != ProfMode::kOff) record_counter_metrics(delta);
  if (trace_enabled()) {
    trace_complete(impl_->name, "stage", impl_->trace_start_us,
                   delta.counters_valid ? delta.to_json() : JsonValue::Object{});
  }
  record_stage(impl_->name, wall_ms, cpu_ms, std::move(counters));
  delete impl_;
}

JsonValue build_manifest(const std::string& run_name, JsonValue config) {
  JsonValue::Object root;
  root["schema"] = JsonValue(kManifestSchema);
  root["schema_version"] = JsonValue(kManifestSchemaVersion);
  root["run"] = JsonValue(run_name);
  root["created_unix_ms"] = JsonValue(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  root["git_sha"] = JsonValue(AROPUF_GIT_SHA);
  {
    JsonValue::Object build;
    build["type"] = JsonValue(AROPUF_BUILD_TYPE);
    build["simd_compiled"] = JsonValue(simd_compiled_in());
    root["build"] = JsonValue(std::move(build));
  }
  root["config"] = config.is_object() ? std::move(config) : JsonValue(JsonValue::Object{});

  // Runtime fields reported by subsystems at their point of use; defaults
  // keep the schema total even when a subsystem never ran.
  root["threads"] = JsonValue(0);
  root["kernel_backend"] = JsonValue("unknown");
  {
    RunRecord& r = run_record();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& [key, value] : r.runtime_fields) root[key] = value;
    JsonValue::Array stages;
    stages.reserve(r.stages.size());
    for (const StageRecord& s : r.stages) {
      JsonValue::Object stage;
      stage["name"] = JsonValue(s.name);
      stage["wall_ms"] = JsonValue(s.wall_ms);
      stage["cpu_ms"] = JsonValue(s.cpu_ms);
      if (!s.counters.empty()) stage["counters"] = JsonValue(s.counters);
      stages.emplace_back(std::move(stage));
    }
    root["stages"] = JsonValue(std::move(stages));
  }
  root["metrics"] = MetricsRegistry::global().snapshot_json();
  root["profile"] = profile_manifest_section();
  return JsonValue(std::move(root));
}

bool write_manifest(const std::string& path, const std::string& run_name, JsonValue config) {
  const std::string json = build_manifest(run_name, std::move(config)).dump(/*indent=*/2);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    ARO_LOG_ERROR("manifest", "cannot open manifest output file", {"path", JsonValue(path)});
    return false;
  }
  out << json << '\n';
  out.flush();
  if (!out) {
    ARO_LOG_ERROR("manifest", "manifest write failed", {"path", JsonValue(path)});
    return false;
  }
  ARO_LOG_INFO("manifest", "manifest written", {"path", JsonValue(path)},
               {"run", JsonValue(run_name)});
  return true;
}

bool write_manifest_binary(const std::string& path, const std::string& run_name,
                           JsonValue config, const std::vector<BinarySeries>& series) {
  const JsonValue doc = build_manifest(run_name, std::move(config));
  if (!write_binary_shard_manifest(path, doc, series)) return false;
  ARO_LOG_INFO("manifest", "binary manifest written", {"path", JsonValue(path)},
               {"run", JsonValue(run_name)});
  return true;
}

std::string manifest_path_from_env() {
  const char* env = cli::env_value("AROPUF_MANIFEST");
  return env != nullptr ? std::string(env) : std::string();
}

bool finalize_run(const std::string& run_name, JsonValue config,
                  const std::string& fallback_path) {
  bool ok = true;
  std::string path = manifest_path_from_env();
  if (path.empty()) path = fallback_path;
  if (!path.empty() && !write_manifest(path, run_name, std::move(config))) ok = false;
  if (!flush_trace()) ok = false;
  return ok;
}

}  // namespace aropuf::telemetry
